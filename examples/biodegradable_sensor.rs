//! Scenario: sizing a biodegradable environmental-sensor processor.
//!
//! The paper's motivating application (§1–2): sensors left in the
//! environment that decompose at end-of-life. A sensor node filters and
//! compresses readings between radio windows — here modelled with the
//! gzip-like and dhrystone workloads — and must keep up with a target
//! sample-processing rate at minimum die area (large-area organic panels
//! cost yield).
//!
//! The example explores pipeline depth and width for the organic process
//! and prints the Pareto-ish table a designer would use.
//!
//! ```text
//! cargo run --release --example biodegradable_sensor
//! ```

use bdc_core::experiments::SimBudget;
use bdc_core::flow::{measure_ipc, performance, split_critical, synthesize_core};
use bdc_core::report::{fmt_freq, render_table};
use bdc_core::{CoreSpec, Process, TechKit};
use bdc_uarch::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Biodegradable sensor-node design exploration (pentacene process)\n");
    let kit = TechKit::build(Process::Organic)?;
    let budget = SimBudget {
        outer: 80,
        instructions: 30_000,
    };

    // The sensing duty: 60% compression-like work, 40% control-like work.
    let mix = [(Workload::Gzip, 0.6), (Workload::Dhrystone, 0.4)];

    // Candidate design points: shallow/deep × narrow/wide.
    let mut candidates: Vec<(String, CoreSpec)> = Vec::new();
    for (fe, be) in [(1, 3), (2, 4), (3, 5)] {
        let mut spec = CoreSpec::with_widths(fe, be);
        candidates.push((format!("{}w/{}p, 9 stages", fe, be), spec.clone()));
        for _ in 0..4 {
            let (deeper, _) = split_critical(&kit, &spec);
            spec = deeper;
        }
        candidates.push((format!("{}w/{}p, 13 stages", fe, be), spec));
    }

    let mut rows = Vec::new();
    let mut best: Option<(f64, String)> = None;
    for (label, spec) in &candidates {
        let synth = synthesize_core(&kit, spec);
        let mut ips = 0.0;
        for (w, weight) in mix {
            let stats = measure_ipc(spec, w, budget.outer, budget.instructions);
            ips += weight * performance(stats.ipc(), synth.frequency);
        }
        // Samples need ~2000 instructions of processing each.
        let samples_per_hour = ips * 3600.0 / 2000.0;
        let panel_cm2 = synth.area_um2 / 1.0e8;
        let merit = samples_per_hour / panel_cm2;
        rows.push(vec![
            label.clone(),
            fmt_freq(synth.frequency),
            format!("{ips:.1}"),
            format!("{samples_per_hour:.0}"),
            format!("{panel_cm2:.0}"),
            format!("{merit:.2}"),
        ]);
        if best.as_ref().is_none_or(|(m, _)| merit > *m) {
            best = Some((merit, label.clone()));
        }
    }
    print!(
        "{}",
        render_table(
            &[
                "design",
                "clock",
                "instr/s",
                "samples/h",
                "panel cm2",
                "samples/h/cm2"
            ],
            &rows
        )
    );
    let (_, winner) = best.expect("candidates evaluated");
    println!("\nbest area-efficiency: {winner}");
    println!("(deep pipelines pay off on organic — the paper's central claim — but the");
    println!(" panel area of wide back ends erodes the benefit for this duty cycle)");
    Ok(())
}
