//! Writing your own workload in Org32 text assembly.
//!
//! This example assembles a 4×4 integer matrix multiply from assembly text,
//! verifies it on the golden interpreter, then asks the flow what it would
//! run at on an organic core — the workflow a user evaluating their own
//! firmware would follow.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use bdc_core::flow::{performance, synthesize_core};
use bdc_core::report::fmt_freq;
use bdc_core::{CoreSpec, Process, TechKit};
use bdc_uarch::{assemble_text, disassemble, CoreConfig, Interp, OooCore};

const MATMUL: &str = r"
    ; C = A * B for 4x4 matrices at A=1000, B=1016, C=1032 (row-major).
    ; Registers: r1=i, r2=j, r3=k, r4..r7 scratch, r8=acc, r9=4.
        li   r9, 4
        li   r1, 0
i_loop:
        li   r2, 0
j_loop:
        li   r3, 0
        li   r8, 0
k_loop:
        ; acc += A[i*4+k] * B[k*4+j]
        mul  r4, r1, r9
        add  r4, r4, r3
        lw   r5, 1000(r4)
        mul  r6, r3, r9
        add  r6, r6, r2
        lw   r7, 1016(r6)
        mul  r5, r5, r7
        add  r8, r8, r5
        addi r3, r3, 1
        blt  r3, r9, k_loop
        ; C[i*4+j] = acc
        mul  r4, r1, r9
        add  r4, r4, r2
        sw   r8, 1032(r4)
        addi r2, r2, 1
        blt  r2, r9, j_loop
        addi r1, r1, 1
        blt  r1, r9, i_loop
        halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Assemble, seed the matrices, and verify functionally.
    let mut program = assemble_text(MATMUL)?;
    for k in 0..16u32 {
        program.data.push((1000 + k, k + 1)); // A = 1..16
        program
            .data
            .push((1016 + k, if k % 5 == 0 { 1 } else { 0 })); // B = I
    }
    let mut golden = Interp::new(&program, 4096);
    golden.run(100_000);
    assert!(golden.halted(), "matmul must terminate");
    // A * I = A.
    for k in 0..16u32 {
        assert_eq!(golden.mem.read(1032 + k), k + 1, "C[{k}]");
    }
    println!(
        "matmul verified on the golden model ({} instructions)",
        golden.icount
    );
    println!("\ndisassembly (first 12 instructions):");
    for line in disassemble(&program).lines().take(12) {
        println!("  {line}");
    }

    // Cycle-accurate IPC on the baseline out-of-order core.
    let mut core = OooCore::new(&program, CoreConfig::baseline(), 4096);
    let stats = core.run(100_000);
    println!("\nbaseline OoO core: IPC = {:.2}", stats.ipc());

    // What does that mean on real hardware?
    for p in Process::both() {
        let kit = TechKit::build(p)?;
        let synth = synthesize_core(&kit, &CoreSpec::baseline());
        let ips = performance(stats.ipc(), synth.frequency);
        let per_matmul = golden.icount as f64 / ips;
        println!(
            "{:>8}: clock {} -> {:.1} instructions/s -> {:.3} s per 4x4 matmul",
            p.name(),
            fmt_freq(synth.frequency),
            ips,
            per_matmul
        );
    }
    println!("\n(a biodegradable sensor doing one small matmul per reading is entirely");
    println!(" feasible at organic clock rates — the paper's \"modest compute\" regime)");
    Ok(())
}
