//! Quickstart: the full flow in one page.
//!
//! Builds the pentacene device model, measures the pseudo-E inverter,
//! characterizes both standard-cell libraries, synthesizes a 32-bit adder
//! against each, and prints the resulting clock rates side by side.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bdc_cells::{measure_inverter_dc, organic_inverter, OrganicSizing, OrganicStyle};
use bdc_core::report::{fmt_freq, fmt_time};
use bdc_core::{Process, TechKit};
use bdc_device::{DeviceModel, Level61Model, TftParams};
use bdc_synth::blocks;
use bdc_synth::map::remap_for_library;
use bdc_synth::pipeline::{pipeline_cut, PipelineOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The device: the paper's fabricated pentacene OTFT.
    let tft = Level61Model::new(TftParams::pentacene());
    println!("pentacene OTFT  W/L = 1000/80 um");
    println!(
        "  I_D(VGS=-10V, VDS=-10V) = {:.2} uA",
        tft.ids(-10.0, -10.0).abs() * 1.0e6
    );
    println!(
        "  gate capacitance        = {:.0} pF (the load that makes organic slow)",
        tft.gate_capacitance() * 1.0e12
    );

    // 2. A cell: the pseudo-E inverter at the library operating point.
    let inv = organic_inverter(
        OrganicStyle::PseudoE,
        &OrganicSizing::library_default(),
        5.0,
        -15.0,
    );
    let dc = measure_inverter_dc(&inv, 101)?;
    println!("\npseudo-E inverter @ VDD=5V, VSS=-15V:");
    println!(
        "  V_M = {:.2} V   gain = {:.2}   NM = {:.2}/{:.2} V",
        dc.vm, dc.max_gain, dc.nmh, dc.nml
    );

    // 3. Both libraries, characterized through the same flow.
    let organic = TechKit::build(Process::Organic)?;
    let silicon = TechKit::build(Process::Silicon)?;
    println!("\nFO4-like inverter delay:");
    println!("  organic: {}", fmt_time(organic.lib.fo4_delay()));
    println!("  silicon: {}", fmt_time(silicon.lib.fo4_delay()));
    println!(
        "  ratio  : {:.1e}x",
        organic.lib.fo4_delay() / silicon.lib.fo4_delay()
    );

    // 4. Synthesize a 32-bit adder against each and pipeline it 4 deep.
    let adder = blocks::carry_select_adder(32);
    for kit in [&silicon, &organic] {
        let (mapped, _) = remap_for_library(&adder, &kit.lib);
        let r = pipeline_cut(
            &mapped,
            &kit.lib,
            &kit.sta,
            &PipelineOptions {
                stages: 4,
                ..kit.pipe
            },
        );
        println!(
            "{}: 32-bit adder, 4 stages -> {} ({} registers, {:.2e} um2)",
            kit.process.name(),
            fmt_freq(r.frequency),
            r.registers,
            r.area_um2
        );
    }
    println!("\nNext: run the figure binaries in bdc-bench (e.g. `cargo run --release -p bdc-bench --bin fig12_alu_depth`).");
    Ok(())
}
