//! Scenario: what a better organic semiconductor buys you.
//!
//! The paper's §5.3/§7 future-work note: DNTT-class materials have ~10× the
//! mobility of pentacene. This example swaps the device model under the
//! whole flow — devices → inverter → library → synthesized core — and shows
//! how material progress translates into system clock rate, while the
//! architectural conclusions (deep pipelines still win) remain.
//!
//! ```text
//! cargo run --release --example device_scaling
//! ```

use bdc_cells::{
    characterize_gate, organic_inverter, CharacterizeConfig, OrganicSizing, OrganicStyle,
};
use bdc_core::flow::{split_critical, synthesize_core};
use bdc_core::report::{fmt_freq, fmt_time};
use bdc_core::{CoreSpec, Process, TechKit};
use bdc_device::{DeviceModel, Level61Model, TftParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Material scaling: pentacene vs DNTT-class organic semiconductor\n");

    // Device level: on-current at matched bias.
    let pentacene = Level61Model::new(TftParams::pentacene());
    let dntt = Level61Model::new(TftParams::dntt());
    println!("I_D(VGS=-10V, VDS=-10V):");
    println!(
        "  pentacene: {:.2} uA",
        pentacene.ids(-10.0, -10.0).abs() * 1.0e6
    );
    println!(
        "  DNTT     : {:.2} uA",
        dntt.ids(-10.0, -10.0).abs() * 1.0e6
    );

    // Gate level: characterize the pseudo-E inverter with each device.
    let cfg = CharacterizeConfig::organic();
    let gate = organic_inverter(
        OrganicStyle::PseudoE,
        &OrganicSizing::library_default(),
        5.0,
        -15.0,
    );
    let t_pent = characterize_gate(&gate, &cfg)?;
    let d_pent = t_pent.delay_worst().lookup(60.0e-6, 4.0 * gate.input_cap);
    println!("\npentacene inverter FO4-like delay: {}", fmt_time(d_pent));
    println!("(the DNTT library below is rebuilt through the same characterization flow)");

    // System level: the pentacene core vs its clock if gates were 10x.
    let kit = TechKit::build(Process::Organic)?;
    let mut spec = CoreSpec::baseline();
    for _ in 0..5 {
        let (deeper, _) = split_critical(&kit, &spec);
        spec = deeper;
    }
    let base = synthesize_core(&kit, &CoreSpec::baseline());
    let deep = synthesize_core(&kit, &spec);
    println!(
        "\npentacene cores: 9-stage {} -> 14-stage {} ({:.2}x)",
        fmt_freq(base.frequency),
        fmt_freq(deep.frequency),
        deep.frequency / base.frequency
    );

    // DNTT-class kit: same flow, faster semiconductor. Mobility enters the
    // library through the device model, so re-deriving the library captures
    // the full system effect.
    println!("\nwith a DNTT-class device (~10x mobility), the paper's §6.1 reference point");
    println!("(Myny 2014: 50x speedup from device optimization alone) says the whole");
    println!("curve shifts up while the *architectural* optimum stays deep:");
    let speedup = pentacene_to_dntt_gate_speedup()?;
    println!("  measured gate-level speedup here: {speedup:.1}x");
    println!(
        "  implied 14-stage DNTT core clock: {}",
        fmt_freq(deep.frequency * speedup)
    );
    Ok(())
}

fn pentacene_to_dntt_gate_speedup() -> Result<f64, Box<dyn std::error::Error>> {
    use bdc_circuit::{Circuit, NodeId};
    use std::sync::Arc;
    // Ring-oscillator-style comparison: one inverter driving a copy of
    // itself, pentacene vs DNTT devices, identical topology.
    let stage_delay =
        |mk: &dyn Fn(f64, f64) -> Arc<dyn DeviceModel>| -> Result<f64, Box<dyn std::error::Error>> {
            let sizing = OrganicSizing::library_default();
            let mut c = Circuit::new();
            let vdd = c.node("vdd");
            let vin = c.node("in");
            let out = c.node("out");
            let vss = c.node("vss");
            let vdd_src = c.vsource(vdd, Circuit::GND, 5.0);
            let in_src = c.vsource(vin, Circuit::GND, 0.0);
            let vss_src = c.vsource(vss, Circuit::GND, -15.0);
            let x: NodeId = c.node("x");
            c.fet(x, vin, vdd, mk(sizing.shifter_drive_w, 80.0e-6));
            c.fet(
                vss,
                vss,
                x,
                mk(sizing.shifter_load_w, sizing.shifter_load_l),
            );
            c.fet(out, vin, vdd, mk(sizing.output_drive_w, 80.0e-6));
            c.fet(Circuit::GND, x, out, mk(sizing.output_load_w, 80.0e-6));
            let gate = bdc_cells::GateCircuit {
                circuit: c,
                inputs: vec![("A".into(), in_src)],
                output: out,
                vdd_src,
                vss_src: Some(vss_src),
                vdd: 5.0,
                vss: -15.0,
                transistor_count: 4,
                input_cap: 2.0 * 2.5e-10,
                side_inputs_high: true,
            };
            let t = characterize_gate(&gate, &CharacterizeConfig::organic())?;
            Ok(t.delay_worst().lookup(60.0e-6, 4.0 * gate.input_cap))
        };
    let pent = stage_delay(&|w, l| {
        Arc::new(Level61Model::new(TftParams {
            w,
            l,
            ..TftParams::pentacene()
        }))
    })?;
    let dntt = stage_delay(&|w, l| {
        Arc::new(Level61Model::new(TftParams {
            w,
            l,
            ..TftParams::dntt()
        }))
    })?;
    Ok(pent / dntt)
}
