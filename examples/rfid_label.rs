//! Scenario: a smart RFID label with an organic microprocessor.
//!
//! The paper cites Myny et al.'s 8-bit organic microprocessors (40 Hz on
//! plastic foil, §6.1) and argues architectural optimization can close part
//! of the gap to application needs. This example runs a tag-protocol
//! workload (parse command, hash tag ID, format response — the parser-like
//! kernel) on organic cores of increasing depth and reports achievable
//! transaction rates.
//!
//! ```text
//! cargo run --release --example rfid_label
//! ```

use bdc_core::flow::{measure_ipc, performance, split_critical, synthesize_core};
use bdc_core::report::fmt_freq;
use bdc_core::{CoreSpec, Process, TechKit};
use bdc_uarch::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Organic RFID smart label: transaction rate vs pipeline depth\n");
    let kit = TechKit::build(Process::Organic)?;
    const INSTRS_PER_TRANSACTION: f64 = 350.0;

    let mut spec = CoreSpec::baseline();
    println!(
        "{:>7}  {:>10}  {:>8}  {:>12}  {:>14}",
        "stages", "clock", "IPC", "instr/s", "transactions/s"
    );
    let mut best = (0usize, 0.0f64);
    for _ in 0..7 {
        let synth = synthesize_core(&kit, &spec);
        let stats = measure_ipc(&spec, Workload::Parser, 120, 40_000);
        let ips = performance(stats.ipc(), synth.frequency);
        let tps = ips / INSTRS_PER_TRANSACTION;
        println!(
            "{:>7}  {:>10}  {:>8.2}  {:>12.1}  {:>14.3}",
            spec.total_stages(),
            fmt_freq(synth.frequency),
            stats.ipc(),
            ips,
            tps
        );
        if tps > best.1 {
            best = (spec.total_stages(), tps);
        }
        let (deeper, _) = split_critical(&kit, &spec);
        spec = deeper;
    }
    println!(
        "\nbest: {} stages at {:.3} transactions/s — deep pipelines help even a",
        best.0, best.1
    );
    println!("40 Hz-class organic tag, because organic wires are effectively free.");
    println!("(For reference, Myny et al.'s 2012 organic processor ran 40 instr/s;");
    println!(" ours trades area for clock exactly as the paper's Figure 11 predicts.)");
    Ok(())
}
