//! Property tests: everything the synthesis front end emits passes the
//! gate-level static analyzer clean (no Error- or Warning-severity
//! diagnostics) — the invariant the flow's pre-STA lint pass enforces.

use proptest::prelude::*;

use bdc_cells::{CellLibrary, ProcessKind};
use bdc_core::corespec::{stage_netlist, StageKind};
use bdc_lint::{lint_netlist, Severity};
use bdc_synth::blocks;
use bdc_synth::map::remap_for_library;
use bdc_synth::sta::StaConfig;

fn lib(organic: bool) -> CellLibrary {
    if organic {
        CellLibrary::synthetic(ProcessKind::Organic, 6.5e-4)
    } else {
        CellLibrary::synthetic(ProcessKind::Silicon45, 1.0e-11)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_corespec_stage_netlists_lint_clean(
        fe_width in 1usize..=6,
        be_pipes in 3usize..=7,
        stage in 0usize..9,
        organic in any::<bool>(),
    ) {
        let kind = StageKind::all()[stage];
        let l = lib(organic);
        let n = stage_netlist(kind, fe_width, be_pipes);
        let (mapped, _) = remap_for_library(&n, &l);
        let report = lint_netlist(&mapped, &l, &StaConfig::default());
        prop_assert!(report.is_clean(), "{}", report);
        prop_assert_eq!(report.count(Severity::Warning), 0, "{}", report);
    }

    #[test]
    fn generated_blocks_lint_clean(
        bits in 4usize..=32,
        seed in 0u64..200,
        organic in any::<bool>(),
    ) {
        let l = lib(organic);
        for n in [
            blocks::ripple_adder(bits),
            blocks::carry_select_adder(bits),
            blocks::array_multiplier(bits.min(12)),
            blocks::priority_select(bits),
            blocks::random_logic(12, 150, seed),
        ] {
            let (mapped, _) = remap_for_library(&n, &l);
            let report = lint_netlist(&mapped, &l, &StaConfig::default());
            prop_assert!(report.is_clean(), "{}", report);
            prop_assert_eq!(report.count(Severity::Warning), 0, "{}", report);
        }
    }
}
