//! Property tests for the interchange formats: structural Verilog and
//! Org32 text assembly.

use proptest::prelude::*;

use bdc_synth::blocks;
use bdc_synth::funcsim::{simulate_comb, u64_to_bus};
use bdc_synth::gate::Netlist;
use bdc_synth::verilog::{parse_verilog, write_verilog};
use bdc_uarch::{assemble_text, disassemble, Interp};
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_logic_round_trips_through_verilog(
        seed in 0u64..500,
        gates in 20usize..200,
        vectors in proptest::collection::vec(0u64..(1 << 12), 4..8),
    ) {
        let orig = blocks::random_logic(12, gates, seed);
        let text = write_verilog(&orig);
        let back = parse_verilog(&text).expect("parse");
        back.validate().expect("valid");
        prop_assert_eq!(back.gates().len(), orig.gates().len());
        for &v in &vectors {
            let eval = |nl: &Netlist| -> Vec<bool> {
                let mut m = BTreeMap::new();
                u64_to_bus(&mut m, nl.inputs(), v);
                let values = simulate_comb(nl, &m);
                nl.outputs().iter().map(|&o| values[o]).collect()
            };
            prop_assert_eq!(eval(&orig), eval(&back), "vector {:#x}", v);
        }
    }

    #[test]
    fn pipelined_netlists_round_trip_with_flops(
        stages in 2usize..5,
        seed in 0u64..100,
    ) {
        use bdc_cells::{CellLibrary, ProcessKind};
        use bdc_synth::pipeline::insert_registers;
        use bdc_synth::sta::StaConfig;
        let comb = blocks::random_logic(10, 120, seed);
        let lib = CellLibrary::synthetic(ProcessKind::Silicon45, 1.0e-11);
        let piped = insert_registers(&comb, &lib, &StaConfig::default(), stages);
        let text = write_verilog(&piped);
        let back = parse_verilog(&text).expect("parse");
        back.validate().expect("valid");
        prop_assert_eq!(back.flops().len(), piped.flops().len());
        prop_assert_eq!(back.gates().len(), piped.gates().len());
    }

    #[test]
    fn arithmetic_programs_survive_text_round_trip(
        a in -4000i32..4000,
        b in 1i32..500,
    ) {
        // Generate a text program parametrically, assemble, run, and compare
        // against native Rust arithmetic.
        let src = format!(
            "li r1, {a}\nli r2, {b}\nadd r3, r1, r2\nsub r4, r1, r2\n\
             mul r5, r1, r2\ndiv r6, r1, r2\nrem r7, r1, r2\nhalt\n"
        );
        let p = assemble_text(&src).expect("assemble");
        let mut m = Interp::new(&p, 64);
        m.run(100);
        prop_assert!(m.halted());
        prop_assert_eq!(m.regs[3] as i32, a.wrapping_add(b));
        prop_assert_eq!(m.regs[4] as i32, a.wrapping_sub(b));
        prop_assert_eq!(m.regs[5] as i32, a.wrapping_mul(b));
        prop_assert_eq!(m.regs[6] as i32, a.wrapping_div(b));
        prop_assert_eq!(m.regs[7] as i32, a.wrapping_rem(b));
    }

    #[test]
    fn disassembly_lines_match_program_length(seed in 0u64..200) {
        let p = bdc_uarch::build_workload(bdc_uarch::Workload::Gzip, (seed % 5) as u32 + 1);
        let text = disassemble(&p);
        prop_assert_eq!(text.lines().count(), p.code.len());
    }
}

#[test]
fn workload_kernels_round_trip_through_verilog_sized_alu() {
    // A non-property spot check tying the stacks together: export the real
    // ALU adder block, re-import, and confirm identical STA results.
    use bdc_cells::{CellLibrary, ProcessKind};
    use bdc_synth::sta::{analyze, StaConfig};
    let lib = CellLibrary::synthetic(ProcessKind::Organic, 6.5e-4);
    let orig = blocks::carry_select_adder(32);
    let back = parse_verilog(&write_verilog(&orig)).expect("parse");
    let cfg = StaConfig::default();
    let r1 = analyze(&orig, &lib, &cfg);
    let r2 = analyze(&back, &lib, &cfg);
    assert!((r1.max_arrival - r2.max_arrival).abs() < 1e-12 * r1.max_arrival.max(1.0));
    assert_eq!(r1.area_um2, r2.area_um2);
}
