//! Property tests on the timing/pipelining machinery.

use proptest::prelude::*;

use bdc_cells::{CellLibrary, ProcessKind};
use bdc_synth::blocks;
use bdc_synth::pipeline::{depth_sweep, pipeline_cut, stage_assignment, PipelineOptions};
use bdc_synth::sta::{analyze, StaConfig};

fn lib(organic: bool) -> CellLibrary {
    if organic {
        CellLibrary::synthetic(ProcessKind::Organic, 6.5e-4)
    } else {
        CellLibrary::synthetic(ProcessKind::Silicon45, 1.0e-11)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arrivals_are_monotone_along_gate_order(seed in 0u64..300, organic in any::<bool>()) {
        // Each gate's output arrival must be at least its worst input's.
        let n = blocks::random_logic(10, 150, seed);
        let r = analyze(&n, &lib(organic), &StaConfig::default());
        for g in n.gates() {
            let worst_in = g.inputs.iter().map(|&i| r.arrival[i]).fold(0.0, f64::max);
            prop_assert!(r.arrival[g.output] >= worst_in);
        }
        prop_assert!(r.max_gate_delay <= r.max_arrival + 1e-30);
    }

    #[test]
    fn stage_assignment_is_a_monotone_partition(
        seed in 0u64..300,
        stages in 2usize..8,
    ) {
        let n = blocks::random_logic(10, 200, seed);
        let l = lib(false);
        let cfg = StaConfig::default();
        let assign = stage_assignment(&n, &l, &cfg, stages);
        prop_assert_eq!(assign.len(), n.gates().len());
        // Consumers never sit in an earlier stage than their producers.
        let mut stage_of_net = vec![0usize; n.net_count()];
        for (g, &s) in n.gates().iter().zip(&assign) {
            prop_assert!(s < stages);
            for &i in &g.inputs {
                prop_assert!(stage_of_net[i] <= s, "net {} from stage {} used in {}", i, stage_of_net[i], s);
            }
            stage_of_net[g.output] = s;
        }
    }

    #[test]
    fn deeper_cuts_never_lengthen_stage_logic(
        seed in 0u64..100,
        organic in any::<bool>(),
    ) {
        let n = blocks::random_logic(12, 400, seed);
        let l = lib(organic);
        let cfg = StaConfig::default();
        let base = PipelineOptions::with_stages(1);
        let sweep = depth_sweep(&n, &l, &cfg, &[1, 2, 4, 8], &base);
        for w in sweep.windows(2) {
            let worst_a = w[0].stage_logic.iter().copied().fold(0.0, f64::max);
            let worst_b = w[1].stage_logic.iter().copied().fold(0.0, f64::max);
            prop_assert!(worst_b <= worst_a * 1.0 + 1e-30);
            // Registers and area grow monotonically with depth.
            prop_assert!(w[1].registers >= w[0].registers);
            prop_assert!(w[1].area_um2 >= w[0].area_um2 - 1e-9);
        }
    }

    #[test]
    fn period_bounded_below_by_overheads(
        seed in 0u64..100,
        stages in 1usize..12,
    ) {
        let n = blocks::random_logic(8, 150, seed);
        let l = lib(false);
        let r = pipeline_cut(&n, &l, &StaConfig::default(), &PipelineOptions::with_stages(stages));
        prop_assert!(r.period >= r.seq_overhead + r.wire_overhead);
        prop_assert!(r.frequency > 0.0);
        prop_assert_eq!(r.stage_logic.len(), stages);
    }
}

#[test]
fn sta_reports_identical_results_on_identical_inputs() {
    // Determinism: the whole timing stack is pure.
    let n = blocks::array_multiplier(16);
    let l = lib(true);
    let cfg = StaConfig::default();
    let a = analyze(&n, &l, &cfg);
    let b = analyze(&n, &l, &cfg);
    assert_eq!(a.max_arrival, b.max_arrival);
    assert_eq!(a.arrival, b.arrival);
}

#[test]
fn fanout_buffering_bounds_worst_gate_delay() {
    // A fanout-256 net must not cost 256 pin-loads of delay.
    use bdc_synth::gate::Netlist;
    let mut heavy = Netlist::new("fanout");
    let a = heavy.input("a");
    let x = heavy.inv(a);
    let mut outs = Vec::new();
    for _ in 0..256 {
        outs.push(heavy.inv(x));
    }
    heavy.output(outs[0], "y");
    let l = lib(true);
    let r = analyze(&heavy, &l, &StaConfig::default());
    // Unbuffered, the organic driver would see 256 × 350 pF ≈ 90 nF and
    // take ~100 ms; the buffer tree keeps it within ~a dozen gate delays.
    assert!(
        r.max_gate_delay < 20.0 * l.fo4_delay(),
        "max gate delay {:.3e} vs FO4 {:.3e}",
        r.max_gate_delay,
        l.fo4_delay()
    );
}
