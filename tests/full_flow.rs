//! End-to-end integration: the full Figure-10 flow on both processes.
//!
//! These tests characterize the real libraries (cached per process via
//! `shared_kit`) and check the paper's headline relationships hold through
//! the whole stack: devices → cells → libraries → synthesis → timing.

use bdc_core::experiments::{fig12_alu_depth, table_mapping_preference};
use bdc_core::flow::{alu_cluster, split_critical, synthesize_core};
use bdc_core::process::shared_kit;
use bdc_core::{CoreSpec, Process};

#[test]
fn library_characterization_magnitudes() {
    let org = shared_kit(Process::Organic);
    let si = shared_kit(Process::Silicon);
    // Silicon FO4 in the published 45 nm range.
    let fo4 = si.lib.fo4_delay();
    assert!(fo4 > 5.0e-12 && fo4 < 40.0e-12, "silicon FO4 = {fo4:.3e}");
    // Organic gates are ~10^5–10^7 slower.
    let ratio = org.lib.fo4_delay() / fo4;
    assert!(
        ratio > 1.0e5 && ratio < 1.0e8,
        "organic/silicon gate ratio {ratio:.3e}"
    );
    // Both supply rails match the paper's §4.3.3 choice.
    assert_eq!(org.lib.vdd, 5.0);
    assert_eq!(org.lib.vss, -15.0);
}

#[test]
fn organic_library_prefers_two_input_nor_coverage() {
    // §5.5: unipolar p-type rise/fall imbalance makes the organic series
    // (NOR) stacks disproportionately slow; the mapper measures that.
    let org = shared_kit(Process::Organic);
    let si = shared_kit(Process::Silicon);
    // Compare each cell driving two copies of itself (self-relative load).
    let nominal = |kit: &bdc_core::TechKit, kind: bdc_cells::CellKind, slew: f64| {
        let cap = kit.lib.cell(kind).input_cap;
        kit.lib.delay(kind, slew, 2.0 * cap)
    };
    let org_nor3 = nominal(org, bdc_cells::CellKind::Nor3, 6.0e-5);
    let org_nand3 = nominal(org, bdc_cells::CellKind::Nand3, 6.0e-5);
    let si_nor3 = nominal(si, bdc_cells::CellKind::Nor3, 2.0e-11);
    let si_nand3 = nominal(si, bdc_cells::CellKind::Nand3, 2.0e-11);
    let org_imbalance = org_nor3 / org_nand3;
    let si_imbalance = si_nor3 / si_nand3;
    assert!(
        org_imbalance > 2.0 * si_imbalance,
        "organic NOR3/NAND3 = {org_imbalance:.2}, silicon = {si_imbalance:.2}"
    );
    let (_, si_nor3_dec) = table_mapping_preference(si);
    assert!(!si_nor3_dec, "silicon should keep its NOR3 cell");
}

#[test]
fn alu_depth_shapes_match_figure_12() {
    let org = shared_kit(Process::Organic);
    let si = shared_kit(Process::Silicon);
    let stages = [1usize, 8, 14, 22, 30];
    let f_si = fig12_alu_depth(si, &stages);
    let f_org = fig12_alu_depth(org, &stages);
    let n_si = f_si.normalized_frequency();
    let n_org = f_org.normalized_frequency();

    // Silicon saturates: its frequency at 30 stages is no better than ~15%
    // above its 14-stage point (the paper's curve is flat past ~8).
    assert!(n_si[4] < 1.15 * n_si[2], "silicon keeps scaling: {n_si:?}");
    // Organic keeps gaining well past silicon's saturation point.
    assert!(
        n_org[3] > 1.5 * n_org[1],
        "organic 8->22 gain too small: {n_org:?}"
    );
    assert!(
        n_org[4] >= n_org[3] * 0.98,
        "organic collapses early: {n_org:?}"
    );
    // Organic's deep-pipeline advantage over silicon (the headline).
    assert!(
        n_org[3] / n_si[3] > 1.8,
        "organic/silicon @22 stages = {:.2}",
        n_org[3] / n_si[3]
    );
    // Area: organic register overhead makes its slope steeper (Fig 12a).
    let a_si = f_si.normalized_area();
    let a_org = f_org.normalized_area();
    assert!(
        a_org[4] > a_si[4],
        "organic area slope should exceed silicon's"
    );
    assert!(a_si[4] > 1.3, "silicon area should still rise with stages");
}

#[test]
fn alu_cluster_matches_paper_composition() {
    let alu = alu_cluster();
    alu.validate().expect("valid netlist");
    // Two 32-bit array multipliers dominate.
    assert!(alu.gates().len() > 20_000);
    assert!(alu.inputs().len() >= 4 * 32);
}

#[test]
fn baseline_frequencies_have_paper_magnitudes() {
    let si = synthesize_core(shared_kit(Process::Silicon), &CoreSpec::baseline());
    let org = synthesize_core(shared_kit(Process::Organic), &CoreSpec::baseline());
    // Paper: ~800 MHz silicon. Accept the right order of magnitude.
    assert!(
        si.frequency > 3.0e8 && si.frequency < 3.0e9,
        "silicon baseline {:.3e} Hz",
        si.frequency
    );
    // Paper: ~200 Hz organic; our heavier cells land within ~20x.
    assert!(
        org.frequency > 1.0 && org.frequency < 1.0e3,
        "organic baseline {:.3e} Hz",
        org.frequency
    );
    // Wire overhead: a real fraction of the silicon cycle, a vanishing one
    // of the organic cycle (§5.5).
    assert!(si.wire_overhead / si.period > 0.05);
    assert!(org.wire_overhead / org.period < 0.01);
}

#[test]
fn critical_stage_splitting_improves_clock_until_overheads() {
    // Paper Fig 15(b): at 14 stages organic reaches 2.0x its baseline clock
    // while silicon only manages ~1.5x (wire + unsplittable-tail limited).
    for (p, min_gain) in [(Process::Organic, 1.6), (Process::Silicon, 1.15)] {
        let kit = shared_kit(p);
        let mut spec = CoreSpec::baseline();
        let base = synthesize_core(kit, &spec);
        for _ in 0..5 {
            let (deeper, cut) = split_critical(kit, &spec);
            assert!(cut.splittable());
            spec = deeper;
        }
        let deep = synthesize_core(kit, &spec);
        assert_eq!(spec.total_stages(), 14);
        assert!(
            deep.frequency > min_gain * base.frequency,
            "{}: 14-stage {:.3e} vs 9-stage {:.3e}",
            p.name(),
            deep.frequency,
            base.frequency
        );
    }
}

#[test]
fn organic_gains_more_clock_from_depth_than_silicon() {
    // Fig 15(b): at 14 stages the organic clock doubles while silicon gains
    // ~1.5x. Check the ordering (organic > silicon).
    let gain = |p: Process| {
        let kit = shared_kit(p);
        let mut spec = CoreSpec::baseline();
        let base = synthesize_core(kit, &spec);
        for _ in 0..5 {
            spec = split_critical(kit, &spec).0;
        }
        synthesize_core(kit, &spec).frequency / base.frequency
    };
    let g_org = gain(Process::Organic);
    let g_si = gain(Process::Silicon);
    assert!(
        g_org > g_si,
        "organic depth gain {g_org:.2} vs silicon {g_si:.2}"
    );
}

#[test]
fn derived_dff_timing_matches_transistor_level_simulation() {
    // The library's DFF timing is derived from the characterized NAND2;
    // the transistor-level 7474 simulation must agree within a small factor.
    use bdc_cells::{build_dff, measure_dff, OrganicSizing};
    for (p, organic, scale) in [
        (Process::Organic, true, 0.7e-3),
        (Process::Silicon, false, 20.0e-12),
    ] {
        let kit = shared_kit(p);
        let dff = build_dff(
            organic,
            &OrganicSizing::library_default(),
            kit.lib.vdd,
            kit.lib.vss,
        );
        let m = measure_dff(&dff, scale).expect("transistor-level DFF measurement");
        let derived = kit.lib.dff;
        let ratio_q = derived.clk_to_q / m.clk_to_q;
        assert!(
            (0.2..=6.0).contains(&ratio_q),
            "{}: derived clk->Q {:.3e} vs measured {:.3e}",
            p.name(),
            derived.clk_to_q,
            m.clk_to_q
        );
        assert!(
            m.setup < 10.0 * derived.setup,
            "{}: setup {:.3e}",
            p.name(),
            m.setup
        );
    }
}
