//! Property tests: the Liberty-flavoured serialization round-trips
//! arbitrary characterized libraries exactly.

use proptest::prelude::*;

use bdc_cells::characterize::GateTiming;
use bdc_cells::library::DffTiming;
use bdc_cells::{
    parse_library, write_library, Cell, CellKind, CellLibrary, NldmTable, ProcessKind, WireModel,
};

/// Strategy for a well-formed NLDM table.
fn table_strategy() -> impl Strategy<Value = NldmTable> {
    (2usize..5, 2usize..5).prop_flat_map(|(ns, nl)| {
        let slews = proptest::collection::vec(1.0e-12..1.0e-3f64, ns..=ns);
        let loads = proptest::collection::vec(1.0e-16..1.0e-9f64, nl..=nl);
        let values = proptest::collection::vec(
            proptest::collection::vec(1.0e-13..1.0e-2f64, nl..=nl),
            ns..=ns,
        );
        (slews, loads, values).prop_map(|(mut s, mut l, v)| {
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            l.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s.dedup();
            l.dedup();
            // Pad if dedup shrank an axis (rare with floats).
            while s.len() < v.len() {
                let last = *s.last().unwrap();
                s.push(last * 2.0);
            }
            let rows = v
                .into_iter()
                .take(s.len())
                .map(|r| r[..l.len()].to_vec())
                .collect();
            NldmTable::new(s, l, rows)
        })
    })
}

fn library_strategy() -> impl Strategy<Value = CellLibrary> {
    (
        proptest::collection::vec(table_strategy(), 6..=6),
        1.0e-13..1.0e-3f64,
        prop_oneof![Just(ProcessKind::Organic), Just(ProcessKind::Silicon45)],
        0.1..20.0f64,
    )
        .prop_map(|(tables, dff_scale, process, vdd)| {
            let mut it = tables.into_iter();
            let cells: Vec<Cell> = CellKind::all()
                .into_iter()
                .map(|kind| {
                    // Rise/fall/slew share axes (as real characterization
                    // produces); fall and slew derive from the rise grid.
                    let rise = it.next().unwrap();
                    Cell {
                        kind,
                        area: 1.0 + vdd,
                        input_cap: 1.0e-15,
                        leakage_w: dff_scale * 1.0e-3,
                        switching_energy: vdd * 1.0e-15,
                        timing: GateTiming {
                            delay_fall: rise.map(|d| d * 1.2),
                            out_slew: rise.map(|d| d * 0.8),
                            delay_rise: rise,
                        },
                    }
                })
                .collect();
            CellLibrary::from_cells(
                "prop",
                process,
                vdd,
                if process == ProcessKind::Organic {
                    -vdd
                } else {
                    0.0
                },
                WireModel::silicon_45nm(),
                DffTiming {
                    setup: dff_scale,
                    hold: dff_scale / 4.0,
                    clk_to_q: dff_scale * 1.1,
                },
                cells,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_library_round_trips(lib in library_strategy()) {
        let text = write_library(&lib);
        let back = parse_library(&text).expect("parse back");
        prop_assert_eq!(&back.name, &lib.name);
        prop_assert_eq!(back.process, lib.process);
        prop_assert_eq!(back.vdd, lib.vdd);
        prop_assert_eq!(back.vss, lib.vss);
        prop_assert_eq!(back.dff, lib.dff);
        prop_assert_eq!(back.wire, lib.wire);
        for kind in CellKind::all() {
            let a = lib.cell(kind);
            let b = back.cell(kind);
            prop_assert_eq!(a.area, b.area);
            prop_assert_eq!(a.input_cap, b.input_cap);
            prop_assert_eq!(a.leakage_w, b.leakage_w);
            prop_assert_eq!(a.switching_energy, b.switching_energy);
            prop_assert_eq!(&a.timing.delay_rise, &b.timing.delay_rise);
            prop_assert_eq!(&a.timing.delay_fall, &b.timing.delay_fall);
            prop_assert_eq!(&a.timing.out_slew, &b.timing.out_slew);
        }
    }

    #[test]
    fn lookup_survives_round_trip(lib in library_strategy(), slew in 1.0e-12..1.0e-4f64, load in 1.0e-16..1.0e-10f64) {
        let back = parse_library(&write_library(&lib)).expect("parse back");
        for kind in CellKind::all() {
            let a = lib.cell(kind).timing.delay_worst().lookup(slew, load);
            let b = back.cell(kind).timing.delay_worst().lookup(slew, load);
            prop_assert_eq!(a, b);
        }
    }
}

#[test]
fn characterized_library_round_trips_via_disk_format() {
    // The real (simulated) organic library through the text format.
    let lib = bdc_core::process::shared_kit(bdc_core::Process::Organic);
    let text = write_library(&lib.lib);
    let back = parse_library(&text).expect("parse");
    assert_eq!(
        back.cell(CellKind::Inv).timing.delay_rise,
        lib.lib.cell(CellKind::Inv).timing.delay_rise
    );
    assert_eq!(back.dff, lib.lib.dff);
}
