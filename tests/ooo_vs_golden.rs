//! Property tests: the out-of-order core is architecturally equivalent to
//! the in-order golden model on randomized programs and configurations.

use proptest::prelude::*;

use bdc_uarch::asm::Asm;
use bdc_uarch::{build_workload, CoreConfig, Interp, OooCore, Reg, StagePlan, Workload};

/// A structured random program: a loop whose body mixes arithmetic, memory
/// traffic, data-dependent branches and calls — enough to exercise rename,
/// the LSQ, forwarding and flush paths.
fn random_program(ops: &[u8], trips: u16) -> bdc_uarch::Program {
    let mut a = Asm::new();
    let f_leaf = a.label();
    let start = a.label();
    a.j(start);

    // Leaf function: r1 = mix(r1, r2).
    a.bind(f_leaf);
    a.xor(Reg(1), Reg(1), Reg(2));
    a.addi(Reg(1), Reg(1), 37);
    a.ret();

    a.bind(start);
    a.li(Reg(10), 512); // memory base
    a.li(Reg(11), 0); // loop counter
    a.li(Reg(12), trips as i32);
    a.li(Reg(1), 0x5A5);
    a.li(Reg(2), 0x0F0);
    let top = a.label();
    a.bind(top);
    for (k, &op) in ops.iter().enumerate() {
        let k = k as i32;
        match op % 11 {
            0 => a.add(Reg(3), Reg(1), Reg(2)),
            1 => a.sub(Reg(2), Reg(3), Reg(1)),
            2 => a.mul(Reg(4), Reg(1), Reg(2)),
            3 => {
                a.li(Reg(6), 3 + (k % 5));
                a.div(Reg(5), Reg(1), Reg(6));
            }
            4 => a.sw(Reg(1), Reg(10), k % 64),
            5 => a.lw(Reg(3), Reg(10), k % 64),
            6 => {
                // Data-dependent short forward branch.
                let skip = a.label();
                a.andi(Reg(7), Reg(1), 1);
                a.beq(Reg(7), Reg(0), skip);
                a.addi(Reg(8), Reg(8), 1);
                a.bind(skip);
            }
            7 => a.jal(Reg::RA, f_leaf),
            8 => {
                a.li(Reg(6), (k % 7) + 1);
                a.sll(Reg(2), Reg(2), Reg(6));
            }
            9 => a.slt(Reg(9), Reg(1), Reg(2)),
            _ => a.xor(Reg(1), Reg(1), Reg(3)),
        }
    }
    a.addi(Reg(11), Reg(11), 1);
    a.blt(Reg(11), Reg(12), top);
    a.halt();
    a.assemble()
}

fn config_from(widths: (usize, usize), splits: &[u8]) -> CoreConfig {
    let mut plan = StagePlan::baseline9();
    for &s in splits {
        plan = plan
            .split(["fetch", "decode", "rename", "dispatch", "issue", "regread"][s as usize % 6]);
    }
    let mut cfg = CoreConfig::with_widths(widths.0, widths.1);
    cfg.stages = plan;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn random_programs_match_golden(
        ops in proptest::collection::vec(any::<u8>(), 4..24),
        trips in 2u16..30,
        fe in 1usize..=6,
        be in 3usize..=7,
        splits in proptest::collection::vec(any::<u8>(), 0..6),
    ) {
        let p = random_program(&ops, trips);
        let mut gold = Interp::new(&p, 4096);
        gold.run(500_000);
        prop_assume!(gold.halted());

        let cfg = config_from((fe, be), &splits);
        let mut core = OooCore::new(&p, cfg, 4096);
        let stats = core.run(500_000);
        prop_assert!(core.halted(), "OoO did not halt");
        prop_assert_eq!(stats.instructions, gold.icount, "instruction counts differ");
        prop_assert_eq!(core.arch_regs(), &gold.regs, "architectural registers differ");
        // Memory spot checks over the store region.
        for addr in 512..576 {
            prop_assert_eq!(core.memory().read(addr), gold.mem.read(addr), "mem[{}]", addr);
        }
    }

    #[test]
    fn ipc_never_exceeds_machine_width(
        fe in 1usize..=6,
        be in 3usize..=7,
    ) {
        let p = build_workload(Workload::Dhrystone, 60);
        let cfg = CoreConfig::with_widths(fe, be);
        let commit = cfg.commit_width;
        let mut core = OooCore::new(&p, cfg, Workload::Dhrystone.memory_words());
        let stats = core.run(50_000);
        prop_assert!(stats.ipc() <= commit as f64 + 1e-9);
        prop_assert!(stats.ipc() <= (fe.max(be)) as f64 + 1e-9);
    }
}

#[test]
fn all_workloads_match_golden_on_a_deep_wide_core() {
    let cfg = config_from((4, 6), &[0, 2, 4]);
    for w in Workload::all() {
        let p = build_workload(w, 2);
        let mut gold = Interp::new(&p, w.memory_words());
        gold.run(2_000_000);
        let mut core = OooCore::new(&p, cfg.clone(), w.memory_words());
        let stats = core.run(2_000_000);
        assert!(core.halted(), "{}", w.name());
        assert_eq!(stats.instructions, gold.icount, "{}", w.name());
        assert_eq!(core.arch_regs(), &gold.regs, "{}", w.name());
    }
}
