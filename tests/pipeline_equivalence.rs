//! Property tests: pipeline register insertion preserves function.
//!
//! `insert_registers` materializes the stage cuts that `pipeline_cut` only
//! times; the pipelined netlist must produce the same outputs as the
//! combinational original, delayed by `stages − 1` cycles.

use std::collections::BTreeMap;

use proptest::prelude::*;

use bdc_cells::{CellLibrary, ProcessKind};
use bdc_synth::blocks;
use bdc_synth::funcsim::{bus_to_u64, simulate_comb, simulate_seq, u64_to_bus};
use bdc_synth::gate::Netlist;
use bdc_synth::pipeline::insert_registers;
use bdc_synth::sta::StaConfig;

fn lib() -> CellLibrary {
    CellLibrary::synthetic(ProcessKind::Silicon45, 10.0e-12)
}

/// Drives the same input sequence through comb and pipelined versions and
/// checks output alignment.
fn check_equivalence(comb: &Netlist, stages: usize, input_seqs: &[BTreeMap<usize, bool>]) {
    let piped = insert_registers(comb, &lib(), &StaConfig::default(), stages);
    piped.validate().expect("pipelined netlist is valid");
    let latency = stages - 1;
    // Translate input maps: same names, different net ids.
    let name_of: BTreeMap<&str, usize> = comb
        .inputs()
        .iter()
        .map(|&i| (comb.net_name(i).unwrap(), i))
        .collect();
    let piped_inputs: Vec<BTreeMap<usize, bool>> = input_seqs
        .iter()
        .map(|m| {
            piped
                .inputs()
                .iter()
                .map(|&i| {
                    let name = piped.net_name(i).unwrap();
                    (i, m[&name_of[name]])
                })
                .collect()
        })
        .collect();
    let traces = simulate_seq(&piped, &piped_inputs, input_seqs.len());
    for (c, m) in input_seqs.iter().enumerate() {
        let t = c + latency;
        if t >= traces.len() {
            break;
        }
        let expect = simulate_comb(comb, m);
        for (&co, &po) in comb.outputs().iter().zip(piped.outputs()) {
            let name = comb.net_name(co).unwrap();
            assert_eq!(
                expect[co], traces[t][po],
                "output {name} mismatch at cycle {t} (stages={stages})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn adder_pipeline_is_equivalent(
        stages in 2usize..6,
        inputs in proptest::collection::vec((0u64..=0xFFFF, 0u64..=0xFFFF, any::<bool>()), 8..12),
    ) {
        let comb = blocks::ripple_adder(16);
        let a = blocks::bus(&comb, "a");
        let b = blocks::bus(&comb, "b");
        let cin = comb.inputs().iter().copied()
            .find(|&x| comb.net_name(x) == Some("cin")).unwrap();
        let seqs: Vec<BTreeMap<usize, bool>> = inputs.iter().map(|&(av, bv, cv)| {
            let mut m = BTreeMap::new();
            u64_to_bus(&mut m, &a, av);
            u64_to_bus(&mut m, &b, bv);
            m.insert(cin, cv);
            m
        }).collect();
        check_equivalence(&comb, stages, &seqs);
    }

    #[test]
    fn random_logic_pipeline_is_equivalent(
        seed in 0u64..1000,
        stages in 2usize..7,
        patterns in proptest::collection::vec(0u64..(1 << 12), 6..10),
    ) {
        let comb = blocks::random_logic(12, 150, seed);
        let ins = blocks::bus(&comb, "in");
        let seqs: Vec<BTreeMap<usize, bool>> = patterns.iter().map(|&p| {
            let mut m = BTreeMap::new();
            u64_to_bus(&mut m, &ins, p);
            m
        }).collect();
        check_equivalence(&comb, stages, &seqs);
    }

    #[test]
    fn multiplier_pipeline_computes_products(
        a_v in 0u64..=255,
        b_v in 0u64..=255,
        stages in 2usize..9,
    ) {
        let comb = blocks::array_multiplier(8);
        let piped = insert_registers(&comb, &lib(), &StaConfig::default(), stages);
        let a = blocks::bus(&piped, "a");
        let b = blocks::bus(&piped, "b");
        let p_bus = blocks::bus(&piped, "p");
        let mut m = BTreeMap::new();
        u64_to_bus(&mut m, &a, a_v);
        u64_to_bus(&mut m, &b, b_v);
        // Hold inputs until the pipeline drains.
        let traces = simulate_seq(&piped, &[m], stages + 1);
        let product = bus_to_u64(traces.last().unwrap(), &p_bus);
        prop_assert_eq!(product, a_v * b_v);
    }
}

#[test]
fn register_count_grows_with_stage_count() {
    let comb = blocks::array_multiplier(8);
    let p2 = insert_registers(&comb, &lib(), &StaConfig::default(), 2);
    let p6 = insert_registers(&comb, &lib(), &StaConfig::default(), 6);
    assert!(p6.flops().len() > p2.flops().len());
    assert!(!p2.flops().is_empty());
}
