//! Integration tests on the experiment drivers at a reduced simulation
//! budget: the *directions* of every headline result must hold even in
//! quick runs. (The bench binaries regenerate the full figures.)

use bdc_core::experiments::{
    fig06_inverters, fig07_vdd_sweep, fig11_core_depth, fig13_14_width, fig15_wire_ablation,
    width_ipc_matrix, SimBudget,
};
use bdc_core::process::shared_kit;
use bdc_core::Process;

#[test]
fn fig06_style_ranking_matches_paper() {
    let rows = fig06_inverters().expect("fig06");
    assert_eq!(rows.len(), 3);
    let (diode, biased, pseudo) = (&rows[0], &rows[1], &rows[2]);
    // Gain ordering: diode < biased < pseudo-E (paper: 1.2 < 1.6 < 3.0).
    assert!(diode.dc.max_gain < biased.dc.max_gain);
    assert!(biased.dc.max_gain < pseudo.dc.max_gain);
    assert!(pseudo.dc.max_gain > 2.0);
    // Only the pseudo-E design has usable regenerative noise margins.
    assert!(pseudo.dc.nm_mec > 3.0 * diode.dc.nm_mec.max(0.05));
}

#[test]
fn fig07_low_vdd_power_savings() {
    let rows = fig07_vdd_sweep().expect("fig07");
    let p5 = rows[0].dc.static_power_in_low;
    let p15 = rows[2].dc.static_power_in_low;
    // Paper: the 5 V inverter burns ~6% of the 15 V one. Check a large drop.
    assert!(p5 < 0.35 * p15, "P(5V) = {p5:.2e}, P(15V) = {p15:.2e}");
    // V_M tracks ~VDD/2 across the sweep.
    for r in &rows {
        let frac = r.dc.vm / r.vdd;
        assert!(
            frac > 0.3 && frac < 0.85,
            "VM/VDD = {frac:.2} at VDD={}",
            r.vdd
        );
    }
}

#[test]
fn fig11_optima_ordering() {
    let budget = SimBudget::quick();
    let optimum = |p: Process| -> f64 {
        let pts = fig11_core_depth(shared_kit(p), budget);
        // Mean normalized performance per depth; return the argmax depth.
        let base: Vec<f64> = pts[0].per_workload.iter().map(|x| x.2).collect();
        let mut best = (9usize, 0.0f64);
        for pt in &pts {
            let mean: f64 = pt
                .per_workload
                .iter()
                .zip(&base)
                .map(|((_, _, perf), b)| perf / b)
                .sum::<f64>()
                / base.len() as f64;
            if mean > best.1 {
                best = (pt.stages, mean);
            }
        }
        best.0 as f64
    };
    let si = optimum(Process::Silicon);
    let org = optimum(Process::Organic);
    // Paper: silicon 10-11, organic 14-15. Direction: organic deeper.
    assert!(org >= si + 1.0, "organic optimum {org} vs silicon {si}");
    assert!((10.0..=13.0).contains(&si), "silicon optimum {si}");
    assert!((12.0..=15.0).contains(&org), "organic optimum {org}");
}

#[test]
fn fig13_width_optima_ordering() {
    let budget = SimBudget::quick();
    let fe: Vec<usize> = (1..=6).collect();
    let be: Vec<usize> = (3..=7).collect();
    let ipc = width_ipc_matrix(&fe, &be, budget);
    let si = fig13_14_width(shared_kit(Process::Silicon), &ipc);
    let org = fig13_14_width(shared_kit(Process::Organic), &ipc);
    let (si_be, si_fe) = si.optimum();
    let (org_be, org_fe) = org.optimum();
    // Paper: silicon M[4][2], organic M[7][2] — organic wider in the back
    // end; both narrow in the front end.
    assert!(si_be <= 5, "silicon be optimum {si_be}");
    assert!(si_fe <= 3, "silicon fe optimum {si_fe}");
    assert!(org_be >= si_be, "organic be {org_be} vs silicon {si_be}");
    assert!(org_fe <= 4);
    // Organic surface is flatter: its worst wide-config penalty is smaller.
    let si_wide_drop = si.perf[4][1] / si.perf[1][1]; // be=7 vs be=4 at fe=2
    let org_wide_drop = org.perf[4][1] / org.perf[1][1];
    assert!(
        org_wide_drop > si_wide_drop,
        "organic wide drop {org_wide_drop:.3} vs silicon {si_wide_drop:.3}"
    );
    // Area surfaces are nearly process-independent (Fig 14).
    for r in 0..be.len() {
        for c in 0..fe.len() {
            assert!(
                (si.area[r][c] - org.area[r][c]).abs() < 0.08,
                "area divergence at [{r}][{c}]: {} vs {}",
                si.area[r][c],
                org.area[r][c]
            );
        }
    }
}

#[test]
fn fig15_wire_ablation_direction() {
    let stages = [1usize, 8, 22, 30];
    let si = fig15_wire_ablation(shared_kit(Process::Silicon), &stages);
    let org = fig15_wire_ablation(shared_kit(Process::Organic), &stages);
    // Removing wires helps silicon a lot at depth, organic almost not at all.
    let si_gain = si.alu.1[3] / si.alu.0[3];
    let org_gain = org.alu.1[3] / org.alu.0[3];
    assert!(
        si_gain > 1.3,
        "silicon w/o-wire gain at 30 stages = {si_gain:.2}"
    );
    assert!(org_gain < 1.05, "organic w/o-wire gain = {org_gain:.3}");
    // Without wires, silicon keeps scaling like organic does (paper's point).
    assert!(
        si.alu.1[3] > si.alu.1[2] * 1.05,
        "wire-free silicon should keep scaling"
    );
    // Core curves: the 14-stage organic clock gain exceeds silicon's.
    let si_core_gain = si.core.0.last().unwrap() / si.core.0[0];
    let org_core_gain = org.core.0.last().unwrap() / org.core.0[0];
    assert!(org_core_gain > si_core_gain);
}
