//! Registry catalogue invariants (ISSUE 4 satellite): every canonical
//! experiment driver is owned by exactly one registered node, ids are
//! unique and kebab/fig-case, and node metadata is well-formed — so `bdc
//! list`, the serve catalogue, and the rendered headers cannot drift.

use bdc_core::registry::{find, NODES};
use bdc_core::{experiments, extensions};

/// kebab/fig-case: lowercase alphanumeric runs joined by single dashes.
fn is_kebab(id: &str) -> bool {
    !id.is_empty()
        && !id.starts_with('-')
        && !id.ends_with('-')
        && !id.contains("--")
        && id
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

#[test]
fn ids_are_unique_and_kebab_case() {
    let mut seen = std::collections::BTreeSet::new();
    for node in NODES {
        assert!(is_kebab(node.id), "id `{}` is not kebab/fig-case", node.id);
        assert!(seen.insert(node.id), "duplicate id `{}`", node.id);
        assert!(std::ptr::eq(find(node.id).unwrap(), node));
    }
}

#[test]
fn every_driver_has_exactly_one_node() {
    let all_drivers: Vec<&str> = experiments::driver_names()
        .iter()
        .chain(extensions::driver_names())
        .copied()
        .collect();
    for driver in &all_drivers {
        let owners: Vec<&str> = NODES
            .iter()
            .filter(|n| n.drivers.contains(driver))
            .map(|n| n.id)
            .collect();
        assert_eq!(
            owners.len(),
            1,
            "driver `{driver}` must be owned by exactly one node, found {owners:?}"
        );
    }
    // And no node claims a driver that is not canonical.
    for node in NODES {
        for driver in node.drivers {
            assert!(
                all_drivers.contains(driver),
                "node `{}` claims unknown driver `{driver}`",
                node.id
            );
        }
    }
}

#[test]
fn node_metadata_is_well_formed() {
    let mut bins = std::collections::BTreeSet::new();
    for node in NODES {
        assert!(!node.title.is_empty(), "{}: empty title", node.id);
        assert!(!node.what.is_empty(), "{}: empty what", node.id);
        assert!(
            bins.insert(node.legacy_bin),
            "duplicate legacy_bin `{}`",
            node.legacy_bin
        );
    }
    assert_eq!(NODES.len(), 25, "the catalogue covers all 25 experiments");
}
