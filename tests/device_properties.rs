//! Property tests on the compact device models: the invariants the circuit
//! solver's convergence depends on.

use proptest::prelude::*;

use bdc_device::{
    DeviceModel, Level1Model, Level1Params, Level61Model, SiliconMosModel, SiliconMosParams,
    TftParams,
};

fn models() -> Vec<Box<dyn DeviceModel>> {
    vec![
        Box::new(Level61Model::new(TftParams::pentacene())),
        Box::new(Level61Model::new(TftParams::dntt())),
        Box::new(Level1Model::new(Level1Params::pentacene())),
        Box::new(SiliconMosModel::new(SiliconMosParams::nmos_45())),
        Box::new(SiliconMosModel::new(SiliconMosParams::pmos_45())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn currents_are_finite_everywhere(vgs in -25.0..25.0f64, vds in -25.0..25.0f64) {
        for m in models() {
            let i = m.ids(vgs, vds);
            prop_assert!(i.is_finite(), "{m:?} at ({vgs}, {vds}) -> {i}");
            prop_assert!(m.gm(vgs, vds).is_finite());
            prop_assert!(m.gds(vgs, vds).is_finite());
        }
    }

    #[test]
    fn source_drain_swap_antisymmetry(vgs in -12.0..12.0f64, vds in -12.0..12.0f64) {
        // ids(vgs, vds) == -ids(vgs - vds, -vds): the channel has no
        // preferred terminal.
        for m in models() {
            let fwd = m.ids(vgs, vds);
            let rev = m.ids(vgs - vds, -vds);
            let scale = fwd.abs().max(rev.abs()).max(1e-12);
            prop_assert!(
                (fwd + rev).abs() / scale < 1e-6,
                "{m:?}: ids({vgs},{vds})={fwd:e} vs -ids({},{})={rev:e}",
                vgs - vds,
                -vds
            );
        }
    }

    #[test]
    fn organic_current_monotone_in_gate_drive(
        vds in 0.1..15.0f64,
        v0 in -15.0..5.0f64,
        dv in 0.01..3.0f64,
    ) {
        // More negative gate on a p-type device → at least as much current.
        let m = Level61Model::new(TftParams::pentacene());
        let lo = m.ids(v0, -vds).abs();
        let hi = m.ids(v0 - dv, -vds).abs();
        prop_assert!(hi >= lo * (1.0 - 1e-9), "|I({})|={lo:e} > |I({})|={hi:e}", v0, v0 - dv);
    }

    #[test]
    fn aging_never_speeds_the_device_up(
        life_a in 0.0..1.0f64,
        dlife in 0.0..0.5f64,
        vgs in -10.0..-2.0f64,
    ) {
        let life_b = (life_a + dlife).min(1.0);
        let base = TftParams::pentacene();
        let young = Level61Model::new(base.aged(life_a));
        let old = Level61Model::new(base.aged(life_b));
        // On-current at fixed bias only decreases with age.
        prop_assert!(old.ids(vgs, -5.0).abs() <= young.ids(vgs, -5.0).abs() * (1.0 + 1e-9));
    }

    #[test]
    fn silicon_nmos_pmos_mirror(vgs in -1.2..1.2f64, vds in -1.2..1.2f64) {
        // At matched drive ratings, the PMOS is the NMOS reflected through
        // the origin.
        let mut p_params = SiliconMosParams::pmos_45();
        p_params.id_sat_per_um = SiliconMosParams::nmos_45().id_sat_per_um;
        p_params.vt0 = SiliconMosParams::nmos_45().vt0;
        let n = SiliconMosModel::new(SiliconMosParams::nmos_45());
        let p = SiliconMosModel::new(p_params);
        let a = n.ids(vgs, vds);
        let b = p.ids(-vgs, -vds);
        let scale = a.abs().max(b.abs()).max(1e-12);
        prop_assert!((a + b).abs() / scale < 1e-9, "n={a:e} p={b:e}");
    }

    #[test]
    fn numeric_derivatives_match_secants(vgs in -8.0..8.0f64, vds in -8.0..8.0f64) {
        // gm/gds (used to build the Jacobian) must track finite differences
        // of ids at a coarser step — no wild model kinks.
        let m = Level61Model::new(TftParams::pentacene());
        let h = 1e-3;
        let gm_secant = (m.ids(vgs + h, vds) - m.ids(vgs - h, vds)) / (2.0 * h);
        let gm = m.gm(vgs, vds);
        let scale = gm.abs().max(gm_secant.abs()).max(1e-12);
        prop_assert!((gm - gm_secant).abs() / scale < 0.05);
    }
}

#[test]
fn transfer_curve_has_paper_anchor_points() {
    // Non-property anchors used throughout the repo's calibration.
    let m = Level61Model::new(TftParams::pentacene());
    let on = m.ids(-10.0, -10.0).abs();
    let off = m.ids(3.0, -10.0).abs();
    assert!(on / off > 1.0e5);
    assert!(on > 1.0e-5 && on < 1.0e-4);
}
