//! Integration contract of the fault-injection framework against the
//! real plan scheduler (DESIGN.md §5h):
//!
//! * **Containment** — with `task_panic=1` every attempt of every node
//!   panics, yet the plan completes: each node becomes a `failed` row
//!   with its attempt count and panic message, the other survival
//!   counters move, and `run_plan_with_retries` still returns `Ok`.
//! * **Recovery** — a sub-certain rate plus the retry budget lets the
//!   deterministic re-rolls find a clean attempt, so the same node that
//!   fails at rate 1 renders at a lower rate.
//! * **Rate-0 identity** — an installed all-zero config renders byte
//!   output identical to a disarmed run.
//!
//! The fault configuration is process-global, so these tests serialize
//! on one mutex and disarm injection before releasing it.

use std::sync::{Mutex, MutexGuard, OnceLock};

use bdc_core::registry;
use bdc_exec::faults::{self, FaultConfig};

/// Guards the global fault install; disarms it on drop.
struct FaultLock {
    _guard: MutexGuard<'static, ()>,
}

impl FaultLock {
    fn acquire() -> FaultLock {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let m = LOCK.get_or_init(|| Mutex::new(()));
        FaultLock {
            _guard: m.lock().unwrap_or_else(|p| p.into_inner()),
        }
    }
}

impl Drop for FaultLock {
    fn drop(&mut self) {
        faults::install(None);
    }
}

fn config(task_panic: f64) -> FaultConfig {
    FaultConfig {
        task_panic,
        seed: 42,
        ..FaultConfig::default()
    }
}

#[test]
fn certain_panics_become_failed_rows_not_aborts() {
    let _lock = FaultLock::acquire();
    faults::install(Some(config(1.0)));
    let before = faults::counters();

    let report =
        registry::run_plan_with_retries(&["fig03"], true, 1).expect("plan itself must not abort");
    let node = &report.nodes[0];
    assert!(!node.ok(), "every attempt panics at rate 1");
    assert_eq!(node.attempts, 2, "initial attempt + 1 retry");
    assert!(node.text.is_empty(), "failed node renders no text");
    let err = node.error.as_deref().expect("failed row carries the panic");
    assert!(
        err.contains("injected fault"),
        "error must carry the panic message, got: {err}"
    );

    let delta = faults::counters().since(&before);
    assert!(delta.injected_panics >= 2, "both attempts injected");
    assert!(delta.panics_contained >= 2, "both panics were caught");
    assert_eq!(delta.retries, 1, "one retry was budgeted and taken");
}

#[test]
fn retries_recover_below_certainty() {
    let _lock = FaultLock::acquire();
    // At rate 0.3 with a generous budget, the per-attempt re-rolls are
    // deterministic in (seed, site, attempt) — and for this seed a clean
    // attempt exists well inside 8 retries (P(all 9 fire) = 0.3^9 even
    // before fixing the seed).
    faults::install(Some(config(0.3)));
    let report = registry::run_plan_with_retries(&["fig03"], true, 8).expect("plan runs");
    let node = &report.nodes[0];
    assert!(node.ok(), "a clean attempt exists: {:?}", node.error);
    assert!(!node.text.is_empty());
}

#[test]
fn installed_zero_rates_are_byte_identical_to_disarmed() {
    let _lock = FaultLock::acquire();

    faults::install(None);
    let disarmed = registry::run_plan(&["fig03"], true).expect("disarmed run");

    faults::install(Some(config(0.0)));
    let before = faults::counters();
    let inert = registry::run_plan(&["fig03"], true).expect("inert run");

    assert_eq!(
        disarmed.nodes[0].text, inert.nodes[0].text,
        "rate-0 injection must not perturb rendered bytes"
    );
    let delta = faults::counters().since(&before);
    assert_eq!(delta.injected_panics, 0);
    assert_eq!(delta.injected_corrupt, 0);
    assert_eq!(delta.io_delays, 0);
}
