//! Determinism contract of the parallel flow (DESIGN.md §5e): every
//! `par_map` fan-out must be **bit-identical** to serial execution, for any
//! worker count, and a cache round-trip must reproduce downstream STA
//! results exactly.
//!
//! The pool's worker count is process-global, so every test that touches it
//! serializes on one mutex and restores the default before releasing it.

use std::sync::{Mutex, MutexGuard, OnceLock};

use bdc_cells::{characterize_gate, organic_gate, CharacterizeConfig, LogicKind, OrganicSizing};
use bdc_core::experiments::{width_ipc_matrix, SimBudget};
use bdc_core::{Process, TechKit};
use bdc_device::variation::VariedModel;
use bdc_device::TftParams;
use bdc_exec::set_workers;

/// Guards the global worker-count override; resets it on drop.
struct PoolLock {
    _guard: MutexGuard<'static, ()>,
}

impl PoolLock {
    fn acquire() -> PoolLock {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let m = LOCK.get_or_init(|| Mutex::new(()));
        PoolLock {
            _guard: m.lock().unwrap_or_else(|p| p.into_inner()),
        }
    }
}

impl Drop for PoolLock {
    fn drop(&mut self) {
        set_workers(None);
    }
}

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn table_bits(t: &bdc_cells::NldmTable) -> Vec<u64> {
    t.values().iter().flatten().map(|v| v.to_bits()).collect()
}

#[test]
fn characterization_tables_are_bit_identical_across_worker_counts() {
    let _lock = PoolLock::acquire();
    let gate = organic_gate(
        LogicKind::Nand2,
        &OrganicSizing::library_default(),
        5.0,
        -15.0,
    );
    // A reduced grid keeps the test fast; the code path is the full one.
    let cfg = CharacterizeConfig {
        slews: vec![2.0e-5, 2.0e-4],
        loads: vec![1.0e-10, 1.0e-9],
        ..CharacterizeConfig::organic()
    };
    let mut reference = None;
    for w in WORKER_COUNTS {
        set_workers(Some(w));
        let t = characterize_gate(&gate, &cfg).expect("characterize");
        let bits = (
            table_bits(&t.delay_rise),
            table_bits(&t.delay_fall),
            table_bits(&t.out_slew),
        );
        match &reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(*r, bits, "{w} workers diverged from serial"),
        }
    }
}

#[test]
fn width_ipc_matrix_is_bit_identical_across_worker_counts() {
    let _lock = PoolLock::acquire();
    let mut reference = None;
    for w in WORKER_COUNTS {
        set_workers(Some(w));
        let m = width_ipc_matrix(&[1, 2], &[3, 4], SimBudget::quick());
        let bits: Vec<Vec<u64>> = m
            .iter()
            .map(|row| row.iter().map(|v| v.to_bits()).collect())
            .collect();
        match &reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(*r, bits, "{w} workers diverged from serial"),
        }
    }
}

#[test]
fn monte_carlo_population_is_bit_identical_across_worker_counts() {
    let _lock = PoolLock::acquire();
    let base = TftParams::pentacene();
    let mut reference = None;
    for w in WORKER_COUNTS {
        set_workers(Some(w));
        let pop = VariedModel::sample_population_par(&base, 0.5 / 3.0, 2026, 200);
        let bits: Vec<u64> = pop.iter().map(|m| m.delta_vt.to_bits()).collect();
        match &reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(*r, bits, "{w} workers diverged from serial"),
        }
    }
}

#[test]
fn library_cache_round_trip_preserves_sta_arrivals() {
    // The artifact cache stores a characterized library as Liberty text;
    // a hit must reproduce STA bit-for-bit. shared_kit exercises the real
    // load path; the round-trip below checks the serialization itself.
    let kit = bdc_core::process::shared_kit(Process::Silicon);
    let text = bdc_cells::write_library(&kit.lib);
    let reloaded = bdc_cells::parse_library(&text).expect("parse");
    let kit2 = TechKit::with_library(Process::Silicon, reloaded);

    let net = bdc_synth::blocks::ripple_adder(16);
    let a = bdc_synth::sta::analyze(&net, &kit.lib, &kit.sta);
    let b = bdc_synth::sta::analyze(&net, &kit2.lib, &kit2.sta);
    assert_eq!(a.max_arrival.to_bits(), b.max_arrival.to_bits());
    assert_eq!(a.area_um2.to_bits(), b.area_um2.to_bits());
    let arr_a: Vec<u64> = a.arrival.iter().map(|v| v.to_bits()).collect();
    let arr_b: Vec<u64> = b.arrival.iter().map(|v| v.to_bits()).collect();
    assert_eq!(arr_a, arr_b);
}
