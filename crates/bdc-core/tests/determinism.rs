//! Determinism contract of the parallel flow (DESIGN.md §5e): every
//! `par_map` fan-out must be **bit-identical** to serial execution, for any
//! worker count, and a cache round-trip must reproduce downstream STA
//! results exactly.
//!
//! The pool's worker count is process-global, so every test that touches it
//! serializes on one mutex and restores the default before releasing it.

use std::sync::{Mutex, MutexGuard, OnceLock};

use bdc_cells::{characterize_gate, organic_gate, CharacterizeConfig, LogicKind, OrganicSizing};
use bdc_core::experiments::{width_ipc_matrix, SimBudget};
use bdc_core::{Process, TechKit};
use bdc_device::variation::VariedModel;
use bdc_device::TftParams;
use bdc_exec::{set_batch_lanes, set_workers};

/// Guards the global worker-count and batch-lane overrides; resets both on
/// drop. Tests touching either knob must hold this lock — both are
/// process-global, so an unserialized neighbour would leak its override
/// into a concurrently running test.
struct PoolLock {
    _guard: MutexGuard<'static, ()>,
}

impl PoolLock {
    fn acquire() -> PoolLock {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let m = LOCK.get_or_init(|| Mutex::new(()));
        PoolLock {
            _guard: m.lock().unwrap_or_else(|p| p.into_inner()),
        }
    }
}

impl Drop for PoolLock {
    fn drop(&mut self) {
        set_workers(None);
        set_batch_lanes(None);
    }
}

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn table_bits(t: &bdc_cells::NldmTable) -> Vec<u64> {
    t.values().iter().flatten().map(|v| v.to_bits()).collect()
}

#[test]
fn characterization_tables_are_bit_identical_across_worker_counts() {
    let _lock = PoolLock::acquire();
    let gate = organic_gate(
        LogicKind::Nand2,
        &OrganicSizing::library_default(),
        5.0,
        -15.0,
    );
    // A reduced grid keeps the test fast; the code path is the full one.
    let cfg = CharacterizeConfig {
        slews: vec![2.0e-5, 2.0e-4],
        loads: vec![1.0e-10, 1.0e-9],
        ..CharacterizeConfig::organic()
    };
    let mut reference = None;
    for w in WORKER_COUNTS {
        set_workers(Some(w));
        let t = characterize_gate(&gate, &cfg).expect("characterize");
        let bits = (
            table_bits(&t.delay_rise),
            table_bits(&t.delay_fall),
            table_bits(&t.out_slew),
        );
        match &reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(*r, bits, "{w} workers diverged from serial"),
        }
    }
}

#[test]
fn width_ipc_matrix_is_bit_identical_across_worker_counts() {
    let _lock = PoolLock::acquire();
    let mut reference = None;
    for w in WORKER_COUNTS {
        set_workers(Some(w));
        let m = width_ipc_matrix(&[1, 2], &[3, 4], SimBudget::quick());
        let bits: Vec<Vec<u64>> = m
            .iter()
            .map(|row| row.iter().map(|v| v.to_bits()).collect())
            .collect();
        match &reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(*r, bits, "{w} workers diverged from serial"),
        }
    }
}

#[test]
fn monte_carlo_population_is_bit_identical_across_worker_counts() {
    let _lock = PoolLock::acquire();
    let base = TftParams::pentacene();
    let mut reference = None;
    for w in WORKER_COUNTS {
        set_workers(Some(w));
        let pop = VariedModel::sample_population_par(&base, 0.5 / 3.0, 2026, 200);
        let bits: Vec<u64> = pop.iter().map(|m| m.delta_vt.to_bits()).collect();
        match &reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(*r, bits, "{w} workers diverged from serial"),
        }
    }
}

/// The (lanes, workers) grid the batched-kernel parity tests sweep. Lanes
/// = 1 is the scalar reference path; every other point must reproduce its
/// bits exactly (DESIGN.md §5j).
const PARITY_LANES: [usize; 3] = [1, 4, 8];
const PARITY_WORKERS: [usize; 2] = [1, 8];

#[test]
fn nldm_tables_scalar_vs_batched_parity_matrix() {
    let _lock = PoolLock::acquire();
    // One organic and one silicon gate on a reduced grid: full libraries
    // are exercised by `library_liberty_bytes_scalar_vs_batched` (ignored
    // by default, run in the CI bench job in release mode).
    let organic = organic_gate(
        LogicKind::Nor2,
        &OrganicSizing::library_default(),
        5.0,
        -15.0,
    );
    let organic_cfg = CharacterizeConfig {
        slews: vec![2.0e-5, 2.0e-4],
        loads: vec![1.0e-10, 3.0e-9, 1.0e-8],
        ..CharacterizeConfig::organic()
    };
    let silicon = bdc_cells::cmos_gate(LogicKind::Nand2, 450.0e-9, 1.0);
    let silicon_cfg = CharacterizeConfig {
        slews: vec![1.0e-11, 1.0e-10],
        loads: vec![3.0e-16, 3.0e-15, 2.0e-14],
        ..CharacterizeConfig::silicon()
    };
    for (gate, cfg) in [(&organic, &organic_cfg), (&silicon, &silicon_cfg)] {
        let mut reference = None;
        for lanes in PARITY_LANES {
            for workers in PARITY_WORKERS {
                set_batch_lanes(Some(lanes));
                set_workers(Some(workers));
                let t = characterize_gate(gate, cfg).expect("characterize");
                let bits = (
                    table_bits(&t.delay_rise),
                    table_bits(&t.delay_fall),
                    table_bits(&t.out_slew),
                );
                match &reference {
                    None => reference = Some(bits),
                    Some(r) => assert_eq!(
                        *r, bits,
                        "lanes={lanes} workers={workers} diverged from scalar"
                    ),
                }
            }
        }
    }
}

/// Full-library parity: the batched kernel must reproduce the scalar
/// path's Liberty output *byte for byte* for both technologies, at every
/// (lanes, workers) point — this is what keeps content-addressed cache
/// keys and golden files process-wide stable. Ignored by default (12 cold
/// library characterizations are far too slow for a debug-mode test run);
/// the CI bench job runs it in release.
#[test]
#[ignore = "expensive: 12 cold library builds; CI bench job runs it in release"]
fn library_liberty_bytes_scalar_vs_batched() {
    let _lock = PoolLock::acquire();
    for process in [Process::Organic, Process::Silicon] {
        let mut reference: Option<String> = None;
        for lanes in PARITY_LANES {
            for workers in PARITY_WORKERS {
                set_batch_lanes(Some(lanes));
                set_workers(Some(workers));
                let kit = TechKit::build(process).expect("characterize");
                let text = bdc_cells::write_library(&kit.lib);
                // Round-trip: the parsed-back library re-serializes to the
                // same bytes, so cached copies re-enter identically.
                let reparsed = bdc_cells::parse_library(&text).expect("parse");
                assert_eq!(
                    text,
                    bdc_cells::write_library(&reparsed),
                    "{process:?}: Liberty round-trip not stable"
                );
                match &reference {
                    None => reference = Some(text),
                    Some(r) => assert!(
                        *r == text,
                        "{process:?} lanes={lanes} workers={workers}: Liberty bytes diverged from scalar"
                    ),
                }
            }
        }
    }
}

#[test]
fn library_cache_round_trip_preserves_sta_arrivals() {
    // The artifact cache stores a characterized library as Liberty text;
    // a hit must reproduce STA bit-for-bit. shared_kit exercises the real
    // load path; the round-trip below checks the serialization itself.
    let kit = bdc_core::process::shared_kit(Process::Silicon);
    let text = bdc_cells::write_library(&kit.lib);
    let reloaded = bdc_cells::parse_library(&text).expect("parse");
    let kit2 = TechKit::with_library(Process::Silicon, reloaded);

    let net = bdc_synth::blocks::ripple_adder(16);
    let a = bdc_synth::sta::analyze(&net, &kit.lib, &kit.sta);
    let b = bdc_synth::sta::analyze(&net, &kit2.lib, &kit2.sta);
    assert_eq!(a.max_arrival.to_bits(), b.max_arrival.to_bits());
    assert_eq!(a.area_um2.to_bits(), b.area_um2.to_bits());
    let arr_a: Vec<u64> = a.arrival.iter().map(|v| v.to_bits()).collect();
    let arr_b: Vec<u64> = b.arrival.iter().map(|v| v.to_bits()).collect();
    assert_eq!(arr_a, arr_b);
}
