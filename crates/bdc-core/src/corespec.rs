//! Core configurations: the AnyCore-like stage decomposition.
//!
//! A core is nine logical stages (Fetch … Retire). [`CoreSpec`] carries the
//! superscalar widths and a list of *splits* — stages that have been cut in
//! two, the paper's method for deepening the pipeline beyond the 9-stage
//! baseline (§5.1: “we synthesize the baseline design and cut the stage
//! which is on the critical path manually”).
//!
//! [`stage_netlist`] generates a representative gate-level netlist for each
//! stage at the given widths; these are what synthesis times.

use bdc_synth::blocks;
use bdc_synth::gate::Netlist;
use bdc_uarch::{CoreConfig, StagePlan};

/// The nine logical pipeline stages of the baseline core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Instruction fetch: next-PC, BTB lookup, predictor.
    Fetch,
    /// Decode.
    Decode,
    /// Register rename: intra-group dependence checks + map table.
    Rename,
    /// Dispatch into the window.
    Dispatch,
    /// Issue: wakeup CAM + select.
    Issue,
    /// Register-file read.
    RegRead,
    /// Execute: ALUs + bypass network.
    Execute,
    /// Memory access (AGU + D-cache interface).
    Mem,
    /// Retire/commit logic.
    Retire,
}

impl StageKind {
    /// All nine stages in pipeline order.
    pub fn all() -> [StageKind; 9] {
        [
            StageKind::Fetch,
            StageKind::Decode,
            StageKind::Rename,
            StageKind::Dispatch,
            StageKind::Issue,
            StageKind::RegRead,
            StageKind::Execute,
            StageKind::Mem,
            StageKind::Retire,
        ]
    }

    /// Short name.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Fetch => "fetch",
            StageKind::Decode => "decode",
            StageKind::Rename => "rename",
            StageKind::Dispatch => "dispatch",
            StageKind::Issue => "issue",
            StageKind::RegRead => "regread",
            StageKind::Execute => "execute",
            StageKind::Mem => "mem",
            StageKind::Retire => "retire",
        }
    }

    /// Inverse of [`StageKind::name`] — used by the synthesized-core cache
    /// deserializer.
    pub fn from_name(name: &str) -> Option<StageKind> {
        StageKind::all().into_iter().find(|k| k.name() == name)
    }

    /// Whether the paper's manual cutting may split this stage (retire
    /// holds little logic and is never critical).
    pub fn splittable(self) -> bool {
        !matches!(self, StageKind::Retire)
    }
}

/// A core design point: widths + the list of stage splits beyond baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreSpec {
    /// Front-end width (1–6).
    pub fe_width: usize,
    /// Back-end execution pipes (3–7, includes memory and control pipes).
    pub be_pipes: usize,
    /// Stages that have been split once per entry (a stage may appear more
    /// than once for further subdivision).
    pub splits: Vec<StageKind>,
}

impl CoreSpec {
    /// The baseline: single-issue front end, three execution pipes, nine
    /// stages.
    pub fn baseline() -> Self {
        CoreSpec {
            fe_width: 1,
            be_pipes: 3,
            splits: Vec::new(),
        }
    }

    /// A width design point at baseline depth.
    pub fn with_widths(fe_width: usize, be_pipes: usize) -> Self {
        CoreSpec {
            fe_width,
            be_pipes,
            splits: Vec::new(),
        }
    }

    /// Total pipeline stages.
    pub fn total_stages(&self) -> usize {
        9 + self.splits.len()
    }

    /// Number of sub-stages a given stage currently occupies.
    pub fn substages(&self, kind: StageKind) -> usize {
        1 + self.splits.iter().filter(|&&k| k == kind).count()
    }

    /// Builds the matching microarchitecture configuration for IPC
    /// simulation. Execute splits are modelled as extra issue-to-execute
    /// (regread) stages — they delay resolution and wakeup exactly like a
    /// longer execute pipe — and Mem splits as an extra cycle of D-cache
    /// access latency.
    pub fn core_config(&self) -> CoreConfig {
        let mut plan = StagePlan::baseline9();
        let mut cfg = CoreConfig::with_widths(self.fe_width, self.be_pipes);
        for s in &self.splits {
            let f = match s {
                StageKind::Fetch => "fetch",
                StageKind::Decode => "decode",
                StageKind::Rename => "rename",
                StageKind::Dispatch => "dispatch",
                StageKind::Issue => "issue",
                StageKind::RegRead | StageKind::Execute => "regread",
                StageKind::Mem | StageKind::Retire => {
                    cfg.dcache.hit_latency += 1;
                    continue;
                }
            };
            plan = plan.split(f);
        }
        cfg.stages = plan;
        cfg
    }
}

/// An inline serial structure: `bits`-wide bus through a `pre_levels`-deep
/// inverter ladder (the upstream logic feeding the cascade) followed by
/// `ranks` cascaded 2:1 mux ranks — the width-proportional priority chains
/// of fetch target selection and rename.
fn serial_cascade(n: &mut Netlist, name: &str, bits: usize, pre_levels: usize, ranks: usize) {
    let mut bus: Vec<_> = (0..bits).map(|i| n.input(format!("{name}[{i}]"))).collect();
    for _ in 0..pre_levels {
        bus = bus.iter().map(|&b| n.inv(b)).collect();
    }
    for r in 0..ranks {
        let sel = n.input(format!("{name}_sel[{r}]"));
        bus = (0..bits)
            .map(|i| n.mux2(sel, bus[i], bus[(i + 1) % bits]))
            .collect();
    }
    for (i, b) in bus.iter().enumerate() {
        n.output(*b, format!("{name}_out[{i}]"));
    }
}

/// Generates the representative netlist for one stage at the given widths.
///
/// Sizes are calibrated so the baseline silicon core lands near the paper's
/// ~800 MHz and the stage-delay ranking puts fetch/issue/execute on the
/// critical path first, like AnyCore.
pub fn stage_netlist(kind: StageKind, fe_width: usize, be_pipes: usize) -> Netlist {
    let fe = fe_width.max(1);
    let be = be_pipes.max(3);
    let mut n = Netlist::new(format!("{}_{fe}x{be}", kind.name()));
    match kind {
        StageKind::Fetch => {
            n.append(&blocks::carry_select_adder(32), "nextpc");
            n.append(&blocks::comparator(22), "btbtag");
            n.append(&blocks::random_logic(24, 500, 0xFE7C), "steer");
            for lane in 0..fe {
                n.append(&blocks::random_logic(16, 180, 0x1000 + lane as u64), "lane");
            }
            // Next-fetch target selection: after the BTB/steering logic, a
            // priority cascade scans the fetch group for the first
            // predicted-taken slot — serial in the front-end width.
            serial_cascade(&mut n, "tgtsel", 16, 190, 4 * fe);
        }
        StageKind::Decode => {
            for lane in 0..fe {
                n.append(&blocks::random_logic(32, 420, 0xDEC0 + lane as u64), "dec");
            }
        }
        StageKind::Rename => {
            // Map-table read + intra-group dependence checks (fe² compares)
            // + the serial intra-group priority chain: lane i's source
            // mapping muxes against every earlier lane's destination, so
            // depth grows with the front-end width (the classic
            // rename-width critical path).
            n.append(&blocks::decoder(5), "maptab");
            for i in 0..fe {
                for _ in 0..fe {
                    n.append(&blocks::comparator(5), "depchk");
                }
                n.append(&blocks::random_logic(16, 120, 0x4E4E + i as u64), "rn");
            }
            if fe > 1 {
                // Serial chain: each later lane's source mapping overrides
                // through a compare-and-mux rank per earlier lane (three
                // cascaded 2:1 ranks per lane over 7-bit tags).
                let mut bus: Vec<_> = (0..7).map(|i| n.input(format!("rnch[{i}]"))).collect();
                for lane in 1..fe {
                    for rank in 0..3 {
                        let sel = n.input(format!("rnsel{rank}[{lane}]"));
                        let alt: Vec<_> = (0..7)
                            .map(|i| n.input(format!("rnalt{lane}_{rank}[{i}]")))
                            .collect();
                        bus = bus
                            .iter()
                            .zip(&alt)
                            .map(|(&a, &b)| n.mux2(sel, a, b))
                            .collect();
                    }
                }
                for (i, b) in bus.iter().enumerate() {
                    n.output(*b, format!("rnout[{i}]"));
                }
            }
        }
        StageKind::Dispatch => {
            for lane in 0..fe {
                n.append(&blocks::random_logic(24, 260, 0xD15 + lane as u64), "dsp");
            }
        }
        StageKind::Issue => {
            // Wakeup CAM over the 32-entry queue with one broadcast port per
            // pipe, plus one select tree per pipe.
            n.append(&blocks::wakeup_cam(32, 6, be), "wakeup");
            for p in 0..be {
                n.append(&blocks::priority_select(32), "select");
                n.append(&blocks::random_logic(16, 90, 0x155E + p as u64), "arb");
            }
        }
        StageKind::RegRead => {
            // Two read ports per pipe: decoder + word mux.
            for _p in 0..(2 * be).min(10) {
                n.append(&blocks::decoder(5), "rdec");
                n.append(&blocks::mux_tree(32, 16), "rmux");
            }
        }
        StageKind::Execute => {
            n.append(&blocks::carry_select_adder(32), "alu_add");
            n.append(&blocks::barrel_shifter(32), "alu_shift");
            n.append(&blocks::random_logic(64, 380, 0xE8EC), "alu_logic");
            // Bypass: every pipe's two operand ports mux over all producers.
            n.append(&blocks::bypass_network(be, 2, 32), "bypass");
        }
        StageKind::Mem => {
            n.append(&blocks::carry_select_adder(32), "agu");
            n.append(&blocks::comparator(20), "dtag");
            n.append(&blocks::random_logic(24, 220, 0x3E3), "lsu");
        }
        StageKind::Retire => {
            n.append(&blocks::random_logic(32, 170, 0x4E7), "commit");
            n.append(&blocks::priority_select(8), "cmtsel");
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_spec_maps_to_nine_stage_config() {
        let spec = CoreSpec::baseline();
        assert_eq!(spec.total_stages(), 9);
        let cfg = spec.core_config();
        assert_eq!(cfg.total_stages(), 9);
        assert_eq!(cfg.fetch_width, 1);
        assert_eq!(cfg.backend_pipes(), 3);
    }

    #[test]
    fn splits_deepen_both_views() {
        let mut spec = CoreSpec::baseline();
        spec.splits.push(StageKind::Fetch);
        spec.splits.push(StageKind::Issue);
        spec.splits.push(StageKind::Execute);
        assert_eq!(spec.total_stages(), 12);
        assert_eq!(spec.substages(StageKind::Fetch), 2);
        let cfg = spec.core_config();
        assert_eq!(cfg.total_stages(), 12);
        // Execute split became a regread stage for the IPC model.
        assert_eq!(cfg.stages.regread, 2);
    }

    #[test]
    fn all_stage_netlists_are_valid() {
        for kind in StageKind::all() {
            let n = stage_netlist(kind, 2, 4);
            n.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            assert!(!n.gates().is_empty(), "{} is empty", kind.name());
        }
    }

    #[test]
    fn width_sensitive_stages_grow_with_width() {
        let narrow = stage_netlist(StageKind::Issue, 1, 3);
        let wide = stage_netlist(StageKind::Issue, 1, 7);
        assert!(wide.gates().len() > narrow.gates().len());
        let narrow = stage_netlist(StageKind::Decode, 1, 3);
        let wide = stage_netlist(StageKind::Decode, 6, 3);
        assert!(wide.gates().len() > 3 * narrow.gates().len());
    }
}
