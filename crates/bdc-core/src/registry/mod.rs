//! The experiment registry: one catalogue of every figure, table,
//! extension and ablation, plus the plan scheduler that runs them.
//!
//! Every experiment the repository can reproduce is a [`Node`]: a stable
//! kebab-case id, the title/subtitle the legacy binary used to print, the
//! canonical drivers it exercises, its declared library dependencies, and
//! a deterministic render function. Consumers stack on top of the same
//! catalogue:
//!
//! - the `bdc` CLI (`bdc list`, `bdc run fig12 --quick`, `bdc run --all`),
//! - the 25 legacy binaries, now ~5-line shims over [`run_one`],
//! - `bdc-serve`'s `/v1/experiments` and `/v1/experiment` endpoints,
//! - `bench_report`'s registry section and the CI smoke gate.
//!
//! Rendered node text is content-addressed in the shared
//! [`ArtifactCache`] (`exp-{id}-{key:016x}.txt`), so a warm `bdc run
//! --all` is file reads. [`run_plan`] walks the selected nodes, prewarms
//! shared library dependencies, fans independent nodes onto the
//! `bdc-exec` pool and returns a [`RunReport`] the CLI serializes as
//! `results/run_manifest.json`. See `DESIGN.md` §5g.

pub mod query;
mod render;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use bdc_exec::faults;
use bdc_exec::json::Json;
use bdc_exec::{fnv1a, note_stage, par_map, ArtifactCache};

use crate::experiments::SimBudget;
use crate::stage::{library_stage_key, ParamOverlay};
use crate::{Process, TechKit};

/// A declared inter-layer dependency of a node.
///
/// Today the only cross-node artifact is the characterized cell library
/// (everything downstream — synthesis, IPC — is memoized per-call by the
/// flow layer); the scheduler uses these to prewarm each library once
/// before fanning out instead of racing N nodes into the same build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dep {
    /// The node needs the characterized [`TechKit`] for this process.
    Library(Process),
}

/// One registered experiment.
pub struct Node {
    /// Stable kebab/fig-case identifier (`fig12`, `table-library`, ...).
    pub id: &'static str,
    /// Header title, exactly as the legacy binary printed it.
    pub title: &'static str,
    /// Header subtitle (the "what" of `== title: what ==`).
    pub what: &'static str,
    /// Name of the legacy binary this node replaced.
    pub legacy_bin: &'static str,
    /// Canonical drivers (from `experiments::driver_names()` /
    /// `extensions::driver_names()`) this node exercises.
    pub drivers: &'static [&'static str],
    /// Library dependencies the scheduler prewarms.
    pub deps: &'static [Dep],
    run: fn(&RunCtx, &mut String) -> Result<(), String>,
}

const BOTH_LIBS: &[Dep] = &[
    Dep::Library(Process::Organic),
    Dep::Library(Process::Silicon),
];
const ORGANIC_LIB: &[Dep] = &[Dep::Library(Process::Organic)];
const NO_DEPS: &[Dep] = &[];

/// The full catalogue, in render order (figures, tables, extensions,
/// ablations). `bdc list`, `bdc run --all`, `/v1/experiments` and
/// `bench_report` all iterate this slice.
pub static NODES: &[Node] = &[
    Node {
        id: "fig03",
        title: "Fig 3",
        what: "pentacene OTFT transfer characteristics",
        legacy_bin: "fig03_transfer",
        drivers: &["fig03_transfer"],
        deps: NO_DEPS,
        run: render::fig03,
    },
    Node {
        id: "fig04",
        title: "Fig 4",
        what: "SPICE model fits (level 1 vs level 61)",
        legacy_bin: "fig04_model_fit",
        drivers: &["fig04_model_fit"],
        deps: NO_DEPS,
        run: render::fig04,
    },
    Node {
        id: "fig05",
        title: "Fig 5",
        what: "organic inverter topologies (schematic listings)",
        legacy_bin: "fig05_schematics",
        drivers: &[],
        deps: NO_DEPS,
        run: render::fig05,
    },
    Node {
        id: "fig06",
        title: "Fig 6",
        what: "organic inverter styles at VDD = 15 V",
        legacy_bin: "fig06_inverters",
        drivers: &["fig06_inverters"],
        deps: NO_DEPS,
        run: render::fig06,
    },
    Node {
        id: "fig07",
        title: "Fig 7",
        what: "pseudo-E inverter across supply voltages",
        legacy_bin: "fig07_vdd_sweep",
        drivers: &["fig07_vdd_sweep"],
        deps: NO_DEPS,
        run: render::fig07,
    },
    Node {
        id: "fig08",
        title: "Fig 8",
        what: "V_M vs V_SS for the pseudo-E inverter at VDD = 5 V",
        legacy_bin: "fig08_vss_regression",
        drivers: &["fig08_vss_regression"],
        deps: NO_DEPS,
        run: render::fig08,
    },
    Node {
        id: "fig09",
        title: "Fig 9",
        what: "pseudo-E NAND/NOR topologies (schematic listings)",
        legacy_bin: "fig09_schematics",
        drivers: &[],
        deps: NO_DEPS,
        run: render::fig09,
    },
    Node {
        id: "fig11",
        title: "Fig 11",
        what: "core depth 9..15, per-benchmark performance",
        legacy_bin: "fig11_core_depth",
        drivers: &["fig11_core_depth"],
        deps: BOTH_LIBS,
        run: render::fig11,
    },
    Node {
        id: "fig12",
        title: "Fig 12",
        what: "ALU (2x mult + 2x div) pipelined to 1..30 stages",
        legacy_bin: "fig12_alu_depth",
        drivers: &["fig12_alu_depth"],
        deps: BOTH_LIBS,
        run: render::fig12,
    },
    Node {
        id: "fig13",
        title: "Fig 13",
        what: "performance: front-end width 1..6 x back-end pipes 3..7",
        legacy_bin: "fig13_width_perf",
        drivers: &["width_ipc_matrix"],
        deps: BOTH_LIBS,
        run: render::fig13,
    },
    Node {
        id: "fig14",
        title: "Fig 14",
        what: "area: front-end width 1..6 x back-end pipes 3..7",
        legacy_bin: "fig14_width_area",
        drivers: &["fig13_14_width"],
        deps: BOTH_LIBS,
        run: render::fig14,
    },
    Node {
        id: "fig15",
        title: "Fig 15",
        what: "frequency vs stages, with and without wire cost",
        legacy_bin: "fig15_wire_ablation",
        drivers: &["fig15_wire_ablation"],
        deps: BOTH_LIBS,
        run: render::fig15,
    },
    Node {
        id: "table-library",
        title: "Table (§4.4)",
        what: "characterized 6-cell libraries",
        legacy_bin: "table_library",
        drivers: &["table_library", "table_mapping_preference"],
        deps: BOTH_LIBS,
        run: render::table_library,
    },
    Node {
        id: "table-baseline-freq",
        title: "Table (§5.3)",
        what: "baseline (9-stage) and deepened core frequencies",
        legacy_bin: "table_baseline_freq",
        drivers: &["table_baseline_frequency"],
        deps: BOTH_LIBS,
        run: render::table_baseline_freq,
    },
    Node {
        id: "table-netlist-stats",
        title: "Table",
        what: "netlist statistics and per-library coverage",
        legacy_bin: "table_netlist_stats",
        drivers: &[],
        deps: BOTH_LIBS,
        run: render::table_netlist_stats,
    },
    Node {
        id: "table-sizing-explore",
        title: "Table (§4.3.4)",
        what: "pseudo-E inverter sizing exploration",
        legacy_bin: "table_sizing_explore",
        drivers: &[],
        deps: NO_DEPS,
        run: render::table_sizing_explore,
    },
    Node {
        id: "ext-degradation",
        title: "Ext: degradation",
        what: "pseudo-E cell across its transient life",
        legacy_bin: "ext_degradation",
        drivers: &["degradation_sweep", "degradation_guardband"],
        deps: NO_DEPS,
        run: render::ext_degradation,
    },
    Node {
        id: "ext-dynamic-logic",
        title: "Ext: dynamic logic",
        what: "precharge-evaluate unipolar gates (paper §7)",
        legacy_bin: "ext_dynamic_logic",
        drivers: &[],
        deps: NO_DEPS,
        run: render::ext_dynamic_logic,
    },
    Node {
        id: "ext-energy-depth",
        title: "Ext: energy",
        what: "energy/instruction vs depth (paper §7 future work)",
        legacy_bin: "ext_energy_depth",
        drivers: &["energy_depth"],
        deps: BOTH_LIBS,
        run: render::ext_energy_depth,
    },
    Node {
        id: "ext-inorder-vs-ooo",
        title: "Ext: core style",
        what: "in-order arrays vs out-of-order at iso-area (organic, gzip-like)",
        legacy_bin: "ext_inorder_vs_ooo",
        drivers: &["inorder_vs_ooo"],
        deps: ORGANIC_LIB,
        run: render::ext_inorder_vs_ooo,
    },
    Node {
        id: "ext-parallel-array",
        title: "Ext: parallelism",
        what: "organic core arrays (paper §7 future work)",
        legacy_bin: "ext_parallel_array",
        drivers: &["parallel_array"],
        deps: ORGANIC_LIB,
        run: render::ext_parallel_array,
    },
    Node {
        id: "ext-variation",
        title: "Ext: variation",
        what: "Monte-Carlo V_T spread and V_SS compensation (paper §4.3.3)",
        legacy_bin: "ext_variation",
        drivers: &["variation_tuning"],
        deps: NO_DEPS,
        run: render::ext_variation,
    },
    Node {
        id: "abl-adder-arch",
        title: "Ablation",
        what: "adder architecture per process (32-bit)",
        legacy_bin: "abl_adder_arch",
        drivers: &[],
        deps: BOTH_LIBS,
        run: render::abl_adder_arch,
    },
    Node {
        id: "abl-predictor-depth",
        title: "Ablation",
        what: "predictor quality vs pipeline depth (organic)",
        legacy_bin: "abl_predictor_depth",
        drivers: &[],
        deps: ORGANIC_LIB,
        run: render::abl_predictor_depth,
    },
    Node {
        id: "abl-structures",
        title: "Ablation",
        what: "instruction-window structure sizes",
        legacy_bin: "abl_structures",
        drivers: &[],
        deps: NO_DEPS,
        run: render::abl_structures,
    },
];

/// Looks a node up by id.
pub fn find(id: &str) -> Option<&'static Node> {
    NODES.iter().find(|n| n.id == id)
}

/// Shared state for one plan execution: the chosen budget plus lazily
/// built, process-indexed tech kits so concurrent nodes characterize each
/// library exactly once.
pub struct RunCtx {
    quick: bool,
    budget: SimBudget,
    overlay: ParamOverlay,
    kits: [OnceLock<Result<TechKit, String>>; 2],
    observed: [AtomicBool; 2],
}

impl RunCtx {
    /// A context for one run; `quick` selects [`SimBudget::quick`] over
    /// [`SimBudget::standard`].
    pub fn new(quick: bool) -> Self {
        Self::with_overlay(quick, ParamOverlay::default())
    }

    /// A context pinned to an explicit parameter point — what `bdc sweep`
    /// builds for each grid value. At the default overlay this is exactly
    /// [`RunCtx::new`].
    pub fn with_overlay(quick: bool, overlay: ParamOverlay) -> Self {
        RunCtx {
            quick,
            budget: if quick {
                SimBudget::quick()
            } else {
                SimBudget::standard()
            },
            overlay,
            kits: [OnceLock::new(), OnceLock::new()],
            observed: [AtomicBool::new(false), AtomicBool::new(false)],
        }
    }

    /// True when this run uses the reduced budget.
    pub fn quick(&self) -> bool {
        self.quick
    }

    /// The simulation budget nodes should pass to IPC-measuring drivers.
    pub fn budget(&self) -> SimBudget {
        self.budget
    }

    /// The parameter point this run is pinned to.
    pub fn overlay(&self) -> ParamOverlay {
        self.overlay
    }

    /// The characterized kit for `p`, built (or cache-loaded) on first use
    /// at this context's parameter point.
    pub fn kit(&self, p: Process) -> Result<&TechKit, String> {
        let (slot, seen) = match p {
            Process::Organic => (&self.kits[0], &self.observed[0]),
            Process::Silicon => (&self.kits[1], &self.observed[1]),
        };
        seen.store(true, Ordering::Relaxed);
        slot.get_or_init(|| {
            TechKit::load_or_build_with(p, &self.overlay)
                .map_err(|e| format!("characterization ({}): {e:?}", p.name()))
        })
        .as_ref()
        .map_err(Clone::clone)
    }

    /// Which library kits [`RunCtx::kit`] has been asked for so far — the
    /// observed side of the declared-vs-observed dependency audit
    /// ([`audit_node_deps`]).
    pub fn observed_deps(&self) -> Vec<Process> {
        let mut out = Vec::new();
        if self.observed[0].load(Ordering::Relaxed) {
            out.push(Process::Organic);
        }
        if self.observed[1].load(Ordering::Relaxed) {
            out.push(Process::Silicon);
        }
        out
    }
}

/// Renders `id` fresh on a recording context — bypassing the artifact
/// cache, whose hits never touch [`RunCtx::kit`] — and returns the node's
/// `(declared, observed)` library dependencies, both in `[Organic,
/// Silicon]` order. `bdc verify --audit-deps` cross-validates the two.
///
/// # Errors
/// An unknown id, or the render's own failure.
pub fn audit_node_deps(id: &str, quick: bool) -> Result<(Vec<Process>, Vec<Process>), String> {
    let node = find(id).ok_or_else(|| format!("unknown experiment id `{id}` (try `bdc list`)"))?;
    let ctx = RunCtx::new(quick);
    let mut text = String::new();
    (node.run)(&ctx, &mut text).map_err(|e| format!("{}: {e}", node.id))?;
    let mut declared: Vec<Process> = Vec::new();
    for Dep::Library(p) in node.deps {
        if !declared.contains(p) {
            declared.push(*p);
        }
    }
    declared.sort_by_key(|p| *p as u8);
    Ok((declared, ctx.observed_deps()))
}

/// The rendered output of one node.
#[derive(Debug)]
pub struct NodeOutput {
    /// The node's id.
    pub id: &'static str,
    /// Full text: header line(s) plus the body — byte-identical to the
    /// legacy binary's stdout.
    pub text: String,
    /// Whether the text came from the artifact cache.
    pub cache_hit: bool,
    /// The node's content-address under the artifact cache.
    pub key: u64,
}

/// The cache key of a node render at the nominal parameter point:
/// [`node_cache_key_with`] at the default overlay.
pub fn node_cache_key(node: &Node, quick: bool, budget: SimBudget) -> u64 {
    node_cache_key_with(node, quick, budget, &ParamOverlay::default())
}

/// The cache key of a node render: id plus everything that affects the
/// bytes — the mode tag, the exact budget, and the *stage keys* of the
/// libraries the node declares it depends on. Folding the upstream stage
/// keys (rather than the overlay itself) means a parameter change
/// re-keys exactly the nodes whose declared inputs moved: a `NO_DEPS`
/// node renders the same bytes at every sweep point and keeps one warm
/// artifact, while a node over the organic library re-keys per point.
/// The declared-vs-observed dependency audit (`bdc verify --audit-deps`,
/// PG006) is what makes trusting `node.deps` here sound.
pub fn node_cache_key_with(
    node: &Node,
    quick: bool,
    budget: SimBudget,
    overlay: &ParamOverlay,
) -> u64 {
    let mut parts: Vec<String> = vec![
        "bdc-exp-v2".into(),
        node.id.into(),
        (if quick { "quick" } else { "standard" }).into(),
        format!("{budget:?}"),
    ];
    for Dep::Library(p) in node.deps {
        parts.push(format!("lib={:016x}", library_stage_key(*p, overlay)));
    }
    let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    fnv1a(&refs)
}

fn run_node(node: &'static Node, ctx: &RunCtx) -> Result<NodeOutput, String> {
    let cache = ArtifactCache::shared();
    let key = node_cache_key_with(node, ctx.quick, ctx.budget, &ctx.overlay);
    let name = format!("exp-{}", node.id);
    if let Some(text) = cache.load(&name, key) {
        note_stage(&name, true);
        return Ok(NodeOutput {
            id: node.id,
            text,
            cache_hit: true,
            key,
        });
    }
    note_stage(&name, false);
    let mut text = format!("== {}: {} ==\n", node.title, node.what);
    if ctx.quick {
        text.push_str("   (quick mode: reduced simulation budget)\n");
    }
    (node.run)(ctx, &mut text).map_err(|e| format!("{}: {e}", node.id))?;
    cache.store(&name, key, &text);
    Ok(NodeOutput {
        id: node.id,
        text,
        cache_hit: false,
        key,
    })
}

/// Renders one node by id. This is the legacy-shim entry point: the
/// returned text is byte-identical to what the old standalone binary
/// printed at the same budget.
pub fn run_one(id: &str, quick: bool) -> Result<NodeOutput, String> {
    let node = find(id).ok_or_else(|| format!("unknown experiment id `{id}` (try `bdc list`)"))?;
    run_node(node, &RunCtx::new(quick))
}

/// Renders one node and wraps it in the JSON envelope served by
/// `/v1/experiment`.
pub fn run_one_json(id: &str, quick: bool) -> Result<Json, String> {
    let node = find(id).ok_or_else(|| format!("unknown experiment id `{id}` (try `bdc list`)"))?;
    let ctx = RunCtx::new(quick);
    let out = run_node(node, &ctx)?;
    Ok(node_json(node, &out, quick, ctx.budget))
}

/// The JSON envelope for one rendered node: identity, budget, and the
/// text split into lines (deterministic — derived from the cached bytes).
pub fn node_json(node: &Node, out: &NodeOutput, quick: bool, budget: SimBudget) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::str(node.id)),
        ("title".into(), Json::str(node.title)),
        ("what".into(), Json::str(node.what)),
        ("quick".into(), Json::Bool(quick)),
        (
            "budget".into(),
            Json::Obj(vec![
                ("outer".into(), Json::Int(i64::from(budget.outer))),
                ("instructions".into(), Json::Int(budget.instructions as i64)),
            ]),
        ),
        (
            "lines".into(),
            Json::Arr(out.text.lines().map(Json::str).collect()),
        ),
    ])
}

/// The catalogue as JSON, served by `/v1/experiments`.
pub fn catalogue_json() -> Json {
    Json::Arr(
        NODES
            .iter()
            .map(|n| {
                Json::Obj(vec![
                    ("id".into(), Json::str(n.id)),
                    ("title".into(), Json::str(n.title)),
                    ("what".into(), Json::str(n.what)),
                    ("legacy_bin".into(), Json::str(n.legacy_bin)),
                ])
            })
            .collect(),
    )
}

/// Per-node entry of a [`RunReport`].
pub struct NodeReport {
    /// The node's id.
    pub id: &'static str,
    /// Wall time of this node's render (or cache load), in seconds,
    /// including retries and backoff.
    pub wall_s: f64,
    /// Whether the render was served from the artifact cache.
    pub cache_hit: bool,
    /// The node's artifact cache key.
    pub key: u64,
    /// The rendered text (empty when the node failed).
    pub text: String,
    /// Execution attempts taken (1 = first try succeeded).
    pub attempts: u32,
    /// The last attempt's error when the node exhausted its retries;
    /// `None` on success.
    pub error: Option<String>,
}

impl NodeReport {
    /// Whether the node rendered successfully (possibly after retries).
    pub fn ok(&self) -> bool {
        self.error.is_none()
    }
}

/// What a plan execution produced: one entry per selected node, in
/// catalogue order, plus the run-wide knobs that shaped it.
pub struct RunReport {
    /// Whether the plan ran at the quick budget.
    pub quick: bool,
    /// Worker count the pool fanned nodes onto.
    pub workers: usize,
    /// Retry budget each node had (`attempts <= max_retries + 1`).
    pub max_retries: u32,
    /// Per-node results, in catalogue order.
    pub nodes: Vec<NodeReport>,
    /// Fault/recovery counter deltas accumulated during this plan.
    pub faults: faults::FaultCounters,
}

impl RunReport {
    /// The nodes that exhausted their retries.
    pub fn failed(&self) -> impl Iterator<Item = &NodeReport> {
        self.nodes.iter().filter(|n| !n.ok())
    }
}

/// Default per-node retry budget for [`run_plan`] (the `bdc run`
/// `--max-retries` flag overrides it via [`run_plan_with_retries`]).
pub const DEFAULT_MAX_RETRIES: u32 = 2;

/// [`run_plan_with_retries`] at the default retry budget.
///
/// # Errors
/// See [`run_plan_with_retries`].
pub fn run_plan(ids: &[&str], quick: bool) -> Result<RunReport, String> {
    run_plan_with_retries(ids, quick, DEFAULT_MAX_RETRIES)
}

/// The panic payload as a printable message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

/// Resolves `ids` against the catalogue (deduplicated, catalogue order),
/// checks the selected nodes' cache keys are collision-free, prewarms
/// shared library dependencies, then fans the nodes onto the `bdc-exec`
/// pool.
///
/// Each node is guarded: a panicking or erroring render is retried up to
/// `max_retries` times with seeded backoff ([`faults::backoff_delay`]),
/// and a node that exhausts its budget becomes a `failed` row in the
/// report — it never aborts the other nodes. Plan-level `Err` is reserved
/// for configuration problems (unknown id, cache-key collision).
///
/// # Errors
/// An unknown experiment id, or a cache-key collision between selected
/// nodes (two nodes must never share a content address, or one would
/// silently serve the other's bytes).
pub fn run_plan_with_retries(
    ids: &[&str],
    quick: bool,
    max_retries: u32,
) -> Result<RunReport, String> {
    run_plan_with_overlay(ids, quick, max_retries, ParamOverlay::default())
}

/// [`run_plan_with_retries`] pinned to an explicit parameter point — the
/// per-point engine of `bdc sweep`. Nodes whose declared inputs are
/// untouched by the overlay keep their warm artifacts from earlier
/// points; only the invalidation cone recomputes.
///
/// # Errors
/// See [`run_plan_with_retries`].
pub fn run_plan_with_overlay(
    ids: &[&str],
    quick: bool,
    max_retries: u32,
    overlay: ParamOverlay,
) -> Result<RunReport, String> {
    for id in ids {
        if find(id).is_none() {
            return Err(format!("unknown experiment id `{id}` (try `bdc list`)"));
        }
    }
    let selected: Vec<&'static Node> = NODES.iter().filter(|n| ids.contains(&n.id)).collect();

    let ctx = RunCtx::with_overlay(quick, overlay);

    // Cache-key collision gate: two selected nodes must never share a
    // content address, or one would silently serve the other's bytes.
    let mut keys: Vec<u64> = selected
        .iter()
        .map(|n| node_cache_key_with(n, ctx.quick, ctx.budget, &ctx.overlay))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    if keys.len() != selected.len() {
        return Err("cache-key collision between registered nodes".into());
    }

    // Prewarm each library dependency once, in parallel, so independent
    // nodes don't all serialize behind the same characterization.
    let mut libs: Vec<Process> = Vec::new();
    for node in &selected {
        for Dep::Library(p) in node.deps {
            if !libs.contains(p) {
                libs.push(*p);
            }
        }
    }
    // Prewarm failures are not fatal: the dependent nodes re-surface the
    // same error as per-node `failed` rows, and independent nodes still
    // run to completion.
    let _ = par_map(&libs, |p| ctx.kit(*p).map(|_| ()));

    let before = faults::counters();
    let nodes = par_map(&selected, |node| {
        // Wall-clock feeds only the manifest's telemetry column, never the
        // rendered (cached) bytes.
        // bdc-lint: allow(D002, wall_s is run telemetry, not artifact bytes)
        let t0 = Instant::now();
        let site = format!("node-{}", node.id);
        let mut attempts: u32 = 0;
        let outcome = loop {
            // The guard catches both injected panics (`faults::maybe_panic`
            // re-rolls per attempt) and genuine ones from the render; the
            // kit `OnceLock` stays uninitialized if its builder panics, so
            // a retry re-runs it.
            let caught = catch_unwind(AssertUnwindSafe(|| {
                faults::maybe_panic(&site, u64::from(attempts));
                run_node(node, &ctx)
            }));
            attempts += 1;
            let err = match caught {
                Ok(Ok(out)) => break Ok(out),
                Ok(Err(e)) => e,
                Err(payload) => {
                    faults::note_panic_contained();
                    format!("panic: {}", panic_message(payload.as_ref()))
                }
            };
            if attempts > max_retries {
                break Err(err);
            }
            faults::note_retry();
            std::thread::sleep(faults::backoff_delay(&site, u64::from(attempts)));
        };
        let wall_s = t0.elapsed().as_secs_f64();
        match outcome {
            Ok(out) => NodeReport {
                id: out.id,
                wall_s,
                cache_hit: out.cache_hit,
                key: out.key,
                text: out.text,
                attempts,
                error: None,
            },
            Err(e) => NodeReport {
                id: node.id,
                wall_s,
                cache_hit: false,
                key: node_cache_key_with(node, ctx.quick, ctx.budget, &ctx.overlay),
                text: String::new(),
                attempts,
                error: Some(e),
            },
        }
    });
    Ok(RunReport {
        quick,
        workers: bdc_exec::workers(),
        max_retries,
        nodes,
        faults: faults::counters().since(&before),
    })
}

/// The survival-counter JSON object embedded in the run manifest (and
/// mirrored, from live counters, in `/v1/metrics`).
pub fn fault_counters_json(c: &faults::FaultCounters) -> Json {
    Json::Obj(vec![
        (
            "injected_corrupt".into(),
            Json::Int(c.injected_corrupt as i64),
        ),
        (
            "injected_panics".into(),
            Json::Int(c.injected_panics as i64),
        ),
        ("io_delays".into(), Json::Int(c.io_delays as i64)),
        ("retries".into(), Json::Int(c.retries as i64)),
        (
            "panics_contained".into(),
            Json::Int(c.panics_contained as i64),
        ),
        ("quarantined".into(), Json::Int(c.quarantined as i64)),
        ("rebuilt".into(), Json::Int(c.rebuilt as i64)),
        ("peer_hits".into(), Json::Int(c.peer_hits as i64)),
        ("peer_misses".into(), Json::Int(c.peer_misses as i64)),
        ("peer_pushes".into(), Json::Int(c.peer_pushes as i64)),
        (
            "injected_disk_full".into(),
            Json::Int(c.injected_disk_full as i64),
        ),
        (
            "peer_slow_delays".into(),
            Json::Int(c.peer_slow_delays as i64),
        ),
        (
            "injected_partitions".into(),
            Json::Int(c.injected_partitions as i64),
        ),
        ("evicted".into(), Json::Int(c.evicted as i64)),
        (
            "quarantine_reaped".into(),
            Json::Int(c.quarantine_reaped as i64),
        ),
    ])
}

/// The run manifest the CLI writes to `results/run_manifest.json`.
pub fn manifest_json(report: &RunReport) -> Json {
    Json::Obj(vec![
        ("quick".into(), Json::Bool(report.quick)),
        ("workers".into(), Json::Int(report.workers as i64)),
        (
            "max_retries".into(),
            Json::Int(i64::from(report.max_retries)),
        ),
        (
            "nodes".into(),
            Json::Arr(
                report
                    .nodes
                    .iter()
                    .map(|n| {
                        let mut row = vec![
                            ("id".into(), Json::str(n.id)),
                            (
                                "status".into(),
                                Json::str(if n.ok() { "ok" } else { "failed" }),
                            ),
                            ("attempts".into(), Json::Int(i64::from(n.attempts))),
                            ("wall_s".into(), Json::Num(n.wall_s)),
                            (
                                "cache".into(),
                                Json::str(if n.cache_hit { "hit" } else { "miss" }),
                            ),
                            ("artifact_key".into(), Json::str(format!("{:016x}", n.key))),
                        ];
                        if let Some(e) = &n.error {
                            row.push(("error".into(), Json::str(e)));
                        }
                        Json::Obj(row)
                    })
                    .collect(),
            ),
        ),
        ("faults".into(), fault_counters_json(&report.faults)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_resolve_and_keys_are_distinct() {
        let quick = SimBudget::quick();
        let mut keys: Vec<u64> = NODES
            .iter()
            .map(|n| node_cache_key(n, true, quick))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), NODES.len());
        assert!(find("fig12").is_some());
        assert!(find("no-such-node").is_none());
    }

    #[test]
    fn overlay_rekeys_exactly_the_organic_dependent_nodes() {
        // A device-parameter change must invalidate a node iff one of its
        // declared library dependencies is in the overlay's cone: organic
        // (and both-lib) nodes re-key, dependency-free nodes keep their
        // warm artifact across sweep points.
        let budget = SimBudget::quick();
        let nominal = ParamOverlay::default();
        let shifted = ParamOverlay {
            organic_delta_vt: 0.25,
        };
        for node in NODES {
            let base = node_cache_key_with(node, true, budget, &nominal);
            let moved = node_cache_key_with(node, true, budget, &shifted);
            let organic_dep = node.deps.contains(&Dep::Library(Process::Organic));
            if organic_dep {
                assert_ne!(base, moved, "{} should re-key under a V_T shift", node.id);
            } else {
                assert_eq!(
                    base, moved,
                    "{} must stay warm across sweep points",
                    node.id
                );
            }
            // Nominal-point v2 keys match the public nominal helper.
            assert_eq!(base, node_cache_key(node, true, budget));
        }
    }

    #[test]
    fn unknown_id_is_reported_with_hint() {
        let err = run_one("fig99", true).unwrap_err();
        assert!(err.contains("fig99") && err.contains("bdc list"), "{err}");
    }

    #[test]
    fn fresh_runctx_observes_no_kits() {
        let ctx = RunCtx::new(true);
        assert!(ctx.observed_deps().is_empty());
    }

    #[test]
    fn audit_node_deps_matches_on_a_dependency_free_node() {
        // fig05 renders schematic listings: declared NO_DEPS and reads no
        // kit, so both sides of the audit must be empty.
        let (declared, observed) = audit_node_deps("fig05", true).expect("fig05 renders");
        assert!(declared.is_empty(), "{declared:?}");
        assert!(observed.is_empty(), "{observed:?}");
    }

    #[test]
    fn audit_node_deps_rejects_unknown_ids() {
        assert!(audit_node_deps("fig99", true).is_err());
    }

    #[test]
    fn fault_counters_json_carries_every_survival_counter() {
        // The manifest and /v1/metrics shapes are consumed by chaos_report
        // and the cluster aggregator — a silently dropped field would read
        // as "no peer traffic" fleet-wide.
        let rendered = fault_counters_json(&faults::FaultCounters::default()).encode();
        for field in [
            "injected_corrupt",
            "injected_panics",
            "io_delays",
            "retries",
            "panics_contained",
            "quarantined",
            "rebuilt",
            "peer_hits",
            "peer_misses",
            "peer_pushes",
            "injected_disk_full",
            "peer_slow_delays",
            "injected_partitions",
            "evicted",
            "quarantine_reaped",
        ] {
            assert!(rendered.contains(field), "missing {field} in {rendered}");
        }
    }
}
