//! The structured query layer behind `bdc-serve`'s computational
//! endpoints.
//!
//! A [`Query`] is the canonical form of one `/v1/library`, `/v1/synth`,
//! `/v1/depth`, `/v1/width` or `/v1/ipc` request with all transport
//! concerns (HTTP parsing, bounds, defaults) already stripped by the
//! caller. [`Query::run`] renders the deterministic JSON body the serving
//! layer returns verbatim — the bodies moved here from `bdc-serve` intact,
//! so `/v1/*` responses stayed byte-identical across the registry
//! refactor (`bdc-serve/tests/golden_api.rs` pins them).

use bdc_exec::json::Json;
use bdc_uarch::Workload;

use crate::flow::{split_critical, StageTiming};
use crate::process::shared_kit;
use crate::{
    measure_ipc_cached, synthesize_core_cached, CoreSpec, Process, StageKind, SynthesizedCore,
    TechKit,
};

/// A canonical computational query. Pure: the same query yields a
/// byte-identical body for any worker count or cache state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Characterized library summary for one process.
    Library {
        /// Which process library.
        process: Process,
    },
    /// Synthesized core for an explicit design point.
    Synth {
        /// Which process library.
        process: Process,
        /// The design point.
        spec: CoreSpec,
    },
    /// The Figure-11 depth point at N stages (split-the-critical chain).
    Depth {
        /// Which process library.
        process: Process,
        /// Total pipeline stages (9–15).
        stages: usize,
    },
    /// The Figure-13/14 width point at (fe, be).
    Width {
        /// Which process library.
        process: Process,
        /// Front-end width (1–6).
        fe: usize,
        /// Back-end pipes (3–7).
        be: usize,
    },
    /// Cycle-accurate IPC for (spec, workload).
    Ipc {
        /// The design point simulated.
        spec: CoreSpec,
        /// Which workload kernel.
        workload: Workload,
        /// Outer-loop trip count.
        outer: u32,
        /// Retired-instruction cap.
        instructions: u64,
    },
}

impl Query {
    /// Executes the query against the flow and renders its JSON body.
    /// The only fallible case is [`Query::Library`]'s Liberty round-trip.
    pub fn run(&self) -> Result<Json, String> {
        match self {
            Query::Library { process } => library_json(shared_kit(*process)),
            Query::Synth { process, spec } => Ok(synth_json(shared_kit(*process), spec, &[])),
            Query::Depth { process, stages } => {
                let kit = shared_kit(*process);
                // Rebuild the paper's split chain: each step cuts the
                // previous point's critical stage (cached synthesis makes
                // this cheap).
                let mut spec = CoreSpec::baseline();
                let mut cuts = Vec::new();
                for _ in 9..*stages {
                    let (deeper, cut) = split_critical(kit, &spec);
                    spec = deeper;
                    cuts.push(cut);
                }
                Ok(synth_json(kit, &spec, &cuts))
            }
            Query::Width { process, fe, be } => Ok(synth_json(
                shared_kit(*process),
                &CoreSpec::with_widths(*fe, *be),
                &[],
            )),
            Query::Ipc {
                spec,
                workload,
                outer,
                instructions,
            } => {
                let stats = measure_ipc_cached(spec, *workload, *outer, *instructions);
                Ok(Json::Obj(vec![
                    ("workload".into(), Json::str(workload.name())),
                    ("spec".into(), spec_json(spec)),
                    ("outer".into(), Json::Int(*outer as i64)),
                    ("instruction_cap".into(), Json::Int(*instructions as i64)),
                    ("ipc".into(), Json::Num(stats.ipc())),
                    ("cycles".into(), Json::Int(stats.cycles as i64)),
                    ("instructions".into(), Json::Int(stats.instructions as i64)),
                    ("branches".into(), Json::Int(stats.branches as i64)),
                    ("mispredicts".into(), Json::Int(stats.mispredicts as i64)),
                    ("flushes".into(), Json::Int(stats.flushes as i64)),
                    ("loads".into(), Json::Int(stats.loads as i64)),
                    ("stores".into(), Json::Int(stats.stores as i64)),
                ]))
            }
        }
    }
}

/// Renders the library body from a kit. Values are taken from a
/// Liberty-text round trip of the library, the exact representation the
/// artifact cache stores — so a cold (freshly characterized) kit and a
/// warm (cache-loaded) kit produce byte-identical bodies.
pub fn library_json(kit: &TechKit) -> Result<Json, String> {
    let lib = bdc_cells::parse_library(&bdc_cells::write_library(&kit.lib))
        .map_err(|e| format!("library round-trip: {e:?}"))?;
    let cells = bdc_cells::library::cell_summary(&lib)
        .into_iter()
        .map(|(name, area, cap, delay)| {
            Json::Obj(vec![
                ("name".into(), Json::Str(name)),
                ("area_um2".into(), Json::Num(area)),
                ("input_cap_f".into(), Json::Num(cap)),
                ("delay_s".into(), Json::Num(delay)),
            ])
        })
        .collect();
    Ok(Json::Obj(vec![
        ("process".into(), Json::str(kit.process.name())),
        ("vdd".into(), Json::Num(lib.vdd)),
        ("vss".into(), Json::Num(lib.vss)),
        ("fo4_delay_s".into(), Json::Num(lib.fo4_delay())),
        (
            "dff".into(),
            Json::Obj(vec![
                ("setup_s".into(), Json::Num(lib.dff.setup)),
                ("hold_s".into(), Json::Num(lib.dff.hold)),
                ("clk_to_q_s".into(), Json::Num(lib.dff.clk_to_q)),
            ]),
        ),
        ("cells".into(), Json::Arr(cells)),
    ]))
}

/// The JSON form of a [`CoreSpec`].
pub fn spec_json(spec: &CoreSpec) -> Json {
    Json::Obj(vec![
        ("fe_width".into(), Json::Int(spec.fe_width as i64)),
        ("be_pipes".into(), Json::Int(spec.be_pipes as i64)),
        (
            "splits".into(),
            Json::Arr(spec.splits.iter().map(|s| Json::str(s.name())).collect()),
        ),
    ])
}

/// Renders a synthesized-core body (shared by the synth, depth and width
/// queries). `cuts` names the split chain when the spec was derived by
/// critical-stage cutting.
pub fn synth_json(kit: &TechKit, spec: &CoreSpec, cuts: &[StageKind]) -> Json {
    let core: SynthesizedCore = synthesize_core_cached(kit, spec);
    let stages = core
        .stages
        .iter()
        .map(|s: &StageTiming| {
            Json::Obj(vec![
                ("stage".into(), Json::str(s.kind.name())),
                ("substages".into(), Json::Int(s.substages as i64)),
                ("logic_delay_s".into(), Json::Num(s.logic_delay)),
                ("area_um2".into(), Json::Num(s.area_um2)),
            ])
        })
        .collect();
    let mut members = vec![
        ("process".into(), Json::str(kit.process.name())),
        ("spec".into(), spec_json(spec)),
        ("total_stages".into(), Json::Int(spec.total_stages() as i64)),
        ("period_s".into(), Json::Num(core.period)),
        ("frequency_hz".into(), Json::Num(core.frequency)),
        ("area_um2".into(), Json::Num(core.area_um2)),
        ("critical_stage".into(), Json::str(core.critical.name())),
        ("seq_overhead_s".into(), Json::Num(core.seq_overhead)),
        ("wire_overhead_s".into(), Json::Num(core.wire_overhead)),
        ("stages".into(), Json::Arr(stages)),
    ];
    if !cuts.is_empty() {
        members.push((
            "cut_chain".into(),
            Json::Arr(cuts.iter().map(|c| Json::str(c.name())).collect()),
        ));
    }
    Json::Obj(members)
}
