//! The deterministic text render of every registered node.
//!
//! Each function here is the byte-for-byte port of one legacy
//! `bdc-bench` binary's `main` body (the part after the standard header,
//! which the runner writes from node metadata). The golden tests in
//! `bdc-bench/tests/golden.rs` pin several of these against output
//! captured from the pre-registry binaries — treat every format string in
//! this file as frozen.

use std::fmt::Write as _;

use bdc_cells::{
    characterize_dynamic, characterize_gate, explore_inverter_sizing, organic_dynamic_gate,
    organic_gate, organic_inverter, CharacterizeConfig, LogicKind, OrganicSizing, OrganicStyle,
    Utility,
};
use bdc_circuit::{describe, write_spice};
use bdc_synth::blocks;
use bdc_synth::map::remap_for_library;
use bdc_synth::sta::analyze;
use bdc_synth::stats::{coverage_ratio, netlist_stats, render_stats};
use bdc_uarch::{build_workload, BpredKind, OooCore, Workload};

use crate::experiments::{self, SimBudget};
use crate::extensions;
use crate::flow::{alu_cluster, performance, split_critical, synthesize_core_cached};
use crate::report::{fmt_freq, fmt_time, render_matrix, render_series, render_table};
use crate::{CoreSpec, Process, TechKit};

use super::RunCtx;

/// `println!` onto the output buffer (writing to a `String` cannot fail).
macro_rules! w {
    ($out:expr) => { let _ = writeln!($out); };
    ($out:expr, $($arg:tt)*) => { let _ = writeln!($out, $($arg)*); };
}

/// Figure 3: I_D–V_GS transfer characteristics of the pentacene OTFT.
pub(super) fn fig03(_ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let f = experiments::fig03_transfer().map_err(|e| format!("device sweep: {e:?}"))?;
    w!(
        out,
        "W/L: 1000/80 um   extracted: u_lin = {:.2} cm2/Vs, SS = {:.0} mV/dec, on/off = {:.1e}, V_T(lin) = {:.2} V",
        f.metrics.mu_lin * 1.0e4,
        f.metrics.subthreshold_swing * 1.0e3,
        f.metrics.on_off_ratio,
        f.metrics.vt,
    );
    w!(
        out,
        "{:>8}  {:>12}  {:>12}  {:>12}",
        "VGS (V)",
        "ID@VDS=-1V",
        "ID@VDS=-10V",
        "IG (A)"
    );
    for i in (0..f.id_vds1.len()).step_by(10) {
        w!(
            out,
            "{:>8.2}  {:>12.3e}  {:>12.3e}  {:>12.3e}",
            f.id_vds1[i].vgs,
            f.id_vds1[i].id,
            f.id_vds10[i].id,
            f.ig[i].1
        );
    }
    w!(
        out,
        "(paper: u_lin = 0.16 cm2/Vs, SS = 350 mV/dec, on/off = 1e6, V_T = -1.3 V @ VDS=1V)"
    );
    Ok(())
}

/// Figure 4: level 1 vs level 61 SPICE model fits to the measured curve.
pub(super) fn fig04(_ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let f = experiments::fig04_model_fit(7).map_err(|e| format!("model fitting: {e:?}"))?;
    w!(
        out,
        "RMS log10-current fit error over the VDS = -1 V sweep:"
    );
    w!(
        out,
        "  level 1  (Shichman-Hodges): {:.3} decades",
        f.level1_rms
    );
    w!(
        out,
        "  level 61 (RPI TFT class)  : {:.3} decades",
        f.level61_rms
    );
    w!(
        out,
        "  level 61 improves the fit by {:.1}x (paper: level 61 \"fits the device well\", level 1 cannot reproduce sub-VT conduction)",
        f.level1_rms / f.level61_rms
    );
    w!(
        out,
        "{:>8}  {:>12}  {:>12}  {:>12}",
        "VGS (V)",
        "measured",
        "level1",
        "level61"
    );
    for i in (0..f.measured.len()).step_by(10) {
        w!(
            out,
            "{:>8.2}  {:>12.3e}  {:>12.3e}  {:>12.3e}",
            f.measured[i].vgs,
            f.measured[i].id,
            f.level1_curve[i].id,
            f.level61_curve[i].id
        );
    }
    Ok(())
}

/// Figure 5: the three organic inverter schematics, as element listings
/// and exportable SPICE decks.
pub(super) fn fig05(_ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let sizing = OrganicSizing::library_default();
    for (label, style, vdd, vss) in [
        ("(a) diode-load", OrganicStyle::DiodeLoad, 15.0, 0.0),
        ("(b) biased-load", OrganicStyle::BiasedLoad, 15.0, -5.0),
        ("(c) pseudo-E", OrganicStyle::PseudoE, 5.0, -15.0),
    ] {
        let gate = organic_inverter(style, &sizing, vdd, vss);
        w!(out, "\n{label}  ({} transistors):", gate.transistor_count);
        out.push_str(&describe(&gate.circuit));
    }
    // Emit one full SPICE deck as the interchange artifact.
    let pe = organic_inverter(OrganicStyle::PseudoE, &sizing, 5.0, -15.0);
    w!(
        out,
        "\nSPICE deck of the pseudo-E inverter (for external cross-check):"
    );
    out.push_str(&write_spice(
        &pe.circuit,
        "pseudo-E inverter, pentacene, VDD=5 VSS=-15",
    ));
    Ok(())
}

/// Figure 6: diode-load vs biased-load vs pseudo-E inverter DC comparison.
pub(super) fn fig06(_ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let rows = experiments::fig06_inverters().map_err(|e| format!("inverter sweeps: {e:?}"))?;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.1}", r.vss),
                format!("{:.1}", r.dc.vm),
                format!("{:.2}", r.dc.max_gain),
                format!("{:.2}", r.dc.nmh),
                format!("{:.2}", r.dc.nml),
                format!("{:.2}", r.dc.nm_mec),
                format!("{:.1}", r.dc.static_power_in_low * 1.0e6),
                format!("{:.2}", r.dc.static_power_in_high * 1.0e6),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "style",
            "VSS(V)",
            "VM(V)",
            "gain",
            "NMH(V)",
            "NML(V)",
            "MEC(V)",
            "P(in=0) uW",
            "P(in=hi) uW",
        ],
        &table,
    ));
    w!(out, "\nVTC of the pseudo-E inverter (VIN, VOUT):");
    let pe = &rows[2].dc.vtc;
    for (i, (vin, vout)) in pe.points().iter().enumerate() {
        if i % 15 == 0 {
            w!(out, "  {vin:>6.2}  {vout:>6.2}");
        }
    }
    w!(out, "(paper Fig 6d: diode VM=8.1 gain=1.2 NM~0.3-0.4; biased VM=6.8 gain=1.6 NM~1; pseudo-E VM=7.7 gain=3.0 NM~3-3.5)");
    Ok(())
}

/// Figure 7: pseudo-E inverter at VDD = 5/10/15 V.
pub(super) fn fig07(_ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let rows = experiments::fig07_vdd_sweep().map_err(|e| format!("sweeps: {e:?}"))?;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.0}", r.vss),
                format!("{:.2}", r.dc.vm),
                format!("{:.2}", r.dc.max_gain),
                format!("{:.2}", r.dc.nmh),
                format!("{:.2}", r.dc.nml),
                format!("{:.1}", r.dc.static_power_in_low * 1.0e6),
                format!("{:.2}", r.dc.static_power_in_high * 1.0e6),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "VDD",
            "VSS(V)",
            "VM(V)",
            "gain",
            "NMH(V)",
            "NML(V)",
            "P(in=0) uW",
            "P(in=VDD) uW",
        ],
        &table,
    ));
    w!(
        out,
        "\n(paper Fig 7d: VM 2.4/4.6/7.7, gain 3.2/2.9/3.0, NM ~20-25% of VDD,"
    );
    w!(
        out,
        " static power drops ~16x from VDD=15 to VDD=5 with input low)"
    );
    let p5 = rows[0].dc.static_power_in_low;
    let p15 = rows[2].dc.static_power_in_low;
    w!(
        out,
        " measured here: P(5V)/P(15V) = {:.2} (paper: ~0.06)",
        p5 / p15
    );
    Ok(())
}

/// Figure 8: switching threshold vs V_SS (linear tuning relationship).
pub(super) fn fig08(_ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let f = experiments::fig08_vss_regression().map_err(|e| format!("sweep: {e:?}"))?;
    w!(out, "{:>8}  {:>8}", "VSS (V)", "VM (V)");
    for (vss, vm) in &f.points {
        w!(out, "{vss:>8.1}  {vm:>8.2}");
    }
    w!(
        out,
        "regression: VM = {:.3} * VSS + {:.2}",
        f.slope,
        f.intercept
    );
    let vss_for_mid = (2.5 - f.intercept) / f.slope;
    w!(out, "VSS for VM = VDD/2: {vss_for_mid:.1} V");
    w!(
        out,
        "(paper: VM = 0.22*VSS + 5.76; VSS = -14.8 V for VM = VDD/2 -> they chose -15 V)"
    );
    Ok(())
}

/// Figure 9: pseudo-E NAND and NOR gate schematics.
pub(super) fn fig09(_ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let sizing = OrganicSizing::library_default();
    for (label, kind) in [
        ("(a) NAND2 — parallel pull-up networks", LogicKind::Nand2),
        ("(b) NOR2 — series pull-up networks", LogicKind::Nor2),
        ("NAND3", LogicKind::Nand3),
        ("NOR3", LogicKind::Nor3),
    ] {
        let gate = organic_gate(kind, &sizing, 5.0, -15.0);
        w!(out, "\n{label}  ({} transistors):", gate.transistor_count);
        out.push_str(&describe(&gate.circuit));
    }
    w!(
        out,
        "\n(NAND gates replicate the input transistors in parallel — any low"
    );
    w!(
        out,
        " input pulls up; NOR gates stack them in series, which is why the"
    );
    w!(
        out,
        " organic NOR3 is ~4x slower than NAND3 and drives §5.5's mapping bias)"
    );
    Ok(())
}

/// Figure 11: core area and performance vs pipeline depth (9–15 stages).
pub(super) fn fig11(ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let budget = ctx.budget();
    for p in Process::both() {
        let kit = ctx.kit(p)?;
        let pts = experiments::fig11_core_depth(kit, budget);
        let base: Vec<f64> = pts[0].per_workload.iter().map(|x| x.2).collect();
        w!(
            out,
            "\n{} (area and performance normalized to the 9-stage baseline):",
            p.name()
        );
        let names: Vec<&str> = pts[0]
            .per_workload
            .iter()
            .map(|(w, _, _)| w.name())
            .collect();
        w!(
            out,
            "{:>3} {:>9} {:>10} {:>6}  {}",
            "N",
            "cut",
            "freq",
            "area",
            names.iter().map(|n| format!("{n:>9}")).collect::<String>()
        );
        let a0 = pts[0].synth.area_um2;
        for pt in &pts {
            let norms: String = pt
                .per_workload
                .iter()
                .zip(&base)
                .map(|((_, _, perf), b)| format!("{:>9.2}", perf / b))
                .collect();
            w!(
                out,
                "{:>3} {:>9} {:>10} {:>6.2}  {norms}",
                pt.stages,
                pt.split.map(|s| s.name()).unwrap_or("-"),
                fmt_freq(pt.synth.frequency),
                pt.synth.area_um2 / a0,
            );
        }
        // Report the optimum depth per benchmark.
        let mut opt_line = String::new();
        for (k, name) in names.iter().enumerate() {
            let (best_stage, _) = pts
                .iter()
                .map(|pt| (pt.stages, pt.per_workload[k].2))
                .fold((9, 0.0), |acc, x| if x.1 > acc.1 { x } else { acc });
            opt_line += &format!("{name}={best_stage} ");
        }
        w!(out, "optimal depth per benchmark: {opt_line}");
    }
    w!(
        out,
        "\n(paper: silicon optima at 10-11 stages, organic at 14-15; areas near-flat)"
    );
    Ok(())
}

/// Figure 12: complex-ALU area and frequency vs pipeline stages.
pub(super) fn fig12(ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let stages: Vec<usize> = vec![1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30];
    for p in Process::both() {
        let kit = ctx.kit(p)?;
        let f = experiments::fig12_alu_depth(kit, &stages);
        let nf = f.normalized_frequency();
        let na = f.normalized_area();
        w!(out, "\n{}:", p.name());
        w!(
            out,
            "{:>7}  {:>10}  {:>10}  {:>12}  {:>10}",
            "stages",
            "norm freq",
            "norm area",
            "abs freq",
            "registers"
        );
        for (i, s) in stages.iter().enumerate() {
            w!(
                out,
                "{s:>7}  {:>10.2}  {:>10.2}  {:>12}  {:>10}",
                nf[i],
                na[i],
                fmt_freq(f.results[i].frequency),
                f.results[i].registers
            );
        }
    }
    w!(
        out,
        "\n(paper: silicon frequency stops improving past ~8 stages while area keeps"
    );
    w!(
        out,
        " rising slowly; organic frequency and area grow ~linearly, topping out ~22)"
    );
    Ok(())
}

/// Figure 13: core performance heatmaps over superscalar widths.
pub(super) fn fig13(ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let budget = ctx.budget();
    let fe: Vec<usize> = (1..=6).collect();
    let be: Vec<usize> = (3..=7).collect();
    w!(
        out,
        "simulating the benchmark suite on all 30 width points..."
    );
    let ipc = experiments::width_ipc_matrix(&fe, &be, budget);
    for p in Process::both() {
        let kit = ctx.kit(p)?;
        let m = experiments::fig13_14_width(kit, &ipc);
        out.push_str(&render_matrix(
            &format!("\n{} normalized performance:", p.name()),
            &m,
            &m.perf,
        ));
        let (b, f) = m.optimum();
        w!(out, "optimum: M[be={b}][fe={f}]");
    }
    out.push_str(&render_matrix(
        "\nshared geometric-mean IPC (process-independent):",
        &experiments::fig13_14_width(&TechKit::synthetic(Process::Silicon), &ipc),
        &ipc,
    ));
    w!(
        out,
        "\n(paper: silicon optimum M[4][2]; organic optimum M[7][2] — three execution"
    );
    w!(out, " pipes wider — with a much flatter surface around it)");
    Ok(())
}

/// Figure 14: core area heatmaps over superscalar widths.
pub(super) fn fig14(ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    // Area does not need IPC; use the minimal budget for the shared matrix
    // (fixed — deliberately not the plan budget).
    let ipc = experiments::width_ipc_matrix(
        &(1..=6).collect::<Vec<_>>(),
        &(3..=7).collect::<Vec<_>>(),
        SimBudget {
            outer: 2,
            instructions: 500,
        },
    );
    for p in Process::both() {
        let kit = ctx.kit(p)?;
        let m = experiments::fig13_14_width(kit, &ipc);
        out.push_str(&render_matrix(
            &format!("\n{} normalized area:", p.name()),
            &m,
            &m.area,
        ));
    }
    w!(
        out,
        "\n(paper: the area surfaces are nearly identical for the two processes,"
    );
    w!(out, " growing from 0.48 at [3][1] to 1.00 at [7][6])");
    Ok(())
}

/// Figure 15: frequency scaling with and without wire delay.
pub(super) fn fig15(ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let alu_stages: Vec<usize> = vec![1, 2, 4, 8, 12, 16, 20, 24, 28, 30];
    for p in Process::both() {
        let kit = ctx.kit(p)?;
        let f = experiments::fig15_wire_ablation(kit, &alu_stages);
        w!(out, "\n{}:", p.name());
        out.push_str(&render_series("  ALU, with wire:", &f.alu_stages, &f.alu.0));
        out.push_str(&render_series("  ALU, w/o wire:", &f.alu_stages, &f.alu.1));
        out.push_str(&render_series(
            "  core, with wire:",
            &f.core_stages,
            &f.core.0,
        ));
        out.push_str(&render_series(
            "  core, w/o wire:",
            &f.core_stages,
            &f.core.1,
        ));
        let last = f.alu.0.len() - 1;
        w!(
            out,
            "  deep-pipeline wire penalty (ALU, 30 stages): {:.1}% of achievable frequency",
            100.0 * (1.0 - f.alu.0[last] / f.alu.1[last])
        );
    }
    w!(
        out,
        "\n(paper: removing wire cost makes silicon scale like organic — the"
    );
    w!(
        out,
        " organic process's advantage is its relatively free interconnect)"
    );
    Ok(())
}

/// §5.3 baseline/optimized operating frequencies for both processes.
pub(super) fn table_baseline_freq(ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    for p in Process::both() {
        let kit = ctx.kit(p)?;
        let base = experiments::table_baseline_frequency(kit);
        // Deepen to 14 stages like the paper's Fig 15(b) comparison point.
        let mut spec = CoreSpec::baseline();
        for _ in 0..5 {
            let (deeper, _) = split_critical(kit, &spec);
            spec = deeper;
        }
        let deep = synthesize_core_cached(kit, &spec);
        w!(out, "\n{}:", p.name());
        w!(
            out,
            "  9-stage baseline : {} (period {})",
            fmt_freq(base.frequency),
            fmt_time(base.period)
        );
        w!(
            out,
            "  14-stage deepened: {} ({:.2}x the baseline clock)",
            fmt_freq(deep.frequency),
            deep.frequency / base.frequency
        );
        w!(
            out,
            "  per-cycle overheads at 14 stages: sequential {}, feedback wire {}",
            fmt_time(deep.seq_overhead),
            fmt_time(deep.wire_overhead)
        );
    }
    w!(
        out,
        "\n(paper: organic baseline ~200 Hz vs silicon ~800 MHz; optimized ~1.36 GHz"
    );
    w!(
        out,
        " silicon; at 14 stages organic reaches 2.0x its baseline clock, silicon 1.5x."
    );
    w!(
        out,
        " Note EXPERIMENTS.md on the paper's internally inconsistent \"40 Hz\" figure.)"
    );
    Ok(())
}

/// §4.4 library characterization summary for both processes, plus the
/// §5.5 mapping-preference observation.
pub(super) fn table_library(ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    for p in Process::both() {
        let kit = ctx.kit(p)?;
        w!(
            out,
            "\nlibrary: {} (VDD = {} V, VSS = {} V)",
            kit.lib.name,
            kit.lib.vdd,
            kit.lib.vss
        );
        let rows: Vec<Vec<String>> = experiments::table_library(kit)
            .into_iter()
            .map(|(name, area, cap, delay)| {
                vec![
                    name,
                    format!("{area:.3e}"),
                    format!("{cap:.3e}"),
                    fmt_time(delay),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["cell", "area (um2)", "input cap (F)", "nominal delay"],
            &rows,
        ));
        w!(
            out,
            "FO4-like delay: {}   DFF: setup {} / clk-Q {}",
            fmt_time(kit.lib.fo4_delay()),
            fmt_time(kit.lib.dff.setup),
            fmt_time(kit.lib.dff.clk_to_q)
        );
        let (nand3, nor3) = experiments::table_mapping_preference(kit);
        w!(
            out,
            "mapping preference (§5.5): NAND3 {}; NOR3 {}",
            if nand3 {
                "decomposed to 2-input"
            } else {
                "kept"
            },
            if nor3 {
                "decomposed to 2-input"
            } else {
                "kept"
            },
        );
    }
    w!(
        out,
        "\n(paper §5.5: the organic library's rise/fall imbalance makes its 3-input"
    );
    w!(
        out,
        " series cells less desirable than in silicon; here the organic NOR3 runs"
    );
    w!(
        out,
        " ~4x slower than its NAND3, while silicon's differ by ~15%)"
    );
    Ok(())
}

/// Synthesis report: structural statistics and per-library cell coverage.
pub(super) fn table_netlist_stats(ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    for (name, n) in [
        ("ripple_adder32", blocks::ripple_adder(32)),
        ("carry_select32", blocks::carry_select_adder(32)),
        ("kogge_stone32", blocks::kogge_stone_adder(32)),
        ("array_mult32", blocks::array_multiplier(32)),
        ("complex_alu", alu_cluster()),
        ("wakeup_cam 32x4", blocks::wakeup_cam(32, 6, 4)),
    ] {
        out.push_str(&format!("\n{}", render_stats(name, &netlist_stats(&n))));
    }

    w!(
        out,
        "\nper-library mapping of the complex ALU (§5.5 coverage):"
    );
    let alu = alu_cluster();
    for p in Process::both() {
        let kit = ctx.kit(p)?;
        let (mapped, report) = remap_for_library(&alu, &kit.lib);
        let (frac2, total) = coverage_ratio(&mapped);
        w!(
            out,
            "  {:>8}: {:.1}% two-input coverage of {total} NAND/NOR cells (nand3 {}, nor3 {})",
            p.name(),
            frac2 * 100.0,
            if report.nand3_decomposed {
                "decomposed"
            } else {
                "kept"
            },
            if report.nor3_decomposed {
                "decomposed"
            } else {
                "kept"
            },
        );
    }
    Ok(())
}

/// §4.3.4: the cell-sizing design-space script.
pub(super) fn table_sizing_explore(_ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let ranked = explore_inverter_sizing(&[], 5.0, -15.0, &Utility::default())
        .map_err(|e| format!("sizing sweep: {e:?}"))?;
    let rows: Vec<Vec<String>> = ranked
        .iter()
        .map(|c| {
            vec![
                format!("{:.0}", c.sizing.shifter_drive_w * 1.0e6),
                format!("{:.0}", c.sizing.shifter_load_w * 1.0e6),
                format!("{:.0}", c.sizing.output_drive_w * 1.0e6),
                format!("{:.0}", c.sizing.output_load_w * 1.0e6),
                format!("{:.2}", c.vm),
                format!("{:.2}", c.gain),
                format!("{:.2}", c.nm),
                if c.delay.is_finite() {
                    format!("{:.0}", c.delay * 1.0e6)
                } else {
                    "-".into()
                },
                format!("{:.2}", c.utility),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "M1 um", "M2 um", "M3 um", "M4 um", "VM V", "gain", "NM V", "delay us", "utility",
        ],
        &rows,
    ));
    w!(
        out,
        "\n(paper §4.3.4: \"we utilized a script to explore the design space and"
    );
    w!(
        out,
        " select the best parameter sets for each gate. The switching threshold,"
    );
    w!(
        out,
        " noise margin, gate delay, and area are all taken into consideration\" —"
    );
    w!(out, " the top row is the sizing the shipped library uses)");
    Ok(())
}

/// Extension: transient-electronics degradation over the mission life.
pub(super) fn ext_degradation(_ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let lives = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let points =
        extensions::degradation_sweep(&lives).map_err(|e| format!("aging sweep: {e:?}"))?;
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.life * 100.0),
                if p.delay.is_finite() {
                    format!("{:.0}", p.delay * 1.0e6)
                } else {
                    "-".into()
                },
                format!("{:.2}", p.gain),
                format!("{:.2}", p.nm_mec),
                if p.functional {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["life", "delay us", "gain", "NM (MEC) V", "functional"],
        &rows,
    ));
    let guardband = extensions::degradation_guardband(&points);
    w!(
        out,
        "\nend-of-life clock guardband: {guardband:.2}x the fresh-device period"
    );
    if let Some(fail) = points.iter().find(|p| !p.functional) {
        w!(
            out,
            "functional failure at ~{:.0}% of mission life",
            fail.life * 100.0
        );
    } else {
        w!(
            out,
            "the cell stays functional across the modelled mission window"
        );
    }
    w!(
        out,
        "\n(mobility decays ~70%, |V_T| drifts +1 V and leakage rises 10x across"
    );
    w!(
        out,
        " the window; a biodegradable design must be signed off at the aged"
    );
    w!(
        out,
        " corner — or use the Fig 8 V_SS knob to retune as it decays)"
    );
    Ok(())
}

/// Extension (paper §7, last paragraph): dynamic unipolar logic.
pub(super) fn ext_dynamic_logic(_ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let sizing = OrganicSizing::library_default();
    let load = 200.0e-12;

    let static_inv = organic_inverter(OrganicStyle::PseudoE, &sizing, 5.0, -15.0);
    let t_static = characterize_gate(&static_inv, &CharacterizeConfig::organic())
        .map_err(|e| format!("static: {e:?}"))?;
    let d_static = t_static.delay_worst().lookup(60.0e-6, load);
    w!(
        out,
        "static pseudo-E inverter : {} transistors, delay {:.1} us, needs VSS = -15 V",
        static_inv.transistor_count,
        d_static * 1.0e6
    );

    for fan_in in [1usize, 2, 3] {
        let g = organic_dynamic_gate(fan_in, &sizing, 5.0);
        let t =
            characterize_dynamic(&g, load, 4.0e-3).map_err(|e| format!("dynamic sim: {e:?}"))?;
        w!(
            out,
            "dynamic gate (stack of {fan_in}): {} transistors, evaluate {:.1} us, precharge {:.1} us, cycle charge {:.1} nC",
            g.transistor_count,
            t.evaluate_delay * 1.0e6,
            t.precharge_delay * 1.0e6,
            t.cycle_charge * 1.0e9,
        );
    }
    w!(
        out,
        "\n(paper §7: \"unipolar transistor design favors the use of dynamic logic"
    );
    w!(
        out,
        " because only roughly half the transistors are needed and switching time"
    );
    w!(
        out,
        " can be faster with the tradeoff being possibly worse power\" — the"
    );
    w!(
        out,
        " per-cycle precharge charge above is that power cost, burned on every"
    );
    w!(out, " clock regardless of data activity)");
    Ok(())
}

/// Extension (paper §7): energy per instruction vs pipeline depth.
pub(super) fn ext_energy_depth(ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let budget = ctx.budget();
    for p in Process::both() {
        let kit = ctx.kit(p)?;
        let pts = extensions::energy_depth(kit, budget);
        w!(out, "\n{}:", p.name());
        w!(
            out,
            "{:>3}  {:>10}  {:>6}  {:>10}  {:>9}  {:>12}",
            "N",
            "clock",
            "IPC",
            "power",
            "static%",
            "energy/instr"
        );
        let e0 = pts[0].epi;
        for pt in &pts {
            w!(
                out,
                "{:>3}  {:>10}  {:>6.2}  {:>8.2e}W  {:>8.1}%  {:>9.2e}J ({:.2}x)",
                pt.stages,
                fmt_freq(pt.frequency),
                pt.ipc,
                pt.power.total_w(),
                100.0 * pt.power.static_fraction(),
                pt.epi,
                pt.epi / e0,
            );
        }
    }
    w!(
        out,
        "\n(extension result: ratioed pseudo-E logic is static-dominated, so deeper"
    );
    w!(
        out,
        " organic pipelines REDUCE energy/instruction — race-to-idle — while"
    );
    w!(
        out,
        " silicon's added pipeline registers raise its switching energy)"
    );
    Ok(())
}

/// Extension (paper §7): many simple cores vs one out-of-order core.
pub(super) fn ext_inorder_vs_ooo(ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let budget = ctx.budget();
    let kit = ctx.kit(Process::Organic)?;
    let rows = extensions::inorder_vs_ooo(kit, budget);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.2}", r.throughput),
                format!("{:.2e}", r.area_um2),
                format!("{:.3}", r.power_w),
                format!("{:.1}", r.cores_per_budget),
                format!("{:.2}", r.iso_area_throughput),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "core",
            "instr/s",
            "area um2",
            "power W",
            "cores/budget",
            "iso-area instr/s",
        ],
        &table,
    ));
    let speedup = rows[1].iso_area_throughput / rows[0].iso_area_throughput;
    w!(
        out,
        "\niso-area advantage of the in-order array: {speedup:.2}x"
    );
    w!(
        out,
        "(for throughput work on a fixed organic panel, an array of Myny-class"
    );
    w!(
        out,
        " scalar cores beats one out-of-order core — rename/window area buys"
    );
    w!(
        out,
        " less than more cores do; the paper's §7 parallelism lever quantified."
    );
    w!(
        out,
        " The OoO machine still wins on single-stream latency.)"
    );
    Ok(())
}

/// Extension (paper §7): arrays of organic cores for throughput.
pub(super) fn ext_parallel_array(ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let budget = ctx.budget();
    let org = ctx.kit(Process::Organic)?;
    let pts = extensions::parallel_array(org, 16, budget);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.cores),
                format!("{:.1}", p.throughput),
                format!("{:.1}", p.area_um2 / 1.0e8),
                format!("{:.3}", p.power_w),
                format!("{:.1}", p.ops_per_joule),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["cores", "instr/s", "panel cm2", "power W", "instr/J"],
        &rows,
    ));
    w!(
        out,
        "\n(organic arrays scale throughput linearly in panel area — wires are free,"
    );
    w!(
        out,
        " and large-area fabrication is exactly what organic processes are good at;"
    );
    w!(
        out,
        " this is the paper's suggested lever against the mobility gap)"
    );
    Ok(())
}

/// Extension (paper §4.1/§4.3.3): V_T variation and V_SS compensation.
pub(super) fn ext_variation(ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let n = if ctx.quick() { 12 } else { 40 };
    let study = extensions::variation_tuning(n, 2026).map_err(|e| format!("monte carlo: {e:?}"))?;
    w!(
        out,
        "samples: {n}   V_T spread: sigma = 0.167 V (paper: \"within 0.5 V\")"
    );
    w!(out, "{:>10}  {:>8}", "dVT (V)", "VM (V)");
    for (dvt, vm) in study.raw.iter().take(12) {
        w!(out, "{dvt:>10.3}  {vm:>8.2}");
    }
    w!(out, "...");
    w!(
        out,
        "V_M sigma before compensation: {:.3} V",
        study.sigma_before
    );
    w!(
        out,
        "V_M sigma after V_SS retuning : {:.3} V",
        study.sigma_after
    );
    w!(
        out,
        "compensation shrinks the spread {:.1}x using the Fig 8 slope ({:.3} V/V)",
        study.sigma_before / study.sigma_after.max(1e-9),
        study.slope
    );
    w!(
        out,
        "\n(paper §4.3.3: \"the cross-sample variation of VM from process variation"
    );
    w!(
        out,
        " can be tuned by applying a different VSS\" — quantified here)"
    );
    Ok(())
}

/// Ablation: does the best adder architecture depend on the process?
pub(super) fn abl_adder_arch(ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let adders = [
        ("ripple", blocks::ripple_adder(32)),
        ("carry-select", blocks::carry_select_adder(32)),
        ("kogge-stone", blocks::kogge_stone_adder(32)),
    ];
    for p in Process::both() {
        let kit = ctx.kit(p)?;
        w!(out, "\n{}:", p.name());
        let mut rows = Vec::new();
        let mut base_delay = 0.0;
        for (name, netlist) in &adders {
            let (mapped, _) = remap_for_library(netlist, &kit.lib);
            let r = analyze(&mapped, &kit.lib, &kit.sta);
            if *name == "ripple" {
                base_delay = r.max_arrival;
            }
            rows.push(vec![
                name.to_string(),
                format!("{}", mapped.gates().len()),
                fmt_time(r.max_arrival),
                format!("{:.2}x", base_delay / r.max_arrival),
                format!("{:.2e}", r.area_um2),
            ]);
        }
        out.push_str(&render_table(
            &[
                "adder",
                "gates",
                "critical path",
                "speedup vs ripple",
                "area um2",
            ],
            &rows,
        ));
    }
    w!(
        out,
        "\n(measured: Kogge-Stone helps SILICON more. The organic prefix tree's"
    );
    w!(
        out,
        " carry-merge ORs land on the unipolar library's slow series NOR cells —"
    );
    w!(
        out,
        " the §5.5 rise/fall imbalance — which taxes back more than organic's"
    );
    w!(
        out,
        " free wires give; the best adder architecture is process-dependent)"
    );
    Ok(())
}

/// Ablation: the predictor-quality × pipeline-depth interaction.
pub(super) fn abl_predictor_depth(ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let budget = ctx.budget();
    let kit = ctx.kit(Process::Organic)?;

    // Pre-compute the split schedule once (synthesis is predictor-blind).
    let mut specs = vec![CoreSpec::baseline()];
    for _ in 0..6 {
        let (deeper, _) = split_critical(kit, specs.last().unwrap());
        specs.push(deeper);
    }
    let freqs: Vec<f64> = specs
        .iter()
        .map(|s| synthesize_core_cached(kit, s).frequency)
        .collect();

    w!(
        out,
        "normalized performance on parser (branchy) per depth, by predictor:\n{:>16} {}",
        "predictor",
        (9..=15).map(|n| format!("{n:>7}")).collect::<String>()
    );
    for (label, kind) in [
        ("gshare", BpredKind::Gshare),
        ("bimodal", BpredKind::Bimodal),
        ("static-NT", BpredKind::StaticNotTaken),
    ] {
        let mut perfs = Vec::new();
        for (spec, freq) in specs.iter().zip(&freqs) {
            // Thread the predictor kind through the config.
            let mut cfg = spec.core_config();
            cfg.bpred.kind = kind;
            let program = build_workload(Workload::Parser, budget.outer);
            let mut core = OooCore::new(&program, cfg, Workload::Parser.memory_words());
            let stats = core.run(budget.instructions);
            perfs.push(performance(stats.ipc(), *freq));
        }
        let base = perfs[0];
        let row: String = perfs.iter().map(|p| format!("{:>7.2}", p / base)).collect();
        let best = 9 + perfs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        w!(out, "{label:>16} {row}   (optimum: {best} stages)");
    }
    w!(
        out,
        "\n(the deep-pipeline payoff shrinks as prediction degrades — organic"
    );
    w!(
        out,
        " frequency gains are large enough that the optimum stays deep, but the"
    );
    w!(
        out,
        " margin over shallow designs narrows with every mispredict)"
    );
    Ok(())
}

/// Ablation: superscalar structure sizes (IQ / ROB / LSQ).
pub(super) fn abl_structures(ctx: &RunCtx, out: &mut String) -> Result<(), String> {
    let budget = ctx.budget();
    let sweep = [
        (8usize, 24usize, 8usize),
        (16, 48, 12),
        (32, 64, 16),
        (64, 128, 32),
    ];
    for (fe, be, label) in [
        (2usize, 4usize, "silicon optimum M[4][2]"),
        (2, 7, "organic optimum M[7][2]"),
    ] {
        w!(out, "\nwidths fe={fe}, be={be} ({label}):");
        let mut rows = Vec::new();
        for (iq, rob, lsq) in sweep {
            let spec = CoreSpec::with_widths(fe, be);
            let mut cfg = spec.core_config();
            cfg.iq_size = iq;
            cfg.rob_size = rob;
            cfg.lsq_size = lsq;
            let mut log_ipc = 0.0;
            let suite = [Workload::Dhrystone, Workload::Gzip, Workload::Gap];
            for w in suite {
                let program = build_workload(w, budget.outer);
                let mut core = OooCore::new(&program, cfg.clone(), w.memory_words());
                let stats = core.run(budget.instructions);
                log_ipc += stats.ipc().max(1e-6).ln();
            }
            let ipc = (log_ipc / suite.len() as f64).exp();
            rows.push(vec![
                format!("{iq}"),
                format!("{rob}"),
                format!("{lsq}"),
                format!("{ipc:.3}"),
            ]);
        }
        out.push_str(&render_table(&["IQ", "ROB", "LSQ", "gmean IPC"], &rows));
    }
    w!(
        out,
        "\n(the paper's baseline-class window — IQ 32 / ROB 64 / LSQ 16, the"
    );
    w!(
        out,
        " third row — sits on the flat part of the curve: bigger windows add"
    );
    w!(
        out,
        " little IPC at these widths, so the depth/width results stand)"
    );
    Ok(())
}
