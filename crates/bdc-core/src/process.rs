//! Process technologies and their characterized kits.

use std::sync::OnceLock;

use bdc_cells::{
    build_organic_cell, build_silicon_cell, Cell, CellLibrary, CharacterizeConfig, LogicKind,
    OrganicSizing, ProcessKind, WireModel,
};
use bdc_circuit::CircuitError;
use bdc_exec::{note_stage, ArtifactCache};
use bdc_synth::pipeline::PipelineOptions;
use bdc_synth::sta::StaConfig;

use crate::stage::{self, ParamOverlay};

/// The two processes the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Process {
    /// Pentacene OTFT, pseudo-E unipolar p-type logic.
    Organic,
    /// 45 nm-class silicon CMOS (reduced 6-cell library).
    Silicon,
}

impl Process {
    /// Both processes, organic first.
    pub fn both() -> [Process; 2] {
        [Process::Organic, Process::Silicon]
    }

    /// Display name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            Process::Organic => "organic",
            Process::Silicon => "silicon",
        }
    }

    /// The library-level process kind this flow process characterizes.
    pub fn kind(self) -> ProcessKind {
        match self {
            Process::Organic => ProcessKind::Organic,
            Process::Silicon => ProcessKind::Silicon45,
        }
    }
}

/// The `(name, key)` pair under which [`TechKit::load_or_build`] caches a
/// process's characterized library — the address a cluster peer fetch or a
/// benchmark probe uses to ask a shard's cache for the exact artifact the
/// flow would otherwise recompute. The key is the nominal-point *stage*
/// key ([`stage::library_stage_key`]): a chained hash of the device
/// model, each cell's DC and NLDM stages, and the library assembly
/// recipe, so every knob that reaches the artifact reaches the key.
pub fn library_artifact(process: Process) -> (String, u64) {
    (
        format!("lib-{}", process.name()),
        stage::library_stage_key(process, &ParamOverlay::default()),
    )
}

/// What the flow does with static-analysis diagnostics (`bdc-lint`) raised
/// on a netlist before timing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintPolicy {
    /// Skip the lint pass entirely.
    Off,
    /// Run the pass; print a one-line summary to stderr when anything
    /// fires, but never stop the flow.
    #[default]
    Warn,
    /// Run the pass; panic if any Error-severity diagnostic fires. Use in
    /// CI and experiment drivers where a malformed netlist must not reach
    /// STA.
    Deny,
}

/// A process bound to its characterized library and synthesis settings.
#[derive(Debug, Clone)]
pub struct TechKit {
    /// Which process this is.
    pub process: Process,
    /// Characterized 6-cell library.
    pub lib: CellLibrary,
    /// STA settings (placement model).
    pub sta: StaConfig,
    /// Pipelining defaults (feedback-wire model, skew, driver sizing) —
    /// calibrated once against the paper's Figure 12/15 silicon shape.
    pub pipe: PipelineOptions,
    /// Static-analysis policy applied before every STA run in the flow.
    pub lint: LintPolicy,
}

impl TechKit {
    /// Characterizes the process's library (1–2 s of circuit simulation)
    /// and returns the kit.
    ///
    /// # Errors
    /// Propagates characterization failures.
    pub fn build(process: Process) -> Result<TechKit, CircuitError> {
        let lib = match process {
            Process::Organic => CellLibrary::organic_pentacene()?,
            Process::Silicon => CellLibrary::silicon_45nm()?,
        };
        Ok(Self::with_library(process, lib))
    }

    /// Builds the kit around an existing library (used by the cached
    /// accessor and the wire ablations).
    pub fn with_library(process: Process, lib: CellLibrary) -> TechKit {
        TechKit {
            process,
            lib,
            sta: StaConfig::default(),
            pipe: PipelineOptions {
                stages: 1,
                skew_fraction: 0.5,
                feedback_base: 0.5,
                feedback_per_stage: 0.6,
                driver_upsize: 8.0,
            },
            lint: LintPolicy::default(),
        }
    }

    /// The same kit with a different lint policy.
    pub fn with_lint(&self, lint: LintPolicy) -> TechKit {
        TechKit {
            lint,
            ..self.clone()
        }
    }

    /// Like [`TechKit::build`], but caches the characterized library as a
    /// Liberty-dialect file under `dir` (created if missing) and reloads it
    /// on subsequent calls — the disk-cached flow a downstream user wants.
    ///
    /// A stale or corrupt cache file is silently re-characterized and
    /// rewritten; cache *write* failures are non-fatal.
    ///
    /// # Errors
    /// Propagates characterization failures.
    pub fn build_cached(process: Process, dir: &std::path::Path) -> Result<TechKit, CircuitError> {
        let path = dir.join(format!("{}.bdclib", process.name()));
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(lib) = bdc_cells::parse_library(&text) {
                if lib.process == process.kind() {
                    return Ok(Self::with_library(process, lib));
                }
            }
        }
        let kit = Self::build(process)?;
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(&path, bdc_cells::write_library(&kit.lib));
        Ok(kit)
    }

    /// Like [`TechKit::build`], but memoized through the workspace-wide
    /// content-addressed [`ArtifactCache`] (`results/cache/`, or
    /// `BDC_CACHE_DIR`) at per-stage granularity: the assembled library
    /// is stored as its Liberty-dialect text under its stage key, and on
    /// a library miss each *cell* is loaded or recharacterized
    /// individually under its own stage key (`cell-{process}-{name}`),
    /// so a parameter change recomputes only the cells whose input keys
    /// actually moved. Invalidation is key change — editing the grid,
    /// sizing, rails, or device model addresses different entries and
    /// the stale ones are simply never read again. This is the entry
    /// point every experiment binary routes through.
    ///
    /// # Errors
    /// Propagates characterization failures.
    pub fn load_or_build(process: Process) -> Result<TechKit, CircuitError> {
        Self::load_or_build_with(process, &ParamOverlay::default())
    }

    /// [`TechKit::load_or_build`] at an explicit parameter point: the
    /// sweep entry point. At the default overlay the artifact bytes are
    /// identical to the nominal flow's; at any other point every
    /// overlay-sensitive stage re-keys (see [`crate::stage`]) while
    /// untouched stages — the other process's cells, IPC — stay warm.
    ///
    /// # Errors
    /// Propagates characterization failures.
    pub fn load_or_build_with(
        process: Process,
        overlay: &ParamOverlay,
    ) -> Result<TechKit, CircuitError> {
        let cache = ArtifactCache::shared();
        let key = stage::library_stage_key(process, overlay);
        let name = format!("lib-{}", process.name());
        if !cache.is_enabled() {
            return Self::load_or_build_uncached(process, overlay, &cache, &name, key);
        }
        // Single-flight in-process memo: concurrent plan nodes that miss
        // the same library key block on one builder instead of each
        // recharacterizing (or re-parsing) the library. Keyed by
        // (cache root, stage key) so tests that redirect `BDC_CACHE_DIR`
        // mid-process get a fresh slot.
        let slot = kit_slot(cache.root().to_path_buf(), key);
        let mut guard = slot.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(kit) = guard.as_ref() {
            note_stage(&name, true);
            return Ok(kit.clone());
        }
        let kit = Self::load_or_build_uncached(process, overlay, &cache, &name, key)?;
        *guard = Some(kit.clone());
        Ok(kit)
    }

    /// The disk-or-build path behind [`TechKit::load_or_build_with`]:
    /// library load from the artifact cache, else per-cell load-or-
    /// characterize and reassembly (storing the result). Errors are never
    /// memoized — a failed build is retried by the next caller.
    fn load_or_build_uncached(
        process: Process,
        overlay: &ParamOverlay,
        cache: &ArtifactCache,
        name: &str,
        key: u64,
    ) -> Result<TechKit, CircuitError> {
        if let Some(text) = cache.load(name, key) {
            if let Ok(lib) = bdc_cells::parse_library(&text) {
                if lib.process == process.kind() {
                    note_stage(name, true);
                    return Ok(Self::with_library(process, lib));
                }
            }
        }
        note_stage(name, false);
        let cells = load_or_build_cells(process, overlay)?;
        let lib = match process {
            Process::Organic => bdc_cells::assemble_organic_library(cells, 5.0, -15.0),
            Process::Silicon => bdc_cells::assemble_silicon_library(cells, 1.0),
        };
        cache.store(name, key, &bdc_cells::write_library(&lib));
        Ok(Self::with_library(process, lib))
    }

    /// A fast, simulation-free kit (synthetic constant-delay library with
    /// the right orders of magnitude) for unit tests.
    pub fn synthetic(process: Process) -> TechKit {
        let lib = match process {
            Process::Organic => CellLibrary::synthetic(ProcessKind::Organic, 6.5e-4),
            Process::Silicon => CellLibrary::synthetic(ProcessKind::Silicon45, 8.0e-12),
        };
        Self::with_library(process, lib)
    }

    /// The same kit with ideal (zero-delay) wires — the Figure 15 ablation.
    pub fn without_wires(&self) -> TechKit {
        let mut kit = self.clone();
        kit.lib = kit.lib.with_wire(WireModel::ideal());
        kit
    }
}

/// One memo slot per (cache root, library stage key): the `Mutex` is the
/// single-flight — a builder holds it for the build's duration, so
/// concurrent waiters block and then read the finished kit instead of
/// duplicating the work. Entries are never evicted; a sweep adds two
/// slots per parameter point.
type KitSlot = std::sync::Arc<std::sync::Mutex<Option<TechKit>>>;

fn kit_slot(root: std::path::PathBuf, key: u64) -> KitSlot {
    static SLOTS: std::sync::Mutex<
        Option<std::collections::BTreeMap<(std::path::PathBuf, u64), KitSlot>>,
    > = std::sync::Mutex::new(None);
    SLOTS
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .get_or_insert_with(std::collections::BTreeMap::new)
        .entry((root, key))
        .or_default()
        .clone()
}

/// Loads each of the five combinational cells from the stage cache, or
/// characterizes the misses, in [`LogicKind::all`] order — the serial
/// loop [`CellLibrary::organic_at_shifted`] runs, with a per-cell memo
/// spliced between topology and characterization. Characterization
/// itself is internally parallel (the batch kernel), so cell-level
/// serialism costs nothing and keeps assembly order bit-stable.
fn load_or_build_cells(
    process: Process,
    overlay: &ParamOverlay,
) -> Result<Vec<Cell>, CircuitError> {
    let cache = ArtifactCache::shared();
    let sizing = OrganicSizing::library_default();
    let cfg = match process {
        Process::Organic => CharacterizeConfig::organic(),
        Process::Silicon => CharacterizeConfig::silicon(),
    };
    let mut cells = Vec::new();
    for kind in LogicKind::all() {
        let (name, key) = stage::cell_artifact(process, kind, overlay);
        if let Some(text) = cache.load(&name, key) {
            if let Some(cell) = bdc_cells::parse_cell_text(&text) {
                if cell.kind.logic() == Some(kind) {
                    note_stage(&name, true);
                    cells.push(cell);
                    continue;
                }
            }
        }
        note_stage(&name, false);
        let cell = match process {
            Process::Organic => {
                build_organic_cell(kind, &sizing, 5.0, -15.0, overlay.organic_delta_vt, &cfg)?
            }
            Process::Silicon => build_silicon_cell(kind, 450.0e-9, 1.0, &cfg)?,
        };
        cache.store(&name, key, &bdc_cells::write_cell_text(&cell));
        cells.push(cell);
    }
    Ok(cells)
}

/// Returns a lazily characterized, process-wide shared kit. The expensive
/// circuit-level characterization runs once per process per process-lifetime
/// — and, through [`TechKit::load_or_build`], once per recipe per *machine*:
/// later processes reload the characterized library from the artifact cache.
///
/// # Panics
/// Panics if characterization fails (deterministic; covered by tests).
pub fn shared_kit(process: Process) -> &'static TechKit {
    static ORGANIC: OnceLock<TechKit> = OnceLock::new();
    static SILICON: OnceLock<TechKit> = OnceLock::new();
    let cell = match process {
        Process::Organic => &ORGANIC,
        Process::Silicon => &SILICON,
    };
    cell.get_or_init(|| TechKit::load_or_build(process).expect("library characterization"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_kits_have_right_magnitudes() {
        let org = TechKit::synthetic(Process::Organic);
        let si = TechKit::synthetic(Process::Silicon);
        assert!(org.lib.fo4_delay() > 1.0e5 * si.lib.fo4_delay());
        assert_eq!(org.process.name(), "organic");
    }

    #[test]
    fn without_wires_zeroes_the_wire_model() {
        let kit = TechKit::synthetic(Process::Silicon).without_wires();
        assert_eq!(kit.lib.wire.delay(1.0e-3, 3.0e3), 0.0);
    }

    #[test]
    fn library_artifact_matches_the_load_or_build_address() {
        let (org_name, org_key) = library_artifact(Process::Organic);
        let (si_name, si_key) = library_artifact(Process::Silicon);
        assert_eq!(org_name, "lib-organic");
        assert_eq!(si_name, "lib-silicon");
        // Different processes address different artifacts, and the key is
        // stable across calls (it is what load_or_build hashes).
        assert_ne!(org_key, si_key);
        assert_eq!(
            org_key,
            stage::library_stage_key(Process::Organic, &ParamOverlay::default())
        );
    }

    #[test]
    fn build_cached_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("bdc-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let first = TechKit::build_cached(Process::Silicon, &dir).expect("characterize");
        assert!(dir.join("silicon.bdclib").exists());
        let second = TechKit::build_cached(Process::Silicon, &dir).expect("cached");
        // The reload is bit-exact on timing.
        assert_eq!(first.lib.fo4_delay(), second.lib.fo4_delay());
        assert_eq!(first.lib.dff, second.lib.dff);
        // A corrupt cache falls back to re-characterization.
        std::fs::write(dir.join("silicon.bdclib"), "garbage").unwrap();
        let third = TechKit::build_cached(Process::Silicon, &dir).expect("recover");
        assert!((third.lib.fo4_delay() - first.lib.fo4_delay()).abs() < 1e-15);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
