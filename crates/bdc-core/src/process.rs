//! Process technologies and their characterized kits.

use std::sync::OnceLock;

use bdc_cells::{CellLibrary, CharacterizeConfig, OrganicSizing, ProcessKind, WireModel};
use bdc_circuit::CircuitError;
use bdc_exec::{fnv1a, ArtifactCache};
use bdc_synth::pipeline::PipelineOptions;
use bdc_synth::sta::StaConfig;

/// The two processes the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Process {
    /// Pentacene OTFT, pseudo-E unipolar p-type logic.
    Organic,
    /// 45 nm-class silicon CMOS (reduced 6-cell library).
    Silicon,
}

impl Process {
    /// Both processes, organic first.
    pub fn both() -> [Process; 2] {
        [Process::Organic, Process::Silicon]
    }

    /// Display name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            Process::Organic => "organic",
            Process::Silicon => "silicon",
        }
    }

    /// The library-level process kind this flow process characterizes.
    pub fn kind(self) -> ProcessKind {
        match self {
            Process::Organic => ProcessKind::Organic,
            Process::Silicon => ProcessKind::Silicon45,
        }
    }
}

/// Cache key for a characterized library: a schema salt plus everything the
/// characterization recipe depends on — the process, its rails/geometry,
/// the gate sizing, and the full slew × load grid ([`CharacterizeConfig`]'s
/// `Debug` form spells out every knob, so adding a knob changes the key).
fn library_cache_key(process: Process) -> u64 {
    let recipe = match process {
        Process::Organic => format!(
            "vdd=5 vss=-15 sizing={:?} cfg={:?}",
            OrganicSizing::library_default(),
            CharacterizeConfig::organic(),
        ),
        Process::Silicon => format!("vdd=1 l=450e-9 cfg={:?}", CharacterizeConfig::silicon()),
    };
    fnv1a(&["bdc-library-v1", process.name(), &recipe])
}

/// The `(name, key)` pair under which [`TechKit::load_or_build`] caches a
/// process's characterized library — the address a cluster peer fetch or a
/// benchmark probe uses to ask a shard's cache for the exact artifact the
/// flow would otherwise recompute.
pub fn library_artifact(process: Process) -> (String, u64) {
    (
        format!("lib-{}", process.name()),
        library_cache_key(process),
    )
}

/// What the flow does with static-analysis diagnostics (`bdc-lint`) raised
/// on a netlist before timing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintPolicy {
    /// Skip the lint pass entirely.
    Off,
    /// Run the pass; print a one-line summary to stderr when anything
    /// fires, but never stop the flow.
    #[default]
    Warn,
    /// Run the pass; panic if any Error-severity diagnostic fires. Use in
    /// CI and experiment drivers where a malformed netlist must not reach
    /// STA.
    Deny,
}

/// A process bound to its characterized library and synthesis settings.
#[derive(Debug, Clone)]
pub struct TechKit {
    /// Which process this is.
    pub process: Process,
    /// Characterized 6-cell library.
    pub lib: CellLibrary,
    /// STA settings (placement model).
    pub sta: StaConfig,
    /// Pipelining defaults (feedback-wire model, skew, driver sizing) —
    /// calibrated once against the paper's Figure 12/15 silicon shape.
    pub pipe: PipelineOptions,
    /// Static-analysis policy applied before every STA run in the flow.
    pub lint: LintPolicy,
}

impl TechKit {
    /// Characterizes the process's library (1–2 s of circuit simulation)
    /// and returns the kit.
    ///
    /// # Errors
    /// Propagates characterization failures.
    pub fn build(process: Process) -> Result<TechKit, CircuitError> {
        let lib = match process {
            Process::Organic => CellLibrary::organic_pentacene()?,
            Process::Silicon => CellLibrary::silicon_45nm()?,
        };
        Ok(Self::with_library(process, lib))
    }

    /// Builds the kit around an existing library (used by the cached
    /// accessor and the wire ablations).
    pub fn with_library(process: Process, lib: CellLibrary) -> TechKit {
        TechKit {
            process,
            lib,
            sta: StaConfig::default(),
            pipe: PipelineOptions {
                stages: 1,
                skew_fraction: 0.5,
                feedback_base: 0.5,
                feedback_per_stage: 0.6,
                driver_upsize: 8.0,
            },
            lint: LintPolicy::default(),
        }
    }

    /// The same kit with a different lint policy.
    pub fn with_lint(&self, lint: LintPolicy) -> TechKit {
        TechKit {
            lint,
            ..self.clone()
        }
    }

    /// Like [`TechKit::build`], but caches the characterized library as a
    /// Liberty-dialect file under `dir` (created if missing) and reloads it
    /// on subsequent calls — the disk-cached flow a downstream user wants.
    ///
    /// A stale or corrupt cache file is silently re-characterized and
    /// rewritten; cache *write* failures are non-fatal.
    ///
    /// # Errors
    /// Propagates characterization failures.
    pub fn build_cached(process: Process, dir: &std::path::Path) -> Result<TechKit, CircuitError> {
        let path = dir.join(format!("{}.bdclib", process.name()));
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(lib) = bdc_cells::parse_library(&text) {
                if lib.process == process.kind() {
                    return Ok(Self::with_library(process, lib));
                }
            }
        }
        let kit = Self::build(process)?;
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(&path, bdc_cells::write_library(&kit.lib));
        Ok(kit)
    }

    /// Like [`TechKit::build`], but memoized through the workspace-wide
    /// content-addressed [`ArtifactCache`] (`results/cache/`, or
    /// `BDC_CACHE_DIR`): the characterized library is stored as its
    /// Liberty-dialect text under a key hashing the full characterization
    /// recipe, and reloaded bit-exactly on later runs. Invalidation is key
    /// change — editing the grid, sizing, or rails addresses a different
    /// entry and the stale one is simply never read again. This is the
    /// entry point every experiment binary routes through.
    ///
    /// # Errors
    /// Propagates characterization failures.
    pub fn load_or_build(process: Process) -> Result<TechKit, CircuitError> {
        let cache = ArtifactCache::shared();
        let key = library_cache_key(process);
        let name = format!("lib-{}", process.name());
        if let Some(text) = cache.load(&name, key) {
            if let Ok(lib) = bdc_cells::parse_library(&text) {
                if lib.process == process.kind() {
                    return Ok(Self::with_library(process, lib));
                }
            }
        }
        let kit = Self::build(process)?;
        cache.store(&name, key, &bdc_cells::write_library(&kit.lib));
        Ok(kit)
    }

    /// A fast, simulation-free kit (synthetic constant-delay library with
    /// the right orders of magnitude) for unit tests.
    pub fn synthetic(process: Process) -> TechKit {
        let lib = match process {
            Process::Organic => CellLibrary::synthetic(ProcessKind::Organic, 6.5e-4),
            Process::Silicon => CellLibrary::synthetic(ProcessKind::Silicon45, 8.0e-12),
        };
        Self::with_library(process, lib)
    }

    /// The same kit with ideal (zero-delay) wires — the Figure 15 ablation.
    pub fn without_wires(&self) -> TechKit {
        let mut kit = self.clone();
        kit.lib = kit.lib.with_wire(WireModel::ideal());
        kit
    }
}

/// Returns a lazily characterized, process-wide shared kit. The expensive
/// circuit-level characterization runs once per process per process-lifetime
/// — and, through [`TechKit::load_or_build`], once per recipe per *machine*:
/// later processes reload the characterized library from the artifact cache.
///
/// # Panics
/// Panics if characterization fails (deterministic; covered by tests).
pub fn shared_kit(process: Process) -> &'static TechKit {
    static ORGANIC: OnceLock<TechKit> = OnceLock::new();
    static SILICON: OnceLock<TechKit> = OnceLock::new();
    let cell = match process {
        Process::Organic => &ORGANIC,
        Process::Silicon => &SILICON,
    };
    cell.get_or_init(|| TechKit::load_or_build(process).expect("library characterization"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_kits_have_right_magnitudes() {
        let org = TechKit::synthetic(Process::Organic);
        let si = TechKit::synthetic(Process::Silicon);
        assert!(org.lib.fo4_delay() > 1.0e5 * si.lib.fo4_delay());
        assert_eq!(org.process.name(), "organic");
    }

    #[test]
    fn without_wires_zeroes_the_wire_model() {
        let kit = TechKit::synthetic(Process::Silicon).without_wires();
        assert_eq!(kit.lib.wire.delay(1.0e-3, 3.0e3), 0.0);
    }

    #[test]
    fn library_artifact_matches_the_load_or_build_address() {
        let (org_name, org_key) = library_artifact(Process::Organic);
        let (si_name, si_key) = library_artifact(Process::Silicon);
        assert_eq!(org_name, "lib-organic");
        assert_eq!(si_name, "lib-silicon");
        // Different processes address different artifacts, and the key is
        // stable across calls (it is what load_or_build hashes).
        assert_ne!(org_key, si_key);
        assert_eq!(org_key, library_cache_key(Process::Organic));
    }

    #[test]
    fn build_cached_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("bdc-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let first = TechKit::build_cached(Process::Silicon, &dir).expect("characterize");
        assert!(dir.join("silicon.bdclib").exists());
        let second = TechKit::build_cached(Process::Silicon, &dir).expect("cached");
        // The reload is bit-exact on timing.
        assert_eq!(first.lib.fo4_delay(), second.lib.fo4_delay());
        assert_eq!(first.lib.dff, second.lib.dff);
        // A corrupt cache falls back to re-characterization.
        std::fs::write(dir.join("silicon.bdclib"), "garbage").unwrap();
        let third = TechKit::build_cached(Process::Silicon, &dir).expect("recover");
        assert!((third.lib.fo4_delay() - first.lib.fo4_delay()).abs() < 1e-15);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
