#![warn(missing_docs)]

//! End-to-end architectural exploration flow for biodegradable (organic)
//! processors — the reproduction of *“Architectural Tradeoffs for
//! Biodegradable Computing”* (MICRO-50, 2017).
//!
//! This crate glues the substrates together into the paper's Figure-10
//! flow:
//!
//! ```text
//! fabricated OTFTs → device models → standard cells → NLDM library
//!        (bdc-device)    (bdc-device)   (bdc-cells)    (bdc-cells)
//!                                  ↓
//!      core netlists → synthesis/STA → min period + area
//!        (bdc-synth)      (bdc-synth)
//!                                  ↓
//!      cycle-accurate simulation → IPC       performance = IPC × f
//!        (bdc-uarch)
//! ```
//!
//! The [`experiments`] module has one driver per figure/table of the
//! paper's evaluation (see `DESIGN.md` for the experiment index),
//! [`report`] renders paper-style tables and heatmaps, and [`registry`]
//! catalogues every experiment as a schedulable node behind the `bdc`
//! CLI, the serving layer and CI (`DESIGN.md` §5g).
//!
//! # Quickstart
//!
//! ```no_run
//! use bdc_core::{Process, TechKit};
//!
//! // Characterize the organic library and synthesize the complex ALU at
//! // eight pipeline stages.
//! let kit = TechKit::build(Process::Organic)?;
//! let alu = bdc_core::flow::alu_cluster();
//! let result = bdc_core::flow::pipeline_alu(&kit, &alu, 8);
//! println!("8-stage organic ALU: {:.1} Hz", result.frequency);
//! # Ok::<(), bdc_circuit::CircuitError>(())
//! ```

pub mod corespec;
pub mod experiments;
pub mod extensions;
pub mod flow;
pub mod process;
pub mod registry;
pub mod report;
pub mod stage;
pub mod sweep;

pub use corespec::{CoreSpec, StageKind};
pub use flow::{
    alu_cluster, lint_gate, measure_ipc, measure_ipc_cached, pipeline_alu, pipeline_alu_cached,
    synthesize_core, synthesize_core_cached, SynthesizedCore,
};
pub use process::{library_artifact, LintPolicy, Process, TechKit};
pub use stage::{library_stage_key, stage_graph, ParamOverlay, StageGraph, StageNode};

#[cfg(test)]
pub(crate) mod testenv {
    //! `BDC_CACHE_DIR` is process-global and re-read per cache call, so
    //! unit tests that redirect it must serialize on one lock or a
    //! neighbour's `remove_var` yanks the override mid-run.
    use std::sync::{Mutex, MutexGuard, OnceLock};

    pub fn cache_env_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }
}
