//! The fine-grained dataflow stage graph and its content-addressed keys.
//!
//! The flow is a chain of pure stages — device model → per-cell DC
//! operating point → per-(cell, edge) NLDM surface → assembled library →
//! mapped netlist/STA → IPC — and each stage's cache key hashes only its
//! *true* inputs: the keys of its upstream stages plus its own
//! parameters. Changing one device parameter (a V_T shift, say) therefore
//! re-keys exactly the organic device stage and its downstream cone; the
//! silicon stages, the process-independent IPC stage, and every
//! experiment that reads none of the changed stages keep their old keys
//! and stay warm. [`stage_graph`] materializes the whole graph for one
//! parameter point so `bdc verify` can prove it acyclic and
//! input-sensitive, and the sweep manifest can name what a point reused.
//!
//! Granularity note: keys exist per (cell, edge) — the NLDM rise and fall
//! surfaces hash separately — but the *materialized* cache unit is the
//! per-cell record (`cell-{process}-{name}`), because the batch kernel
//! characterizes both edges of a cell in one solver pass and splitting
//! the artifact would double I/O without saving any recomputation. The
//! edge keys still appear in the graph (and in `bdc verify`'s
//! sensitivity pass) so the invalidation cone is provable at the finest
//! level the physics has.
//!
//! Synthesized-core artifacts keep their *content-chained* key (a
//! fingerprint of the rendered library text, see
//! [`crate::flow::synthesize_core_cached`]): that is strictly stronger
//! than hashing the library's input keys — two parameter points that
//! happen to characterize to identical libraries share synth artifacts.
//! The [`synth_stage_key`] here is the graph-level view of the same
//! stage, used for sensitivity proofs.

use bdc_cells::{CellKind, CharacterizeConfig, LogicKind, OrganicSizing};
use bdc_device::TftParams;
use bdc_exec::fnv1a;

use crate::process::Process;

/// A point in parameter space: the deltas a sweep applies on top of the
/// nominal device models. Flows through function arguments and cache
/// keys — never through the environment — so every artifact produced
/// under an overlay is addressed by it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamOverlay {
    /// Threshold-voltage shift (V) added to every organic transistor's
    /// `vt0` (magnitude convention, like [`TftParams::vt0`]). `0.0` is
    /// the nominal device, bit-identical to the un-swept flow.
    pub organic_delta_vt: f64,
}

impl Default for ParamOverlay {
    fn default() -> Self {
        ParamOverlay {
            organic_delta_vt: 0.0,
        }
    }
}

impl ParamOverlay {
    /// Whether this is the nominal point (bit-exact zero: `-0.0` has a
    /// different bit pattern, addresses different artifacts, and is
    /// deliberately *not* default).
    pub fn is_default(&self) -> bool {
        self.organic_delta_vt.to_bits() == 0.0f64.to_bits()
    }

    /// The canonical text form hashed into every overlay-sensitive stage
    /// key: the bit pattern of each delta, so distinct points can never
    /// collide through decimal rounding.
    pub fn canonical(&self) -> String {
        format!("organic.dvt={:016x}", self.organic_delta_vt.to_bits())
    }

    /// Parses [`ParamOverlay::canonical`] back; returns `None` on any
    /// malformation. Round-trips bit-exactly.
    pub fn from_canonical(s: &str) -> Option<ParamOverlay> {
        let hex = s.strip_prefix("organic.dvt=")?;
        if hex.len() != 16 {
            return None;
        }
        let bits = u64::from_str_radix(hex, 16).ok()?;
        Some(ParamOverlay {
            organic_delta_vt: f64::from_bits(bits),
        })
    }
}

fn cell_name(kind: LogicKind) -> &'static str {
    CellKind::all()
        .into_iter()
        .find(|c| c.logic() == Some(kind))
        .expect("every logic kind is a cell kind")
        .name()
}

/// Stage 1 — the device model. For the organic process this hashes the
/// full pentacene parameter set plus the overlay's V_T delta; the silicon
/// stage hashes its geometry and is overlay-independent by construction.
pub fn device_stage_key(process: Process, overlay: &ParamOverlay) -> u64 {
    match process {
        Process::Organic => fnv1a(&[
            "bdc-stage-device-v1",
            "organic",
            &format!("{:?}", TftParams::pentacene()),
            &overlay.canonical(),
        ]),
        Process::Silicon => fnv1a(&["bdc-stage-device-v1", "silicon", "l=450e-9 vdd=1"]),
    }
}

fn rails_recipe(process: Process) -> String {
    match process {
        Process::Organic => format!(
            "vdd=5 vss=-15 sizing={:?}",
            OrganicSizing::library_default()
        ),
        Process::Silicon => "vdd=1 l=450e-9".to_string(),
    }
}

fn characterize_recipe(process: Process) -> String {
    match process {
        Process::Organic => format!("{:?}", CharacterizeConfig::organic()),
        Process::Silicon => format!("{:?}", CharacterizeConfig::silicon()),
    }
}

/// Stage 2 — one cell's topology and DC operating point: the device
/// stage key chained with the cell's logic kind, sizing and rails.
pub fn cell_dc_stage_key(process: Process, kind: LogicKind, overlay: &ParamOverlay) -> u64 {
    fnv1a(&[
        "bdc-stage-dc-v1",
        process.name(),
        cell_name(kind),
        &format!("{:016x}", device_stage_key(process, overlay)),
        &rails_recipe(process),
    ])
}

/// Stage 3 — one (cell, edge) NLDM surface: the DC stage key chained
/// with the characterization grid and the edge direction.
pub fn cell_edge_stage_key(
    process: Process,
    kind: LogicKind,
    overlay: &ParamOverlay,
    rising: bool,
) -> u64 {
    fnv1a(&[
        "bdc-stage-nldm-v1",
        &format!("{:016x}", cell_dc_stage_key(process, kind, overlay)),
        &characterize_recipe(process),
        if rising { "rise" } else { "fall" },
    ])
}

/// The materialized per-cell record key (`cell-{process}-{name}` in the
/// artifact cache): both edge surfaces plus the DC stage (leakage and
/// static power come from the operating point).
pub fn cell_stage_key(process: Process, kind: LogicKind, overlay: &ParamOverlay) -> u64 {
    fnv1a(&[
        "bdc-stage-cell-v1",
        &format!("{:016x}", cell_dc_stage_key(process, kind, overlay)),
        &format!("{:016x}", cell_edge_stage_key(process, kind, overlay, true)),
        &format!(
            "{:016x}",
            cell_edge_stage_key(process, kind, overlay, false)
        ),
    ])
}

/// The `(name, key)` artifact-cache address of one cell's materialized
/// record — what [`crate::process::TechKit::load_or_build_with`] stores
/// and a cluster peer fetch addresses.
pub fn cell_artifact(process: Process, kind: LogicKind, overlay: &ParamOverlay) -> (String, u64) {
    (
        format!("cell-{}-{}", process.name(), cell_name(kind)),
        cell_stage_key(process, kind, overlay),
    )
}

/// Stage 4 — the assembled library (`lib-{process}`): the five
/// combinational cell keys chained with the DFF derivation recipe and
/// the wire model.
pub fn library_stage_key(process: Process, overlay: &ParamOverlay) -> u64 {
    let cell_keys: Vec<String> = LogicKind::all()
        .into_iter()
        .map(|k| format!("{:016x}", cell_stage_key(process, k, overlay)))
        .collect();
    let dff_recipe = match process {
        Process::Organic => "dff=6nand area_factor=8.0 wire=organic",
        Process::Silicon => "dff=6nand area_factor=4.2 wire=silicon_45nm",
    };
    let mut parts: Vec<&str> = vec!["bdc-stage-lib-v1", process.name()];
    parts.extend(cell_keys.iter().map(String::as_str));
    parts.push(dff_recipe);
    fnv1a(&parts)
}

/// Stage 5 — mapped netlist + STA for one process, as the graph sees it:
/// the library stage key chained with the synthesis settings. (Actual
/// synth artifacts are keyed by library *content*; see the module docs.)
pub fn synth_stage_key(process: Process, overlay: &ParamOverlay) -> u64 {
    fnv1a(&[
        "bdc-stage-synth-v1",
        process.name(),
        &format!("{:016x}", library_stage_key(process, overlay)),
        "sta=default pipe=calibrated",
    ])
}

/// Stage 6 — cycle-accurate IPC. Deliberately *not* chained to any
/// library: IPC is a property of the microarchitecture and workload
/// alone, so every parameter point of a sweep shares these artifacts.
pub fn ipc_stage_key() -> u64 {
    fnv1a(&["bdc-stage-ipc-v1", "uarch=ooo-model workloads=suite"])
}

/// One vertex of the materialized stage graph.
#[derive(Debug, Clone)]
pub struct StageNode {
    /// Stable stage name (`device-organic`, `cell-silicon-nand2`, …).
    pub name: String,
    /// The stage's content-addressed key at this parameter point.
    pub key: u64,
    /// Names of the stages whose keys this one chains (its true inputs).
    pub parents: Vec<String>,
}

/// The whole dataflow graph at one parameter point: every stage with its
/// key and its input edges, in one deterministic order.
#[derive(Debug, Clone)]
pub struct StageGraph {
    /// All stages, processes in [`Process::both`] order, then IPC.
    pub nodes: Vec<StageNode>,
}

impl StageGraph {
    /// Looks up a stage by name.
    pub fn node(&self, name: &str) -> Option<&StageNode> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Edges as `(parent_index, child_index)` pairs over `nodes`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let index = |name: &str| self.nodes.iter().position(|n| n.name == name);
        let mut edges = Vec::new();
        for (child, node) in self.nodes.iter().enumerate() {
            for parent in &node.parents {
                if let Some(p) = index(parent) {
                    edges.push((p, child));
                }
            }
        }
        edges
    }
}

/// Materializes the stage graph for one parameter point.
pub fn stage_graph(overlay: &ParamOverlay) -> StageGraph {
    let mut nodes = Vec::new();
    for process in Process::both() {
        let p = process.name();
        let device = format!("device-{p}");
        nodes.push(StageNode {
            name: device.clone(),
            key: device_stage_key(process, overlay),
            parents: vec![],
        });
        let mut lib_parents = Vec::new();
        for kind in LogicKind::all() {
            let c = cell_name(kind);
            let dc = format!("dc-{p}-{c}");
            nodes.push(StageNode {
                name: dc.clone(),
                key: cell_dc_stage_key(process, kind, overlay),
                parents: vec![device.clone()],
            });
            let mut cell_parents = vec![dc.clone()];
            for rising in [true, false] {
                let edge = format!("nldm-{p}-{c}-{}", if rising { "rise" } else { "fall" });
                nodes.push(StageNode {
                    name: edge.clone(),
                    key: cell_edge_stage_key(process, kind, overlay, rising),
                    parents: vec![dc.clone()],
                });
                cell_parents.push(edge);
            }
            let cell = format!("cell-{p}-{c}");
            nodes.push(StageNode {
                name: cell.clone(),
                key: cell_stage_key(process, kind, overlay),
                parents: cell_parents,
            });
            lib_parents.push(cell);
        }
        let lib = format!("lib-{p}");
        nodes.push(StageNode {
            name: lib.clone(),
            key: library_stage_key(process, overlay),
            parents: lib_parents,
        });
        nodes.push(StageNode {
            name: format!("synth-{p}"),
            key: synth_stage_key(process, overlay),
            parents: vec![lib],
        });
    }
    nodes.push(StageNode {
        name: "ipc".to_string(),
        key: ipc_stage_key(),
        parents: vec![],
    });
    StageGraph { nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_overlay_is_nominal_and_canonical_roundtrips() {
        let ov = ParamOverlay::default();
        assert!(ov.is_default());
        assert_eq!(ov.canonical(), "organic.dvt=0000000000000000");
        assert_eq!(ParamOverlay::from_canonical(&ov.canonical()), Some(ov));
        // -0.0 is a different point by design.
        let neg = ParamOverlay {
            organic_delta_vt: -0.0,
        };
        assert!(!neg.is_default());
        assert_ne!(neg.canonical(), ov.canonical());
        assert_eq!(ParamOverlay::from_canonical("organic.dvt=zz"), None);
        assert_eq!(ParamOverlay::from_canonical("organic.vt=00"), None);
    }

    #[test]
    fn overlay_perturbs_exactly_the_organic_cone() {
        let nominal = ParamOverlay::default();
        let shifted = ParamOverlay {
            organic_delta_vt: 0.25,
        };
        // Organic cone re-keys...
        assert_ne!(
            device_stage_key(Process::Organic, &nominal),
            device_stage_key(Process::Organic, &shifted)
        );
        for kind in LogicKind::all() {
            assert_ne!(
                cell_stage_key(Process::Organic, kind, &nominal),
                cell_stage_key(Process::Organic, kind, &shifted),
            );
        }
        assert_ne!(
            library_stage_key(Process::Organic, &nominal),
            library_stage_key(Process::Organic, &shifted)
        );
        assert_ne!(
            synth_stage_key(Process::Organic, &nominal),
            synth_stage_key(Process::Organic, &shifted)
        );
        // ...while the silicon cone and IPC stay put.
        assert_eq!(
            device_stage_key(Process::Silicon, &nominal),
            device_stage_key(Process::Silicon, &shifted)
        );
        for kind in LogicKind::all() {
            assert_eq!(
                cell_stage_key(Process::Silicon, kind, &nominal),
                cell_stage_key(Process::Silicon, kind, &shifted),
            );
        }
        assert_eq!(
            library_stage_key(Process::Silicon, &nominal),
            library_stage_key(Process::Silicon, &shifted)
        );
    }

    #[test]
    fn stage_graph_names_and_keys_are_unique() {
        let g = stage_graph(&ParamOverlay::default());
        let mut names: Vec<&str> = g.nodes.iter().map(|n| n.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), g.nodes.len(), "duplicate stage name");
        let mut keys: Vec<u64> = g.nodes.iter().map(|n| n.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), g.nodes.len(), "stage key collision");
        // Every parent resolves, and every edge is materialized.
        for n in &g.nodes {
            for p in &n.parents {
                assert!(g.node(p).is_some(), "{} has unknown parent {p}", n.name);
            }
        }
        let per_process = 1 + LogicKind::all().len() * 4 + 2;
        assert_eq!(g.nodes.len(), 2 * per_process + 1);
        assert_eq!(
            g.edges().len(),
            g.nodes.iter().map(|n| n.parents.len()).sum::<usize>()
        );
    }

    proptest! {
        // Stage-key soundness: unequal parameter inputs produce unequal
        // keys at every overlay-sensitive stage, and the canonical text
        // form round-trips bit-exactly (so a manifest can reconstruct
        // the exact point).
        #[test]
        fn unequal_overlays_never_share_organic_keys(a in -2.0f64..2.0, b in -2.0f64..2.0) {
            let oa = ParamOverlay { organic_delta_vt: a };
            let ob = ParamOverlay { organic_delta_vt: b };
            prop_assume!(a.to_bits() != b.to_bits());
            prop_assert_ne!(device_stage_key(Process::Organic, &oa),
                            device_stage_key(Process::Organic, &ob));
            prop_assert_ne!(cell_stage_key(Process::Organic, LogicKind::Nand2, &oa),
                            cell_stage_key(Process::Organic, LogicKind::Nand2, &ob));
            prop_assert_ne!(library_stage_key(Process::Organic, &oa),
                            library_stage_key(Process::Organic, &ob));
        }

        #[test]
        fn overlay_canonical_roundtrip_is_stable(bits in any::<u64>()) {
            let ov = ParamOverlay { organic_delta_vt: f64::from_bits(bits) };
            let back = ParamOverlay::from_canonical(&ov.canonical()).expect("roundtrip");
            prop_assert_eq!(back.organic_delta_vt.to_bits(), bits);
            prop_assert_eq!(back.canonical(), ov.canonical());
        }

        #[test]
        fn distinct_stages_never_collide_at_any_point(dvt in -2.0f64..2.0) {
            let g = stage_graph(&ParamOverlay { organic_delta_vt: dvt });
            let mut keys: Vec<u64> = g.nodes.iter().map(|n| n.key).collect();
            keys.sort_unstable();
            keys.dedup();
            prop_assert_eq!(keys.len(), g.nodes.len());
        }
    }
}
