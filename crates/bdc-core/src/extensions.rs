//! Extension experiments beyond the paper's evaluation — the §7 future-work
//! directions, built on the same substrates:
//!
//! * [`energy_depth`] — energy per instruction vs pipeline depth (the
//!   “energy optimization” axis). Ratioed organic logic is static-power
//!   dominated, so *finishing sooner saves energy*: deeper organic
//!   pipelines improve both performance and energy/instruction, unlike
//!   silicon where added registers raise switching energy.
//! * [`parallel_array`] — “the extensive use of parallelism to mitigate the
//!   performance challenges”: arrays of small organic cores vs one big one
//!   on throughput workloads.
//! * [`variation_tuning`] — the §4.1/§4.3.3 variation story quantified:
//!   Monte-Carlo V_T spread moves V_M; retuning V_SS with the Figure 8
//!   slope recentres it.

use bdc_cells::{measure_inverter_dc, organic_inverter_shifted, OrganicSizing, OrganicStyle};
use bdc_circuit::CircuitError;
use bdc_synth::power::{energy_per_instruction, estimate_power, PowerReport};
use bdc_uarch::Workload;

use crate::corespec::{stage_netlist, CoreSpec, StageKind};
use crate::experiments::SimBudget;
use crate::flow::{measure_ipc_cached, performance, split_critical, synthesize_core_cached};
use crate::process::TechKit;

/// Activity factor assumed for core logic.
pub const CORE_ACTIVITY: f64 = 0.15;

/// Power of a whole core design point: every stage netlist plus the
/// interface registers, at the synthesized clock.
pub fn core_power(kit: &TechKit, spec: &CoreSpec, frequency: f64) -> PowerReport {
    let mut static_w = 0.0;
    let mut dynamic_w = 0.0;
    for kind in StageKind::all() {
        let net = stage_netlist(kind, spec.fe_width, spec.be_pipes);
        let r = estimate_power(&net, &kit.lib, 0, frequency, CORE_ACTIVITY);
        static_w += r.static_w;
        dynamic_w += r.dynamic_w;
    }
    // Interface/retiming registers (same count the area model uses).
    let iface_bits = 60 + 48 * spec.fe_width.max(spec.be_pipes - 2);
    let regs = iface_bits * spec.total_stages();
    let dff = kit.lib.cell(bdc_cells::CellKind::Dff);
    static_w += regs as f64 * dff.leakage_w;
    dynamic_w += regs as f64 * dff.switching_energy * (0.5 + 0.5 * CORE_ACTIVITY) * frequency;
    PowerReport {
        static_w,
        dynamic_w,
        frequency,
        activity: CORE_ACTIVITY,
    }
}

/// One depth point of the energy extension.
#[derive(Debug, Clone)]
pub struct EnergyDepthPoint {
    /// Total pipeline stages.
    pub stages: usize,
    /// Clock (Hz).
    pub frequency: f64,
    /// Geometric-mean IPC across the suite.
    pub ipc: f64,
    /// Power breakdown.
    pub power: PowerReport,
    /// Energy per instruction (J).
    pub epi: f64,
}

/// Sweeps depth 9→15 (critical-stage cutting) and reports energy per
/// instruction at each point.
pub fn energy_depth(kit: &TechKit, budget: SimBudget) -> Vec<EnergyDepthPoint> {
    let mut spec = CoreSpec::baseline();
    let mut out = Vec::new();
    for _ in 9..=15 {
        let synth = synthesize_core_cached(kit, &spec);
        let mut log_ipc = 0.0;
        let suite = [Workload::Dhrystone, Workload::Gzip, Workload::Mcf];
        for w in suite {
            let stats = measure_ipc_cached(&spec, w, budget.outer, budget.instructions);
            log_ipc += stats.ipc().max(1e-6).ln();
        }
        let ipc = (log_ipc / suite.len() as f64).exp();
        let power = core_power(kit, &spec, synth.frequency);
        let epi = energy_per_instruction(&power, ipc);
        out.push(EnergyDepthPoint {
            stages: spec.total_stages(),
            frequency: synth.frequency,
            ipc,
            power,
            epi,
        });
        spec = split_critical(kit, &spec).0;
    }
    out
}

/// One row of the parallel-array extension.
#[derive(Debug, Clone)]
pub struct ParallelPoint {
    /// Cores in the array.
    pub cores: usize,
    /// Aggregate throughput (instructions/s).
    pub throughput: f64,
    /// Total area (µm²).
    pub area_um2: f64,
    /// Total power (W).
    pub power_w: f64,
    /// Throughput per watt.
    pub ops_per_joule: f64,
}

/// Evaluates arrays of 1..=`max_cores` baseline organic cores on an
/// embarrassingly parallel sensing workload (each core runs its own
/// stream), reporting aggregate throughput / area / power.
pub fn parallel_array(kit: &TechKit, max_cores: usize, budget: SimBudget) -> Vec<ParallelPoint> {
    let spec = CoreSpec::baseline();
    let synth = synthesize_core_cached(kit, &spec);
    let stats = measure_ipc_cached(&spec, Workload::Gzip, budget.outer, budget.instructions);
    let per_core = performance(stats.ipc(), synth.frequency);
    let power = core_power(kit, &spec, synth.frequency).total_w();
    (1..=max_cores)
        .map(|n| {
            let throughput = per_core * n as f64;
            let power_w = power * n as f64;
            ParallelPoint {
                cores: n,
                throughput,
                area_um2: synth.area_um2 * n as f64,
                power_w,
                ops_per_joule: throughput / power_w,
            }
        })
        .collect()
}

/// Synthesis summary of the scalar in-order core (the Myny-class machine):
/// five stages — fetch, decode, execute, mem, retire — with no rename,
/// window or multi-ported register file.
#[derive(Debug, Clone, Copy)]
pub struct SimpleCoreSynth {
    /// Clock (Hz).
    pub frequency: f64,
    /// Cell area (µm²).
    pub area_um2: f64,
    /// Total power at that clock (W).
    pub power_w: f64,
}

/// Synthesizes the five-stage scalar in-order core.
pub fn synthesize_simple_core(kit: &TechKit) -> SimpleCoreSynth {
    use bdc_synth::sta::analyze;
    let stages = [
        StageKind::Fetch,
        StageKind::Decode,
        StageKind::Execute,
        StageKind::Mem,
        StageKind::Retire,
    ];
    let mut worst = 0.0f64;
    let mut area = 0.0;
    let mut static_w = 0.0;
    let mut switch_j = 0.0;
    for kind in stages {
        let net = stage_netlist(kind, 1, 3);
        let r = analyze(&net, &kit.lib, &kit.sta);
        worst = worst.max(r.max_arrival);
        area += r.area_um2;
        let p = estimate_power(&net, &kit.lib, 0, 1.0, CORE_ACTIVITY);
        static_w += p.static_w;
        switch_j += p.dynamic_w; // at 1 Hz this is energy per second per Hz
    }
    let dff = kit.lib.cell(bdc_cells::CellKind::Dff);
    let regs = 60 * stages.len();
    area += regs as f64 * dff.area;
    static_w += regs as f64 * dff.leakage_w;
    switch_j += regs as f64 * dff.switching_energy * (0.5 + 0.5 * CORE_ACTIVITY);
    let seq = kit.lib.dff.setup + kit.lib.dff.clk_to_q * (1.0 + kit.pipe.skew_fraction);
    let placement = kit.sta.placement.place_area(area, 4000);
    let fb = kit.sta.placement.crossing_length(&placement, 1.0);
    let wire = kit
        .lib
        .wire
        .delay(fb, kit.lib.drive_resistance() / kit.pipe.driver_upsize);
    let period = worst + seq + wire;
    let frequency = 1.0 / period;
    SimpleCoreSynth {
        frequency,
        area_um2: area,
        power_w: static_w + switch_j * frequency,
    }
}

/// One row of the in-order-vs-OoO comparison.
#[derive(Debug, Clone)]
pub struct CoreStyleRow {
    /// Label ("OoO baseline" / "in-order").
    pub label: String,
    /// Single-core throughput (instructions/s).
    pub throughput: f64,
    /// Core area (µm²).
    pub area_um2: f64,
    /// Core power (W).
    pub power_w: f64,
    /// Cores that fit in the OoO core's area budget.
    pub cores_per_budget: f64,
    /// Aggregate throughput at iso-area (instructions/s).
    pub iso_area_throughput: f64,
}

/// The §7 parallelism question, sharpened: for an embarrassingly parallel
/// workload on a fixed panel budget, do many simple in-order organic cores
/// beat one out-of-order core?
pub fn inorder_vs_ooo(kit: &TechKit, budget: SimBudget) -> Vec<CoreStyleRow> {
    use bdc_uarch::{build_workload, InOrderConfig, InOrderCore};
    let w = Workload::Gzip;
    // OoO baseline.
    let spec = CoreSpec::baseline();
    let synth = synthesize_core_cached(kit, &spec);
    let ooo_stats = measure_ipc_cached(&spec, w, budget.outer, budget.instructions);
    let ooo_perf = performance(ooo_stats.ipc(), synth.frequency);
    let ooo_power = core_power(kit, &spec, synth.frequency).total_w();

    // In-order core: slower clock path is shorter (5 stages), IPC lower.
    let simple = synthesize_simple_core(kit);
    let program = build_workload(w, budget.outer);
    let mut io = InOrderCore::new(&program, InOrderConfig::default(), w.memory_words());
    let io_stats = io.run(budget.instructions);
    let io_perf = performance(io_stats.ipc(), simple.frequency);

    let ratio = synth.area_um2 / simple.area_um2;
    vec![
        CoreStyleRow {
            label: "OoO baseline".into(),
            throughput: ooo_perf,
            area_um2: synth.area_um2,
            power_w: ooo_power,
            cores_per_budget: 1.0,
            iso_area_throughput: ooo_perf,
        },
        CoreStyleRow {
            label: "scalar in-order".into(),
            throughput: io_perf,
            area_um2: simple.area_um2,
            power_w: simple.power_w,
            cores_per_budget: ratio,
            iso_area_throughput: io_perf * ratio,
        },
    ]
}

/// One life-stage point of the degradation study.
#[derive(Debug, Clone, Copy)]
pub struct DegradationPoint {
    /// Mission-life fraction (0 = fresh, 1 = end of mission).
    pub life: f64,
    /// FO4-like inverter delay at this life stage (s).
    pub delay: f64,
    /// Peak VTC gain.
    pub gain: f64,
    /// Maximum-equal-criterion noise margin (V).
    pub nm_mec: f64,
    /// Whether the cell is still regenerative (gain > 1 with nonzero NM).
    pub functional: bool,
}

/// The *transient electronics* question the paper's intro poses: a
/// biodegradable circuit must work over a prescribed mission window while
/// its devices decay. This sweep ages the pseudo-E inverter across its
/// life and reports delay/gain/noise-margin — from which a designer reads
/// the end-of-life clock guardband and the functional-failure point.
///
/// # Errors
/// Propagates simulator failures.
pub fn degradation_sweep(lives: &[f64]) -> Result<Vec<DegradationPoint>, CircuitError> {
    use bdc_cells::{characterize_gate, organic_inverter_aged, CharacterizeConfig};
    let sizing = OrganicSizing::library_default();
    let mut out = Vec::with_capacity(lives.len());
    for &life in lives {
        let gate = organic_inverter_aged(OrganicStyle::PseudoE, &sizing, 5.0, -15.0, life);
        let dc = measure_inverter_dc(&gate, 81)?;
        let cfg = CharacterizeConfig {
            slews: vec![60.0e-6],
            loads: vec![4.0 * gate.input_cap],
            ..CharacterizeConfig::organic()
        };
        let delay = match characterize_gate(&gate, &cfg) {
            Ok(t) => t.delay_worst().lookup(60.0e-6, 4.0 * gate.input_cap),
            Err(CircuitError::NoConvergence { .. }) => f64::INFINITY,
            Err(e) => return Err(e),
        };
        out.push(DegradationPoint {
            life,
            delay,
            gain: dc.max_gain,
            nm_mec: dc.nm_mec,
            functional: dc.max_gain > 1.0 && dc.nm_mec > 0.05 && delay.is_finite(),
        });
    }
    Ok(out)
}

/// The end-of-life clock guardband: `delay(worst functional life) /
/// delay(fresh)` — how much slower a mission-long design must clock.
pub fn degradation_guardband(points: &[DegradationPoint]) -> f64 {
    let fresh = points.first().map(|p| p.delay).unwrap_or(f64::NAN);
    points
        .iter()
        .filter(|p| p.functional)
        .map(|p| p.delay)
        .fold(fresh, f64::max)
        / fresh
}

/// Result of the variation/compensation study.
#[derive(Debug, Clone)]
pub struct VariationStudy {
    /// Sampled `(ΔV_T, V_M)` pairs before compensation.
    pub raw: Vec<(f64, f64)>,
    /// V_M standard deviation before compensation (V).
    pub sigma_before: f64,
    /// V_M standard deviation after per-sample V_SS retuning (V).
    pub sigma_after: f64,
    /// The V_M-vs-V_SS slope used for compensation.
    pub slope: f64,
}

/// Monte-Carlo V_T spread → V_M spread → V_SS compensation.
///
/// Samples `n` inverters with the paper's "within 0.5 V" spread, measures
/// each V_M, then retunes each sample's V_SS using the Figure 8 linear
/// relationship and re-measures.
///
/// # Errors
/// Propagates simulator failures.
pub fn variation_tuning(n: usize, seed: u64) -> Result<VariationStudy, CircuitError> {
    let sizing = OrganicSizing::library_default();
    let vdd = 5.0;
    let vss0 = -15.0;
    // Measure the compensation slope once (nominal device).
    let fig08 = crate::experiments::fig08_vss_regression()?;
    let slope = fig08.slope;
    let target = vdd / 2.0;

    // Simple deterministic normal sampler (Box-Muller over an LCG).
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next_unit = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64).clamp(1e-12, 1.0)
    };
    let sigma_vt = 0.5 / 3.0;

    // Draw every ΔV_T serially first (the LCG stream is sequential), then
    // fan the expensive DC measurements out on the pool — each sample is a
    // pure function of its ΔV_T, so the result is order-independent and
    // bit-identical to the serial loop.
    let dvts: Vec<f64> = (0..n)
        .map(|_| {
            let u1 = next_unit();
            let u2 = next_unit();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            sigma_vt * z
        })
        .collect();
    let measured: Vec<Result<(f64, f64), CircuitError>> = bdc_exec::par_map(&dvts, |&dvt| {
        let gate = organic_inverter_shifted(OrganicStyle::PseudoE, &sizing, vdd, vss0, dvt);
        let vm = measure_inverter_dc(&gate, 61)?.vm;
        // Retune V_SS to pull V_M back to VDD/2 using the linear law.
        let vss_new = (vss0 + (target - vm) / slope).clamp(-25.0, -8.0);
        let gate2 = organic_inverter_shifted(OrganicStyle::PseudoE, &sizing, vdd, vss_new, dvt);
        Ok((vm, measure_inverter_dc(&gate2, 61)?.vm))
    });
    let mut raw = Vec::with_capacity(n);
    let mut tuned = Vec::with_capacity(n);
    for (dvt, r) in dvts.iter().zip(measured) {
        let (vm, vm_tuned) = r?;
        raw.push((*dvt, vm));
        tuned.push(vm_tuned);
    }
    let sigma = |v: &[f64]| {
        let m = v.iter().sum::<f64>() / v.len() as f64;
        (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (v.len() as f64 - 1.0)).sqrt()
    };
    let before: Vec<f64> = raw.iter().map(|r| r.1).collect();
    Ok(VariationStudy {
        sigma_before: sigma(&before),
        sigma_after: sigma(&tuned),
        raw,
        slope,
    })
}

/// The canonical extension drivers this module exports (see
/// [`crate::experiments::driver_names`] for the contract). Internal
/// building blocks ([`core_power`], [`synthesize_simple_core`]) are
/// deliberately absent.
pub fn driver_names() -> &'static [&'static str] {
    &[
        "energy_depth",
        "parallel_array",
        "inorder_vs_ooo",
        "degradation_sweep",
        "degradation_guardband",
        "variation_tuning",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Process;

    #[test]
    fn core_power_is_positive_and_static_dominates_organic() {
        let kit = TechKit::synthetic(Process::Organic);
        let spec = CoreSpec::baseline();
        let p = core_power(&kit, &spec, 10.0);
        assert!(p.total_w() > 0.0);
        assert!(
            p.static_fraction() > 0.8,
            "organic static fraction {}",
            p.static_fraction()
        );
        let si = TechKit::synthetic(Process::Silicon);
        let p_si = core_power(&si, &spec, 1.0e9);
        assert!(
            p_si.static_fraction() < 0.6,
            "silicon static fraction {}",
            p_si.static_fraction()
        );
    }

    #[test]
    fn parallel_array_scales_linearly() {
        let kit = TechKit::synthetic(Process::Organic);
        let pts = parallel_array(&kit, 4, SimBudget::quick());
        assert_eq!(pts.len(), 4);
        assert!((pts[3].throughput / pts[0].throughput - 4.0).abs() < 1e-9);
        // Perf/W is constant for an ideal array.
        assert!((pts[3].ops_per_joule / pts[0].ops_per_joule - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inorder_array_wins_iso_area_on_organic() {
        let kit = TechKit::synthetic(Process::Organic);
        let rows = inorder_vs_ooo(&kit, SimBudget::quick());
        assert_eq!(rows.len(), 2);
        // The simple core is much smaller...
        assert!(rows[1].area_um2 < 0.6 * rows[0].area_um2);
        // ...and wins aggregate throughput at iso-area.
        assert!(rows[1].iso_area_throughput > rows[0].iso_area_throughput);
        // But loses single-stream.
        assert!(rows[1].throughput < rows[0].throughput * 1.5);
    }

    #[test]
    fn degradation_slows_and_eventually_breaks_the_cell() {
        let pts = degradation_sweep(&[0.0, 0.5, 1.0]).expect("sweep");
        assert!(pts[0].functional, "fresh cell must work");
        assert!(pts[1].delay > pts[0].delay, "aging must slow the cell");
        assert!(pts[1].gain <= pts[0].gain + 0.2);
        let gb = degradation_guardband(&pts);
        assert!(gb >= 1.2, "guardband {gb:.2} should be significant");
    }

    #[test]
    fn variation_compensation_shrinks_vm_spread() {
        let study = variation_tuning(10, 42).expect("monte carlo");
        assert_eq!(study.raw.len(), 10);
        assert!(
            study.sigma_before > 0.01,
            "spread before {}",
            study.sigma_before
        );
        assert!(
            study.sigma_after < 0.6 * study.sigma_before,
            "compensation: {} -> {}",
            study.sigma_before,
            study.sigma_after
        );
    }
}
