//! One driver per figure/table of the paper's evaluation.
//!
//! Every driver returns a structured result; the `bdc-bench` binaries print
//! them in the paper's layout. See DESIGN.md §4 for the experiment index.

use bdc_cells::{
    cmos_gate, library::cell_summary, measure_inverter_dc, organic_inverter, CellKind, DcSummary,
    LogicKind, OrganicSizing, OrganicStyle,
};
use bdc_circuit::CircuitError;
use bdc_device::{
    extract_metrics, fit_level1, fit_level61, transfer_curve, DeviceMetrics, Level61Model,
    TftParams, TransferPoint,
};
use bdc_synth::pipeline::PipelineResult;
use bdc_uarch::Workload;

use bdc_exec::par_map;

use crate::corespec::{CoreSpec, StageKind};
use crate::flow::{
    alu_cluster, measure_ipc_cached, performance, pipeline_alu_cached, split_critical,
    synthesize_core_cached, SynthesizedCore,
};
use crate::process::{Process, TechKit};

/// Simulation budget for IPC measurements.
#[derive(Debug, Clone, Copy)]
pub struct SimBudget {
    /// Outer-loop iterations handed to the workload builders.
    pub outer: u32,
    /// Retired-instruction cap per run.
    pub instructions: u64,
}

impl SimBudget {
    /// The budget used for the published numbers (~10⁵ instructions per
    /// configuration — SimPoint-like sampling of the kernels).
    pub fn full() -> Self {
        SimBudget {
            outer: 400,
            instructions: 120_000,
        }
    }

    /// A fast budget for tests.
    pub fn quick() -> Self {
        SimBudget {
            outer: 25,
            instructions: 12_000,
        }
    }

    /// The default non-quick budget the experiment catalogue runs at — the
    /// historical `bdc-bench` binary default, between [`SimBudget::quick`]
    /// and the published [`SimBudget::full`].
    pub fn standard() -> Self {
        SimBudget {
            outer: 150,
            instructions: 60_000,
        }
    }
}

// ---------------------------------------------------------------------------
// Figure 3: device transfer characteristics
// ---------------------------------------------------------------------------

/// Figure 3: `I_D–V_GS` (and gate leakage) of the pentacene OTFT at
/// V_DS = −1 V and −10 V, plus the §4.1 scalar metrics.
#[derive(Debug, Clone)]
pub struct Fig03 {
    /// Drain current vs V_GS at V_DS = −1 V.
    pub id_vds1: Vec<TransferPoint>,
    /// Drain current vs V_GS at V_DS = −10 V.
    pub id_vds10: Vec<TransferPoint>,
    /// Gate leakage vs V_GS.
    pub ig: Vec<(f64, f64)>,
    /// Extracted metrics (µ_lin, V_T, SS, on/off).
    pub metrics: DeviceMetrics,
}

/// Runs the Figure 3 sweep.
///
/// # Errors
/// Propagates metric-extraction failures (cannot happen for the nominal
/// device).
pub fn fig03_transfer() -> Result<Fig03, bdc_device::FitError> {
    let params = TftParams::pentacene();
    let model = Level61Model::new(params.clone());
    let id_vds1 = transfer_curve(&model, -1.0, 10.0, -10.0, 201);
    let id_vds10 = transfer_curve(&model, -10.0, 10.0, -10.0, 201);
    let ig = id_vds1
        .iter()
        .map(|p| (p.vgs, model.gate_leakage(p.vgs)))
        .collect();
    let metrics = extract_metrics(&id_vds1, -1.0, params.ci, params.aspect())?;
    Ok(Fig03 {
        id_vds1,
        id_vds10,
        ig,
        metrics,
    })
}

// ---------------------------------------------------------------------------
// Figure 4: level 1 vs level 61 fits
// ---------------------------------------------------------------------------

/// Figure 4: both SPICE models fitted to the measured transfer curve.
#[derive(Debug, Clone)]
pub struct Fig04 {
    /// The synthetic “measured” curve (level-61 nominal + SMU noise).
    pub measured: Vec<TransferPoint>,
    /// Level-1 fit RMS error (decades of current).
    pub level1_rms: f64,
    /// Level-61 fit RMS error (decades of current).
    pub level61_rms: f64,
    /// Level-1 fitted curve.
    pub level1_curve: Vec<TransferPoint>,
    /// Level-61 fitted curve.
    pub level61_curve: Vec<TransferPoint>,
}

/// Runs the Figure 4 fitting experiment at V_DS = −1 V.
///
/// # Errors
/// Propagates fitting failures.
pub fn fig04_model_fit(seed: u64) -> Result<Fig04, bdc_device::FitError> {
    let geometry = TftParams::pentacene();
    let measured = bdc_device::variation::synthetic_measured_curve(&geometry, -1.0, 161, seed);
    let (_, r1) = fit_level1(&measured, -1.0, &geometry)?;
    let (_, r61) = fit_level61(&measured, -1.0, &geometry)?;
    Ok(Fig04 {
        measured,
        level1_rms: r1.rms_log_error,
        level61_rms: r61.rms_log_error,
        level1_curve: r1.fitted,
        level61_curve: r61.fitted,
    })
}

// ---------------------------------------------------------------------------
// Figures 6/7: inverter DC comparisons
// ---------------------------------------------------------------------------

/// One row of the Fig 6(d)/7(d) DC tables.
#[derive(Debug, Clone)]
pub struct InverterRow {
    /// Row label (style or VDD).
    pub label: String,
    /// VDD (V).
    pub vdd: f64,
    /// VSS (V), 0 when unused.
    pub vss: f64,
    /// The DC summary.
    pub dc: DcSummary,
}

/// Figure 6: diode-load vs biased-load vs pseudo-E at VDD = 15 V.
///
/// # Errors
/// Propagates simulator failures.
pub fn fig06_inverters() -> Result<Vec<InverterRow>, CircuitError> {
    let sizing = OrganicSizing::library_default();
    let cases = [
        ("diode-load", OrganicStyle::DiodeLoad, 15.0, 0.0),
        ("biased-load", OrganicStyle::BiasedLoad, 15.0, -5.0),
        ("pseudo-E", OrganicStyle::PseudoE, 15.0, -15.0),
    ];
    cases
        .into_iter()
        .map(|(label, style, vdd, vss)| {
            let gate = organic_inverter(style, &sizing, vdd, vss);
            Ok(InverterRow {
                label: label.to_string(),
                vdd,
                vss,
                dc: measure_inverter_dc(&gate, 151)?,
            })
        })
        .collect()
}

/// Figure 7: the pseudo-E inverter at VDD = 5, 10, 15 V (VSS tuned per the
/// paper's table).
///
/// # Errors
/// Propagates simulator failures.
pub fn fig07_vdd_sweep() -> Result<Vec<InverterRow>, CircuitError> {
    let sizing = OrganicSizing::library_default();
    [(5.0, -15.0), (10.0, -20.0), (15.0, -15.0)]
        .into_iter()
        .map(|(vdd, vss)| {
            let gate = organic_inverter(OrganicStyle::PseudoE, &sizing, vdd, vss);
            Ok(InverterRow {
                label: format!("VDD={vdd}V"),
                vdd,
                vss,
                dc: measure_inverter_dc(&gate, 151)?,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 8: V_M vs V_SS
// ---------------------------------------------------------------------------

/// Figure 8: switching threshold vs V_SS with the linear regression.
#[derive(Debug, Clone)]
pub struct Fig08 {
    /// `(V_SS, V_M)` samples.
    pub points: Vec<(f64, f64)>,
    /// Regression slope (V_M per volt of V_SS).
    pub slope: f64,
    /// Regression intercept (V).
    pub intercept: f64,
}

/// Runs the V_SS sweep at VDD = 5 V.
///
/// # Errors
/// Propagates simulator failures.
pub fn fig08_vss_regression() -> Result<Fig08, CircuitError> {
    let sizing = OrganicSizing::library_default();
    let mut points = Vec::new();
    for i in 0..6 {
        let vss = -10.0 - 2.0 * i as f64;
        let gate = organic_inverter(OrganicStyle::PseudoE, &sizing, 5.0, vss);
        let dc = measure_inverter_dc(&gate, 121)?;
        points.push((vss, dc.vm));
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    Ok(Fig08 {
        points,
        slope,
        intercept,
    })
}

// ---------------------------------------------------------------------------
// §4.4 library summary table
// ---------------------------------------------------------------------------

/// Library summary rows: `(cell, area µm², input cap F, nominal delay s)`.
pub fn table_library(kit: &TechKit) -> Vec<(String, f64, f64, f64)> {
    cell_summary(&kit.lib)
}

/// The §5.5 mapping observation: whether each library prefers decomposing
/// its 3-input cells. Returns `(nand3_decomposed, nor3_decomposed)`.
pub fn table_mapping_preference(kit: &TechKit) -> (bool, bool) {
    (
        bdc_synth::map::prefers_decomposition(&kit.lib, CellKind::Nand3),
        bdc_synth::map::prefers_decomposition(&kit.lib, CellKind::Nor3),
    )
}

/// DC check rows comparing organic pseudo-E and silicon CMOS inverters at
/// their library operating points (used by the quickstart example).
///
/// # Errors
/// Propagates simulator failures.
pub fn table_inverter_dc() -> Result<(DcSummary, DcSummary), CircuitError> {
    let org = organic_inverter(
        OrganicStyle::PseudoE,
        &OrganicSizing::library_default(),
        5.0,
        -15.0,
    );
    let si = cmos_gate(LogicKind::Inv, 450.0e-9, 1.0);
    Ok((
        measure_inverter_dc(&org, 121)?,
        measure_inverter_dc(&si, 121)?,
    ))
}

// ---------------------------------------------------------------------------
// Figure 12: ALU pipeline depth
// ---------------------------------------------------------------------------

/// Figure 12: the complex ALU pipelined to each depth.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// Stage counts swept.
    pub stages: Vec<usize>,
    /// Per-depth results (area, frequency, registers, …).
    pub results: Vec<PipelineResult>,
}

impl Fig12 {
    /// Frequencies normalized to the first depth.
    pub fn normalized_frequency(&self) -> Vec<f64> {
        let f0 = self.results[0].frequency;
        self.results.iter().map(|r| r.frequency / f0).collect()
    }

    /// Areas normalized to the first depth.
    pub fn normalized_area(&self) -> Vec<f64> {
        let a0 = self.results[0].area_um2;
        self.results.iter().map(|r| r.area_um2 / a0).collect()
    }
}

/// Sweeps the complex ALU over `stages` (the paper plots 1–30). Every
/// depth is an independent pipeline cut of the same block, so the sweep
/// fans out on the pool; each cut is memoized through the stage cache
/// (keyed by library and netlist fingerprints), so a sweep point whose
/// library did not move replays its cuts from disk.
pub fn fig12_alu_depth(kit: &TechKit, stages: &[usize]) -> Fig12 {
    let alu = alu_cluster();
    let results = par_map(stages, |&s| pipeline_alu_cached(kit, &alu, s));
    Fig12 {
        stages: stages.to_vec(),
        results,
    }
}

// ---------------------------------------------------------------------------
// Figure 11: core pipeline depth
// ---------------------------------------------------------------------------

/// One depth point of the Figure 11 experiment.
#[derive(Debug, Clone)]
pub struct CoreDepthPoint {
    /// Total pipeline stages.
    pub stages: usize,
    /// Which stage was split to reach this point (None for baseline).
    pub split: Option<StageKind>,
    /// Synthesis result.
    pub synth: SynthesizedCore,
    /// Per-workload `(ipc, performance)`.
    pub per_workload: Vec<(Workload, f64, f64)>,
}

/// Figure 11 for one process: deepen 9 → 15 by cutting the critical stage,
/// synthesize, and simulate every benchmark.
///
/// The spec chain is inherently serial (each split cuts the *previous*
/// point's critical stage), so it is built first with cached synthesis;
/// the expensive part — one OoO simulation per (depth, workload) — is then
/// a flat list of independent pure tasks fanned out on the pool.
pub fn fig11_core_depth(kit: &TechKit, budget: SimBudget) -> Vec<CoreDepthPoint> {
    let mut specs = Vec::new();
    let mut splits: Vec<Option<StageKind>> = vec![None];
    let mut spec = CoreSpec::baseline();
    for depth in 9..=15 {
        specs.push(spec.clone());
        if depth < 15 {
            let (deeper, cut) = split_critical(kit, &spec);
            spec = deeper;
            splits.push(Some(cut));
        }
    }
    let synths: Vec<SynthesizedCore> = specs
        .iter()
        .map(|s| synthesize_core_cached(kit, s))
        .collect();
    let sims: Vec<(usize, Workload)> = specs
        .iter()
        .enumerate()
        .flat_map(|(i, _)| Workload::all().into_iter().map(move |w| (i, w)))
        .collect();
    let ipcs = par_map(&sims, |&(i, w)| {
        measure_ipc_cached(&specs[i], w, budget.outer, budget.instructions).ipc()
    });
    let n_workloads = Workload::all().len();
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| CoreDepthPoint {
            stages: s.total_stages(),
            split: splits[i],
            per_workload: sims[i * n_workloads..(i + 1) * n_workloads]
                .iter()
                .zip(&ipcs[i * n_workloads..(i + 1) * n_workloads])
                .map(|(&(_, w), &ipc)| (w, ipc, performance(ipc, synths[i].frequency)))
                .collect(),
            synth: synths[i].clone(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 13/14: superscalar width matrices
// ---------------------------------------------------------------------------

/// The width-matrix experiment: fe ∈ 1..=6 × be ∈ 3..=7.
#[derive(Debug, Clone)]
pub struct WidthMatrix {
    /// Front-end widths (columns).
    pub fe: Vec<usize>,
    /// Back-end pipe counts (rows).
    pub be: Vec<usize>,
    /// `perf[row][col]` — normalized performance per process:
    /// `[organic-or-single]`; see `fig13_width`.
    pub perf: Vec<Vec<f64>>,
    /// `area[row][col]` — normalized area.
    pub area: Vec<Vec<f64>>,
    /// `freq[row][col]` — absolute clock (Hz).
    pub freq: Vec<Vec<f64>>,
    /// `ipc[row][col]` — geometric-mean IPC (process-independent).
    pub ipc: Vec<Vec<f64>>,
}

impl WidthMatrix {
    /// The `(be, fe)` cell with the highest normalized performance.
    pub fn optimum(&self) -> (usize, usize) {
        let mut best = (self.be[0], self.fe[0]);
        let mut best_v = f64::MIN;
        for (r, &b) in self.be.iter().enumerate() {
            for (c, &f) in self.fe.iter().enumerate() {
                if self.perf[r][c] > best_v {
                    best_v = self.perf[r][c];
                    best = (b, f);
                }
            }
        }
        best
    }
}

/// Mean IPC across the benchmark suite for every width point
/// (process-independent, so it is computed once and shared).
///
/// Every `(be, fe, workload)` simulation is independent, so the whole
/// matrix is one flat fan-out; the geometric mean then folds each cell's
/// workloads in `Workload::all()` order, exactly as the serial loop did —
/// the result is bit-identical for any worker count.
pub fn width_ipc_matrix(fe: &[usize], be: &[usize], budget: SimBudget) -> Vec<Vec<f64>> {
    let all = Workload::all();
    let cells: Vec<(usize, usize)> = be
        .iter()
        .flat_map(|&b| fe.iter().map(move |&f| (f, b)))
        .collect();
    let sims: Vec<((usize, usize), Workload)> = cells
        .iter()
        .flat_map(|&cell| all.into_iter().map(move |w| (cell, w)))
        .collect();
    let ipcs = par_map(&sims, |&((f, b), w)| {
        let spec = CoreSpec::with_widths(f, b);
        measure_ipc_cached(&spec, w, budget.outer, budget.instructions).ipc()
    });
    let nw = all.len();
    let mut rows = Vec::with_capacity(be.len());
    for r in 0..be.len() {
        let mut row = Vec::with_capacity(fe.len());
        for c in 0..fe.len() {
            let cell = (r * fe.len() + c) * nw;
            let mut log_sum = 0.0;
            for ipc in &ipcs[cell..cell + nw] {
                log_sum += ipc.max(1e-6).ln();
            }
            row.push((log_sum / nw as f64).exp());
        }
        rows.push(row);
    }
    rows
}

/// Figures 13+14 for one process, given the shared IPC matrix.
pub fn fig13_14_width(kit: &TechKit, ipc: &[Vec<f64>]) -> WidthMatrix {
    let fe: Vec<usize> = (1..=6).collect();
    let be: Vec<usize> = (3..=7).collect();
    let mut perf = vec![vec![0.0; fe.len()]; be.len()];
    let mut area = vec![vec![0.0; fe.len()]; be.len()];
    let mut freq = vec![vec![0.0; fe.len()]; be.len()];
    // All 30 width configs synthesize independently (and hit the artifact
    // cache when warm).
    let cells: Vec<(usize, usize)> = be
        .iter()
        .flat_map(|&b| fe.iter().map(move |&f| (f, b)))
        .collect();
    let synths = par_map(&cells, |&(f, b)| {
        synthesize_core_cached(kit, &CoreSpec::with_widths(f, b))
    });
    for (i, synth) in synths.iter().enumerate() {
        let (r, c) = (i / fe.len(), i % fe.len());
        freq[r][c] = synth.frequency;
        area[r][c] = synth.area_um2;
        perf[r][c] = performance(ipc[r][c], synth.frequency);
    }
    // Normalize to maxima, like the paper's matrices.
    let pmax = perf.iter().flatten().copied().fold(f64::MIN, f64::max);
    let amax = area.iter().flatten().copied().fold(f64::MIN, f64::max);
    for r in 0..be.len() {
        for c in 0..fe.len() {
            perf[r][c] /= pmax;
            area[r][c] /= amax;
        }
    }
    WidthMatrix {
        fe,
        be,
        perf,
        area,
        freq,
        ipc: ipc.to_vec(),
    }
}

// ---------------------------------------------------------------------------
// Figure 15: wire ablation
// ---------------------------------------------------------------------------

/// Figure 15: frequency vs stages with and without wire cost.
#[derive(Debug, Clone)]
pub struct Fig15 {
    /// Stage axis for the ALU sweep.
    pub alu_stages: Vec<usize>,
    /// `(with wire, without wire)` normalized ALU frequencies.
    pub alu: (Vec<f64>, Vec<f64>),
    /// Stage axis for the core sweep (9–15).
    pub core_stages: Vec<usize>,
    /// `(with wire, without wire)` normalized core frequencies.
    pub core: (Vec<f64>, Vec<f64>),
}

/// Runs the ablation for one process.
pub fn fig15_wire_ablation(kit: &TechKit, alu_stages: &[usize]) -> Fig15 {
    let ideal = kit.without_wires();
    let with = fig12_alu_depth(kit, alu_stages);
    let without = fig12_alu_depth(&ideal, alu_stages);

    let core_curve = |k: &TechKit| -> Vec<f64> {
        let mut spec = CoreSpec::baseline();
        let mut freqs = Vec::new();
        for _ in 9..=15 {
            freqs.push(synthesize_core_cached(k, &spec).frequency);
            let (deeper, _) = split_critical(k, &spec);
            spec = deeper;
        }
        let f0 = freqs[0];
        freqs.into_iter().map(|f| f / f0).collect()
    };
    Fig15 {
        alu_stages: alu_stages.to_vec(),
        alu: (with.normalized_frequency(), without.normalized_frequency()),
        core_stages: (9..=15).collect(),
        core: (core_curve(kit), core_curve(&ideal)),
    }
}

// ---------------------------------------------------------------------------
// §5.3 baseline frequencies
// ---------------------------------------------------------------------------

/// Baseline (9-stage, single-issue) clock per process.
pub fn table_baseline_frequency(kit: &TechKit) -> SynthesizedCore {
    synthesize_core_cached(kit, &CoreSpec::baseline())
}

/// Convenience for callers that only need the process pair label.
pub fn process_pair() -> [Process; 2] {
    Process::both()
}

/// The canonical experiment drivers this module exports — one name per
/// public driver that produces (part of) a figure or table. The registry
/// completeness test asserts every name here is claimed by exactly one
/// registered node. Helpers that are not figure/table drivers
/// ([`table_inverter_dc`], [`process_pair`]) are deliberately absent.
pub fn driver_names() -> &'static [&'static str] {
    &[
        "fig03_transfer",
        "fig04_model_fit",
        "fig06_inverters",
        "fig07_vdd_sweep",
        "fig08_vss_regression",
        "fig11_core_depth",
        "fig12_alu_depth",
        "width_ipc_matrix",
        "fig13_14_width",
        "fig15_wire_ablation",
        "table_library",
        "table_mapping_preference",
        "table_baseline_frequency",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig03_reports_paper_metrics() {
        let f = fig03_transfer().expect("fig03");
        let mu = f.metrics.mu_lin * 1.0e4;
        assert!(mu > 0.05 && mu < 0.5, "µ_lin {mu}");
        assert!(f.metrics.on_off_ratio > 1.0e5);
        assert_eq!(f.id_vds1.len(), 201);
        // The V_DS = −10 V curve carries more current at strong V_GS.
        assert!(f.id_vds10.last().unwrap().id > f.id_vds1.last().unwrap().id);
    }

    #[test]
    fn fig04_level61_wins() {
        let f = fig04_model_fit(7).expect("fig04");
        assert!(
            f.level61_rms < 0.5 * f.level1_rms,
            "{} vs {}",
            f.level61_rms,
            f.level1_rms
        );
    }

    #[test]
    fn fig08_slope_is_positive_linear() {
        let f = fig08_vss_regression().expect("fig08");
        // V_M rises as V_SS rises toward zero (paper slope 0.22).
        assert!(f.slope > 0.02 && f.slope < 0.5, "slope {}", f.slope);
        // Good linearity: residuals small relative to range.
        for (vss, vm) in &f.points {
            let pred = f.intercept + f.slope * vss;
            assert!((pred - vm).abs() < 0.2, "vss {vss}: vm {vm} vs pred {pred}");
        }
    }

    #[test]
    fn fig12_synthetic_shapes() {
        let si = TechKit::synthetic(Process::Silicon);
        let org = TechKit::synthetic(Process::Organic);
        let stages = [1usize, 4, 8, 16, 22];
        let f_si = fig12_alu_depth(&si, &stages);
        let f_org = fig12_alu_depth(&org, &stages);
        let n_si = f_si.normalized_frequency();
        let n_org = f_org.normalized_frequency();
        // Both speed up; organic keeps more of its gain at depth.
        assert!(n_si[2] > 2.0 && n_org[2] > 2.0);
        assert!(n_org[4] / n_org[2] > n_si[4] / n_si[2]);
        // Area grows with depth for both.
        assert!(f_org.normalized_area()[4] > 1.1);
    }

    #[test]
    fn width_ipc_grows_with_width() {
        let budget = SimBudget::quick();
        let ipc = width_ipc_matrix(&[1, 2], &[3, 5], budget);
        assert!(ipc[1][1] > ipc[0][0], "{ipc:?}");
    }
}
