//! The synthesis/simulation flow: Figure 10 of the paper.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use bdc_cells::{CellKind, CellLibrary};
use bdc_exec::{artifact_flight, fnv1a, note_stage, ArtifactCache};
use bdc_synth::blocks;
use bdc_synth::gate::Netlist;
use bdc_synth::map::{prefers_decomposition, remap_for_library};
use bdc_synth::pipeline::{pipeline_cut, PipelineOptions, PipelineResult};
use bdc_synth::sta::analyze;
use bdc_uarch::{build_workload, OooCore, SimStats, Workload};

use bdc_lint::{lint_netlist, LintReport, Severity};

use crate::corespec::{stage_netlist, CoreSpec, StageKind};
use crate::process::{LintPolicy, TechKit};

/// Runs the gate-level static-analysis pass over a mapped netlist and
/// applies the kit's [`LintPolicy`]. Returns the report (empty under
/// [`LintPolicy::Off`]) so callers can surface diagnostics.
///
/// # Panics
/// Panics under [`LintPolicy::Deny`] when any Error-severity diagnostic
/// fires — a malformed netlist must not reach STA.
pub fn lint_gate(kit: &TechKit, netlist: &Netlist) -> LintReport {
    if kit.lint == LintPolicy::Off {
        return LintReport::new(netlist.name.clone());
    }
    let report = lint_netlist(netlist, &kit.lib, &kit.sta);
    match kit.lint {
        LintPolicy::Off => unreachable!(),
        LintPolicy::Warn => {
            if report.max_severity() >= Some(Severity::Warning) {
                eprintln!("bdc-lint: {}", report.summary());
            }
        }
        LintPolicy::Deny => {
            assert!(
                report.is_clean(),
                "bdc-lint rejected netlist before STA:\n{report}"
            );
        }
    }
    report
}

/// The complex-ALU block of the paper's first experiment (§5.2): two
/// pipelined multipliers and two dividers. The DesignWare dividers are
/// *stallable* (multi-cycle sequential) units, so only their per-cycle
/// conditional-subtract row participates in retiming; the multiplier arrays
/// carry the deep combinational path that pipeline cutting subdivides.
pub fn alu_cluster() -> Netlist {
    let mut n = Netlist::new("complex_alu");
    n.append(&blocks::array_multiplier(32), "mul0");
    n.append(&blocks::array_multiplier(32), "mul1");
    n.append(&blocks::divider_stage(32), "div0");
    n.append(&blocks::divider_stage(32), "div1");
    n
}

/// Pipelines a combinational block to `stages` against a kit's library,
/// remapping it for the library first.
pub fn pipeline_alu(kit: &TechKit, block: &Netlist, stages: usize) -> PipelineResult {
    let (mapped, mapped_fp) = mapped_for(block, block.fingerprint(), &kit.lib);
    lint_gate_once(kit, mapped_fp, &mapped);
    let opts = PipelineOptions { stages, ..kit.pipe };
    (*pipeline_cut_memoed(&mapped, mapped_fp, &kit.lib, &kit.sta, &opts)).clone()
}

/// A lazily-initialized in-process memo table, shared by the memoized
/// flow stages below.
type Memo<K, V> = Mutex<Option<BTreeMap<K, V>>>;

/// A memoized netlist paired with its structural fingerprint.
type FpNet = (Arc<Netlist>, u64);

/// In-process memo of a generated stage netlist: [`stage_netlist`] is a
/// pure function of its recipe, so each distinct (stage, width, pipes)
/// combination is generated once per process lifetime. Returns the netlist
/// and its structural fingerprint.
fn stage_block(kind: StageKind, fe_width: usize, be_pipes: usize) -> (Arc<Netlist>, u64) {
    static MEMO: Memo<(u8, usize, usize), FpNet> = Mutex::new(None);
    let key = (kind as u8, fe_width, be_pipes);
    let mut guard = MEMO.lock().unwrap_or_else(|p| p.into_inner());
    let map = guard.get_or_insert_with(BTreeMap::new);
    if let Some(hit) = map.get(&key) {
        return hit.clone();
    }
    let net = stage_netlist(kind, fe_width, be_pipes);
    let fp = net.fingerprint();
    let entry = (Arc::new(net), fp);
    map.insert(key, entry.clone());
    entry
}

/// In-process memo of a block's library-mapped form. The mapper depends on
/// the library only through its two decomposition decisions
/// ([`prefers_decomposition`] for NAND3 and NOR3), so the mapped structure
/// is keyed by the input netlist's structural fingerprint plus both
/// decisions — across a parameter sweep the decisions rarely flip, and the
/// remap is paid once per process lifetime instead of once per call.
/// Returns the mapped netlist and its structural fingerprint.
fn mapped_for(block: &Netlist, block_fp: u64, lib: &CellLibrary) -> (Arc<Netlist>, u64) {
    static MEMO: Memo<(u64, bool, bool), FpNet> = Mutex::new(None);
    let drop_nand3 = prefers_decomposition(lib, CellKind::Nand3);
    let drop_nor3 = prefers_decomposition(lib, CellKind::Nor3);
    let key = (block_fp, drop_nand3, drop_nor3);
    let mut guard = MEMO.lock().unwrap_or_else(|p| p.into_inner());
    let map = guard.get_or_insert_with(BTreeMap::new);
    if let Some(hit) = map.get(&key) {
        return hit.clone();
    }
    let (mapped, _) = remap_for_library(block, lib);
    let fp = mapped.fingerprint();
    let entry = (Arc::new(mapped), fp);
    map.insert(key, entry.clone());
    entry
}

/// In-process memo of [`analyze`] over a mapped netlist: STA is a pure
/// function of (netlist, library, config), so specs that share a stage's
/// mapped form — a depth sweep reuses every stage netlist, a width grid
/// reuses the width-independent stages — time it once per library instead
/// of once per spec. Keyed by both structural fingerprints plus the
/// config's `Debug` form.
fn analyze_memoed(
    mapped: &Netlist,
    mapped_fp: u64,
    lib: &CellLibrary,
    sta: &bdc_synth::sta::StaConfig,
) -> Arc<bdc_synth::sta::StaReport> {
    static MEMO: Memo<(u64, u64, u64), Arc<bdc_synth::sta::StaReport>> = Mutex::new(None);
    let key = (mapped_fp, lib.fingerprint(), fnv1a(&[&format!("{sta:?}")]));
    let mut guard = MEMO.lock().unwrap_or_else(|p| p.into_inner());
    let map = guard.get_or_insert_with(BTreeMap::new);
    if let Some(hit) = map.get(&key) {
        return hit.clone();
    }
    let report = Arc::new(analyze(mapped, lib, sta));
    map.insert(key, report.clone());
    report
}

/// In-process memo of [`pipeline_cut`], the retiming companion to
/// [`analyze_memoed`]: keyed by the mapped netlist's fingerprint, the
/// library's fingerprint, and the `Debug` form of both the STA config and
/// the cut options (which carry the stage count).
fn pipeline_cut_memoed(
    mapped: &Netlist,
    mapped_fp: u64,
    lib: &CellLibrary,
    sta: &bdc_synth::sta::StaConfig,
    opts: &PipelineOptions,
) -> Arc<PipelineResult> {
    static MEMO: Memo<(u64, u64, u64), Arc<PipelineResult>> = Mutex::new(None);
    let key = (
        mapped_fp,
        lib.fingerprint(),
        fnv1a(&[&format!("{sta:?}"), &format!("{opts:?}")]),
    );
    let mut guard = MEMO.lock().unwrap_or_else(|p| p.into_inner());
    let map = guard.get_or_insert_with(BTreeMap::new);
    if let Some(hit) = map.get(&key) {
        return hit.clone();
    }
    let result = Arc::new(pipeline_cut(mapped, lib, sta, opts));
    map.insert(key, result.clone());
    result
}

/// Runs [`lint_gate`] once per distinct (mapped netlist, library content,
/// policy) triple per process. The lint verdict is a pure function of all
/// three, so a repeat run could only re-emit the same diagnostics; a
/// [`LintPolicy::Deny`] violation still panics on first encounter, and any
/// change to the library or the policy re-runs the pass.
fn lint_gate_once(kit: &TechKit, mapped_fp: u64, mapped: &Netlist) {
    if kit.lint == LintPolicy::Off {
        return;
    }
    static SEEN: Mutex<Option<BTreeSet<(u64, u64, u8)>>> = Mutex::new(None);
    let policy = match kit.lint {
        LintPolicy::Off => 0u8,
        LintPolicy::Warn => 1,
        LintPolicy::Deny => 2,
    };
    let key = (mapped_fp, kit.lib.fingerprint(), policy);
    let first = SEEN
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .get_or_insert_with(BTreeSet::new)
        .insert(key);
    if first {
        lint_gate(kit, mapped);
    }
}

/// Per-stage synthesis summary.
#[derive(Debug, Clone)]
pub struct StageTiming {
    /// Which logical stage.
    pub kind: StageKind,
    /// Sub-stages after splitting.
    pub substages: usize,
    /// Worst per-substage logic delay (s).
    pub logic_delay: f64,
    /// Cell area of the stage (µm²), including retiming registers.
    pub area_um2: f64,
}

/// Result of synthesizing a whole core.
#[derive(Debug, Clone)]
pub struct SynthesizedCore {
    /// Minimum clock period (s).
    pub period: f64,
    /// Clock frequency (Hz).
    pub frequency: f64,
    /// Total area (µm²), including pipeline interface registers.
    pub area_um2: f64,
    /// Per-stage breakdown.
    pub stages: Vec<StageTiming>,
    /// The stage whose logic limits the clock.
    pub critical: StageKind,
    /// Sequential overhead charged per cycle (s).
    pub seq_overhead: f64,
    /// Feedback/control wire overhead charged per cycle (s).
    pub wire_overhead: f64,
}

/// Synthesizes a core design point: every stage's representative netlist is
/// mapped, timed (and internally pipelined where split), and the core's
/// clock is set by the worst stage plus sequential and feedback-wire
/// overheads. Feedback nets (stalls, flush, bypass broadcast) span more of
/// the die as the pipeline deepens and the back end widens.
pub fn synthesize_core(kit: &TechKit, spec: &CoreSpec) -> SynthesizedCore {
    let mut stages = Vec::new();
    let mut area = 0.0;
    let mut instances = 0usize;
    for kind in StageKind::all() {
        let (net, net_fp) = stage_block(kind, spec.fe_width, spec.be_pipes);
        let (mapped, mapped_fp) = mapped_for(&net, net_fp, &kit.lib);
        lint_gate_once(kit, mapped_fp, &mapped);
        let k = spec.substages(kind);
        let (logic, stage_area) = if k == 1 {
            let r = analyze_memoed(&mapped, mapped_fp, &kit.lib, &kit.sta);
            (r.max_arrival, r.area_um2)
        } else {
            let opts = PipelineOptions {
                stages: k,
                ..kit.pipe
            };
            let r = pipeline_cut_memoed(&mapped, mapped_fp, &kit.lib, &kit.sta, &opts);
            let worst = r.stage_logic.iter().copied().fold(0.0, f64::max);
            // The stage's boundary registers are accounted once, globally,
            // as interface registers below — keep only internal retiming
            // ranks here.
            let io_regs = (mapped.inputs().len() + mapped.outputs().len()) as f64
                * kit.lib.cell(CellKind::Dff).area;
            (worst, (r.area_um2 - io_regs).max(0.0))
        };
        instances += mapped.gates().len();
        area += stage_area;
        stages.push(StageTiming {
            kind,
            substages: k,
            logic_delay: logic,
            area_um2: stage_area,
        });
    }

    // Inter-stage interface registers: each boundary latches the in-flight
    // instruction group (payload scales with width).
    let iface_bits = 60 + 48 * spec.fe_width.max(spec.be_pipes - 2);
    let boundaries = spec.total_stages();
    let dff_area = kit.lib.cell(CellKind::Dff).area;
    area += (iface_bits * boundaries) as f64 * dff_area;
    instances += iface_bits * boundaries;

    // Memory arrays (not gate-synthesized but real area and wire span):
    // L1 caches, predictor tables, physical register file, IQ/ROB/LSQ
    // payload. Silicon uses 6T SRAM bit cells; the organic process has no
    // dense SRAM and stores bits in compact latches.
    let bit_area = match kit.process {
        crate::Process::Silicon => 0.5,
        crate::Process::Organic => kit.lib.cell(CellKind::Dff).area / 3.0,
    };
    let cache_bits = 2.0 * 8.0 * 1024.0 * 8.0 * 1.1; // two 8 KiB L1s + tags
    let pred_bits = (512 * 52 + 4096 * 2) as f64; // BTB + PHT
    let regfile_bits = 64.0 * 32.0 * (1.0 + 0.25 * (spec.be_pipes as f64 - 3.0));
    let window_bits = (32.0 + 64.0 + 16.0) * 80.0 * (1.0 + 0.15 * (spec.fe_width as f64 - 1.0));
    let array_bits = cache_bits + pred_bits + regfile_bits + window_bits;
    // Arrays enter the floorplan (wire spans) but not the reported cell
    // area: like the paper, Figure 11(a)/14 report synthesized cell area.
    let floorplan_area = area + array_bits * bit_area;
    let floorplan_instances = instances + (array_bits / 8.0) as usize;

    let placement = kit
        .sta
        .placement
        .place_area(floorplan_area, floorplan_instances);
    let seq_overhead = kit.lib.dff.setup + kit.lib.dff.clk_to_q * (1.0 + kit.pipe.skew_fraction);
    let span = kit.pipe.feedback_base
        + kit.pipe.feedback_per_stage * spec.total_stages() as f64
        + 0.55 * (spec.be_pipes as f64 - 3.0)
        + 0.50 * (spec.fe_width as f64 - 1.0);
    let fb_len = kit.sta.placement.crossing_length(&placement, span);
    let wire_overhead = kit
        .lib
        .wire
        .delay(fb_len, kit.lib.drive_resistance() / kit.pipe.driver_upsize);

    let (critical, worst_logic) =
        stages
            .iter()
            .map(|s| (s.kind, s.logic_delay))
            .fold(
                (StageKind::Fetch, 0.0),
                |acc, x| if x.1 > acc.1 { x } else { acc },
            );
    let period = worst_logic + seq_overhead + wire_overhead;
    SynthesizedCore {
        period,
        frequency: 1.0 / period,
        area_um2: area,
        stages,
        critical,
        seq_overhead,
        wire_overhead,
    }
}

/// Memoizing wrapper around [`synthesize_core`] through the workspace-wide
/// content-addressed [`ArtifactCache`]. The key hashes a schema salt, the
/// process, the characterized library's semantic fingerprint
/// ([`CellLibrary::fingerprint`] — so recharacterizing with a new grid,
/// new rails, or a different wire model invalidates every dependent
/// synthesis result), the [`CoreSpec`], and every synthesis setting
/// ([`StaConfig`](bdc_synth::sta::StaConfig) and [`PipelineOptions`] in
/// `Debug` form). The stored artifact round-trips every `f64` through its
/// bit pattern, so a cache hit is bit-identical to the synthesis it
/// replaced. Concurrent misses on one key are single-flighted: one worker
/// synthesizes, the rest wait and load.
pub fn synthesize_core_cached(kit: &TechKit, spec: &CoreSpec) -> SynthesizedCore {
    let cache = ArtifactCache::shared();
    let lib_fp = kit.lib.fingerprint();
    let key = fnv1a(&[
        "bdc-synth-v2",
        kit.process.name(),
        &format!("{lib_fp:016x}"),
        &format!("{spec:?}"),
        &format!("{:?}", kit.sta),
        &format!("{:?}", kit.pipe),
    ]);
    let name = format!("synth-{}", kit.process.name());
    let flight = artifact_flight(cache.root(), &name, key);
    let _in_flight = flight.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(text) = cache.load(&name, key) {
        if let Some(core) = parse_synth_text(&text) {
            note_stage(&name, true);
            return core;
        }
    }
    note_stage(&name, false);
    let core = synthesize_core(kit, spec);
    cache.store(&name, key, &write_synth_text(&core));
    core
}

/// Memoizing wrapper around [`pipeline_alu`] through the workspace-wide
/// content-addressed [`ArtifactCache`]. The key hashes a schema salt, the
/// process, the library's semantic fingerprint (like
/// [`synthesize_core_cached`] — recharacterization invalidates every
/// dependent cut), a structural fingerprint of the input block, the stage
/// count, and every synthesis setting. Every float round-trips through
/// its bit pattern, so a hit is bit-identical to the cut it replaced.
/// Concurrent misses on one key are single-flighted.
pub fn pipeline_alu_cached(kit: &TechKit, block: &Netlist, stages: usize) -> PipelineResult {
    let cache = ArtifactCache::shared();
    let lib_fp = kit.lib.fingerprint();
    let block_fp = block.fingerprint();
    let key = fnv1a(&[
        "bdc-alu-v2",
        kit.process.name(),
        &format!("{lib_fp:016x}"),
        &format!("{block_fp:016x}"),
        &stages.to_string(),
        &format!("{:?}", kit.sta),
        &format!("{:?}", kit.pipe),
    ]);
    let name = format!("alu-{}", kit.process.name());
    let flight = artifact_flight(cache.root(), &name, key);
    let _in_flight = flight.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(text) = cache.load(&name, key) {
        if let Some(r) = parse_pipeline_text(&text) {
            note_stage(&name, true);
            return r;
        }
    }
    note_stage(&name, false);
    let r = pipeline_alu(kit, block, stages);
    cache.store(&name, key, &write_pipeline_text(&r));
    r
}

/// Serializes a pipeline cut for the artifact cache (bit-exact floats).
fn write_pipeline_text(r: &PipelineResult) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("pipecut v1\n");
    let _ = writeln!(s, "stages {}", r.stages);
    let _ = writeln!(s, "period {:016x}", r.period.to_bits());
    let _ = writeln!(s, "frequency {:016x}", r.frequency.to_bits());
    let _ = writeln!(s, "area_um2 {:016x}", r.area_um2.to_bits());
    let _ = writeln!(s, "registers {}", r.registers);
    let _ = writeln!(s, "seq_overhead {:016x}", r.seq_overhead.to_bits());
    let _ = writeln!(s, "wire_overhead {:016x}", r.wire_overhead.to_bits());
    for d in &r.stage_logic {
        let _ = writeln!(s, "logic {:016x}", d.to_bits());
    }
    s
}

/// Inverse of [`write_pipeline_text`]; `None` on any malformed line,
/// which the cache treats as a miss.
fn parse_pipeline_text(text: &str) -> Option<PipelineResult> {
    fn take<'a>(lines: &mut std::str::Lines<'a>, name: &str) -> Option<&'a str> {
        lines.next()?.strip_prefix(name)?.strip_prefix(' ')
    }
    fn take_hex(lines: &mut std::str::Lines<'_>, name: &str) -> Option<f64> {
        Some(f64::from_bits(
            u64::from_str_radix(take(lines, name)?, 16).ok()?,
        ))
    }
    let mut lines = text.lines();
    if lines.next()? != "pipecut v1" {
        return None;
    }
    let stages: usize = take(&mut lines, "stages")?.parse().ok()?;
    let period = take_hex(&mut lines, "period")?;
    let frequency = take_hex(&mut lines, "frequency")?;
    let area_um2 = take_hex(&mut lines, "area_um2")?;
    let registers: usize = take(&mut lines, "registers")?.parse().ok()?;
    let seq_overhead = take_hex(&mut lines, "seq_overhead")?;
    let wire_overhead = take_hex(&mut lines, "wire_overhead")?;
    let mut stage_logic = Vec::new();
    for line in lines {
        let rest = line.strip_prefix("logic ")?;
        stage_logic.push(f64::from_bits(u64::from_str_radix(rest, 16).ok()?));
    }
    if stage_logic.len() != stages {
        return None;
    }
    Some(PipelineResult {
        stages,
        period,
        frequency,
        area_um2,
        registers,
        stage_logic,
        seq_overhead,
        wire_overhead,
    })
}

/// Serializes a synthesized core for the artifact cache. Every float is
/// written as its IEEE-754 bit pattern so reloads are bit-exact.
fn write_synth_text(core: &SynthesizedCore) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("synthcore v1\n");
    let _ = writeln!(s, "period {:016x}", core.period.to_bits());
    let _ = writeln!(s, "frequency {:016x}", core.frequency.to_bits());
    let _ = writeln!(s, "area_um2 {:016x}", core.area_um2.to_bits());
    let _ = writeln!(s, "seq_overhead {:016x}", core.seq_overhead.to_bits());
    let _ = writeln!(s, "wire_overhead {:016x}", core.wire_overhead.to_bits());
    let _ = writeln!(s, "critical {}", core.critical.name());
    for st in &core.stages {
        let _ = writeln!(
            s,
            "stage {} {} {:016x} {:016x}",
            st.kind.name(),
            st.substages,
            st.logic_delay.to_bits(),
            st.area_um2.to_bits()
        );
    }
    s
}

/// Inverse of [`write_synth_text`]; `None` on any malformed line, which the
/// cache treats as a miss (the entry is then recomputed and rewritten).
fn parse_synth_text(text: &str) -> Option<SynthesizedCore> {
    let mut lines = text.lines();
    if lines.next()? != "synthcore v1" {
        return None;
    }
    let mut field = |name: &str| -> Option<f64> {
        let line = lines.next()?;
        let rest = line.strip_prefix(name)?.strip_prefix(' ')?;
        Some(f64::from_bits(u64::from_str_radix(rest, 16).ok()?))
    };
    let period = field("period")?;
    let frequency = field("frequency")?;
    let area_um2 = field("area_um2")?;
    let seq_overhead = field("seq_overhead")?;
    let wire_overhead = field("wire_overhead")?;
    let critical = StageKind::from_name(lines.next()?.strip_prefix("critical ")?)?;
    let mut stages = Vec::new();
    for line in lines {
        let mut parts = line.split(' ');
        if parts.next()? != "stage" {
            return None;
        }
        stages.push(StageTiming {
            kind: StageKind::from_name(parts.next()?)?,
            substages: parts.next()?.parse().ok()?,
            logic_delay: f64::from_bits(u64::from_str_radix(parts.next()?, 16).ok()?),
            area_um2: f64::from_bits(u64::from_str_radix(parts.next()?, 16).ok()?),
        });
    }
    Some(SynthesizedCore {
        period,
        frequency,
        area_um2,
        stages,
        critical,
        seq_overhead,
        wire_overhead,
    })
}

/// Splits the currently critical (splittable) stage once — the paper's
/// manual pipeline-deepening move. Returns the deepened spec and which
/// stage was cut.
pub fn split_critical(kit: &TechKit, spec: &CoreSpec) -> (CoreSpec, StageKind) {
    let synth = synthesize_core_cached(kit, spec);
    // Pick the worst *splittable* stage by per-substage delay.
    let (kind, _) = synth
        .stages
        .iter()
        .filter(|s| s.kind.splittable())
        .map(|s| (s.kind, s.logic_delay))
        .fold(
            (StageKind::Fetch, 0.0),
            |acc, x| if x.1 > acc.1 { x } else { acc },
        );
    let mut deeper = spec.clone();
    deeper.splits.push(kind);
    (deeper, kind)
}

/// Simulates a workload on a design point and returns its statistics.
///
/// `instructions` bounds the run; all workloads halt on their own well
/// before any realistic budget.
pub fn measure_ipc(spec: &CoreSpec, workload: Workload, outer: u32, instructions: u64) -> SimStats {
    let program = build_workload(workload, outer);
    let mut core = OooCore::new(&program, spec.core_config(), workload.memory_words());
    core.run(instructions)
}

/// Memoizing wrapper around [`measure_ipc`] through the workspace-wide
/// content-addressed [`ArtifactCache`]. The key hashes a schema salt, the
/// [`CoreSpec`] *and* the derived
/// [`CoreConfig`](bdc_uarch::CoreConfig) (so a change to the
/// spec→config mapping invalidates old runs), the workload, and the
/// simulation budget. Every [`SimStats`] field is an integer counter, so
/// the stored artifact is exact decimal text and a cache hit is identical
/// to the simulation it replaced. Concurrent misses on one key are
/// single-flighted.
pub fn measure_ipc_cached(
    spec: &CoreSpec,
    workload: Workload,
    outer: u32,
    instructions: u64,
) -> SimStats {
    let cache = ArtifactCache::shared();
    let key = fnv1a(&[
        "bdc-ipc-v1",
        &format!("{spec:?}"),
        &format!("{:?}", spec.core_config()),
        workload.name(),
        &outer.to_string(),
        &instructions.to_string(),
    ]);
    let flight = artifact_flight(cache.root(), "ipc", key);
    let _in_flight = flight.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(text) = cache.load("ipc", key) {
        if let Some(stats) = parse_ipc_text(&text) {
            note_stage("ipc", true);
            return stats;
        }
    }
    note_stage("ipc", false);
    let stats = measure_ipc(spec, workload, outer, instructions);
    cache.store("ipc", key, &write_ipc_text(&stats));
    stats
}

/// Serializes simulation statistics for the artifact cache. All counters
/// are `u64`, so plain decimal text round-trips exactly.
fn write_ipc_text(stats: &SimStats) -> String {
    format!(
        "simstats v1\ncycles {}\ninstructions {}\nbranches {}\nmispredicts {}\nflushes {}\n\
         icache {} {}\ndcache {} {}\nloads {}\nstores {}\n",
        stats.cycles,
        stats.instructions,
        stats.branches,
        stats.mispredicts,
        stats.flushes,
        stats.icache.0,
        stats.icache.1,
        stats.dcache.0,
        stats.dcache.1,
        stats.loads,
        stats.stores,
    )
}

/// Inverse of [`write_ipc_text`]; `None` on any malformed line, which the
/// cache treats as a miss.
fn parse_ipc_text(text: &str) -> Option<SimStats> {
    let mut lines = text.lines();
    if lines.next()? != "simstats v1" {
        return None;
    }
    let mut nums = |name: &str, n: usize| -> Option<Vec<u64>> {
        let line = lines.next()?;
        let rest = line.strip_prefix(name)?.strip_prefix(' ')?;
        let vals: Vec<u64> = rest
            .split(' ')
            .map(|p| p.parse().ok())
            .collect::<Option<_>>()?;
        (vals.len() == n).then_some(vals)
    };
    let stats = SimStats {
        cycles: nums("cycles", 1)?[0],
        instructions: nums("instructions", 1)?[0],
        branches: nums("branches", 1)?[0],
        mispredicts: nums("mispredicts", 1)?[0],
        flushes: nums("flushes", 1)?[0],
        icache: {
            let v = nums("icache", 2)?;
            (v[0], v[1])
        },
        dcache: {
            let v = nums("dcache", 2)?;
            (v[0], v[1])
        },
        loads: nums("loads", 1)?[0],
        stores: nums("stores", 1)?[0],
    };
    lines.next().is_none().then_some(stats)
}

/// `performance = IPC × frequency` (the paper's §5.3/§5.4 metric), in
/// instructions per second.
pub fn performance(ipc: f64, frequency: f64) -> f64 {
    ipc * frequency
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Process;

    #[test]
    fn alu_cluster_is_large_and_valid() {
        let alu = alu_cluster();
        alu.validate().unwrap();
        assert!(alu.gates().len() > 20_000, "gates = {}", alu.gates().len());
    }

    #[test]
    fn synthesize_core_baseline_synthetic() {
        let kit = TechKit::synthetic(Process::Silicon);
        let spec = CoreSpec::baseline();
        let core = synthesize_core(&kit, &spec);
        assert!(core.period > 0.0);
        assert_eq!(core.stages.len(), 9);
        assert!(core.area_um2 > 0.0);
        // Tail stages should not be critical.
        assert!(core.critical.splittable());
    }

    #[test]
    fn splitting_critical_stage_raises_frequency() {
        let kit = TechKit::synthetic(Process::Silicon);
        let spec = CoreSpec::baseline();
        let base = synthesize_core(&kit, &spec);
        let (deeper, cut) = split_critical(&kit, &spec);
        let faster = synthesize_core(&kit, &deeper);
        assert_eq!(deeper.total_stages(), 10);
        assert!(cut.splittable());
        assert!(
            faster.frequency > base.frequency,
            "10-stage {:.3e} vs 9-stage {:.3e}",
            faster.frequency,
            base.frequency
        );
    }

    #[test]
    fn wider_cores_are_bigger() {
        let kit = TechKit::synthetic(Process::Silicon);
        let narrow = synthesize_core(&kit, &CoreSpec::with_widths(1, 3));
        let wide = synthesize_core(&kit, &CoreSpec::with_widths(6, 7));
        assert!(wide.area_um2 > 1.5 * narrow.area_um2);
    }

    #[test]
    fn synth_cache_text_round_trips_bit_exact() {
        let kit = TechKit::synthetic(Process::Silicon);
        let core = synthesize_core(&kit, &CoreSpec::baseline());
        let parsed = parse_synth_text(&write_synth_text(&core)).expect("parse");
        assert_eq!(parsed.period.to_bits(), core.period.to_bits());
        assert_eq!(parsed.frequency.to_bits(), core.frequency.to_bits());
        assert_eq!(parsed.area_um2.to_bits(), core.area_um2.to_bits());
        assert_eq!(parsed.critical, core.critical);
        assert_eq!(parsed.stages.len(), core.stages.len());
        for (a, b) in parsed.stages.iter().zip(&core.stages) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.substages, b.substages);
            assert_eq!(a.logic_delay.to_bits(), b.logic_delay.to_bits());
            assert_eq!(a.area_um2.to_bits(), b.area_um2.to_bits());
        }
        assert!(parse_synth_text("garbage").is_none());
    }

    #[test]
    fn ipc_measurement_runs() {
        let spec = CoreSpec::baseline();
        let stats = measure_ipc(&spec, Workload::Dhrystone, 30, 100_000);
        assert!(stats.ipc() > 0.05 && stats.ipc() <= 1.0);
        assert!(performance(stats.ipc(), 1.0e6) > 0.0);
    }

    #[test]
    fn ipc_cache_text_round_trips_exactly() {
        let stats = SimStats {
            cycles: 123_456,
            instructions: 98_765,
            branches: 4321,
            mispredicts: 321,
            flushes: 17,
            icache: (90_000, 1_234),
            dcache: (45_000, 678),
            loads: 20_000,
            stores: 10_000,
        };
        assert_eq!(parse_ipc_text(&write_ipc_text(&stats)), Some(stats));
        assert_eq!(parse_ipc_text("garbage"), None);
        assert_eq!(parse_ipc_text("simstats v1\ncycles x\n"), None);
        // Trailing junk must not parse as a valid artifact.
        let trailing = format!("{}extra\n", write_ipc_text(&stats));
        assert_eq!(parse_ipc_text(&trailing), None);
    }

    #[test]
    fn pipeline_cache_text_round_trips_bit_exact() {
        let kit = TechKit::synthetic(Process::Organic);
        let alu = alu_cluster();
        let r = pipeline_alu(&kit, &alu, 3);
        let parsed = parse_pipeline_text(&write_pipeline_text(&r)).expect("parse");
        assert_eq!(parsed.stages, r.stages);
        assert_eq!(parsed.registers, r.registers);
        for (a, b) in [
            (parsed.period, r.period),
            (parsed.frequency, r.frequency),
            (parsed.area_um2, r.area_um2),
            (parsed.seq_overhead, r.seq_overhead),
            (parsed.wire_overhead, r.wire_overhead),
        ] {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(parsed.stage_logic.len(), r.stage_logic.len());
        for (a, b) in parsed.stage_logic.iter().zip(&r.stage_logic) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(parse_pipeline_text("garbage").is_none());
        // A truncated stage list must not parse.
        let short = write_pipeline_text(&r);
        let short = short.trim_end_matches('\n');
        let short = &short[..short.rfind('\n').unwrap() + 1];
        assert!(parse_pipeline_text(short).is_none());
    }

    #[test]
    fn cached_pipeline_alu_matches_uncached() {
        let _env = crate::testenv::cache_env_lock();
        let dir = std::env::temp_dir().join(format!("bdc-alu-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("BDC_CACHE_DIR", &dir);
        let kit = TechKit::synthetic(Process::Silicon);
        let alu = alu_cluster();
        let cold = pipeline_alu_cached(&kit, &alu, 4);
        let warm = pipeline_alu_cached(&kit, &alu, 4);
        let direct = pipeline_alu(&kit, &alu, 4);
        std::env::remove_var("BDC_CACHE_DIR");
        let _ = std::fs::remove_dir_all(&dir);
        for r in [&cold, &warm] {
            assert_eq!(r.period.to_bits(), direct.period.to_bits());
            assert_eq!(r.area_um2.to_bits(), direct.area_um2.to_bits());
            assert_eq!(r.registers, direct.registers);
            assert_eq!(r.stage_logic.len(), direct.stage_logic.len());
        }
    }

    #[test]
    fn cached_ipc_matches_uncached() {
        let _env = crate::testenv::cache_env_lock();
        let dir = std::env::temp_dir().join(format!("bdc-ipc-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Route the shared cache at a private directory for this test; the
        // env lock serializes against other env-redirecting unit tests.
        std::env::set_var("BDC_CACHE_DIR", &dir);
        let spec = CoreSpec::baseline();
        let cold = measure_ipc_cached(&spec, Workload::Gzip, 5, 4_000);
        let warm = measure_ipc_cached(&spec, Workload::Gzip, 5, 4_000);
        let direct = measure_ipc(&spec, Workload::Gzip, 5, 4_000);
        std::env::remove_var("BDC_CACHE_DIR");
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(cold, direct);
        assert_eq!(warm, direct);
    }
}
