//! Rendering helpers: paper-style tables and heatmaps as plain text.

use crate::experiments::WidthMatrix;

/// Formats seconds with an adaptive engineering unit.
pub fn fmt_time(seconds: f64) -> String {
    let (v, u) = if seconds >= 1.0 {
        (seconds, "s")
    } else if seconds >= 1.0e-3 {
        (seconds * 1.0e3, "ms")
    } else if seconds >= 1.0e-6 {
        (seconds * 1.0e6, "µs")
    } else if seconds >= 1.0e-9 {
        (seconds * 1.0e9, "ns")
    } else {
        (seconds * 1.0e12, "ps")
    };
    format!("{v:.2} {u}")
}

/// Formats hertz with an adaptive engineering unit.
pub fn fmt_freq(hz: f64) -> String {
    let (v, u) = if hz >= 1.0e9 {
        (hz / 1.0e9, "GHz")
    } else if hz >= 1.0e6 {
        (hz / 1.0e6, "MHz")
    } else if hz >= 1.0e3 {
        (hz / 1.0e3, "kHz")
    } else {
        (hz, "Hz")
    };
    format!("{v:.2} {u}")
}

/// Renders a simple aligned table. `header` and every row must share the
/// same column count.
///
/// # Panics
/// Panics if a row's width differs from the header's.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    for r in rows {
        assert_eq!(r.len(), cols, "table row width mismatch");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Renders a width matrix like the paper's Figure 13/14 heatmaps:
/// rows = back-end pipes (3–7), columns = front-end width (1–6).
pub fn render_matrix(title: &str, m: &WidthMatrix, values: &[Vec<f64>]) -> String {
    let mut out = format!("{title}\n       ");
    for f in &m.fe {
        out.push_str(&format!("fe={f:<5}"));
    }
    out.push('\n');
    for (r, b) in m.be.iter().enumerate() {
        out.push_str(&format!("be={b}   "));
        for v in values[r].iter().take(m.fe.len()) {
            out.push_str(&format!("{v:.2}   "));
        }
        out.push('\n');
    }
    out
}

/// Renders a normalized series `(x, y)` as an aligned two-column list.
pub fn render_series(title: &str, xs: &[usize], ys: &[f64]) -> String {
    let mut out = format!("{title}\n");
    for (x, y) in xs.iter().zip(ys) {
        out.push_str(&format!("  {x:>3}  {y:.3}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_and_freq_units() {
        assert_eq!(fmt_time(1.5e-3), "1.50 ms");
        assert_eq!(fmt_time(2.0e-11), "20.00 ps");
        assert_eq!(fmt_freq(1.36e9), "1.36 GHz");
        assert_eq!(fmt_freq(198.0), "198.00 Hz");
    }

    #[test]
    fn table_aligns() {
        let t = render_table(
            &["cell", "delay"],
            &[
                vec!["inv".into(), "1.0".into()],
                vec!["nand2".into(), "1.4".into()],
            ],
        );
        assert!(t.contains("nand2"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn series_renders_pairs() {
        let s = render_series("t", &[9, 10], &[1.0, 1.25]);
        assert!(s.contains("10  1.250"));
    }
}
