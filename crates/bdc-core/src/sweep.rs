//! Parameter sweeps over the experiment plan: grid parsing, per-point
//! overlays, and the incremental-recomputation engine behind `bdc sweep`.
//!
//! A sweep walks a one-dimensional parameter grid (today: the organic
//! threshold voltage, `organic.vt=start:end:count`) through the plan
//! scheduler. Each point runs at its own [`ParamOverlay`], so the
//! fine-grained stage cache (see [`crate::stage`]) recomputes exactly the
//! invalidation cone of the moved parameter — the organic cells, library,
//! synthesis and the experiments that declare the organic library — while
//! the silicon stages, IPC simulations and dependency-free experiments
//! stay warm from the first point onward.
//!
//! Two artifacts come out: a deterministic transcript
//! ([`render_transcript`], byte-identical for any worker count and any
//! warm/cold stage mix — the CI gate) and a telemetry manifest
//! ([`manifest_json`], wall times and stage reuse counters — explicitly
//! *outside* the byte-determinism contract, like the fault counters).
//!
//! **Resumability:** a checkpointed sweep ([`run_sweep_checkpointed`])
//! durably records every completed grid point (tmp + fsync + rename, the
//! same torn-write discipline as the artifact store) as it finishes.
//! After a crash — including SIGKILL mid-grid — `--resume` restores the
//! completed points byte-for-byte from their checkpoints and recomputes
//! only the unfinished ones, so the replayed transcript is identical to
//! what an uninterrupted sweep would have printed. A torn or foreign
//! checkpoint (wrong sweep identity, stale grid, parse failure) is
//! silently treated as *unfinished*, never trusted.

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

use bdc_device::TftParams;
use bdc_exec::json::Json;
use bdc_exec::{enter_scope, new_scope, par_map, scope_counters, StageCount};

use crate::registry::{self, NodeReport, RunReport};
use crate::stage::{stage_graph, ParamOverlay};

/// Where `bdc sweep` checkpoints completed grid points, one JSON file per
/// point, next to the manifest it feeds.
pub const DEFAULT_CHECKPOINT_DIR: &str = "results/sweep_points";

/// The swept knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepParam {
    /// The organic device threshold voltage, as the *physical* (signed,
    /// p-type, negative) V_T in volts. The nominal pentacene point is
    /// `-1.3` V; the overlay stores the delta against that magnitude.
    OrganicVt,
}

impl SweepParam {
    /// The spec-file spelling (`organic.vt`).
    pub fn name(self) -> &'static str {
        match self {
            SweepParam::OrganicVt => "organic.vt",
        }
    }
}

/// A parsed `bdc sweep --param` specification: a linear grid of `count`
/// points from `start` to `end`, both inclusive.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Which parameter the grid moves.
    pub param: SweepParam,
    /// First grid value (physical units).
    pub start: f64,
    /// Last grid value (physical units).
    pub end: f64,
    /// Number of grid points (`>= 1`; `1` pins the grid at `start`).
    pub count: usize,
}

impl SweepSpec {
    /// Parses `name=start:end:count` (e.g. `organic.vt=-1.4:-0.6:21`).
    ///
    /// # Errors
    /// A human-readable message for an unknown parameter name, a
    /// malformed grid, a non-finite bound, or a zero count.
    pub fn parse(spec: &str) -> Result<SweepSpec, String> {
        let (name, grid) = spec
            .split_once('=')
            .ok_or_else(|| format!("bad sweep spec `{spec}` (want name=start:end:count)"))?;
        let param = match name {
            "organic.vt" => SweepParam::OrganicVt,
            other => {
                return Err(format!(
                    "unknown sweep parameter `{other}` (try organic.vt)"
                ))
            }
        };
        let parts: Vec<&str> = grid.split(':').collect();
        let [start, end, count] = parts.as_slice() else {
            return Err(format!("bad sweep grid `{grid}` (want start:end:count)"));
        };
        let start: f64 = start
            .parse()
            .map_err(|_| format!("bad sweep start `{start}`"))?;
        let end: f64 = end.parse().map_err(|_| format!("bad sweep end `{end}`"))?;
        if !start.is_finite() || !end.is_finite() {
            return Err("sweep bounds must be finite".into());
        }
        let count: usize = count
            .parse()
            .map_err(|_| format!("bad sweep count `{count}`"))?;
        if count == 0 {
            return Err("sweep count must be at least 1".into());
        }
        Ok(SweepSpec {
            param,
            start,
            end,
            count,
        })
    }

    /// The grid values, endpoints inclusive; `count == 1` yields
    /// `[start]`.
    pub fn values(&self) -> Vec<f64> {
        if self.count == 1 {
            return vec![self.start];
        }
        (0..self.count)
            .map(|i| self.start + (self.end - self.start) * i as f64 / (self.count - 1) as f64)
            .collect()
    }

    /// The overlay pinning one grid value.
    pub fn overlay_for(&self, value: f64) -> ParamOverlay {
        match self.param {
            // `TftParams::vt0` is a magnitude (p-type convention); the
            // physical V_T is its negation, so a requested physical value
            // v maps to delta = (-v) - vt0_nominal. The nominal value
            // round-trips to the default overlay exactly.
            SweepParam::OrganicVt => ParamOverlay {
                organic_delta_vt: -value - TftParams::pentacene().vt0,
            },
        }
    }
}

/// One executed grid point.
pub struct SweepPoint {
    /// Grid index (0-based).
    pub index: usize,
    /// The physical parameter value at this point.
    pub value: f64,
    /// The overlay the plan ran at.
    pub overlay: ParamOverlay,
    /// Wall time of this point's plan execution, in seconds (telemetry).
    /// Points past the first run concurrently, so these spans overlap.
    pub wall_s: f64,
    /// Per-stage `(hits, misses)` deltas attributable to this point.
    pub stages: BTreeMap<String, StageCount>,
    /// The plan report (node texts, in catalogue order).
    pub report: RunReport,
}

impl SweepPoint {
    /// Total stage-cache `(hits, misses)` for this point.
    pub fn totals(&self) -> (u64, u64) {
        self.stages
            .values()
            .fold((0, 0), |(h, m), (sh, sm)| (h + sh, m + sm))
    }
}

/// What one sweep produced: the spec, mode, and every executed point in
/// grid order.
pub struct SweepReport {
    /// The parsed grid.
    pub spec: SweepSpec,
    /// Whether the plan ran at the quick budget.
    pub quick: bool,
    /// End-to-end sweep wall time, in seconds (telemetry). Points past
    /// the first run concurrently, so the per-point `wall_s` values
    /// overlap and their sum exceeds this.
    pub elapsed_s: f64,
    /// Points restored from a previous run's checkpoints instead of
    /// recomputed (0 for a non-resumed sweep).
    pub restored_points: usize,
    /// Per-point results, in grid order.
    pub points: Vec<SweepPoint>,
}

/// Runs `ids` (catalogue order, like `run_plan`) at every grid point of
/// `spec`, reusing every stage artifact whose inputs a point does not
/// move. The first point runs alone: it warms every overlay-independent
/// stage (silicon, IPC, dependency-free experiments) with full node
/// parallelism. The remaining points then fan out across the worker pool
/// — their miss cones are disjoint (each point's organic stages carry its
/// own overlay in their keys, and everything else is warm), so they
/// neither duplicate nor steal each other's work, and each runs inside
/// its own attribution scope so the manifest's per-point reuse stats stay
/// exact under concurrency.
///
/// # Errors
/// An unknown experiment id or a node cache-key collision (from the plan
/// scheduler), or a node failure at any point — a sweep with a failed
/// point must not pass for a complete grid.
pub fn run_sweep(spec: &SweepSpec, ids: &[&str], quick: bool) -> Result<SweepReport, String> {
    run_sweep_checkpointed(spec, ids, quick, None, false)
}

/// [`run_sweep`] with durable per-point checkpointing and crash resume.
///
/// With a `checkpoint_dir`, every completed point is recorded there
/// (tmp + fsync + rename) the moment it finishes — a SIGKILL mid-grid
/// loses at most the points still in flight. With `resume` also set, the
/// directory is scanned first: checkpoints matching this exact sweep
/// identity (parameter, grid bounds, budget, and experiment list) restore
/// their points without recomputation, and only the unfinished points
/// run. Without `resume` the directory is cleared first so stale points
/// from a different sweep can never leak into this one.
///
/// The first *pending* point runs alone (warming the overlay-independent
/// stages with full node parallelism, exactly like a cold sweep) and the
/// rest fan out across the worker pool.
///
/// # Errors
/// See [`run_sweep`].
pub fn run_sweep_checkpointed(
    spec: &SweepSpec,
    ids: &[&str],
    quick: bool,
    checkpoint_dir: Option<&Path>,
    resume: bool,
) -> Result<SweepReport, String> {
    let values = spec.values();
    let identity = sweep_identity(spec, ids, quick);
    // Wall-clock feeds only the manifest's telemetry, never the
    // transcript bytes.
    // bdc-lint: allow(D002, elapsed_s is sweep telemetry, not artifact bytes)
    let t_sweep = Instant::now();
    let mut slots: Vec<Option<SweepPoint>> = match (checkpoint_dir, resume) {
        (Some(dir), true) => load_checkpoints(dir, &identity, spec, quick, &values),
        (Some(dir), false) => {
            let _ = std::fs::remove_dir_all(dir);
            values.iter().map(|_| None).collect()
        }
        (None, _) => values.iter().map(|_| None).collect(),
    };
    if let Some(dir) = checkpoint_dir {
        let _ = std::fs::create_dir_all(dir);
    }
    let restored_points = slots.iter().filter(|s| s.is_some()).count();
    let pending: Vec<(usize, f64)> = values
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| slots[*i].is_none())
        .collect();
    if let Some(&(index, value)) = pending.first() {
        let point = run_point(spec, ids, quick, index, value)?;
        if let Some(dir) = checkpoint_dir {
            checkpoint_point(dir, &identity, &point);
        }
        slots[index] = Some(point);
        for point in par_map(&pending[1..], |&(index, value)| {
            let point = run_point(spec, ids, quick, index, value)?;
            if let Some(dir) = checkpoint_dir {
                checkpoint_point(dir, &identity, &point);
            }
            Ok::<SweepPoint, String>(point)
        }) {
            let point = point?;
            let index = point.index;
            slots[index] = Some(point);
        }
    }
    // Every slot is filled: restored points were loaded above and every
    // pending point either completed or propagated its error already.
    let points: Vec<SweepPoint> = slots.into_iter().flatten().collect();
    debug_assert_eq!(points.len(), spec.count);
    Ok(SweepReport {
        spec: spec.clone(),
        quick,
        elapsed_s: t_sweep.elapsed().as_secs_f64(),
        restored_points,
        points,
    })
}

/// The string every checkpoint binds itself to: a resume may only restore
/// points from a sweep over the same parameter, grid (bit-exact bounds),
/// budget, and experiment list.
fn sweep_identity(spec: &SweepSpec, ids: &[&str], quick: bool) -> String {
    format!(
        "{} {:016x}:{:016x}:{} quick={} ids={}",
        spec.param.name(),
        spec.start.to_bits(),
        spec.end.to_bits(),
        spec.count,
        quick,
        ids.join(",")
    )
}

/// The checkpoint file name for one grid point.
fn checkpoint_name(index: usize) -> String {
    format!("point_{index:04}.json")
}

/// Durably records one completed point: write to a tmp sibling, fsync,
/// rename into place. A crash at any step leaves either the old file or
/// the new one, never a torn mix; a torn *tmp* file is never read.
/// Returns whether the checkpoint landed (failure is non-fatal — the
/// point simply recomputes on resume).
pub fn checkpoint_point(dir: &Path, identity: &str, point: &SweepPoint) -> bool {
    let path = dir.join(checkpoint_name(point.index));
    let tmp = dir.join(format!("{}.tmp", checkpoint_name(point.index)));
    let bytes = checkpoint_json(identity, point).encode();
    let written = std::fs::File::create(&tmp)
        .and_then(|mut f| {
            use std::io::Write;
            f.write_all(bytes.as_bytes())?;
            f.sync_all()
        })
        .is_ok();
    written && std::fs::rename(&tmp, &path).is_ok()
}

/// The durable form of one completed point: everything the transcript and
/// manifest need to replay it byte-identically (node texts, stage
/// tallies) plus the sweep identity that gates restoration.
fn checkpoint_json(identity: &str, point: &SweepPoint) -> Json {
    Json::Obj(vec![
        ("bdc_sweep_checkpoint".into(), Json::Int(1)),
        ("identity".into(), Json::str(identity)),
        ("index".into(), Json::Int(point.index as i64)),
        ("value".into(), Json::Num(point.value)),
        ("wall_s".into(), Json::Num(point.wall_s)),
        (
            "stages".into(),
            Json::Obj(
                point
                    .stages
                    .iter()
                    .map(|(name, (h, m))| {
                        (
                            name.clone(),
                            Json::Obj(vec![
                                ("hits".into(), Json::Int(*h as i64)),
                                ("misses".into(), Json::Int(*m as i64)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "nodes".into(),
            Json::Arr(
                point
                    .report
                    .nodes
                    .iter()
                    .map(|n| {
                        Json::Obj(vec![
                            ("id".into(), Json::str(n.id)),
                            ("wall_s".into(), Json::Num(n.wall_s)),
                            ("cache_hit".into(), Json::Bool(n.cache_hit)),
                            ("key".into(), Json::str(format!("{:016x}", n.key))),
                            ("attempts".into(), Json::Int(i64::from(n.attempts))),
                            ("text".into(), Json::str(n.text.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Scans the checkpoint directory for restorable points. A slot is `Some`
/// only when its file exists, parses, carries the matching sweep
/// identity, and round-trips its grid value bit-exactly — anything else
/// (torn write, foreign sweep, renamed experiment) degrades to
/// *unfinished* and recomputes.
fn load_checkpoints(
    dir: &Path,
    identity: &str,
    spec: &SweepSpec,
    quick: bool,
    values: &[f64],
) -> Vec<Option<SweepPoint>> {
    values
        .iter()
        .enumerate()
        .map(|(index, _)| {
            let raw = std::fs::read_to_string(dir.join(checkpoint_name(index))).ok()?;
            let json = bdc_exec::json::parse(&raw).ok()?;
            point_from_checkpoint(&json, identity, spec, quick, values, index)
        })
        .collect()
}

/// Reconstructs one [`SweepPoint`] from its checkpoint, validating the
/// identity binding and the grid value before trusting any of it.
fn point_from_checkpoint(
    json: &Json,
    identity: &str,
    spec: &SweepSpec,
    quick: bool,
    values: &[f64],
    index: usize,
) -> Option<SweepPoint> {
    if json.get("bdc_sweep_checkpoint")?.as_u64()? != 1 {
        return None;
    }
    if json.get("identity")?.as_str()? != identity {
        return None;
    }
    if json.get("index")?.as_u64()? as usize != index {
        return None;
    }
    let value = json.get("value")?.as_f64()?;
    if value.to_bits() != values[index].to_bits() {
        return None;
    }
    let wall_s = json.get("wall_s")?.as_f64()?;
    let mut stages = BTreeMap::new();
    if let Json::Obj(members) = json.get("stages")? {
        for (name, counts) in members {
            stages.insert(
                name.clone(),
                (
                    counts.get("hits")?.as_u64()?,
                    counts.get("misses")?.as_u64()?,
                ),
            );
        }
    }
    let mut nodes = Vec::new();
    for node in json.get("nodes")?.as_arr()? {
        let id = node.get("id")?.as_str()?;
        // Re-anchor on the catalogue's 'static id; an id the catalogue no
        // longer knows invalidates the whole checkpoint.
        let id = registry::NODES.iter().find(|n| n.id == id)?.id;
        nodes.push(NodeReport {
            id,
            wall_s: node.get("wall_s")?.as_f64()?,
            cache_hit: matches!(node.get("cache_hit")?, Json::Bool(true)),
            key: u64::from_str_radix(node.get("key")?.as_str()?, 16).ok()?,
            text: node.get("text")?.as_str()?.to_string(),
            attempts: u32::try_from(node.get("attempts")?.as_u64()?).ok()?,
            error: None,
        });
    }
    Some(SweepPoint {
        index,
        value,
        overlay: spec.overlay_for(value),
        wall_s,
        stages,
        report: RunReport {
            quick,
            workers: bdc_exec::workers(),
            max_retries: registry::DEFAULT_MAX_RETRIES,
            nodes,
            faults: Default::default(),
        },
    })
}

/// Runs one grid point inside a fresh attribution scope and packages its
/// report with the stage tallies credited to it.
fn run_point(
    spec: &SweepSpec,
    ids: &[&str],
    quick: bool,
    index: usize,
    value: f64,
) -> Result<SweepPoint, String> {
    let overlay = spec.overlay_for(value);
    let scope = new_scope();
    let _in_scope = enter_scope(scope);
    // bdc-lint: allow(D002, wall_s is sweep telemetry, not artifact bytes)
    let t0 = Instant::now();
    let report =
        registry::run_plan_with_overlay(ids, quick, registry::DEFAULT_MAX_RETRIES, overlay)?;
    let wall_s = t0.elapsed().as_secs_f64();
    if let Some(failed) = report.failed().next() {
        return Err(format!(
            "sweep point {index} ({} = {value}): node {} failed: {}",
            spec.param.name(),
            failed.id,
            failed.error.as_deref().unwrap_or("unknown error")
        ));
    }
    Ok(SweepPoint {
        index,
        value,
        overlay,
        wall_s,
        stages: scope_counters(scope),
        report,
    })
}

/// The deterministic sweep output: every point's header plus its node
/// texts, in grid then catalogue order. Byte-identical across worker
/// counts and warm/cold cache states — this is what the CI sweep gate
/// diffs.
pub fn render_transcript(report: &SweepReport) -> String {
    let mut out = String::new();
    for point in &report.points {
        out.push_str(&format!(
            "==== sweep point {}: {} = {} ====\n",
            point.index,
            report.spec.param.name(),
            point.value
        ));
        for node in &point.report.nodes {
            out.push_str(&node.text);
        }
    }
    out
}

/// Distinct stage names sharing a content key, across every grid point —
/// must be zero, or one stage would silently serve another's bytes. The
/// same name repeating a key across points is fine (that is reuse).
pub fn stage_key_collisions(report: &SweepReport) -> usize {
    let mut by_key: BTreeMap<u64, String> = BTreeMap::new();
    let mut collisions = 0;
    for point in &report.points {
        for node in stage_graph(&point.overlay).nodes {
            match by_key.get(&node.key) {
                Some(existing) if *existing != node.name => collisions += 1,
                _ => {
                    by_key.insert(node.key, node.name);
                }
            }
        }
    }
    collisions
}

/// The sweep manifest the CLI writes to `results/sweep_manifest.json`:
/// telemetry only (wall times, stage reuse), plus the grid identity and
/// the cross-point stage-key collision count.
pub fn manifest_json(report: &SweepReport) -> Json {
    let mut total_hits = 0u64;
    let mut total_misses = 0u64;
    let mut incr_hits = 0u64;
    let mut incr_misses = 0u64;
    let mut total_wall = 0.0;
    let points: Vec<Json> = report
        .points
        .iter()
        .map(|p| {
            let (hits, misses) = p.totals();
            total_hits += hits;
            total_misses += misses;
            if p.index > 0 {
                incr_hits += hits;
                incr_misses += misses;
            }
            total_wall += p.wall_s;
            Json::Obj(vec![
                ("index".into(), Json::Int(p.index as i64)),
                ("value".into(), Json::Num(p.value)),
                ("wall_s".into(), Json::Num(p.wall_s)),
                ("stage_hits".into(), Json::Int(hits as i64)),
                ("stage_misses".into(), Json::Int(misses as i64)),
                ("reuse_ratio".into(), Json::Num(ratio(hits, misses))),
                (
                    "nodes_ok".into(),
                    Json::Int(p.report.nodes.iter().filter(|n| n.ok()).count() as i64),
                ),
                (
                    "stages".into(),
                    Json::Obj(
                        p.stages
                            .iter()
                            .map(|(name, (h, m))| {
                                (
                                    name.clone(),
                                    Json::Obj(vec![
                                        ("hits".into(), Json::Int(*h as i64)),
                                        ("misses".into(), Json::Int(*m as i64)),
                                    ]),
                                )
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("param".into(), Json::str(report.spec.param.name())),
        ("start".into(), Json::Num(report.spec.start)),
        ("end".into(), Json::Num(report.spec.end)),
        ("count".into(), Json::Int(report.spec.count as i64)),
        ("quick".into(), Json::Bool(report.quick)),
        (
            "restored_points".into(),
            Json::Int(report.restored_points as i64),
        ),
        (
            "stage_key_collisions".into(),
            Json::Int(stage_key_collisions(report) as i64),
        ),
        ("points".into(), Json::Arr(points)),
        (
            "total".into(),
            Json::Obj(vec![
                ("elapsed_s".into(), Json::Num(report.elapsed_s)),
                ("wall_s".into(), Json::Num(total_wall)),
                ("stage_hits".into(), Json::Int(total_hits as i64)),
                ("stage_misses".into(), Json::Int(total_misses as i64)),
                (
                    "incremental_hit_rate".into(),
                    Json::Num(ratio(incr_hits, incr_misses)),
                ),
            ]),
        ),
    ])
}

fn ratio(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_grids_inclusively() {
        let spec = SweepSpec::parse("organic.vt=-1.4:-0.6:21").expect("valid spec");
        assert_eq!(spec.param, SweepParam::OrganicVt);
        assert_eq!(spec.count, 21);
        let values = spec.values();
        assert_eq!(values.len(), 21);
        assert_eq!(values[0], -1.4);
        assert_eq!(values[20], -0.6);
        assert!(values.windows(2).all(|w| w[0] < w[1]));

        let single = SweepSpec::parse("organic.vt=-1.3:-0.6:1").expect("count 1");
        assert_eq!(single.values(), vec![-1.3]);
    }

    #[test]
    fn malformed_specs_are_rejected_with_hints() {
        for (bad, hint) in [
            ("organic.vt", "name=start:end:count"),
            ("organic.mu=-1:0:3", "unknown sweep parameter"),
            ("organic.vt=-1:0", "start:end:count"),
            ("organic.vt=-1:0:3:4", "start:end:count"),
            ("organic.vt=x:0:3", "bad sweep start"),
            ("organic.vt=-1:y:3", "bad sweep end"),
            ("organic.vt=-1:0:z", "bad sweep count"),
            ("organic.vt=-1:0:0", "at least 1"),
            ("organic.vt=nan:0:3", "finite"),
        ] {
            let err = SweepSpec::parse(bad).expect_err(bad);
            assert!(err.contains(hint), "`{bad}` → `{err}`");
        }
    }

    #[test]
    fn nominal_value_maps_to_the_default_overlay() {
        let spec = SweepSpec::parse("organic.vt=-1.3:-0.6:8").unwrap();
        let nominal = spec.overlay_for(-TftParams::pentacene().vt0);
        assert!(nominal.is_default(), "{nominal:?}");
        // A shallower (less negative) V_T is a *smaller* magnitude.
        let shallow = spec.overlay_for(-1.0);
        assert!(shallow.organic_delta_vt < 0.0, "{shallow:?}");
    }

    #[test]
    fn two_point_sweep_reuses_dependency_free_nodes() {
        let _env = crate::testenv::cache_env_lock();
        let dir = std::env::temp_dir().join(format!("bdc-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("BDC_CACHE_DIR", &dir);
        // fig03 declares NO_DEPS: its artifact key is overlay-independent,
        // so the second grid point must serve it from the first's cache.
        let spec = SweepSpec::parse("organic.vt=-1.3:-1.2:2").unwrap();
        let report = run_sweep(&spec, &["fig03"], true).expect("sweep runs");
        std::env::remove_var("BDC_CACHE_DIR");
        let _ = std::fs::remove_dir_all(&dir);

        assert_eq!(report.points.len(), 2);
        let first = &report.points[0].stages;
        let second = &report.points[1].stages;
        assert_eq!(first.get("exp-fig03"), Some(&(0, 1)), "{first:?}");
        assert_eq!(second.get("exp-fig03"), Some(&(1, 0)), "{second:?}");
        // Same bytes at both points, and the transcript carries both.
        let texts: Vec<&str> = report
            .points
            .iter()
            .map(|p| p.report.nodes[0].text.as_str())
            .collect();
        assert_eq!(texts[0], texts[1]);
        let transcript = render_transcript(&report);
        assert!(transcript.starts_with("==== sweep point 0: organic.vt = -1.3 ====\n"));
        assert!(transcript.contains("==== sweep point 1: organic.vt = -1.2 ====\n"));

        assert_eq!(stage_key_collisions(&report), 0);
        let manifest = manifest_json(&report).encode();
        assert!(
            manifest.contains("\"stage_key_collisions\":0"),
            "{manifest}"
        );
        assert!(manifest.contains("\"param\":\"organic.vt\""), "{manifest}");
        assert!(manifest.contains("\"restored_points\":0"), "{manifest}");
    }

    #[test]
    fn resume_restores_checkpointed_points_byte_identically() {
        let _env = crate::testenv::cache_env_lock();
        let dir = std::env::temp_dir().join(format!("bdc-resume-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("BDC_CACHE_DIR", dir.join("cache"));
        let ckpt = dir.join("points");
        let spec = SweepSpec::parse("organic.vt=-1.3:-1.2:2").unwrap();

        // A fresh checkpointed sweep: both points computed and recorded.
        let cold = run_sweep_checkpointed(&spec, &["fig03"], true, Some(&ckpt), false)
            .expect("cold sweep runs");
        assert_eq!(cold.restored_points, 0);
        assert!(ckpt.join("point_0000.json").exists());
        assert!(ckpt.join("point_0001.json").exists());

        // Simulate a crash that lost point 1: its checkpoint vanishes.
        std::fs::remove_file(ckpt.join("point_0001.json")).unwrap();
        let resumed = run_sweep_checkpointed(&spec, &["fig03"], true, Some(&ckpt), true)
            .expect("resume runs");
        assert_eq!(resumed.restored_points, 1, "point 0 restores, 1 recomputes");
        assert_eq!(
            render_transcript(&resumed),
            render_transcript(&cold),
            "resume must replay the transcript byte-identically"
        );

        // Resuming a complete sweep recomputes nothing at all.
        let warm = run_sweep_checkpointed(&spec, &["fig03"], true, Some(&ckpt), true)
            .expect("idempotent resume");
        assert_eq!(warm.restored_points, 2);
        assert_eq!(render_transcript(&warm), render_transcript(&cold));
        let manifest = manifest_json(&warm).encode();
        assert!(manifest.contains("\"restored_points\":2"), "{manifest}");

        // A torn checkpoint is treated as unfinished, never trusted.
        std::fs::write(ckpt.join("point_0000.json"), "{\"bdc_sweep_ch").unwrap();
        let healed = run_sweep_checkpointed(&spec, &["fig03"], true, Some(&ckpt), true)
            .expect("torn checkpoint heals");
        assert_eq!(healed.restored_points, 1);
        assert_eq!(render_transcript(&healed), render_transcript(&cold));

        // A checkpoint from a *different* sweep (other grid) never
        // restores into this one, and a fresh (non-resume) run clears
        // the directory outright.
        let other = SweepSpec::parse("organic.vt=-1.3:-1.1:2").unwrap();
        let foreign = run_sweep_checkpointed(&other, &["fig03"], true, Some(&ckpt), true)
            .expect("foreign spec sweeps clean");
        assert_eq!(foreign.restored_points, 0);
        let fresh = run_sweep_checkpointed(&spec, &["fig03"], true, Some(&ckpt), false)
            .expect("fresh run clears checkpoints");
        assert_eq!(fresh.restored_points, 0);

        std::env::remove_var("BDC_CACHE_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
