//! Power and energy estimation — the paper's §7 “energy optimization”
//! future-work axis, built on the per-cell leakage and switching energies
//! the characterization flow measures.
//!
//! The two processes have opposite power structure:
//!
//! * **organic pseudo-E** logic is *ratioed*: the level-shifter branch
//!   conducts statically, so leakage dominates and finishing work sooner
//!   (deeper pipelines, higher clock) *saves* energy per instruction;
//! * **silicon CMOS** leaks little at these cell counts, so switching
//!   energy dominates and extra pipeline registers *cost* energy.

use bdc_cells::{CellKind, CellLibrary};

use crate::gate::Netlist;
use crate::place::cell_of;

/// Power estimate for a netlist at an operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Static (leakage / ratioed) power, W.
    pub static_w: f64,
    /// Dynamic (switching) power at the given clock and activity, W.
    pub dynamic_w: f64,
    /// Clock used (Hz).
    pub frequency: f64,
    /// Activity factor used.
    pub activity: f64,
}

impl PowerReport {
    /// Total power (W).
    pub fn total_w(&self) -> f64 {
        self.static_w + self.dynamic_w
    }

    /// Energy per clock cycle (J).
    pub fn energy_per_cycle(&self) -> f64 {
        self.total_w() / self.frequency
    }

    /// Fraction of total power that is static.
    pub fn static_fraction(&self) -> f64 {
        self.static_w / self.total_w().max(1e-300)
    }
}

/// Estimates power for `netlist` (plus `extra_registers` pipeline flops)
/// clocked at `frequency` with the given switching `activity`
/// (0–1, fraction of gates toggling per cycle; flop clock pins always
/// toggle).
///
/// # Panics
/// Panics if `frequency` or `activity` is not positive/in range.
pub fn estimate_power(
    netlist: &Netlist,
    lib: &CellLibrary,
    extra_registers: usize,
    frequency: f64,
    activity: f64,
) -> PowerReport {
    assert!(frequency > 0.0, "frequency must be positive");
    assert!((0.0..=1.0).contains(&activity), "activity must be in [0,1]");
    let mut static_w = 0.0;
    let mut switch_j = 0.0;
    for g in netlist.gates() {
        let cell = lib.cell(cell_of(g.kind));
        static_w += cell.leakage_w;
        switch_j += activity * cell.switching_energy;
    }
    let dff = lib.cell(CellKind::Dff);
    let flops = netlist.flops().len() + extra_registers;
    static_w += flops as f64 * dff.leakage_w;
    // Flop clock pins toggle every cycle; data with the activity factor.
    switch_j += flops as f64 * dff.switching_energy * (0.5 + 0.5 * activity);
    PowerReport {
        static_w,
        dynamic_w: switch_j * frequency,
        frequency,
        activity,
    }
}

/// Energy per instruction (J) for a core running at `ipc` × `frequency`.
pub fn energy_per_instruction(report: &PowerReport, ipc: f64) -> f64 {
    assert!(ipc > 0.0, "ipc must be positive");
    report.total_w() / (ipc * report.frequency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks;
    use bdc_cells::{CellLibrary, ProcessKind};

    #[test]
    fn organic_is_static_dominated_silicon_is_not() {
        let adder = blocks::ripple_adder(16);
        let org = CellLibrary::synthetic(ProcessKind::Organic, 6.5e-4);
        let si = CellLibrary::synthetic(ProcessKind::Silicon45, 1.0e-11);
        let p_org = estimate_power(&adder, &org, 0, 20.0, 0.15);
        let p_si = estimate_power(&adder, &si, 0, 1.0e9, 0.15);
        assert!(
            p_org.static_fraction() > 0.9,
            "organic static {:.3}",
            p_org.static_fraction()
        );
        assert!(
            p_si.static_fraction() < 0.5,
            "silicon static {:.3}",
            p_si.static_fraction()
        );
    }

    #[test]
    fn dynamic_power_scales_with_frequency_and_activity() {
        let adder = blocks::ripple_adder(8);
        let lib = CellLibrary::synthetic(ProcessKind::Silicon45, 1.0e-11);
        let slow = estimate_power(&adder, &lib, 0, 1.0e8, 0.2);
        let fast = estimate_power(&adder, &lib, 0, 1.0e9, 0.2);
        assert!((fast.dynamic_w / slow.dynamic_w - 10.0).abs() < 1e-9);
        let busy = estimate_power(&adder, &lib, 0, 1.0e9, 0.4);
        assert!(busy.dynamic_w > fast.dynamic_w);
        // Static power is frequency-independent.
        assert_eq!(slow.static_w, fast.static_w);
    }

    #[test]
    fn pipeline_registers_add_power() {
        let adder = blocks::ripple_adder(8);
        let lib = CellLibrary::synthetic(ProcessKind::Silicon45, 1.0e-11);
        let bare = estimate_power(&adder, &lib, 0, 1.0e9, 0.2);
        let piped = estimate_power(&adder, &lib, 200, 1.0e9, 0.2);
        assert!(piped.total_w() > bare.total_w());
    }

    #[test]
    fn energy_per_instruction_inverse_in_throughput() {
        let adder = blocks::ripple_adder(8);
        let lib = CellLibrary::synthetic(ProcessKind::Organic, 6.5e-4);
        let r = estimate_power(&adder, &lib, 0, 10.0, 0.2);
        let e1 = energy_per_instruction(&r, 0.5);
        let e2 = energy_per_instruction(&r, 1.0);
        assert!((e1 / e2 - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "activity must be in")]
    fn rejects_bad_activity() {
        let adder = blocks::ripple_adder(4);
        let lib = CellLibrary::synthetic(ProcessKind::Silicon45, 1.0e-11);
        let _ = estimate_power(&adder, &lib, 0, 1.0e9, 1.5);
    }
}
