//! Balanced pipeline cutting.
//!
//! Given a combinational block and a characterized library, [`pipeline_cut`]
//! slices the levelized DAG into `N` stages of roughly equal delay, inserts
//! pipeline registers on every boundary-crossing net, and reports the
//! resulting minimum clock period and area — the procedure behind the
//! ALU-depth experiment (Figure 12) and, applied per core stage, the
//! core-depth experiment (Figure 11).
//!
//! The clock period of an `N`-stage pipeline is
//!
//! ```text
//! T(N) = max_stage_logic(N) + (t_setup + t_clk→q) + t_skew + t_feedback(N)
//! ```
//!
//! where `t_feedback` is the repeated-wire delay of control/feedback nets
//! (stalls, flush, bypass) whose physical length grows with pipeline depth.
//! In silicon this term halts frequency scaling near 8 ALU stages; in the
//! organic process wires are so fast relative to gates that logic depth and
//! register overhead are the only limits — the paper's headline mechanism.

use bdc_cells::{CellKind, CellLibrary};

use crate::gate::Netlist;
use crate::sta::{analyze, StaConfig};

/// Pipelining knobs.
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Number of stages (≥ 1).
    pub stages: usize,
    /// Clock skew/jitter margin as a fraction of the DFF clk→Q delay.
    pub skew_fraction: f64,
    /// Feedback-net length: base span in die sides.
    pub feedback_base: f64,
    /// Feedback-net length: additional die sides per pipeline stage.
    pub feedback_per_stage: f64,
    /// Long-wire drivers are upsized by this factor (reduces their
    /// effective resistance).
    pub driver_upsize: f64,
}

impl PipelineOptions {
    /// Defaults calibrated for the paper's experiments.
    pub fn with_stages(stages: usize) -> Self {
        assert!(stages >= 1, "a pipeline needs at least one stage");
        PipelineOptions {
            stages,
            skew_fraction: 0.5,
            feedback_base: 0.5,
            feedback_per_stage: 0.3,
            driver_upsize: 8.0,
        }
    }
}

/// Result of cutting a block into stages.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Stage count.
    pub stages: usize,
    /// Minimum clock period (s).
    pub period: f64,
    /// Clock frequency (Hz).
    pub frequency: f64,
    /// Total area: combinational cells + all pipeline registers (µm²).
    pub area_um2: f64,
    /// Pipeline registers inserted (including input/output ranks).
    pub registers: usize,
    /// Per-stage worst logic delay (s).
    pub stage_logic: Vec<f64>,
    /// Sequential overhead charged per stage: setup + clk→Q + skew (s).
    pub seq_overhead: f64,
    /// Feedback/control wire overhead charged per stage (s).
    pub wire_overhead: f64,
}

/// Cuts a combinational netlist into `opts.stages` balanced stages.
///
/// # Panics
/// Panics if the netlist contains flops (pipeline the combinational core,
/// registers are inserted here) or `opts.stages == 0`.
pub fn pipeline_cut(
    netlist: &Netlist,
    lib: &CellLibrary,
    sta_cfg: &StaConfig,
    opts: &PipelineOptions,
) -> PipelineResult {
    assert!(
        netlist.flops().is_empty(),
        "pipeline_cut expects a combinational block"
    );
    assert!(opts.stages >= 1);
    let n = opts.stages;
    let sta = analyze(netlist, lib, sta_cfg);
    let total = sta.max_arrival.max(1e-30);
    let bucket = total / n as f64;

    // Assign each gate to a stage by the arrival time of its output.
    let stage_of_arrival = |t: f64| -> usize { ((t / bucket).ceil() as usize).clamp(1, n) - 1 };
    let mut stage_logic = vec![0.0f64; n];
    let mut net_stage: Vec<usize> = vec![0; netlist.net_count()];
    for (g, &d) in netlist.gates().iter().zip(&sta.gate_delay) {
        let t = sta.arrival[g.output];
        let s = stage_of_arrival(t);
        net_stage[g.output] = s;
        let t_lo = s as f64 * bucket;
        stage_logic[s] = stage_logic[s].max((t - t_lo).max(d));
    }

    // Count boundary-crossing registers: a net driven in stage s and read in
    // stage s' > s needs (s' − s) register bits.
    let mut registers = 0usize;
    let mut last_use = vec![0usize; netlist.net_count()];
    for g in netlist.gates() {
        let s = net_stage[g.output];
        for &i in &g.inputs {
            last_use[i] = last_use[i].max(s);
        }
    }
    for &o in netlist.outputs() {
        last_use[o] = last_use[o].max(n - 1);
    }
    for net in 0..netlist.net_count() {
        if last_use[net] > net_stage[net] {
            registers += last_use[net] - net_stage[net];
        }
    }
    // Input and output register ranks.
    registers += netlist.inputs().len() + netlist.outputs().len();

    let seq_overhead = lib.dff.setup + lib.dff.clk_to_q * (1.0 + opts.skew_fraction);
    let fb_len = sta_cfg.placement.crossing_length(
        &sta.placement,
        opts.feedback_base + opts.feedback_per_stage * n as f64,
    );
    let wire_overhead = lib
        .wire
        .delay(fb_len, lib.drive_resistance() / opts.driver_upsize);

    let worst_logic = stage_logic.iter().copied().fold(0.0, f64::max);
    let period = worst_logic + seq_overhead + wire_overhead;
    let dff_area = lib.cell(CellKind::Dff).area;
    let area_um2 = sta.area_um2 + registers as f64 * dff_area;
    PipelineResult {
        stages: n,
        period,
        frequency: 1.0 / period,
        area_um2,
        registers,
        stage_logic,
        seq_overhead,
        wire_overhead,
    }
}

/// Computes the per-gate stage assignment used by [`pipeline_cut`]:
/// `assignment[i]` is the stage of `netlist.gates()[i]`.
pub fn stage_assignment(
    netlist: &Netlist,
    lib: &CellLibrary,
    sta_cfg: &StaConfig,
    stages: usize,
) -> Vec<usize> {
    assert!(stages >= 1);
    let sta = analyze(netlist, lib, sta_cfg);
    let total = sta.max_arrival.max(1e-30);
    let bucket = total / stages as f64;
    netlist
        .gates()
        .iter()
        .map(|g| {
            let t = sta.arrival[g.output];
            ((t / bucket).ceil() as usize).clamp(1, stages) - 1
        })
        .collect()
}

/// Materializes the pipelined netlist: inserts real flip-flops on every
/// stage-boundary crossing so the result can be functionally verified
/// against the combinational original (outputs appear `stages − 1` cycles
/// later). Primary inputs are treated as stage-0 signals.
///
/// # Panics
/// Panics if `netlist` already contains flops.
pub fn insert_registers(
    netlist: &Netlist,
    lib: &CellLibrary,
    sta_cfg: &StaConfig,
    stages: usize,
) -> Netlist {
    assert!(
        netlist.flops().is_empty(),
        "insert_registers expects a combinational block"
    );
    let assignment = stage_assignment(netlist, lib, sta_cfg, stages);
    let mut out = Netlist::new(format!("{}_p{stages}", netlist.name));
    // For each source net, the version of it available at each stage:
    // versions[net][s] = the out-net carrying this signal in stage s.
    let mut base = vec![usize::MAX; netlist.net_count()];
    let mut net_stage = vec![0usize; netlist.net_count()];
    for &i in netlist.inputs() {
        base[i] = out.input(netlist.net_name(i).unwrap_or("in").to_string());
    }
    let (c0, c1) = netlist.constants();
    // Constants are re-created fresh per use stage? They are stage-less:
    // treat as available in every stage without registers.
    if let Some(c) = c0 {
        base[c] = out.const0();
    }
    if let Some(c) = c1 {
        base[c] = out.const1();
    }
    // Cache of delayed versions: (net, stage) -> out net.
    let mut delayed: std::collections::BTreeMap<(usize, usize), usize> = Default::default();
    let is_const = |n: usize| Some(n) == c0 || Some(n) == c1;
    for (g, &s) in netlist.gates().iter().zip(&assignment) {
        let ins: Vec<usize> = g
            .inputs
            .iter()
            .map(|&i| {
                if is_const(i) {
                    return base[i];
                }
                let from = net_stage[i];
                assert!(from <= s, "net used before it is produced");
                let mut cur = base[i];
                for step in from..s {
                    cur = *delayed
                        .entry((i, step + 1))
                        .or_insert_with(|| out.flop(cur));
                }
                cur
            })
            .collect();
        let o = out.gate(g.kind, &ins);
        base[g.output] = o;
        net_stage[g.output] = s;
    }
    let last = stages - 1;
    for &o in netlist.outputs() {
        // Delay every output to the final stage so all outputs align.
        let mut cur = base[o];
        if !is_const(o) {
            for step in net_stage[o]..last {
                cur = *delayed
                    .entry((o, step + 1))
                    .or_insert_with(|| out.flop(cur));
            }
        }
        out.output(cur, netlist.net_name(o).unwrap_or("out").to_string());
    }
    out
}

/// Sweeps stage counts, returning one result per entry of `stage_counts`.
pub fn depth_sweep(
    netlist: &Netlist,
    lib: &CellLibrary,
    sta_cfg: &StaConfig,
    stage_counts: &[usize],
    base: &PipelineOptions,
) -> Vec<PipelineResult> {
    stage_counts
        .iter()
        .map(|&s| {
            pipeline_cut(
                netlist,
                lib,
                sta_cfg,
                &PipelineOptions { stages: s, ..*base },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks;
    use bdc_cells::{CellLibrary, ProcessKind};

    fn si() -> CellLibrary {
        CellLibrary::synthetic(ProcessKind::Silicon45, 15.0e-12)
    }

    fn org() -> CellLibrary {
        CellLibrary::synthetic(ProcessKind::Organic, 1.2e-4)
    }

    #[test]
    fn single_stage_matches_sta_plus_overhead() {
        let lib = si();
        let mult = blocks::array_multiplier(8);
        let cfg = StaConfig::default();
        let r = pipeline_cut(&mult, &lib, &cfg, &PipelineOptions::with_stages(1));
        let sta = analyze(&mult, &lib, &cfg);
        assert!(r.period >= sta.max_arrival + lib.dff.setup);
        assert_eq!(r.stage_logic.len(), 1);
    }

    #[test]
    fn deeper_pipelines_are_faster_until_overheads_dominate() {
        let lib = si();
        let mult = blocks::array_multiplier(16);
        let cfg = StaConfig::default();
        let base = PipelineOptions::with_stages(1);
        let sweep = depth_sweep(&mult, &lib, &cfg, &[1, 2, 4, 8], &base);
        assert!(sweep[1].frequency > 1.5 * sweep[0].frequency);
        assert!(sweep[2].frequency > sweep[1].frequency);
        // Monotone register growth.
        assert!(sweep[3].registers > sweep[2].registers);
        assert!(sweep[3].area_um2 > sweep[2].area_um2);
    }

    #[test]
    fn organic_scales_deeper_than_silicon() {
        // The Figure 12 mechanism in miniature: normalized frequency keeps
        // climbing for organic at depths where silicon has flattened.
        let cfg = StaConfig::default();
        let mult = blocks::array_multiplier(16);
        let base = PipelineOptions::with_stages(1);
        let depths = [1usize, 4, 8, 16, 24];
        let si_sweep = depth_sweep(&mult, &si(), &cfg, &depths, &base);
        let org_sweep = depth_sweep(&mult, &org(), &cfg, &depths, &base);
        let si_norm: Vec<f64> = si_sweep
            .iter()
            .map(|r| r.frequency / si_sweep[0].frequency)
            .collect();
        let org_norm: Vec<f64> = org_sweep
            .iter()
            .map(|r| r.frequency / org_sweep[0].frequency)
            .collect();
        // Organic gains more from 8 → 24 stages than silicon does. (This
        // 16-bit block is small — the effect is much stronger on the real
        // ALU cluster; the full calibrated comparison lives in bdc-core.)
        let si_gain = si_norm[4] / si_norm[2];
        let org_gain = org_norm[4] / org_norm[2];
        assert!(
            org_gain > si_gain * 1.05,
            "organic 8→24 gain {org_gain:.2} vs silicon {si_gain:.2}"
        );
    }

    #[test]
    fn register_count_grows_with_cut_count() {
        let lib = si();
        let add = blocks::ripple_adder(16);
        let cfg = StaConfig::default();
        let r2 = pipeline_cut(&add, &lib, &cfg, &PipelineOptions::with_stages(2));
        let r8 = pipeline_cut(&add, &lib, &cfg, &PipelineOptions::with_stages(8));
        assert!(r8.registers > r2.registers);
    }

    #[test]
    #[should_panic(expected = "combinational block")]
    fn rejects_sequential_input() {
        let lib = si();
        let mut n = Netlist::new("seq");
        let a = n.input("a");
        let q = n.flop(a);
        n.output(q, "q");
        let _ = pipeline_cut(
            &n,
            &lib,
            &StaConfig::default(),
            &PipelineOptions::with_stages(2),
        );
    }
}
