//! Netlist statistics: structural reports for synthesized blocks.
//!
//! Cell-count histograms, logic-depth and fanout distributions — what a
//! synthesis report prints, and what the paper's §5.5 discussion about
//! NAND2/NAND3 coverage per library reads from.

use std::collections::BTreeMap;

use crate::gate::{GateKind, Netlist};

/// Structural statistics of a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Gate counts per kind, in [`GateKind`] order — iteration reaches
    /// rendered report bytes, so the container must be ordered.
    pub cells: BTreeMap<GateKind, usize>,
    /// Flip-flop count.
    pub flops: usize,
    /// Logic depth in gate levels (unit-delay).
    pub depth: usize,
    /// Gates per topological level.
    pub level_histogram: Vec<usize>,
    /// Maximum fanout of any net.
    pub max_fanout: usize,
    /// Mean fanout across driven nets.
    pub mean_fanout: f64,
}

/// Computes structural statistics.
pub fn netlist_stats(netlist: &Netlist) -> NetlistStats {
    let mut level = vec![0usize; netlist.net_count()];
    let mut depth = 0usize;
    let mut per_level: Vec<usize> = Vec::new();
    for g in netlist.gates() {
        let l = g.inputs.iter().map(|&i| level[i]).max().unwrap_or(0) + 1;
        level[g.output] = l;
        depth = depth.max(l);
        if per_level.len() <= l {
            per_level.resize(l + 1, 0);
        }
        per_level[l] += 1;
    }
    let fo = netlist.fanout_counts();
    let driven: Vec<usize> = fo.iter().copied().filter(|&f| f > 0).collect();
    let mean_fanout = if driven.is_empty() {
        0.0
    } else {
        driven.iter().sum::<usize>() as f64 / driven.len() as f64
    };
    NetlistStats {
        cells: netlist.histogram(),
        flops: netlist.flops().len(),
        depth,
        level_histogram: per_level,
        max_fanout: fo.into_iter().max().unwrap_or(0),
        mean_fanout,
    }
}

/// Fraction of 2-input vs 3-input coverage among NAND/NOR cells — the
/// §5.5 coverage metric. Returns `(two_input_fraction, total_nand_nor)`.
pub fn coverage_ratio(netlist: &Netlist) -> (f64, usize) {
    let h = netlist.histogram();
    let two = h.get(&GateKind::Nand2).copied().unwrap_or(0)
        + h.get(&GateKind::Nor2).copied().unwrap_or(0);
    let three = h.get(&GateKind::Nand3).copied().unwrap_or(0)
        + h.get(&GateKind::Nor3).copied().unwrap_or(0);
    let total = two + three;
    if total == 0 {
        (0.0, 0)
    } else {
        (two as f64 / total as f64, total)
    }
}

/// Renders the statistics as a report block.
pub fn render_stats(name: &str, s: &NetlistStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{name}:");
    // `cells` iterates in `GateKind` order, which coincides with the
    // alphabetical debug-name order the report has always printed.
    for (k, v) in &s.cells {
        let _ = writeln!(out, "  {k:?}: {v}");
    }
    let _ = writeln!(out, "  DFF: {}", s.flops);
    let _ = writeln!(
        out,
        "  depth: {} levels, max fanout {}, mean fanout {:.2}",
        s.depth, s.max_fanout, s.mean_fanout
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks;

    #[test]
    fn stats_of_a_known_structure() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.nand2(a, b); // level 1
        let y = n.inv(x); // level 2
        let z = n.nand3(y, a, b); // level 3
        let q = n.flop(z);
        n.output(q, "q");
        let s = netlist_stats(&n);
        assert_eq!(s.depth, 3);
        assert_eq!(s.flops, 1);
        assert_eq!(s.cells[&GateKind::Nand2], 1);
        assert_eq!(s.cells[&GateKind::Inv], 1);
        // a drives nand2 and nand3 → fanout 2.
        assert_eq!(s.max_fanout, 2);
    }

    #[test]
    fn multiplier_depth_scales_with_width() {
        let s8 = netlist_stats(&blocks::array_multiplier(8));
        let s16 = netlist_stats(&blocks::array_multiplier(16));
        assert!(s16.depth as f64 > 1.5 * s8.depth as f64);
        assert!(
            s16.level_histogram.iter().sum::<usize>() == blocks::array_multiplier(16).gates().len()
        );
    }

    #[test]
    fn coverage_ratio_counts_nand_nor_families() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let _ = n.nand2(a, b);
        let _ = n.nand3(a, b, c);
        let _ = n.nor2(a, b);
        let (frac, total) = coverage_ratio(&n);
        assert_eq!(total, 3);
        assert!((frac - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn render_is_nonempty_and_mentions_depth() {
        let s = netlist_stats(&blocks::ripple_adder(8));
        let text = render_stats("ripple8", &s);
        assert!(text.contains("depth:"));
        assert!(text.contains("ripple8"));
    }

    #[test]
    fn render_stats_bytes_are_pinned() {
        // Regression pin for the determinism audit (D001): cell-count
        // iteration reaches these bytes, so the exact order — Inv, Nand2,
        // Nand3, Nor2, Nor3 — must never depend on a hash seed. This is
        // the byte-exact output for a known structure.
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let x = n.nand2(a, b); // level 1
        let y = n.inv(x); // level 2
        let z = n.nand3(y, a, b); // level 3
        let w = n.nor2(z, c); // level 4
        let v = n.nor3(w, a, c); // level 5
        let q = n.flop(v);
        n.output(q, "q");
        let s = netlist_stats(&n);
        let text = render_stats("pinned", &s);
        assert_eq!(
            text,
            "pinned:\n  Inv: 1\n  Nand2: 1\n  Nand3: 1\n  Nor2: 1\n  Nor3: 1\n  DFF: 1\n  depth: 5 levels, max fanout 3, mean fanout 1.50\n"
        );
    }
}
