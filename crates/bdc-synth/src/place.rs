//! Placement-derived wirelength estimation.
//!
//! Synthesis needs wire lengths before layout exists, so — like a wire-load
//! model in Design Compiler — we estimate them from block area: cells tile a
//! square die; a local net spans a few cell pitches (growing with fanout);
//! feedback and stage-crossing nets span a fraction of the die side.

use bdc_cells::{CellKind, CellLibrary};

use crate::gate::{GateKind, Netlist};

/// Converts a gate kind to its library cell.
pub fn cell_of(kind: GateKind) -> CellKind {
    match kind {
        GateKind::Inv => CellKind::Inv,
        GateKind::Nand2 => CellKind::Nand2,
        GateKind::Nand3 => CellKind::Nand3,
        GateKind::Nor2 => CellKind::Nor2,
        GateKind::Nor3 => CellKind::Nor3,
    }
}

/// Tunable placement coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementModel {
    /// Die area = routing_factor × Σ cell area.
    pub routing_factor: f64,
    /// Local net length = local_k × pitch × (1 + √fanout).
    pub local_k: f64,
    /// Stage-crossing / feedback net length = crossing_k × die side.
    pub crossing_k: f64,
}

impl Default for PlacementModel {
    fn default() -> Self {
        PlacementModel {
            routing_factor: 2.0,
            local_k: 1.0,
            crossing_k: 1.0,
        }
    }
}

/// Result of placing one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Total standard-cell area (µm²).
    pub cell_area_um2: f64,
    /// Die area including routing (µm²).
    pub die_area_um2: f64,
    /// Die side (m).
    pub die_side_m: f64,
    /// Average cell pitch (m).
    pub pitch_m: f64,
    /// Number of placeable instances.
    pub instances: usize,
}

impl PlacementModel {
    /// Places a netlist against a library.
    pub fn place(&self, netlist: &Netlist, lib: &CellLibrary) -> Placement {
        let mut area = 0.0;
        for g in netlist.gates() {
            area += lib.cell(cell_of(g.kind)).area;
        }
        area += netlist.flops().len() as f64 * lib.cell(CellKind::Dff).area;
        let instances = netlist.gates().len() + netlist.flops().len();
        self.place_area(area, instances.max(1))
    }

    /// Places a known cell area directly (used when composing many blocks).
    pub fn place_area(&self, cell_area_um2: f64, instances: usize) -> Placement {
        let die_area_um2 = self.routing_factor * cell_area_um2;
        let die_side_m = (die_area_um2.max(1e-12)).sqrt() * 1.0e-6;
        let pitch_m = (die_area_um2 / instances.max(1) as f64).sqrt() * 1.0e-6;
        Placement {
            cell_area_um2,
            die_area_um2,
            die_side_m,
            pitch_m,
            instances: instances.max(1),
        }
    }

    /// Estimated length (m) of a local net with the given fanout.
    pub fn local_net_length(&self, p: &Placement, fanout: usize) -> f64 {
        self.local_k * p.pitch_m * (1.0 + (fanout as f64).sqrt())
    }

    /// Estimated length (m) of a net that crosses the block (feedback,
    /// stall, broadcast). `span` scales the crossing in units of die sides.
    pub fn crossing_length(&self, p: &Placement, span: f64) -> f64 {
        self.crossing_k * p.die_side_m * span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks;
    use bdc_cells::{CellLibrary, ProcessKind};

    #[test]
    fn silicon_multiplier_die_is_sub_millimetre() {
        let lib = CellLibrary::synthetic(ProcessKind::Silicon45, 15.0e-12);
        let mult = blocks::array_multiplier(32);
        let p = PlacementModel::default().place(&mult, &lib);
        assert!(
            p.die_side_m > 20.0e-6 && p.die_side_m < 2.0e-3,
            "side {:.3e}",
            p.die_side_m
        );
    }

    #[test]
    fn organic_multiplier_die_is_centimetres() {
        let lib = CellLibrary::synthetic(ProcessKind::Organic, 1.0e-4);
        let mult = blocks::array_multiplier(32);
        let p = PlacementModel::default().place(&mult, &lib);
        // 80 µm channels: a 32-bit multiplier needs a glass panel.
        assert!(
            p.die_side_m > 0.02 && p.die_side_m < 2.0,
            "side {:.3} m",
            p.die_side_m
        );
    }

    #[test]
    fn local_nets_shorter_than_crossings() {
        let lib = CellLibrary::synthetic(ProcessKind::Silicon45, 15.0e-12);
        let mult = blocks::array_multiplier(16);
        let m = PlacementModel::default();
        let p = m.place(&mult, &lib);
        assert!(m.local_net_length(&p, 2) < 0.2 * m.crossing_length(&p, 1.0));
    }

    #[test]
    fn area_scales_with_gate_count() {
        let lib = CellLibrary::synthetic(ProcessKind::Silicon45, 15.0e-12);
        let small = PlacementModel::default().place(&blocks::array_multiplier(8), &lib);
        let big = PlacementModel::default().place(&blocks::array_multiplier(16), &lib);
        assert!(big.cell_area_um2 > 3.0 * small.cell_area_um2);
    }
}
