//! Structural Verilog export/import for gate netlists.
//!
//! Synthesized designs normally move between tools as structural Verilog;
//! this module writes a netlist as instantiations of the six library cells
//! (`INV`, `NAND2`, `NAND3`, `NOR2`, `NOR3`, `DFF`) and parses the same
//! dialect back, round-tripping exactly. Tie cells `TIE0`/`TIE1` carry the
//! constant nets.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::gate::{GateKind, NetId, Netlist};

/// Errors raised while parsing structural Verilog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerilogError {
    /// 1-based line number (0 when the problem is global).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for VerilogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for VerilogError {}

fn cell_name(kind: GateKind) -> &'static str {
    match kind {
        GateKind::Inv => "INV",
        GateKind::Nand2 => "NAND2",
        GateKind::Nand3 => "NAND3",
        GateKind::Nor2 => "NOR2",
        GateKind::Nor3 => "NOR3",
    }
}

fn kind_of(name: &str) -> Option<GateKind> {
    Some(match name {
        "INV" => GateKind::Inv,
        "NAND2" => GateKind::Nand2,
        "NAND3" => GateKind::Nand3,
        "NOR2" => GateKind::Nor2,
        "NOR3" => GateKind::Nor3,
        _ => return None,
    })
}

/// Sanitizes a bus-style name (`a[3]`) into a Verilog identifier (`a_3`).
fn ident(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes a netlist as structural Verilog.
pub fn write_verilog(netlist: &Netlist) -> String {
    let mut s = String::new();
    let net_name = |n: NetId| -> String {
        match netlist.input_name(n) {
            Some(nm) => format!("pi_{}", ident(nm)),
            None => format!("n{n}"),
        }
    };
    let ports: Vec<String> = netlist
        .inputs()
        .iter()
        .map(|&n| net_name(n))
        .chain(
            netlist
                .outputs()
                .iter()
                .enumerate()
                .map(|(i, _)| format!("po_{i}")),
        )
        .collect();
    let _ = writeln!(s, "module {} ({});", ident(&netlist.name), ports.join(", "));
    for &n in netlist.inputs() {
        let _ = writeln!(s, "  input {};", net_name(n));
    }
    for i in 0..netlist.outputs().len() {
        let _ = writeln!(s, "  output po_{i};");
    }
    // Declare internal wires (every gate/flop output and constants).
    for g in netlist.gates() {
        let _ = writeln!(s, "  wire {};", net_name(g.output));
    }
    for f in netlist.flops() {
        let _ = writeln!(s, "  wire {};", net_name(f.q));
    }
    let (c0, c1) = netlist.constants();
    if let Some(c) = c0 {
        let _ = writeln!(s, "  wire {};", net_name(c));
        let _ = writeln!(s, "  TIE0 tie0 (.y({}));", net_name(c));
    }
    if let Some(c) = c1 {
        let _ = writeln!(s, "  wire {};", net_name(c));
        let _ = writeln!(s, "  TIE1 tie1 (.y({}));", net_name(c));
    }
    let pin = ["a", "b", "c"];
    for (i, g) in netlist.gates().iter().enumerate() {
        let ins: Vec<String> = g
            .inputs
            .iter()
            .enumerate()
            .map(|(k, &n)| format!(".{}({})", pin[k], net_name(n)))
            .collect();
        let _ = writeln!(
            s,
            "  {} g{i} ({}, .y({}));",
            cell_name(g.kind),
            ins.join(", "),
            net_name(g.output)
        );
    }
    for (i, f) in netlist.flops().iter().enumerate() {
        let _ = writeln!(
            s,
            "  DFF ff{i} (.d({}), .q({}));",
            net_name(f.d),
            net_name(f.q)
        );
    }
    for (i, &o) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(s, "  assign po_{i} = {};", net_name(o));
    }
    let _ = writeln!(s, "endmodule");
    s
}

/// Parses the structural dialect produced by [`write_verilog`].
///
/// # Errors
/// Returns [`VerilogError`] for unknown cells, malformed instantiations or
/// nets that are used but never driven.
pub fn parse_verilog(text: &str) -> Result<Netlist, VerilogError> {
    let mut name = String::from("parsed");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<(String, String)> = Vec::new(); // (port, net)
    struct Inst {
        cell: String,
        pins: Vec<(String, String)>,
        line: usize,
    }
    let mut insts: Vec<Inst> = Vec::new();

    for (ln0, raw) in text.lines().enumerate() {
        let line = ln0 + 1;
        let t = raw.trim().trim_end_matches(';');
        if t.is_empty() || t == "endmodule" {
            continue;
        }
        if let Some(rest) = t.strip_prefix("module ") {
            name = rest
                .split('(')
                .next()
                .unwrap_or("parsed")
                .trim()
                .to_string();
        } else if let Some(rest) = t.strip_prefix("input ") {
            inputs.push(rest.trim().to_string());
        } else if t.starts_with("output ") || t.starts_with("wire ") {
            // declarations carry no structure we need
        } else if let Some(rest) = t.strip_prefix("assign ") {
            let mut halves = rest.splitn(2, '=');
            let port = halves.next().unwrap_or("").trim().to_string();
            let net = halves
                .next()
                .ok_or_else(|| VerilogError {
                    line,
                    message: "assign needs '='".into(),
                })?
                .trim()
                .to_string();
            outputs.push((port, net));
        } else {
            // Cell instantiation: CELL inst (.pin(net), ...);
            let open = t.find('(').ok_or_else(|| VerilogError {
                line,
                message: format!("expected instantiation, got {t:?}"),
            })?;
            let head: Vec<&str> = t[..open].split_whitespace().collect();
            if head.len() != 2 {
                return Err(VerilogError {
                    line,
                    message: format!("bad instance head {t:?}"),
                });
            }
            let body = &t[open + 1..t.rfind(')').unwrap_or(t.len())];
            let mut pins = Vec::new();
            for part in body.split("),") {
                let p = part.trim().trim_end_matches(')');
                if p.is_empty() {
                    continue;
                }
                let p = p.strip_prefix('.').ok_or_else(|| VerilogError {
                    line,
                    message: format!("bad pin syntax {p:?}"),
                })?;
                let mut it = p.splitn(2, '(');
                let pin = it.next().unwrap_or("").trim().to_string();
                let net = it
                    .next()
                    .ok_or_else(|| VerilogError {
                        line,
                        message: format!("bad pin {p:?}"),
                    })?
                    .trim()
                    .to_string();
                pins.push((pin, net));
            }
            insts.push(Inst {
                cell: head[0].to_string(),
                pins,
                line,
            });
        }
    }

    // Build the netlist: inputs first, then TIEs/flop outputs, then gates in
    // file order (the writer emits them topologically).
    let mut n = Netlist::new(name);
    let mut nets: BTreeMap<String, NetId> = BTreeMap::new();
    for inp in &inputs {
        let id = n.input(inp.clone());
        nets.insert(inp.clone(), id);
    }
    // Pre-create flop Q nets and constants so feedback/undriven uses resolve.
    for inst in &insts {
        match inst.cell.as_str() {
            "TIE0" => {
                let c = n.const0();
                if let Some((_, net)) = inst.pins.first() {
                    nets.insert(net.clone(), c);
                }
            }
            "TIE1" => {
                let c = n.const1();
                if let Some((_, net)) = inst.pins.first() {
                    nets.insert(net.clone(), c);
                }
            }
            "DFF" => {
                for (pin, net) in &inst.pins {
                    if pin == "q" {
                        let q = n.net();
                        nets.insert(net.clone(), q);
                    }
                }
            }
            _ => {}
        }
    }
    let mut flops: Vec<(String, String, usize)> = Vec::new();
    for inst in &insts {
        match inst.cell.as_str() {
            "TIE0" | "TIE1" => {}
            "DFF" => {
                let d = pin_net(&inst.pins, "d", inst.line)?;
                let q = pin_net(&inst.pins, "q", inst.line)?;
                flops.push((d, q, inst.line));
            }
            other => {
                let kind = kind_of(other).ok_or_else(|| VerilogError {
                    line: inst.line,
                    message: format!("unknown cell {other:?}"),
                })?;
                let mut ins = Vec::new();
                for pin in ["a", "b", "c"].iter().take(kind.fan_in()) {
                    let net = pin_net(&inst.pins, pin, inst.line)?;
                    let id = *nets.get(&net).ok_or_else(|| VerilogError {
                        line: inst.line,
                        message: format!("net {net:?} used before it is driven"),
                    })?;
                    ins.push(id);
                }
                let out_net = pin_net(&inst.pins, "y", inst.line)?;
                let out = n.gate(kind, &ins);
                nets.insert(out_net, out);
            }
        }
    }
    for (d, q, line) in flops {
        let d_id = *nets.get(&d).ok_or_else(|| VerilogError {
            line,
            message: format!("flop D net {d:?} undriven"),
        })?;
        let q_id = *nets.get(&q).expect("flop q pre-created");
        n.flop_into(d_id, q_id);
    }
    for (port, net) in outputs {
        let id = *nets.get(&net).ok_or_else(|| VerilogError {
            line: 0,
            message: format!("output net {net:?} undriven"),
        })?;
        n.output(id, port);
    }
    Ok(n)
}

fn pin_net(pins: &[(String, String)], pin: &str, line: usize) -> Result<String, VerilogError> {
    pins.iter()
        .find(|(p, _)| p == pin)
        .map(|(_, n)| n.clone())
        .ok_or_else(|| VerilogError {
            line,
            message: format!("missing pin .{pin}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks;
    use crate::funcsim::{simulate_comb, u64_to_bus};
    use std::collections::BTreeMap as Map;

    #[test]
    fn adder_round_trips_and_stays_equivalent() {
        let orig = blocks::ripple_adder(8);
        let text = write_verilog(&orig);
        assert!(text.contains("module ripple_adder8"));
        let back = parse_verilog(&text).expect("parse");
        back.validate().expect("valid");
        assert_eq!(back.gates().len(), orig.gates().len());
        // Functional equivalence over a few vectors.
        for (a_v, b_v) in [(0u64, 0u64), (200, 55), (255, 255), (13, 99)] {
            // Parsed inputs are renamed (pi_a_0 …), so address by position —
            // the writer preserves declaration order: a[0..8], b[0..8], cin.
            let run = |nl: &Netlist| {
                let mut m: Map<usize, bool> = Map::new();
                let ins: Vec<usize> = nl.inputs().to_vec();
                // layout: a[0..8], b[0..8], cin — writer preserves order.
                u64_to_bus(&mut m, &ins[0..8], a_v);
                u64_to_bus(&mut m, &ins[8..16], b_v);
                m.insert(ins[16], false);
                let v = simulate_comb(nl, &m);
                nl.outputs().iter().map(|&o| v[o]).collect::<Vec<bool>>()
            };
            assert_eq!(run(&orig), run(&back), "{a_v}+{b_v}");
        }
    }

    #[test]
    fn sequential_and_constants_round_trip() {
        let mut nl = Netlist::new("seq");
        let a = nl.input("a");
        let c1 = nl.const1();
        let x = nl.nand2(a, c1);
        let q = nl.flop(x);
        let y = nl.nor2(q, a);
        nl.output(y, "y");
        let text = write_verilog(&nl);
        assert!(text.contains("TIE1"));
        assert!(text.contains("DFF"));
        let back = parse_verilog(&text).expect("parse");
        back.validate().expect("valid");
        assert_eq!(back.flops().len(), 1);
        assert_eq!(back.gates().len(), 2);
    }

    #[test]
    fn parse_rejects_unknown_cells_and_undriven_nets() {
        let e = parse_verilog("module m (x);\n  XOR2 g0 (.a(x), .y(z));\nendmodule").unwrap_err();
        assert!(e.message.contains("unknown cell"), "{e}");
        let e = parse_verilog("module m ();\n  INV g0 (.a(ghost), .y(z));\nendmodule").unwrap_err();
        assert!(e.message.contains("used before"), "{e}");
    }

    #[test]
    fn flop_feedback_loops_parse() {
        // A toggle-ish loop: q feeds an inverter feeding d.
        let mut nl = Netlist::new("loopy");
        let q_placeholder = nl.net();
        let nq = nl.gate(GateKind::Inv, &[q_placeholder]);
        nl.flop_into(nq, q_placeholder);
        nl.output(q_placeholder, "q");
        // (constructed manually to create feedback; write and re-read)
        let text = write_verilog(&nl);
        let back = parse_verilog(&text).expect("parse feedback");
        assert_eq!(back.flops().len(), 1);
    }
}
