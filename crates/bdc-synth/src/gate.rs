//! Gate-level netlist intermediate representation.
//!
//! Netlists are DAGs of gates drawn from the 6-cell library vocabulary
//! (INV, NAND2, NAND3, NOR2, NOR3 + DFF), expressed over integer net ids.
//! Higher-level operators (AND, XOR, MUX, full adders, …) are provided as
//! builder methods that expand into library gates, mirroring how a
//! technology mapper would cover them.

use std::collections::BTreeMap;

/// Identifier of a net (a wire) inside one netlist.
pub type NetId = usize;

/// Combinational gate kinds — the library's logic cells.
///
/// `Ord` follows declaration order, which is also alphabetical on the
/// debug names — the order every rendered histogram uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GateKind {
    /// Inverter.
    Inv,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
}

impl GateKind {
    /// Number of inputs.
    pub fn fan_in(self) -> usize {
        match self {
            GateKind::Inv => 1,
            GateKind::Nand2 | GateKind::Nor2 => 2,
            GateKind::Nand3 | GateKind::Nor3 => 3,
        }
    }

    /// Boolean function.
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Inv => !inputs[0],
            GateKind::Nand2 | GateKind::Nand3 => !inputs.iter().all(|&b| b),
            GateKind::Nor2 | GateKind::Nor3 => !inputs.iter().any(|&b| b),
        }
    }
}

/// One combinational gate instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Cell kind.
    pub kind: GateKind,
    /// Input nets (length = `kind.fan_in()`).
    pub inputs: Vec<NetId>,
    /// Output net.
    pub output: NetId,
}

/// One D-flip-flop instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flop {
    /// Data input net.
    pub d: NetId,
    /// Output net.
    pub q: NetId,
}

/// A gate-level netlist.
///
/// Primary inputs, constants and flop outputs are the combinational
/// sources; primary outputs and flop inputs are the sinks. The structure is
/// append-only: builders allocate nets and gates but never remove them.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    /// Human-readable name.
    pub name: String,
    n_nets: usize,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    gates: Vec<Gate>,
    flops: Vec<Flop>,
    const0: Option<NetId>,
    const1: Option<NetId>,
    input_names: BTreeMap<NetId, String>,
    output_names: BTreeMap<NetId, String>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Allocates a fresh net.
    pub fn net(&mut self) -> NetId {
        let id = self.n_nets;
        self.n_nets += 1;
        id
    }

    /// Declares a named primary input.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.net();
        self.inputs.push(id);
        self.input_names.insert(id, name.into());
        id
    }

    /// Declares a bus of primary inputs `name[0..width]`.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| self.input(format!("{name}[{i}]")))
            .collect()
    }

    /// Marks `net` as a named primary output.
    pub fn output(&mut self, net: NetId, name: impl Into<String>) {
        self.outputs.push(net);
        self.output_names.insert(net, name.into());
    }

    /// Marks a bus of primary outputs.
    pub fn output_bus(&mut self, nets: &[NetId], name: &str) {
        for (i, n) in nets.iter().enumerate() {
            self.output(*n, format!("{name}[{i}]"));
        }
    }

    /// The constant-0 net (lazily created; implemented as a tied-off input
    /// in simulation and a zero-arrival source in STA).
    pub fn const0(&mut self) -> NetId {
        if let Some(c) = self.const0 {
            return c;
        }
        let c = self.net();
        self.const0 = Some(c);
        c
    }

    /// The constant-1 net.
    pub fn const1(&mut self) -> NetId {
        if let Some(c) = self.const1 {
            return c;
        }
        let c = self.net();
        self.const1 = Some(c);
        c
    }

    /// Constant net ids, if created: `(const0, const1)`.
    pub fn constants(&self) -> (Option<NetId>, Option<NetId>) {
        (self.const0, self.const1)
    }

    /// Adds a raw gate.
    ///
    /// # Panics
    /// Panics if the input count does not match the kind.
    pub fn gate(&mut self, kind: GateKind, inputs: &[NetId]) -> NetId {
        assert_eq!(inputs.len(), kind.fan_in(), "wrong fan-in for {kind:?}");
        let output = self.net();
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        output
    }

    /// Adds a D-flip-flop and returns its Q net.
    pub fn flop(&mut self, d: NetId) -> NetId {
        let q = self.net();
        self.flops.push(Flop { d, q });
        q
    }

    /// Adds a D-flip-flop whose Q drives an already-allocated net — used by
    /// netlist rewriters that pre-allocate source nets.
    ///
    /// # Panics
    /// Panics if `q` is out of range.
    pub fn flop_into(&mut self, d: NetId, q: NetId) {
        assert!(q < self.n_nets && d < self.n_nets, "net out of range");
        self.flops.push(Flop { d, q });
    }

    /// Adds a gate driving an already-allocated net — the combinational
    /// counterpart of [`Netlist::flop_into`], for rewriters that stitch
    /// pre-allocated nets.
    ///
    /// Unlike [`Netlist::gate`], this can break the netlist's structural
    /// guarantees (topological order, single driver); callers are
    /// responsible for preserving them. `bdc-lint`'s gate-level pass
    /// (rules NL002/NL003) checks both.
    ///
    /// # Panics
    /// Panics if the input count does not match the kind or any net is out
    /// of range.
    pub fn gate_into(&mut self, kind: GateKind, inputs: &[NetId], output: NetId) {
        assert_eq!(inputs.len(), kind.fan_in(), "wrong fan-in for {kind:?}");
        assert!(
            output < self.n_nets && inputs.iter().all(|&i| i < self.n_nets),
            "net out of range"
        );
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
    }

    // ---- library-level builders -------------------------------------------

    /// NOT.
    pub fn inv(&mut self, a: NetId) -> NetId {
        self.gate(GateKind::Inv, &[a])
    }

    /// 2-input NAND.
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Nand2, &[a, b])
    }

    /// 3-input NAND.
    pub fn nand3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.gate(GateKind::Nand3, &[a, b, c])
    }

    /// 2-input NOR.
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Nor2, &[a, b])
    }

    /// 3-input NOR.
    pub fn nor3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.gate(GateKind::Nor3, &[a, b, c])
    }

    // ---- derived operators -------------------------------------------------

    /// AND2 = INV(NAND2).
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        let n = self.nand2(a, b);
        self.inv(n)
    }

    /// OR2 = INV(NOR2).
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        let n = self.nor2(a, b);
        self.inv(n)
    }

    /// AND3 = INV(NAND3).
    pub fn and3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        let n = self.nand3(a, b, c);
        self.inv(n)
    }

    /// OR3 = INV(NOR3).
    pub fn or3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        let n = self.nor3(a, b, c);
        self.inv(n)
    }

    /// XOR2 via the classic 4-NAND structure.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        let nab = self.nand2(a, b);
        let x = self.nand2(a, nab);
        let y = self.nand2(b, nab);
        self.nand2(x, y)
    }

    /// XNOR2 = INV(XOR2).
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        let x = self.xor2(a, b);
        self.inv(x)
    }

    /// 2:1 mux: `sel ? b : a`, NAND-mapped.
    pub fn mux2(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        let ns = self.inv(sel);
        let x = self.nand2(a, ns);
        let y = self.nand2(b, sel);
        self.nand2(x, y)
    }

    /// Full adder: returns `(sum, carry_out)`.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let axb = self.xor2(a, b);
        let sum = self.xor2(axb, cin);
        // carry = a·b + cin·(a⊕b) = NAND(NAND(a,b), NAND(cin, a⊕b)).
        let n1 = self.nand2(a, b);
        let n2 = self.nand2(cin, axb);
        let carry = self.nand2(n1, n2);
        (sum, carry)
    }

    /// Half adder: returns `(sum, carry_out)`.
    pub fn half_adder(&mut self, a: NetId, b: NetId) -> (NetId, NetId) {
        let s = self.xor2(a, b);
        let c = self.and2(a, b);
        (s, c)
    }

    /// Appends another netlist as an independent parallel block: its
    /// inputs/outputs become inputs/outputs of `self`, renamed with
    /// `prefix.` — used to compose pipeline-stage netlists from several
    /// structures. Returns the net-id translation table.
    pub fn append(&mut self, other: &Netlist, prefix: &str) -> Vec<NetId> {
        let mut map = vec![usize::MAX; other.net_count()];
        for &i in &other.inputs {
            let name = format!("{prefix}.{}", other.net_name(i).unwrap_or("in"));
            map[i] = self.input(name);
        }
        if let Some(c) = other.const0 {
            map[c] = self.const0();
        }
        if let Some(c) = other.const1 {
            map[c] = self.const1();
        }
        for f in &other.flops {
            map[f.q] = self.net();
        }
        for g in &other.gates {
            let ins: Vec<NetId> = g.inputs.iter().map(|&i| map[i]).collect();
            map[g.output] = self.gate(g.kind, &ins);
        }
        for f in &other.flops {
            let (d, q) = (map[f.d], map[f.q]);
            self.flop_into(d, q);
        }
        for &o in &other.outputs {
            let name = format!("{prefix}.{}", other.output_name(o).unwrap_or("out"));
            self.output(map[o], name);
        }
        map
    }

    // ---- introspection -----------------------------------------------------

    /// Number of nets allocated.
    pub fn net_count(&self) -> usize {
        self.n_nets
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Combinational gates in insertion (topological) order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Flip-flops.
    pub fn flops(&self) -> &[Flop] {
        &self.flops
    }

    /// A structural FNV-1a fingerprint: net allocation, sources, sinks,
    /// and every gate and flop with its exact connectivity, in insertion
    /// order. Two netlists with equal fingerprints are the same graph, so
    /// the fingerprint can stand in for the netlist in cache keys without
    /// serializing it to text. Labels — the netlist name and per-net
    /// names — are deliberately excluded: timing, area, mapping, and cut
    /// results depend only on structure, so content-identical stage
    /// netlists that differ only in their generator's label dedupe.
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(b"bdc-netfp-v1");
        eat(&(self.n_nets as u64).to_le_bytes());
        for &i in &self.inputs {
            eat(&(i as u64).to_le_bytes());
        }
        eat(b"|");
        for &o in &self.outputs {
            eat(&(o as u64).to_le_bytes());
        }
        let (c0, c1) = self.constants();
        for c in [c0, c1] {
            match c {
                None => eat(b"n"),
                Some(n) => eat(&(n as u64).to_le_bytes()),
            }
        }
        for g in &self.gates {
            eat(&[g.kind as u8]);
            for &i in &g.inputs {
                eat(&(i as u64).to_le_bytes());
            }
            eat(&(g.output as u64).to_le_bytes());
        }
        for f in &self.flops {
            eat(&(f.d as u64).to_le_bytes());
            eat(&(f.q as u64).to_le_bytes());
        }
        h
    }

    /// Gate-count histogram by kind, ordered by [`GateKind`].
    pub fn histogram(&self) -> BTreeMap<GateKind, usize> {
        let mut h = BTreeMap::new();
        for g in &self.gates {
            *h.entry(g.kind).or_insert(0) += 1;
        }
        h
    }

    /// Name of an input/output net if it has one (input name wins when a
    /// net is both).
    pub fn net_name(&self, net: NetId) -> Option<&str> {
        self.input_names
            .get(&net)
            .or_else(|| self.output_names.get(&net))
            .map(String::as_str)
    }

    /// The net's primary-input name, if any.
    pub fn input_name(&self, net: NetId) -> Option<&str> {
        self.input_names.get(&net).map(String::as_str)
    }

    /// The net's primary-output name, if any (a net can be both an input
    /// and an output when a block passes a signal through).
    pub fn output_name(&self, net: NetId) -> Option<&str> {
        self.output_names.get(&net).map(String::as_str)
    }

    /// Fanout count per net (number of gate/flop inputs each net feeds).
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut fo = vec![0usize; self.n_nets];
        for g in &self.gates {
            for &i in &g.inputs {
                fo[i] += 1;
            }
        }
        for f in &self.flops {
            fo[f.d] += 1;
        }
        fo
    }

    /// Checks structural sanity: gates are in topological order (every gate
    /// input is a primary input, constant, flop Q, or the output of an
    /// earlier gate) and each net has at most one driver.
    pub fn validate(&self) -> Result<(), String> {
        let mut driven = vec![false; self.n_nets];
        for &i in &self.inputs {
            driven[i] = true;
        }
        if let Some(c) = self.const0 {
            driven[c] = true;
        }
        if let Some(c) = self.const1 {
            driven[c] = true;
        }
        for f in &self.flops {
            if driven[f.q] {
                return Err(format!("net {} multiply driven (flop q)", f.q));
            }
            driven[f.q] = true;
        }
        for (gi, g) in self.gates.iter().enumerate() {
            for &i in &g.inputs {
                if !driven[i] {
                    return Err(format!("gate {gi} reads undriven net {i}"));
                }
            }
            if driven[g.output] {
                return Err(format!("net {} multiply driven", g.output));
            }
            driven[g.output] = true;
        }
        for f in &self.flops {
            if !driven[f.d] {
                return Err(format!("flop d reads undriven net {}", f.d));
            }
        }
        for &o in &self.outputs {
            if !driven[o] {
                return Err(format!("primary output {o} undriven"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_valid_topological_netlist() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let (s, co) = n.full_adder(a, b, c);
        n.output(s, "s");
        n.output(co, "co");
        n.validate().expect("valid");
        assert_eq!(n.inputs().len(), 3);
        assert_eq!(n.outputs().len(), 2);
        assert!(n.gates().len() >= 10);
    }

    #[test]
    fn histogram_counts_kinds() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.nand2(a, b);
        let _ = n.inv(x);
        let h = n.histogram();
        assert_eq!(h[&GateKind::Nand2], 1);
        assert_eq!(h[&GateKind::Inv], 1);
    }

    #[test]
    fn validate_catches_undriven_nets() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let ghost = n.net();
        let x = n.nand2(a, ghost);
        n.output(x, "x");
        assert!(n.validate().is_err());
    }

    #[test]
    fn flop_q_counts_as_driver() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let q = n.flop(a);
        let y = n.inv(q);
        n.output(y, "y");
        n.validate().expect("valid");
        assert_eq!(n.flops().len(), 1);
    }

    #[test]
    fn fanout_counts_gates_and_flops() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let x = n.inv(a);
        let _ = n.inv(x);
        let _ = n.inv(x);
        let _ = n.flop(x);
        let fo = n.fanout_counts();
        assert_eq!(fo[x], 3);
        assert_eq!(fo[a], 1);
    }

    #[test]
    fn constants_are_lazily_unique() {
        let mut n = Netlist::new("t");
        let c0 = n.const0();
        let c0b = n.const0();
        let c1 = n.const1();
        assert_eq!(c0, c0b);
        assert_ne!(c0, c1);
    }

    #[test]
    fn gate_kind_eval_matches_semantics() {
        assert!(GateKind::Nand3.eval(&[true, true, false]));
        assert!(!GateKind::Nand3.eval(&[true, true, true]));
        assert!(GateKind::Nor2.eval(&[false, false]));
        assert!(!GateKind::Nor2.eval(&[true, false]));
    }
}
