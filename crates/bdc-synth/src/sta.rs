//! Static timing analysis with NLDM interpolation and wire delays.
//!
//! Gates are appended in topological order by construction, so one forward
//! pass propagates arrival times and slews. Each net's load is the sum of
//! its sinks' input-pin capacitances plus estimated wire capacitance; each
//! gate's delay is its NLDM lookup plus the Elmore delay of its output net.

use bdc_cells::{CellKind, CellLibrary};

use crate::gate::Netlist;
use crate::place::{cell_of, Placement, PlacementModel};

/// STA settings.
#[derive(Debug, Clone, Copy)]
pub struct StaConfig {
    /// Placement coefficients.
    pub placement: PlacementModel,
    /// Slew assumed at primary inputs (s); `None` picks the middle of the
    /// library's characterized slew axis.
    pub input_slew: Option<f64>,
    /// Maximum fanout a single driver carries; nets above this get an
    /// inverter buffer tree (synthesis max-fanout constraint). Bounds the
    /// worst single-gate delay, which is the pipelining granularity floor.
    pub max_fanout: usize,
}

impl Default for StaConfig {
    fn default() -> Self {
        StaConfig {
            placement: PlacementModel::default(),
            input_slew: None,
            max_fanout: 8,
        }
    }
}

/// STA result.
#[derive(Debug, Clone)]
pub struct StaReport {
    /// Arrival time of every net (s); sources at 0.
    pub arrival: Vec<f64>,
    /// Per-gate propagation delay, aligned with `netlist.gates()` (s).
    pub gate_delay: Vec<f64>,
    /// Longest combinational arrival (s).
    pub max_arrival: f64,
    /// Largest single gate delay (s) — the pipelining granularity floor.
    pub max_gate_delay: f64,
    /// Minimum clock period for a *sequential* netlist:
    /// clk→Q + worst reg-to-reg logic + setup. Zero for pure combinational.
    pub min_period: f64,
    /// The placement used for wire estimation.
    pub placement: Placement,
    /// Total standard-cell area (µm²).
    pub area_um2: f64,
}

impl StaReport {
    /// Clock frequency implied by `min_period` (Hz).
    ///
    /// # Panics
    /// Panics for combinational netlists (no period).
    pub fn frequency(&self) -> f64 {
        assert!(
            self.min_period > 0.0,
            "combinational netlist has no clock period"
        );
        1.0 / self.min_period
    }
}

/// Runs STA on a netlist.
///
/// For sequential netlists, flop Q pins launch at `clk_to_q` and flop D pins
/// must meet `setup`; `min_period` reports the resulting constraint.
pub fn analyze(netlist: &Netlist, lib: &CellLibrary, cfg: &StaConfig) -> StaReport {
    let placement = cfg.placement.place(netlist, lib);
    let nominal_slew = cfg.input_slew.unwrap_or_else(|| {
        let s = lib.cell(CellKind::Inv).timing.delay_rise.slews();
        s[s.len() / 2]
    });

    // Load per net: sink pin caps + wire cap.
    let n_nets = netlist.net_count();
    let mut pin_load = vec![0.0f64; n_nets];
    let mut fanout = vec![0usize; n_nets];
    for g in netlist.gates() {
        let cap = lib.cell(cell_of(g.kind)).input_cap;
        for &i in &g.inputs {
            pin_load[i] += cap;
            fanout[i] += 1;
        }
    }
    let dff_cap = lib.cell(CellKind::Dff).input_cap;
    for f in netlist.flops() {
        pin_load[f.d] += dff_cap;
        fanout[f.d] += 1;
    }

    let drive_res = lib.drive_resistance().max(0.0);
    // Max-transition constraint: synthesis buffers any net whose slew would
    // exceed the characterized axis, so STA clamps propagated slews there.
    let max_slew = {
        let last = *lib
            .cell(CellKind::Inv)
            .timing
            .out_slew
            .slews()
            .last()
            .expect("non-empty slew axis");
        // Degenerate (constant-table) libraries have no real axis.
        if last > 0.0 {
            last
        } else {
            f64::INFINITY
        }
    };
    let mut arrival = vec![0.0f64; n_nets];
    let mut slew = vec![nominal_slew; n_nets];
    for f in netlist.flops() {
        arrival[f.q] = lib.dff.clk_to_q;
    }

    let inv = lib.cell(CellKind::Inv);
    let fmax = cfg.max_fanout.max(2);
    let mut gate_delay = Vec::with_capacity(netlist.gates().len());
    let mut max_gate_delay = 0.0f64;
    for g in netlist.gates() {
        let cell = lib.cell(cell_of(g.kind));
        // Worst input arrival; take that input's slew.
        let (t_in, s_in) =
            g.inputs
                .iter()
                .map(|&i| (arrival[i], slew[i]))
                .fold(
                    (0.0, nominal_slew),
                    |acc, x| if x.0 >= acc.0 { x } else { acc },
                );
        let fo = fanout[g.output].max(1);
        let d = if fo <= fmax {
            let wire_len = cfg.placement.local_net_length(&placement, fo);
            let load = pin_load[g.output] + lib.wire.capacitance(wire_len);
            let d_gate = cell.timing.delay_worst().lookup(s_in, load).max(0.0);
            let d_wire = lib.wire.delay(wire_len, drive_res);
            slew[g.output] = cell
                .timing
                .out_slew
                .lookup(s_in, load)
                .clamp(1e-18, max_slew);
            d_gate + d_wire
        } else {
            // Buffer tree: the driver and each buffer level drive ≤ fmax
            // sinks; ceil(log_fmax(fo)) − 1 extra inverter levels.
            let levels = ((fo as f64).ln() / (fmax as f64).ln()).ceil().max(1.0) as usize;
            let wire_len = cfg.placement.local_net_length(&placement, fmax);
            let leaf_load =
                pin_load[g.output] / fo as f64 * fmax as f64 + lib.wire.capacitance(wire_len);
            let branch_load = fmax as f64 * inv.input_cap + lib.wire.capacitance(wire_len);
            let d_drv = cell.timing.delay_worst().lookup(s_in, branch_load).max(0.0);
            let buf_slew = inv
                .timing
                .out_slew
                .lookup(nominal_slew, branch_load)
                .clamp(1e-18, max_slew);
            let d_buf = inv
                .timing
                .delay_worst()
                .lookup(buf_slew, branch_load)
                .max(0.0);
            let d_leaf = inv
                .timing
                .delay_worst()
                .lookup(buf_slew, leaf_load)
                .max(0.0);
            let d_wire = lib.wire.delay(wire_len, drive_res) * levels as f64;
            slew[g.output] = inv
                .timing
                .out_slew
                .lookup(buf_slew, leaf_load)
                .clamp(1e-18, max_slew);
            d_drv + (levels.saturating_sub(2)) as f64 * d_buf + d_leaf + d_wire
        };
        arrival[g.output] = t_in + d;
        gate_delay.push(d);
        max_gate_delay = max_gate_delay.max(d);
    }

    let max_arrival = arrival.iter().copied().fold(0.0, f64::max);
    let min_period = if netlist.flops().is_empty() {
        0.0
    } else {
        let worst_d = netlist
            .flops()
            .iter()
            .map(|f| arrival[f.d])
            .fold(0.0f64, f64::max);
        worst_d + lib.dff.setup
    };

    let area_um2 = placement.cell_area_um2;
    StaReport {
        arrival,
        gate_delay,
        max_arrival,
        max_gate_delay,
        min_period,
        placement,
        area_um2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks;
    use crate::gate::Netlist;
    use bdc_cells::{CellLibrary, ProcessKind};

    fn si_lib() -> CellLibrary {
        CellLibrary::synthetic(ProcessKind::Silicon45, 15.0e-12)
    }

    #[test]
    fn inverter_chain_arrival_is_sum() {
        let lib = si_lib();
        let mut n = Netlist::new("chain");
        let mut x = n.input("a");
        for _ in 0..10 {
            x = n.inv(x);
        }
        n.output(x, "y");
        let r = analyze(&n, &lib, &StaConfig::default());
        // 10 inverters at the constant synthetic delay (plus small wire cost).
        let per_gate = r.max_arrival / 10.0;
        assert!(per_gate >= 15.0e-12 * 1.15, "per-gate {per_gate:.3e}");
        assert!(per_gate < 15.0e-12 * 2.0, "per-gate {per_gate:.3e}");
    }

    #[test]
    fn deeper_blocks_have_longer_critical_paths() {
        let lib = si_lib();
        let cfg = StaConfig::default();
        let a8 = analyze(&blocks::ripple_adder(8), &lib, &cfg);
        let a32 = analyze(&blocks::ripple_adder(32), &lib, &cfg);
        assert!(a32.max_arrival > 2.5 * a8.max_arrival);
        assert!(a32.area_um2 > 3.0 * a8.area_um2);
    }

    #[test]
    fn carry_select_faster_than_ripple_at_width() {
        let lib = si_lib();
        let cfg = StaConfig::default();
        let ripple = analyze(&blocks::ripple_adder(32), &lib, &cfg);
        let csel = analyze(&blocks::carry_select_adder(32), &lib, &cfg);
        assert!(
            csel.max_arrival < 0.7 * ripple.max_arrival,
            "csel {:.3e} vs ripple {:.3e}",
            csel.max_arrival,
            ripple.max_arrival
        );
        // Speed costs area.
        assert!(csel.area_um2 > ripple.area_um2);
    }

    #[test]
    fn sequential_period_includes_dff_overheads() {
        let lib = si_lib();
        let mut n = Netlist::new("seq");
        let a = n.input("a");
        let q = n.flop(a);
        let mut x = q;
        for _ in 0..5 {
            x = n.inv(x);
        }
        let _q2 = n.flop(x);
        let r = analyze(&n, &lib, &StaConfig::default());
        // period = clk_q + 5 gates + setup > 5 gates alone.
        let five_gates = 5.0 * 15.0e-12;
        assert!(r.min_period > five_gates + lib.dff.setup);
        assert!(r.frequency() > 0.0);
    }

    #[test]
    fn organic_wire_fraction_tiny_silicon_significant() {
        // The paper's §5.5 claim, measured on the same netlist.
        let mult = blocks::array_multiplier(16);
        let cfg = StaConfig::default();

        let si = CellLibrary::synthetic(ProcessKind::Silicon45, 15.0e-12);
        let si_ideal = si.clone().with_wire(bdc_cells::WireModel::ideal());
        let r_si = analyze(&mult, &si, &cfg);
        let r_si_ideal = analyze(&mult, &si_ideal, &cfg);
        let si_wire_frac = (r_si.max_arrival - r_si_ideal.max_arrival) / r_si.max_arrival;

        let org = CellLibrary::synthetic(ProcessKind::Organic, 1.2e-4);
        let org_ideal = org.clone().with_wire(bdc_cells::WireModel::ideal());
        let r_org = analyze(&mult, &org, &cfg);
        let r_org_ideal = analyze(&mult, &org_ideal, &cfg);
        let org_wire_frac = (r_org.max_arrival - r_org_ideal.max_arrival) / r_org.max_arrival;

        assert!(
            si_wire_frac > 5.0 * org_wire_frac.max(1e-6),
            "si {si_wire_frac:.4} vs org {org_wire_frac:.6}"
        );
        assert!(
            org_wire_frac < 0.05,
            "organic wires must be near-free, got {org_wire_frac:.4}"
        );
    }

    #[test]
    #[should_panic(expected = "no clock period")]
    fn frequency_panics_for_combinational() {
        let lib = si_lib();
        let r = analyze(&blocks::ripple_adder(4), &lib, &StaConfig::default());
        let _ = r.frequency();
    }
}
