//! Datapath and control block generators.
//!
//! These produce the gate-level netlists the experiments synthesize: the
//! complex-ALU multiplier/divider cluster (Figure 12), per-stage core blocks
//! (Figures 11/13/14), and the width-dependent structures — bypass networks,
//! wakeup CAMs, select trees — whose growth drives the superscalar-width
//! tradeoff.

use crate::gate::{NetId, Netlist};

/// Finds the nets of a declared bus by name, ordered by index.
///
/// # Panics
/// Panics if the bus does not exist.
pub fn bus(netlist: &Netlist, name: &str) -> Vec<NetId> {
    let parse = |nm: &str| -> Option<usize> {
        let rest = nm.strip_prefix(name)?;
        rest.strip_prefix('[')?.strip_suffix(']')?.parse().ok()
    };
    let mut found: Vec<(usize, NetId)> = (0..netlist.net_count())
        .filter_map(|n| {
            let idx = netlist
                .input_name(n)
                .and_then(parse)
                .or_else(|| netlist.output_name(n).and_then(parse))?;
            Some((idx, n))
        })
        .collect();
    found.sort();
    assert!(!found.is_empty(), "no bus named {name}");
    found.into_iter().map(|(_, n)| n).collect()
}

/// Ripple-carry adder: `sum = a + b + cin`, plus `cout`.
pub fn ripple_adder(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("ripple_adder{width}"));
    let a = n.input_bus("a", width);
    let b = n.input_bus("b", width);
    let cin = n.input("cin");
    let mut carry = cin;
    let mut sums = Vec::with_capacity(width);
    for i in 0..width {
        let (s, c) = n.full_adder(a[i], b[i], carry);
        sums.push(s);
        carry = c;
    }
    n.output_bus(&sums, "sum");
    n.output(carry, "cout");
    n
}

/// Carry-select adder with √width blocks — the "fast adder" used in the
/// execute stages.
pub fn carry_select_adder(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("csel_adder{width}"));
    let a = n.input_bus("a", width);
    let b = n.input_bus("b", width);
    let cin = n.input("cin");
    let block = ((width as f64).sqrt().ceil() as usize).max(2);
    let mut sums = vec![0; width];
    let mut carry_in = cin;
    let mut i = 0;
    while i < width {
        let hi = (i + block).min(width);
        // Two ripple chains: cin = 0 and cin = 1.
        let c0 = n.const0();
        let c1 = n.const1();
        let mut carry0 = c0;
        let mut carry1 = c1;
        let mut s0 = Vec::new();
        let mut s1 = Vec::new();
        for j in i..hi {
            let (s, c) = n.full_adder(a[j], b[j], carry0);
            s0.push(s);
            carry0 = c;
            let (s, c) = n.full_adder(a[j], b[j], carry1);
            s1.push(s);
            carry1 = c;
        }
        // Select by the incoming carry.
        for (k, j) in (i..hi).enumerate() {
            sums[j] = n.mux2(carry_in, s0[k], s1[k]);
        }
        carry_in = n.mux2(carry_in, carry0, carry1);
        i = hi;
    }
    n.output_bus(&sums, "sum");
    n.output(carry_in, "cout");
    n
}

/// Kogge–Stone parallel-prefix adder: log-depth carries at the cost of
/// O(n log n) gates and heavy fanout/wiring — the structure whose
/// attractiveness *depends on the process's wire cost* (the adder-
/// architecture ablation).
pub fn kogge_stone_adder(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("ks_adder{width}"));
    let a = n.input_bus("a", width);
    let b = n.input_bus("b", width);
    let cin = n.input("cin");
    let pp: Vec<NetId> = (0..width).map(|i| n.xor2(a[i], b[i])).collect();
    let gg: Vec<NetId> = (0..width).map(|i| n.and2(a[i], b[i])).collect();
    let mut big_g = gg.clone();
    let mut big_p = pp.clone();
    let mut d = 1;
    while d < width {
        let (pg, ppv) = (big_g.clone(), big_p.clone());
        for i in d..width {
            // G = G | (P & G_prev), P = P & P_prev.
            let t = n.and2(ppv[i], pg[i - d]);
            big_g[i] = n.or2(pg[i], t);
            big_p[i] = n.and2(ppv[i], ppv[i - d]);
        }
        d *= 2;
    }
    // carry into bit i: c0 = cin; c_i = G_{i-1} | (P_{i-1} & cin).
    let mut sums = Vec::with_capacity(width);
    for i in 0..width {
        let carry = if i == 0 {
            cin
        } else {
            let t = n.and2(big_p[i - 1], cin);
            n.or2(big_g[i - 1], t)
        };
        sums.push(n.xor2(pp[i], carry));
    }
    let t = n.and2(big_p[width - 1], cin);
    let cout = n.or2(big_g[width - 1], t);
    n.output_bus(&sums, "sum");
    n.output(cout, "cout");
    n
}

/// Array multiplier: AND partial products, carry-save reduction rows, final
/// ripple adder. `product` is `2·width` bits.
pub fn array_multiplier(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("array_mult{width}"));
    let a = n.input_bus("a", width);
    let b = n.input_bus("b", width);
    // pp[i][j] = a[j] & b[i], weight i + j.
    let mut rows: Vec<Vec<NetId>> = Vec::with_capacity(width);
    for bi in &b {
        let row: Vec<NetId> = a.iter().map(|aj| n.and2(*aj, *bi)).collect();
        rows.push(row);
    }
    // Carry-save accumulate rows.
    let mut acc: Vec<Option<NetId>> = vec![None; 2 * width];
    for (i, row) in rows.into_iter().enumerate() {
        let mut carry: Option<NetId> = None;
        for (j, p) in row.into_iter().enumerate() {
            let w = i + j;
            let existing = acc[w];
            let (sum, new_carry) = match (existing, carry) {
                (None, None) => (p, None),
                (Some(x), None) => {
                    let (s, c) = n.half_adder(x, p);
                    (s, Some(c))
                }
                (None, Some(c0)) => {
                    let (s, c) = n.half_adder(c0, p);
                    (s, Some(c))
                }
                (Some(x), Some(c0)) => {
                    let (s, c) = n.full_adder(x, p, c0);
                    (s, Some(c))
                }
            };
            acc[w] = Some(sum);
            carry = new_carry;
        }
        // Propagate the row's final carry up the accumulator.
        let mut w = i + width;
        while let Some(c) = carry {
            let existing = acc[w];
            match existing {
                None => {
                    acc[w] = Some(c);
                    carry = None;
                }
                Some(x) => {
                    let (s, c2) = n.half_adder(x, c);
                    acc[w] = Some(s);
                    carry = Some(c2);
                }
            }
            w += 1;
        }
    }
    let zero = n.const0();
    let product: Vec<NetId> = acc.into_iter().map(|o| o.unwrap_or(zero)).collect();
    n.output_bus(&product, "p");
    n
}

/// Restoring array divider: `width`-bit dividend ÷ `width`-bit divisor →
/// quotient and remainder. The critical path snakes through every row —
/// the deepest block in the complex ALU, exactly why the paper pipelines it.
pub fn restoring_divider(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("rest_div{width}"));
    let dividend = n.input_bus("a", width);
    let divisor = n.input_bus("d", width);
    let zero = n.const0();
    let one = n.const1();
    // Remainder register (width+1 bits to absorb the trial subtract).
    let mut rem: Vec<NetId> = vec![zero; width + 1];
    let mut quotient = vec![zero; width];
    // Negated divisor for subtraction (two's complement add).
    let ndiv: Vec<NetId> = divisor.iter().map(|d| n.inv(*d)).collect();
    for step in 0..width {
        let bit = dividend[width - 1 - step];
        // Shift left, bring in next dividend bit.
        let mut shifted = vec![bit];
        shifted.extend_from_slice(&rem[..width]);
        // Trial subtract: shifted + ~divisor + 1 over width+1 bits.
        let mut carry = one;
        let mut trial = Vec::with_capacity(width + 1);
        for j in 0..=width {
            let dj = if j < width { ndiv[j] } else { one };
            let (s, c) = n.full_adder(shifted[j], dj, carry);
            trial.push(s);
            carry = c;
        }
        // carry == 1 → no borrow → trial >= 0 → accept subtraction.
        let accept = carry;
        quotient[width - 1 - step] = accept;
        rem = (0..=width)
            .map(|j| n.mux2(accept, shifted[j], trial[j]))
            .collect();
    }
    n.output_bus(&quotient, "q");
    n.output_bus(&rem[..width], "r");
    n
}

/// One row of a restoring divider: conditional subtract + restore mux over
/// `width+1` bits. This is the per-cycle logic of a *stallable* sequential
/// divider (DesignWare-style): the full divide iterates this row, so only
/// the row participates in pipeline retiming.
pub fn divider_stage(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("div_row{width}"));
    let rem = n.input_bus("rem", width + 1);
    let divisor = n.input_bus("d", width);
    let one = n.const1();
    let ndiv: Vec<NetId> = divisor.iter().map(|d| n.inv(*d)).collect();
    let mut carry = one;
    let mut trial = Vec::with_capacity(width + 1);
    for j in 0..=width {
        let dj = if j < width { ndiv[j] } else { one };
        let (s, c) = n.full_adder(rem[j], dj, carry);
        trial.push(s);
        carry = c;
    }
    let accept = carry;
    let next: Vec<NetId> = (0..=width)
        .map(|j| n.mux2(accept, rem[j], trial[j]))
        .collect();
    n.output_bus(&next, "next");
    n.output(accept, "qbit");
    n
}

/// Logarithmic barrel shifter (left shift by `shamt`, zero fill).
pub fn barrel_shifter(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("bshift{width}"));
    let a = n.input_bus("a", width);
    let stages = (usize::BITS - (width - 1).leading_zeros()) as usize;
    let sh = n.input_bus("sh", stages);
    let zero = n.const0();
    let mut cur = a;
    for (s, &sel) in sh.iter().enumerate() {
        let k = 1usize << s;
        let mut next = Vec::with_capacity(width);
        for i in 0..width {
            let shifted_in = if i >= k { cur[i - k] } else { zero };
            next.push(n.mux2(sel, cur[i], shifted_in));
        }
        cur = next;
    }
    n.output_bus(&cur, "y");
    n
}

/// `k`-to-1 mux tree over `data_width`-bit words, one-hot-free binary
/// select. Sources are buses `in0 … in{k-1}`; select is `sel` (⌈log₂k⌉
/// bits). The heart of bypass networks and register-file read ports.
pub fn mux_tree(k: usize, data_width: usize) -> Netlist {
    assert!(k >= 2, "mux tree needs at least two inputs");
    let mut n = Netlist::new(format!("mux{k}x{data_width}"));
    let sel_bits = (usize::BITS - (k - 1).leading_zeros()) as usize;
    let sources: Vec<Vec<NetId>> = (0..k)
        .map(|i| n.input_bus(&format!("in{i}"), data_width))
        .collect();
    let sel = n.input_bus("sel", sel_bits);
    let mut layer = sources;
    for (s, &sbit) in sel.iter().enumerate() {
        let _ = s;
        let mut next = Vec::new();
        let mut i = 0;
        while i < layer.len() {
            if i + 1 < layer.len() {
                let merged: Vec<NetId> = (0..data_width)
                    .map(|b| n.mux2(sbit, layer[i][b], layer[i + 1][b]))
                    .collect();
                next.push(merged);
                i += 2;
            } else {
                next.push(layer[i].clone());
                i += 1;
            }
        }
        layer = next;
        if layer.len() == 1 {
            break;
        }
    }
    let out = layer.into_iter().next().expect("non-empty");
    n.output_bus(&out, "y");
    n
}

/// Binary decoder: `nbits` address → `2^nbits` one-hot outputs.
pub fn decoder(nbits: usize) -> Netlist {
    let mut n = Netlist::new(format!("dec{nbits}"));
    let a = n.input_bus("a", nbits);
    let na: Vec<NetId> = a.iter().map(|x| n.inv(*x)).collect();
    let mut outs = Vec::with_capacity(1 << nbits);
    for code in 0..(1usize << nbits) {
        // AND of the appropriate polarity per bit, as a NAND/INV tree.
        let lits: Vec<NetId> = (0..nbits)
            .map(|b| if code & (1 << b) != 0 { a[b] } else { na[b] })
            .collect();
        let mut acc = lits[0];
        let mut i = 1;
        while i < lits.len() {
            if i + 1 < lits.len() {
                acc = n.and3(acc, lits[i], lits[i + 1]);
                i += 2;
            } else {
                acc = n.and2(acc, lits[i]);
                i += 1;
            }
        }
        outs.push(acc);
    }
    n.output_bus(&outs, "y");
    n
}

/// Equality comparator over `width` bits: `eq = (a == b)`.
pub fn comparator(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("cmp{width}"));
    let a = n.input_bus("a", width);
    let b = n.input_bus("b", width);
    let eqs: Vec<NetId> = (0..width).map(|i| n.xnor2(a[i], b[i])).collect();
    let eq = and_tree(&mut n, &eqs);
    n.output(eq, "eq");
    n
}

/// Fixed-priority select: grants the lowest-index request. Uses a
/// Kogge–Stone prefix-OR, so depth grows with log(entries) — the
/// issue-select structure.
pub fn priority_select(entries: usize) -> Netlist {
    let mut n = Netlist::new(format!("select{entries}"));
    let req = n.input_bus("req", entries);
    // incl[i] = OR(req[0..=i]) by doubling. Grants only read incl up to
    // index entries−2, so the prefix runs over the first entries−1
    // requests; computing incl[entries−1] would just build a dead cone.
    let m = entries - 1;
    let mut incl: Vec<NetId> = req[..m].to_vec();
    let mut d = 1;
    while d < m {
        let mut next = incl.clone();
        for i in d..m {
            let g = n.or2(incl[i], incl[i - d]);
            next[i] = g;
        }
        incl = next;
        d *= 2;
    }
    // grant[i] = req[i] & !incl[i-1].
    let grants: Vec<NetId> = (0..entries)
        .map(|i| {
            if i == 0 {
                req[0]
            } else {
                let np = n.inv(incl[i - 1]);
                n.and2(req[i], np)
            }
        })
        .collect();
    n.output_bus(&grants, "grant");
    n
}

/// Wakeup CAM: `entries` issue-queue slots each compare their source tag
/// against `ports` broadcast result tags of `tag_bits` bits; an entry wakes
/// when any port matches. Port count scales with issue width — the quadratic
/// structure behind the width experiment.
pub fn wakeup_cam(entries: usize, tag_bits: usize, ports: usize) -> Netlist {
    let mut n = Netlist::new(format!("wakeup{entries}x{ports}"));
    let tags: Vec<Vec<NetId>> = (0..ports)
        .map(|p| n.input_bus(&format!("tag{p}"), tag_bits))
        .collect();
    let entry_tags: Vec<Vec<NetId>> = (0..entries)
        .map(|e| n.input_bus(&format!("src{e}"), tag_bits))
        .collect();
    let mut wakes = Vec::with_capacity(entries);
    for etag in &entry_tags {
        let mut port_match = Vec::with_capacity(ports);
        for tag in &tags {
            let eqs: Vec<NetId> = (0..tag_bits).map(|b| n.xnor2(etag[b], tag[b])).collect();
            port_match.push(and_tree(&mut n, &eqs));
        }
        wakes.push(or_tree(&mut n, &port_match));
    }
    n.output_bus(&wakes, "wake");
    n
}

/// Bypass network: each of `consumers` functional-unit inputs muxes among
/// `producers` + 1 (register file) data sources of `data_width` bits.
/// Producer count scales with back-end width.
pub fn bypass_network(producers: usize, consumers: usize, data_width: usize) -> Netlist {
    let mut n = Netlist::new(format!("bypass{producers}x{consumers}"));
    let k = producers + 1;
    let sel_bits = (usize::BITS - (k - 1).leading_zeros()).max(1) as usize;
    let sources: Vec<Vec<NetId>> = (0..k)
        .map(|i| n.input_bus(&format!("src{i}"), data_width))
        .collect();
    for cidx in 0..consumers {
        let sel = n.input_bus(&format!("sel{cidx}"), sel_bits);
        let mut layer = sources.clone();
        for &sbit in &sel {
            let mut next = Vec::new();
            let mut i = 0;
            while i < layer.len() {
                if i + 1 < layer.len() {
                    let merged: Vec<NetId> = (0..data_width)
                        .map(|b| n.mux2(sbit, layer[i][b], layer[i + 1][b]))
                        .collect();
                    next.push(merged);
                    i += 2;
                } else {
                    next.push(layer[i].clone());
                    i += 1;
                }
            }
            layer = next;
            if layer.len() == 1 {
                break;
            }
        }
        n.output_bus(&layer[0], &format!("out{cidx}"));
    }
    n
}

/// Pseudorandom control-logic block: a reproducible DAG of `gates` library
/// gates over `inputs` primary inputs — the stand-in for decode/steering
/// random logic. Uses a fixed LCG so identical parameters produce identical
/// netlists.
pub fn random_logic(inputs: usize, gates: usize, seed: u64) -> Netlist {
    let mut n = Netlist::new(format!("rand{inputs}x{gates}"));
    let ins = n.input_bus("in", inputs);
    let mut pool: Vec<NetId> = ins.clone();
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for _ in 0..gates {
        let r = next() % 100;
        // Bias toward the newest nets to build depth.
        let pick = |n: usize, next: &mut dyn FnMut() -> usize, pool: &Vec<NetId>| -> Vec<NetId> {
            (0..n)
                .map(|_| {
                    let span = (pool.len() / 3).max(1);
                    let idx = pool.len() - 1 - (next() % span);
                    pool[idx]
                })
                .collect()
        };
        let out = match r {
            0..=14 => {
                let p = pick(1, &mut next, &pool);
                n.inv(p[0])
            }
            15..=44 => {
                let p = pick(2, &mut next, &pool);
                n.nand2(p[0], p[1])
            }
            45..=59 => {
                let p = pick(3, &mut next, &pool);
                n.nand3(p[0], p[1], p[2])
            }
            60..=84 => {
                let p = pick(2, &mut next, &pool);
                n.nor2(p[0], p[1])
            }
            _ => {
                let p = pick(3, &mut next, &pool);
                n.nor3(p[0], p[1], p[2])
            }
        };
        pool.push(out);
    }
    // Expose every sink as an output: gate outputs nothing reads (so no
    // cone is dead logic) and untouched primary inputs (payload bits fed
    // straight through the stage).
    let mut read = vec![false; n.net_count()];
    for g in n.gates() {
        for &i in &g.inputs {
            read[i] = true;
        }
    }
    let outs: Vec<NetId> = (0..n.net_count()).filter(|&net| !read[net]).collect();
    n.output_bus(&outs, "out");
    n
}

fn and_tree(n: &mut Netlist, nets: &[NetId]) -> NetId {
    reduce_tree(n, nets, true)
}

fn or_tree(n: &mut Netlist, nets: &[NetId]) -> NetId {
    reduce_tree(n, nets, false)
}

fn reduce_tree(n: &mut Netlist, nets: &[NetId], is_and: bool) -> NetId {
    assert!(!nets.is_empty());
    let mut layer = nets.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(3));
        let mut i = 0;
        while i < layer.len() {
            let rest = layer.len() - i;
            if rest >= 3 {
                let g = if is_and {
                    n.and3(layer[i], layer[i + 1], layer[i + 2])
                } else {
                    n.or3(layer[i], layer[i + 1], layer[i + 2])
                };
                next.push(g);
                i += 3;
            } else if rest == 2 {
                let g = if is_and {
                    n.and2(layer[i], layer[i + 1])
                } else {
                    n.or2(layer[i], layer[i + 1])
                };
                next.push(g);
                i += 2;
            } else {
                next.push(layer[i]);
                i += 1;
            }
        }
        layer = next;
    }
    layer[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funcsim::{bus_to_u64, simulate_comb, u64_to_bus};
    use std::collections::BTreeMap;

    fn eval_adder(n: &Netlist, a_v: u64, b_v: u64, cin_v: bool, width: usize) -> (u64, bool) {
        let a = bus(n, "a");
        let b = bus(n, "b");
        let cin = n
            .inputs()
            .iter()
            .copied()
            .find(|&x| n.net_name(x) == Some("cin"))
            .unwrap();
        let mut m = BTreeMap::new();
        u64_to_bus(&mut m, &a, a_v);
        u64_to_bus(&mut m, &b, b_v);
        m.insert(cin, cin_v);
        let v = simulate_comb(n, &m);
        let sum = bus_to_u64(&v, &bus(n, "sum"));
        let cout = n
            .outputs()
            .iter()
            .copied()
            .find(|&x| n.net_name(x) == Some("cout"))
            .unwrap();
        let _ = width;
        (sum, v[cout])
    }

    #[test]
    fn ripple_adder_adds() {
        let n = ripple_adder(16);
        n.validate().unwrap();
        for (a, b, c) in [
            (0u64, 0u64, false),
            (1234, 4321, false),
            (0xFFFF, 1, false),
            (0x8000, 0x8000, true),
        ] {
            let (s, co) = eval_adder(&n, a, b, c, 16);
            let expect = a + b + c as u64;
            assert_eq!(s, expect & 0xFFFF, "{a}+{b}+{c}");
            assert_eq!(co, expect > 0xFFFF);
        }
    }

    #[test]
    fn carry_select_matches_ripple() {
        let n = carry_select_adder(16);
        n.validate().unwrap();
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..50 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = x & 0xFFFF;
            let b = (x >> 16) & 0xFFFF;
            let c = (x >> 32) & 1 == 1;
            let (s, co) = eval_adder(&n, a, b, c, 16);
            let expect = a + b + c as u64;
            assert_eq!(s, expect & 0xFFFF);
            assert_eq!(co, expect > 0xFFFF);
        }
    }

    #[test]
    fn kogge_stone_matches_ripple() {
        let n = kogge_stone_adder(16);
        n.validate().unwrap();
        let mut x = 0xDEADBEEFCAFEu64;
        for _ in 0..60 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = x & 0xFFFF;
            let b = (x >> 16) & 0xFFFF;
            let c = (x >> 40) & 1 == 1;
            let (s, co) = eval_adder(&n, a, b, c, 16);
            let expect = a + b + c as u64;
            assert_eq!(s, expect & 0xFFFF, "{a}+{b}+{c}");
            assert_eq!(co, expect > 0xFFFF);
        }
    }

    #[test]
    fn kogge_stone_is_log_depth() {
        // Gate count grows superlinearly but the XOR-to-sum path is short.
        use crate::sta::{analyze, StaConfig};
        use bdc_cells::{CellLibrary, ProcessKind};
        let lib = CellLibrary::synthetic(ProcessKind::Silicon45, 10.0e-12);
        let cfg = StaConfig::default();
        let ks = analyze(&kogge_stone_adder(32), &lib, &cfg);
        let ripple = analyze(&ripple_adder(32), &lib, &cfg);
        assert!(ks.max_arrival < 0.35 * ripple.max_arrival);
    }

    #[test]
    fn multiplier_multiplies() {
        let n = array_multiplier(8);
        n.validate().unwrap();
        let a_bus = bus(&n, "a");
        let b_bus = bus(&n, "b");
        let p_bus = bus(&n, "p");
        for (a, b) in [
            (0u64, 0u64),
            (1, 255),
            (17, 19),
            (255, 255),
            (128, 2),
            (99, 101),
        ] {
            let mut m = BTreeMap::new();
            u64_to_bus(&mut m, &a_bus, a);
            u64_to_bus(&mut m, &b_bus, b);
            let v = simulate_comb(&n, &m);
            assert_eq!(bus_to_u64(&v, &p_bus), a * b, "{a}*{b}");
        }
    }

    #[test]
    fn divider_divides() {
        let n = restoring_divider(8);
        n.validate().unwrap();
        let a_bus = bus(&n, "a");
        let d_bus = bus(&n, "d");
        let q_bus = bus(&n, "q");
        let r_bus = bus(&n, "r");
        for (a, d) in [
            (100u64, 7u64),
            (255, 16),
            (42, 1),
            (13, 13),
            (5, 9),
            (200, 3),
        ] {
            let mut m = BTreeMap::new();
            u64_to_bus(&mut m, &a_bus, a);
            u64_to_bus(&mut m, &d_bus, d);
            let v = simulate_comb(&n, &m);
            assert_eq!(bus_to_u64(&v, &q_bus), a / d, "{a}/{d} quotient");
            assert_eq!(bus_to_u64(&v, &r_bus), a % d, "{a}%{d} remainder");
        }
    }

    #[test]
    fn barrel_shifter_shifts() {
        let n = barrel_shifter(16);
        n.validate().unwrap();
        let a_bus = bus(&n, "a");
        let sh_bus = bus(&n, "sh");
        let y_bus = bus(&n, "y");
        for (a, s) in [(0x0001u64, 0u64), (0x0001, 5), (0xABCD, 4), (0xFFFF, 15)] {
            let mut m = BTreeMap::new();
            u64_to_bus(&mut m, &a_bus, a);
            u64_to_bus(&mut m, &sh_bus, s);
            let v = simulate_comb(&n, &m);
            assert_eq!(bus_to_u64(&v, &y_bus), (a << s) & 0xFFFF, "{a:#x} << {s}");
        }
    }

    #[test]
    fn decoder_is_one_hot() {
        let n = decoder(4);
        n.validate().unwrap();
        let a_bus = bus(&n, "a");
        let y_bus = bus(&n, "y");
        for code in 0..16u64 {
            let mut m = BTreeMap::new();
            u64_to_bus(&mut m, &a_bus, code);
            let v = simulate_comb(&n, &m);
            assert_eq!(bus_to_u64(&v, &y_bus), 1 << code);
        }
    }

    #[test]
    fn comparator_detects_equality() {
        let n = comparator(12);
        let a_bus = bus(&n, "a");
        let b_bus = bus(&n, "b");
        let eq = n.outputs()[0];
        for (a, b) in [(5u64, 5u64), (5, 6), (0xFFF, 0xFFF), (0, 0x800)] {
            let mut m = BTreeMap::new();
            u64_to_bus(&mut m, &a_bus, a);
            u64_to_bus(&mut m, &b_bus, b);
            let v = simulate_comb(&n, &m);
            assert_eq!(v[eq], a == b, "{a} == {b}");
        }
    }

    #[test]
    fn priority_select_grants_lowest() {
        let n = priority_select(8);
        let req_bus = bus(&n, "req");
        let grant_bus = bus(&n, "grant");
        for req in [0b0000_0000u64, 0b0001_0000, 0b1010_1000, 0b1111_1111] {
            let mut m = BTreeMap::new();
            u64_to_bus(&mut m, &req_bus, req);
            let v = simulate_comb(&n, &m);
            let grant = bus_to_u64(&v, &grant_bus);
            if req == 0 {
                assert_eq!(grant, 0);
            } else {
                assert_eq!(
                    grant,
                    req & req.wrapping_neg(),
                    "lowest set bit of {req:#b}"
                );
            }
        }
    }

    #[test]
    fn mux_tree_selects() {
        let n = mux_tree(4, 8);
        let y_bus = bus(&n, "y");
        let sel_bus = bus(&n, "sel");
        let data = [0x11u64, 0x22, 0x33, 0x44];
        for sel in 0..4u64 {
            let mut m = BTreeMap::new();
            for (i, d) in data.iter().enumerate() {
                u64_to_bus(&mut m, &bus(&n, &format!("in{i}")), *d);
            }
            u64_to_bus(&mut m, &sel_bus, sel);
            let v = simulate_comb(&n, &m);
            assert_eq!(bus_to_u64(&v, &y_bus), data[sel as usize], "sel={sel}");
        }
    }

    #[test]
    fn wakeup_cam_matches_any_port() {
        let n = wakeup_cam(4, 6, 2);
        let wake_bus = bus(&n, "wake");
        let mut m = BTreeMap::new();
        u64_to_bus(&mut m, &bus(&n, "tag0"), 13);
        u64_to_bus(&mut m, &bus(&n, "tag1"), 44);
        for (e, src) in [(0u64, 13u64), (1, 44), (2, 13), (3, 7)] {
            u64_to_bus(&mut m, &bus(&n, &format!("src{e}")), src);
        }
        let v = simulate_comb(&n, &m);
        assert_eq!(bus_to_u64(&v, &wake_bus), 0b0111);
    }

    #[test]
    fn bypass_network_size_grows_with_width() {
        let small = bypass_network(3, 2, 32);
        let big = bypass_network(7, 2, 32);
        small.validate().unwrap();
        big.validate().unwrap();
        assert!(big.gates().len() as f64 > 1.5 * small.gates().len() as f64);
    }

    #[test]
    fn random_logic_is_deterministic_and_valid() {
        let a = random_logic(16, 300, 42);
        let b = random_logic(16, 300, 42);
        let c = random_logic(16, 300, 43);
        a.validate().unwrap();
        assert_eq!(a.gates().len(), b.gates().len());
        assert_eq!(
            format!("{:?}", a.gates()[..20].to_vec()),
            format!("{:?}", b.gates()[..20].to_vec())
        );
        // Different seed → different structure (overwhelmingly likely).
        assert_ne!(format!("{:?}", a.gates()), format!("{:?}", c.gates()));
    }
}
