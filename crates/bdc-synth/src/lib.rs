#![warn(missing_docs)]

//! Gate-level synthesis substrate: netlists, technology mapping, static
//! timing analysis, placement-based wire estimation, and pipeline cutting.
//!
//! This crate stands in for Synopsys Design Compiler in the paper's flow
//! (Figure 10). It provides:
//!
//! * a gate-level netlist IR over the 6-cell library vocabulary
//!   ([`gate`]), with rich combinational builders (adders, multipliers,
//!   dividers, shifters, muxes, CAMs, select trees — [`blocks`]);
//! * library-driven remapping, including the NAND3-vs-NAND2 decomposition
//!   choice the paper discusses in §5.5 ([`map`]);
//! * NLDM-interpolating static timing analysis with a placement-derived
//!   wire model ([`sta`], [`place`]);
//! * balanced pipeline cutting — the "cut the stage on the critical path"
//!   procedure used for the ALU- and core-depth experiments ([`pipeline`]);
//! * functional simulation for equivalence checking ([`funcsim`]).

pub mod blocks;
pub mod funcsim;
pub mod gate;
pub mod map;
pub mod pipeline;
pub mod place;
pub mod power;
pub mod sta;
pub mod stats;
pub mod verilog;

pub use funcsim::{simulate_comb, simulate_seq};
pub use gate::{Gate, GateKind, NetId, Netlist};
pub use map::{remap_for_library, MapReport};
pub use pipeline::{insert_registers, pipeline_cut, stage_assignment, PipelineResult};
pub use place::{Placement, PlacementModel};
pub use power::{energy_per_instruction, estimate_power, PowerReport};
pub use sta::{analyze, StaConfig, StaReport};
pub use stats::{coverage_ratio, netlist_stats, NetlistStats};
pub use verilog::{parse_verilog, write_verilog, VerilogError};
