//! Library-driven remapping.
//!
//! The paper observes (§5.5) that synthesis covers the same RTL differently
//! per library: the silicon library leans on 3-input NAND gates, while the
//! organic library — whose unipolar p-type cells have imbalanced rise/fall
//! times — prefers 2-input NAND coverage. [`remap_for_library`] makes that
//! decision explicitly: it compares each 3-input cell's characterized
//! worst-case delay against its 2-input decomposition and rewrites the
//! netlist when the decomposition wins.

use bdc_cells::{CellKind, CellLibrary};

use crate::gate::{GateKind, Netlist};

/// What the mapper decided and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapReport {
    /// Whether NAND3 cells were decomposed into NAND2/INV logic.
    pub nand3_decomposed: bool,
    /// Whether NOR3 cells were decomposed into NOR2/INV logic.
    pub nor3_decomposed: bool,
    /// Gate count before remapping.
    pub gates_before: usize,
    /// Gate count after remapping.
    pub gates_after: usize,
}

/// Nominal delay of a cell at mid slew, driving two copies of itself.
fn nominal_delay(lib: &CellLibrary, kind: CellKind) -> f64 {
    let cell = lib.cell(kind);
    let slews = cell.timing.delay_rise.slews();
    let s = slews[slews.len() / 2];
    cell.timing.delay_worst().lookup(s, 2.0 * cell.input_cap)
}

/// Returns true when the library prefers decomposing the given 3-input cell
/// into 2-input logic: the decomposition's worst path is
/// `2-input gate + INV + 2-input gate`.
pub fn prefers_decomposition(lib: &CellLibrary, three_input: CellKind) -> bool {
    let (two_input, three) = match three_input {
        CellKind::Nand3 => (CellKind::Nand2, CellKind::Nand3),
        CellKind::Nor3 => (CellKind::Nor2, CellKind::Nor3),
        other => panic!("prefers_decomposition is about 3-input cells, got {other:?}"),
    };
    let d3 = nominal_delay(lib, three);
    let d_decomp = 2.0 * nominal_delay(lib, two_input) + nominal_delay(lib, CellKind::Inv);
    d3 > d_decomp
}

/// Rewrites a netlist for a specific library, decomposing 3-input cells the
/// library times poorly. Function is preserved exactly (verified by the
/// property tests in `tests/`).
pub fn remap_for_library(netlist: &Netlist, lib: &CellLibrary) -> (Netlist, MapReport) {
    let drop_nand3 = prefers_decomposition(lib, CellKind::Nand3);
    let drop_nor3 = prefers_decomposition(lib, CellKind::Nor3);
    let gates_before = netlist.gates().len();
    if !drop_nand3 && !drop_nor3 {
        return (
            netlist.clone(),
            MapReport {
                nand3_decomposed: false,
                nor3_decomposed: false,
                gates_before,
                gates_after: gates_before,
            },
        );
    }

    // Rebuild the netlist, translating nets through a map.
    let mut out = Netlist::new(netlist.name.clone());
    let mut net_map = vec![usize::MAX; netlist.net_count()];
    for &i in netlist.inputs() {
        net_map[i] = out.input(netlist.net_name(i).unwrap_or("in").to_string());
    }
    let (c0, c1) = netlist.constants();
    if let Some(c) = c0 {
        net_map[c] = out.const0();
    }
    if let Some(c) = c1 {
        net_map[c] = out.const1();
    }
    for f in netlist.flops() {
        // Flop Qs are sources; we will re-add flops after gates, so allocate
        // their Q nets now.
        net_map[f.q] = out.net();
    }
    // Gates in topological order.
    let mut q_nets: Vec<usize> = netlist.flops().iter().map(|f| net_map[f.q]).collect();
    for g in netlist.gates() {
        let ins: Vec<usize> = g.inputs.iter().map(|&i| net_map[i]).collect();
        let new_out = match g.kind {
            GateKind::Nand3 if drop_nand3 => {
                // nand3(a,b,c) = nand2(and2(a,b), c)
                let ab = out.and2(ins[0], ins[1]);
                out.nand2(ab, ins[2])
            }
            GateKind::Nor3 if drop_nor3 => {
                // nor3(a,b,c) = nor2(or2(a,b), c)
                let ab = out.or2(ins[0], ins[1]);
                out.nor2(ab, ins[2])
            }
            kind => out.gate(kind, &ins),
        };
        net_map[g.output] = new_out;
    }
    // Re-add flops wiring their (pre-allocated) Q nets. The IR appends flop
    // Q nets via `flop`, so emulate by pushing flops with mapped d and
    // patching q: easiest is to add a buffer-free alias — we instead rebuild
    // by inserting flops whose q is a fresh net and remapping later uses.
    // Since all gate uses were already mapped through net_map (q allocated
    // above), we need the flop's q to *be* that net; Netlist::flop allocates
    // its own. To keep the IR append-only we add a `flop_with_q` path here.
    for (f, q) in netlist.flops().iter().zip(q_nets.drain(..)) {
        out.flop_into(net_map[f.d], q);
    }
    for &o in netlist.outputs() {
        out.output(net_map[o], netlist.net_name(o).unwrap_or("out").to_string());
    }
    let gates_after = out.gates().len();
    (
        out,
        MapReport {
            nand3_decomposed: drop_nand3,
            nor3_decomposed: drop_nor3,
            gates_before,
            gates_after,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funcsim::simulate_comb;
    use bdc_cells::{Cell, CellLibrary, ProcessKind};
    use std::collections::BTreeMap;

    /// A library whose NAND3 is pathologically slow.
    fn slow_nand3_lib() -> CellLibrary {
        let base = CellLibrary::synthetic(ProcessKind::Silicon45, 10.0e-12);
        let cells: Vec<Cell> = base
            .cells()
            .iter()
            .map(|c| {
                let mut c = c.clone();
                if c.kind == CellKind::Nand3 {
                    c.timing.delay_rise = c.timing.delay_rise.map(|d| d * 10.0);
                    c.timing.delay_fall = c.timing.delay_fall.map(|d| d * 10.0);
                }
                c
            })
            .collect();
        CellLibrary::from_cells(
            "slow-nand3",
            base.process,
            base.vdd,
            base.vss,
            base.wire,
            base.dff,
            cells,
        )
    }

    #[test]
    fn balanced_library_keeps_three_input_cells() {
        let lib = CellLibrary::synthetic(ProcessKind::Silicon45, 10.0e-12);
        assert!(!prefers_decomposition(&lib, CellKind::Nand3));
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let y = n.nand3(a, b, c);
        n.output(y, "y");
        let (m, report) = remap_for_library(&n, &lib);
        assert!(!report.nand3_decomposed);
        assert_eq!(m.gates().len(), 1);
    }

    #[test]
    fn slow_nand3_gets_decomposed_and_function_preserved() {
        let lib = slow_nand3_lib();
        assert!(prefers_decomposition(&lib, CellKind::Nand3));
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let y = n.nand3(a, b, c);
        let z = n.nor3(a, b, y);
        n.output(y, "y");
        n.output(z, "z");
        let (m, report) = remap_for_library(&n, &lib);
        assert!(report.nand3_decomposed);
        assert!(report.gates_after > report.gates_before);
        m.validate().unwrap();
        // Exhaustive equivalence.
        for bits in 0..8u32 {
            let vals = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let mk = |nl: &Netlist| {
                let mut mp = BTreeMap::new();
                for (i, &inp) in nl.inputs().iter().enumerate() {
                    mp.insert(inp, vals[i]);
                }
                simulate_comb(nl, &mp)
            };
            let v0 = mk(&n);
            let v1 = mk(&m);
            assert_eq!(v0[n.outputs()[0]], v1[m.outputs()[0]], "y at {bits:03b}");
            assert_eq!(v0[n.outputs()[1]], v1[m.outputs()[1]], "z at {bits:03b}");
        }
    }

    #[test]
    fn remap_preserves_sequential_structure() {
        let lib = slow_nand3_lib();
        let mut n = Netlist::new("seq");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let y = n.nand3(a, b, c);
        let q = n.flop(y);
        let z = n.nand3(q, b, c);
        n.output(z, "z");
        let (m, _) = remap_for_library(&n, &lib);
        m.validate().unwrap();
        assert_eq!(m.flops().len(), 1);
    }
}
