//! Functional (boolean) simulation of gate netlists.
//!
//! Used by the equivalence tests that confirm pipeline cutting preserves
//! function modulo latency, and by the block generators' truth-table tests.

use std::collections::BTreeMap;

use crate::gate::{NetId, Netlist};

/// Evaluates a purely combinational netlist.
///
/// `inputs` maps primary-input nets to values; constants are handled
/// automatically. Returns the value of every net.
///
/// # Panics
/// Panics if an input value is missing or the netlist has flops (use
/// [`simulate_seq`] for sequential netlists).
pub fn simulate_comb(netlist: &Netlist, inputs: &BTreeMap<NetId, bool>) -> Vec<bool> {
    assert!(
        netlist.flops().is_empty(),
        "combinational simulation of a sequential netlist"
    );
    let mut values = vec![false; netlist.net_count()];
    seed(netlist, inputs, &mut values);
    for g in netlist.gates() {
        let ins: Vec<bool> = g.inputs.iter().map(|&i| values[i]).collect();
        values[g.output] = g.kind.eval(&ins);
    }
    values
}

/// Steps a sequential netlist for `cycles` cycles.
///
/// Each cycle: combinational settle with current flop outputs, then all
/// flops capture. `inputs_per_cycle[c]` provides primary inputs for cycle
/// `c`; the last map is reused if fewer maps than cycles are given. Returns
/// the full net-value vector after each cycle's settle (before the edge).
///
/// # Panics
/// Panics if `inputs_per_cycle` is empty or an input value is missing.
pub fn simulate_seq(
    netlist: &Netlist,
    inputs_per_cycle: &[BTreeMap<NetId, bool>],
    cycles: usize,
) -> Vec<Vec<bool>> {
    assert!(!inputs_per_cycle.is_empty(), "need at least one input map");
    let mut state: Vec<bool> = vec![false; netlist.flops().len()];
    let mut traces = Vec::with_capacity(cycles);
    for c in 0..cycles {
        let inputs = inputs_per_cycle
            .get(c)
            .unwrap_or_else(|| inputs_per_cycle.last().unwrap());
        let mut values = vec![false; netlist.net_count()];
        seed(netlist, inputs, &mut values);
        for (f, s) in netlist.flops().iter().zip(&state) {
            values[f.q] = *s;
        }
        for g in netlist.gates() {
            let ins: Vec<bool> = g.inputs.iter().map(|&i| values[i]).collect();
            values[g.output] = g.kind.eval(&ins);
        }
        state = netlist.flops().iter().map(|f| values[f.d]).collect();
        traces.push(values);
    }
    traces
}

fn seed(netlist: &Netlist, inputs: &BTreeMap<NetId, bool>, values: &mut [bool]) {
    for &i in netlist.inputs() {
        let v = inputs.get(&i).unwrap_or_else(|| {
            panic!(
                "missing value for input net {i} ({:?})",
                netlist.net_name(i)
            )
        });
        values[i] = *v;
    }
    let (c0, c1) = netlist.constants();
    if let Some(c) = c0 {
        values[c] = false;
    }
    if let Some(c) = c1 {
        values[c] = true;
    }
}

/// Convenience: packs a bus of boolean values into a `u64` (LSB first).
pub fn bus_to_u64(values: &[bool], bus: &[NetId]) -> u64 {
    bus.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &n)| acc | ((values[n] as u64) << i))
}

/// Convenience: builds the input map for a bus from a `u64` (LSB first).
pub fn u64_to_bus(map: &mut BTreeMap<NetId, bool>, bus: &[NetId], value: u64) {
    for (i, &n) in bus.iter().enumerate() {
        map.insert(n, (value >> i) & 1 == 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Netlist;

    #[test]
    fn full_adder_truth_table() {
        let mut n = Netlist::new("fa");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let (s, co) = n.full_adder(a, b, c);
        n.output(s, "s");
        n.output(co, "co");
        for bits in 0..8u32 {
            let mut m = BTreeMap::new();
            m.insert(a, bits & 1 != 0);
            m.insert(b, bits & 2 != 0);
            m.insert(c, bits & 4 != 0);
            let v = simulate_comb(&n, &m);
            let total = (bits & 1) + ((bits >> 1) & 1) + ((bits >> 2) & 1);
            assert_eq!(v[s], total & 1 == 1, "sum at {bits:03b}");
            assert_eq!(v[co], total >= 2, "carry at {bits:03b}");
        }
    }

    #[test]
    fn mux_and_xor_semantics() {
        let mut n = Netlist::new("m");
        let s = n.input("s");
        let a = n.input("a");
        let b = n.input("b");
        let m_out = n.mux2(s, a, b);
        let x_out = n.xor2(a, b);
        n.output(m_out, "m");
        n.output(x_out, "x");
        for bits in 0..8u32 {
            let mut m = BTreeMap::new();
            m.insert(s, bits & 1 != 0);
            m.insert(a, bits & 2 != 0);
            m.insert(b, bits & 4 != 0);
            let v = simulate_comb(&n, &m);
            let (sv, av, bv) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            assert_eq!(v[m_out], if sv { bv } else { av });
            assert_eq!(v[x_out], av ^ bv);
        }
    }

    #[test]
    fn sequential_shift_register_delays() {
        // in -> ff -> ff -> out: output shows input two cycles late.
        let mut n = Netlist::new("sr");
        let a = n.input("a");
        let q1 = n.flop(a);
        let q2 = n.flop(q1);
        n.output(q2, "out");
        let seq = [true, false, true, true, false];
        let maps: Vec<BTreeMap<NetId, bool>> =
            seq.iter().map(|&v| BTreeMap::from([(a, v)])).collect();
        let traces = simulate_seq(&n, &maps, 5);
        for c in 2..5 {
            assert_eq!(traces[c][q2], seq[c - 2], "cycle {c}");
        }
    }

    #[test]
    fn bus_helpers_round_trip() {
        let mut n = Netlist::new("b");
        let bus = n.input_bus("x", 8);
        let y = n.inv(bus[0]);
        n.output(y, "y");
        let mut m = BTreeMap::new();
        u64_to_bus(&mut m, &bus, 0xA5);
        let v = simulate_comb(&n, &m);
        assert_eq!(bus_to_u64(&v, &bus), 0xA5);
    }
}
