//! Parameter extraction and model fitting.
//!
//! Reproduces the paper's §4.1–4.2 methodology:
//!
//! * [`extract_metrics`] pulls the scalar figures of merit the paper reports
//!   for its fabricated device — linear mobility (from the max slope of the
//!   linear-region transfer curve), threshold voltage (tangent intercept at
//!   peak transconductance), subthreshold swing, and on/off ratio.
//! * [`fit_level1`] / [`fit_level61`] perform the Figure 4 experiment: fit
//!   each SPICE model to a measured transfer curve by least squares on
//!   log-current (Nelder–Mead simplex) and report the residual. Level 1
//!   cannot follow the subthreshold decade-per-decade rolloff, so its
//!   residual is much larger — which is exactly the paper's argument for
//!   adopting level 61.

use std::fmt;

use crate::curves::TransferPoint;
use crate::level1::Level1Model;
use crate::level61::Level61Model;
use crate::model::DeviceModel;
use crate::params::{Level1Params, TftParams};

/// Scalar figures of merit extracted from a transfer curve (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceMetrics {
    /// Linear-region field-effect mobility (m²/V·s).
    pub mu_lin: f64,
    /// Threshold voltage (V), signed in the device's own frame.
    pub vt: f64,
    /// Subthreshold swing (V/decade).
    pub subthreshold_swing: f64,
    /// On/off current ratio.
    pub on_off_ratio: f64,
}

/// Error raised when extraction or fitting cannot proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// The sweep had too few points to extract slopes.
    TooFewPoints,
    /// The curve was flat (no conduction), so no threshold exists.
    NoConduction,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewPoints => write!(f, "sweep has too few points"),
            FitError::NoConduction => write!(f, "device never conducts in the sweep"),
        }
    }
}

impl std::error::Error for FitError {}

/// Result of fitting a model to a measured curve.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Root-mean-square error on log₁₀(I_D) over the sweep.
    pub rms_log_error: f64,
    /// The fitted model's curve, aligned point-for-point to the input sweep.
    pub fitted: Vec<TransferPoint>,
    /// Number of simplex iterations used.
    pub iterations: usize,
}

/// Extracts §4.1-style figures of merit from a p-type transfer curve taken at
/// small drain bias `vds_lin` (e.g. −1 V).
///
/// `curve` must sweep from positive (off) toward negative (on) gate voltage,
/// as Figure 3 does.
///
/// # Errors
/// Returns [`FitError::TooFewPoints`] for sweeps with fewer than 8 points and
/// [`FitError::NoConduction`] if the on-current never exceeds 10× the
/// off-current.
pub fn extract_metrics(
    curve: &[TransferPoint],
    vds_lin: f64,
    ci: f64,
    w_over_l: f64,
) -> Result<DeviceMetrics, FitError> {
    if curve.len() < 8 {
        return Err(FitError::TooFewPoints);
    }
    let i_on = curve.iter().map(|p| p.id).fold(0.0, f64::max);
    let i_off = curve.iter().map(|p| p.id).fold(f64::INFINITY, f64::min);
    // partial_cmp keeps the NaN-poisoned-curve case on the error path.
    if i_on.partial_cmp(&(10.0 * i_off)) != Some(std::cmp::Ordering::Greater) {
        return Err(FitError::NoConduction);
    }

    // Peak transconductance (magnitude) over the sweep.
    let mut gm_max = 0.0;
    let mut gm_idx = 0;
    for i in 1..curve.len() {
        let dv = curve[i].vgs - curve[i - 1].vgs;
        if dv.abs() < 1e-12 {
            continue;
        }
        let gm = ((curve[i].id - curve[i - 1].id) / dv).abs();
        if gm > gm_max {
            gm_max = gm;
            gm_idx = i;
        }
    }
    // µ_lin = gm · L / (W · C_i · |V_DS|) in the linear region.
    let mu_lin = gm_max / (w_over_l * ci * vds_lin.abs());

    // V_T: extrapolate the tangent at the max-gm point to I_D = 0.
    let p = curve[gm_idx];
    let slope = {
        let q = curve[gm_idx - 1];
        (p.id - q.id) / (p.vgs - q.vgs)
    };
    let vt = p.vgs - p.id / slope;

    // Subthreshold swing: steepest dV_GS/dlog10(I_D) in the 10⁻¹⁰..10⁻⁸ A band.
    let mut ss = f64::INFINITY;
    for i in 1..curve.len() {
        let (a, b) = (curve[i - 1], curve[i]);
        if a.id <= 0.0 || b.id <= 0.0 {
            continue;
        }
        let band = |x: f64| x > 1.0e-11 && x < 1.0e-7;
        if band(a.id) && band(b.id) {
            let dlog = (b.id.log10() - a.id.log10()).abs();
            if dlog > 1e-9 {
                ss = ss.min((b.vgs - a.vgs).abs() / dlog);
            }
        }
    }

    Ok(DeviceMetrics {
        mu_lin,
        vt,
        subthreshold_swing: ss,
        on_off_ratio: i_on / i_off,
    })
}

/// RMS error between a model and a measured curve, on log₁₀|I|.
fn rms_log_error(model: &dyn DeviceModel, vds: f64, measured: &[TransferPoint]) -> f64 {
    let floor = 1.0e-14;
    let se: f64 = measured
        .iter()
        .map(|p| {
            let sim = model.ids(p.vgs, vds).abs().max(floor);
            let meas = p.id.max(floor);
            let d = sim.log10() - meas.log10();
            d * d
        })
        .sum();
    (se / measured.len() as f64).sqrt()
}

/// Nelder–Mead simplex minimization of `f` over `x0` with characteristic
/// scales `scale`. Returns `(x_best, f_best, iterations)`.
fn nelder_mead(
    f: &dyn Fn(&[f64]) -> f64,
    x0: &[f64],
    scale: &[f64],
    max_iter: usize,
) -> (Vec<f64>, f64, usize) {
    let n = x0.len();
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for i in 0..n {
        let mut v = x0.to_vec();
        v[i] += scale[i];
        simplex.push(v);
    }
    let mut fv: Vec<f64> = simplex.iter().map(|x| f(x)).collect();
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut iter = 0;
    while iter < max_iter {
        iter += 1;
        // Order simplex by objective.
        let mut idx: Vec<usize> = (0..=n).collect();
        idx.sort_by(|&a, &b| fv[a].partial_cmp(&fv[b]).unwrap());
        let reorder = |v: &mut Vec<Vec<f64>>, fv: &mut Vec<f64>, idx: &[usize]| {
            let nv: Vec<_> = idx.iter().map(|&i| v[i].clone()).collect();
            let nf: Vec<_> = idx.iter().map(|&i| fv[i]).collect();
            *v = nv;
            *fv = nf;
        };
        reorder(&mut simplex, &mut fv, &idx);
        if (fv[n] - fv[0]).abs() < 1e-9 * (1.0 + fv[0].abs()) {
            break;
        }
        // Centroid of all but worst.
        let centroid: Vec<f64> = (0..n)
            .map(|j| simplex[..n].iter().map(|x| x[j]).sum::<f64>() / n as f64)
            .collect();
        let worst = simplex[n].clone();
        let refl: Vec<f64> = (0..n)
            .map(|j| centroid[j] + alpha * (centroid[j] - worst[j]))
            .collect();
        let f_refl = f(&refl);
        if f_refl < fv[0] {
            let exp: Vec<f64> = (0..n)
                .map(|j| centroid[j] + gamma * (refl[j] - centroid[j]))
                .collect();
            let f_exp = f(&exp);
            if f_exp < f_refl {
                simplex[n] = exp;
                fv[n] = f_exp;
            } else {
                simplex[n] = refl;
                fv[n] = f_refl;
            }
        } else if f_refl < fv[n - 1] {
            simplex[n] = refl;
            fv[n] = f_refl;
        } else {
            let contr: Vec<f64> = (0..n)
                .map(|j| centroid[j] + rho * (worst[j] - centroid[j]))
                .collect();
            let f_contr = f(&contr);
            if f_contr < fv[n] {
                simplex[n] = contr;
                fv[n] = f_contr;
            } else {
                // Shrink toward best.
                let best = simplex[0].clone();
                for i in 1..=n {
                    for (s, &b) in simplex[i].iter_mut().zip(&best) {
                        *s = b + sigma * (*s - b);
                    }
                    fv[i] = f(&simplex[i]);
                }
            }
        }
    }
    (simplex[0].clone(), fv[0], iter)
}

/// Fits a level-1 model (free parameters: KP, V_T, λ) to a measured p-type
/// transfer curve at drain bias `vds` — the weaker half of Figure 4.
///
/// # Errors
/// Propagates [`FitError::TooFewPoints`] for sweeps shorter than 8 points.
pub fn fit_level1(
    measured: &[TransferPoint],
    vds: f64,
    geometry: &TftParams,
) -> Result<(Level1Model, FitReport), FitError> {
    if measured.len() < 8 {
        return Err(FitError::TooFewPoints);
    }
    let base = Level1Params {
        polarity: geometry.polarity,
        w: geometry.w,
        l: geometry.l,
        kp: geometry.mu0 * geometry.ci,
        vt0: geometry.vt0,
        lambda: geometry.lambda,
        ci: geometry.ci,
    };
    let obj = |x: &[f64]| {
        let p = Level1Params {
            kp: x[0].abs().max(1e-15),
            vt0: x[1],
            lambda: x[2].abs(),
            ..base
        };
        rms_log_error(&Level1Model::new(p), vds, measured)
    };
    let x0 = [base.kp, base.vt0, base.lambda];
    let scale = [base.kp * 0.5, 0.5, 0.05];
    let (x, err, iterations) = nelder_mead(&obj, &x0, &scale, 400);
    let fitted_params = Level1Params {
        kp: x[0].abs().max(1e-15),
        vt0: x[1],
        lambda: x[2].abs(),
        ..base
    };
    let model = Level1Model::new(fitted_params);
    let fitted = measured
        .iter()
        .map(|p| TransferPoint {
            vgs: p.vgs,
            id: model.ids(p.vgs, vds).abs(),
        })
        .collect();
    Ok((
        model,
        FitReport {
            rms_log_error: err,
            fitted,
            iterations,
        },
    ))
}

/// Fits a level-61 model (free parameters: µ₀, γ, V_T, subthreshold n,
/// I_off) to a measured p-type transfer curve at drain bias `vds` — the
/// stronger half of Figure 4.
///
/// # Errors
/// Propagates [`FitError::TooFewPoints`] for sweeps shorter than 8 points.
pub fn fit_level61(
    measured: &[TransferPoint],
    vds: f64,
    geometry: &TftParams,
) -> Result<(Level61Model, FitReport), FitError> {
    if measured.len() < 8 {
        return Err(FitError::TooFewPoints);
    }
    let base = geometry.clone();
    let obj = |x: &[f64]| {
        let p = TftParams {
            mu0: x[0].abs().max(1e-9),
            gamma: x[1].clamp(0.0, 2.0),
            vt0: x[2],
            subthreshold_n: x[3].abs().max(1.0),
            i_off: x[4].abs().max(1e-15),
            ..base.clone()
        };
        rms_log_error(&Level61Model::new(p), vds, measured)
    };
    let x0 = [
        base.mu0,
        base.gamma,
        base.vt0,
        base.subthreshold_n,
        base.i_off,
    ];
    let scale = [
        base.mu0 * 0.5,
        0.15,
        0.4,
        base.subthreshold_n * 0.3,
        base.i_off * 2.0,
    ];
    let (x, err, iterations) = nelder_mead(&obj, &x0, &scale, 600);
    let fitted_params = TftParams {
        mu0: x[0].abs().max(1e-9),
        gamma: x[1].clamp(0.0, 2.0),
        vt0: x[2],
        subthreshold_n: x[3].abs().max(1.0),
        i_off: x[4].abs().max(1e-15),
        ..base
    };
    let model = Level61Model::new(fitted_params);
    let fitted = measured
        .iter()
        .map(|p| TransferPoint {
            vgs: p.vgs,
            id: model.ids(p.vgs, vds).abs(),
        })
        .collect();
    Ok((
        model,
        FitReport {
            rms_log_error: err,
            fitted,
            iterations,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curves::transfer_curve;
    use crate::variation::synthetic_measured_curve;

    #[test]
    fn extraction_recovers_pentacene_scalars() {
        let params = TftParams::pentacene();
        let m = Level61Model::new(params.clone());
        let curve = transfer_curve(&m, -1.0, 10.0, -10.0, 401);
        let metrics =
            extract_metrics(&curve, -1.0, params.ci, params.aspect()).expect("extraction");
        // µ_lin within a factor-2 band of 0.16 cm²/Vs (power-law mobility
        // makes the "linear mobility" bias-dependent, as in real extractions).
        let mu_cm2 = metrics.mu_lin * 1.0e4;
        assert!(mu_cm2 > 0.08 && mu_cm2 < 0.35, "mu_lin = {mu_cm2}");
        // Extrapolated V_T near -1.3 V... in the p-frame it comes out negative.
        assert!(metrics.vt < 0.0 && metrics.vt > -6.0, "vt = {}", metrics.vt);
        assert!(
            metrics.subthreshold_swing > 0.2 && metrics.subthreshold_swing < 0.5,
            "SS = {}",
            metrics.subthreshold_swing
        );
        assert!(metrics.on_off_ratio > 1.0e5);
    }

    #[test]
    fn extraction_rejects_flat_curves() {
        let flat: Vec<TransferPoint> = (0..20)
            .map(|i| TransferPoint {
                vgs: i as f64,
                id: 1.0e-12,
            })
            .collect();
        assert_eq!(
            extract_metrics(&flat, -1.0, 1.0e-3, 12.5),
            Err(FitError::NoConduction)
        );
    }

    #[test]
    fn extraction_rejects_short_sweeps() {
        let short: Vec<TransferPoint> = (0..4)
            .map(|i| TransferPoint {
                vgs: i as f64,
                id: 1.0e-9,
            })
            .collect();
        assert_eq!(
            extract_metrics(&short, -1.0, 1.0e-3, 12.5),
            Err(FitError::TooFewPoints)
        );
    }

    #[test]
    fn level61_fits_much_better_than_level1() {
        // The Figure 4 experiment in miniature.
        let geometry = TftParams::pentacene();
        let measured = synthetic_measured_curve(&geometry, -1.0, 161, 7);
        let (_, r1) = fit_level1(&measured, -1.0, &geometry).expect("level 1 fit");
        let (_, r61) = fit_level61(&measured, -1.0, &geometry).expect("level 61 fit");
        assert!(
            r61.rms_log_error < 0.5 * r1.rms_log_error,
            "level61 RMS {:.3} vs level1 RMS {:.3}",
            r61.rms_log_error,
            r1.rms_log_error
        );
        // Level 61 should land within a third of a decade on average.
        assert!(
            r61.rms_log_error < 0.35,
            "level61 RMS {:.3}",
            r61.rms_log_error
        );
    }

    #[test]
    fn nelder_mead_minimizes_quadratic() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + 2.0 * (x[1] + 1.0).powi(2);
        let (x, v, _) = nelder_mead(&f, &[0.0, 0.0], &[1.0, 1.0], 300);
        assert!(v < 1e-6);
        assert!((x[0] - 3.0).abs() < 1e-3 && (x[1] + 1.0).abs() < 1e-3);
    }
}
