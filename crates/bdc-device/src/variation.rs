//! Process variation and synthetic “measured” curves.
//!
//! Organic semiconductors have poor uniformity: the paper reports a typical
//! threshold-voltage spread within 0.5 V across a sample (§4.1), and §4.3.3
//! notes that the linear V_M–V_SS relationship lets a circuit compensate for
//! that spread by retuning V_SS. [`VtVariation`] provides Monte-Carlo
//! sampling of that spread; [`synthetic_measured_curve`] stands in for the
//! HP4155A measurement data we cannot have (see DESIGN.md §2), producing a
//! level-61 curve perturbed with log-normal measurement noise.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::curves::{transfer_curve, TransferPoint};
use crate::level61::Level61Model;
use crate::params::TftParams;

/// Monte-Carlo model of cross-sample threshold-voltage spread.
#[derive(Debug, Clone)]
pub struct VtVariation {
    /// Base device parameters.
    base: TftParams,
    /// Standard deviation of the V_T spread (V). The paper's "within 0.5 V"
    /// spread corresponds to σ ≈ 0.17 V (3σ window).
    sigma: f64,
    rng: SmallRng,
}

impl VtVariation {
    /// Creates a sampler with the given V_T standard deviation (volts).
    ///
    /// # Panics
    /// Panics if `sigma` is negative.
    pub fn new(base: TftParams, sigma: f64, seed: u64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        VtVariation {
            base,
            sigma,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The paper's reported spread: V_T within 0.5 V across the sample.
    pub fn paper_spread(base: TftParams, seed: u64) -> Self {
        Self::new(base, 0.5 / 3.0, seed)
    }

    /// Draws one device instance with a perturbed threshold voltage.
    pub fn sample(&mut self) -> Level61Model {
        // Box-Muller normal sample.
        let u1: f64 = self.rng.gen_range(1.0e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..std::f64::consts::TAU);
        let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
        let vt0 = self.base.vt0 + self.sigma * z;
        Level61Model::new(TftParams {
            vt0,
            ..self.base.clone()
        })
    }

    /// Draws `n` devices and returns the sample standard deviation of their
    /// V_T parameters — used to validate calibration.
    pub fn sampled_vt_sigma(&mut self, n: usize) -> f64 {
        assert!(n >= 2);
        let vts: Vec<f64> = (0..n).map(|_| self.sample().params().vt0).collect();
        let mean = vts.iter().sum::<f64>() / n as f64;
        let var = vts.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        var.sqrt()
    }
}

/// A single device drawn from a variation distribution, wrapping the model
/// with its sampled threshold shift for reporting.
#[derive(Debug, Clone)]
pub struct VariedModel {
    /// The sampled device.
    pub model: Level61Model,
    /// V_T delta relative to the nominal device (V).
    pub delta_vt: f64,
}

impl VariedModel {
    /// Samples `n` devices from `variation`, keeping their V_T deltas.
    pub fn sample_population(variation: &mut VtVariation, n: usize) -> Vec<VariedModel> {
        let nominal = variation.base.vt0;
        (0..n)
            .map(|_| {
                let model = variation.sample();
                let delta_vt = model.params().vt0 - nominal;
                VariedModel { model, delta_vt }
            })
            .collect()
    }

    /// Samples `n` devices on the thread pool. Each device's normal draw
    /// comes from its own [`bdc_exec::task_seed`]-derived RNG instead of a
    /// shared sequential stream, so the population is a pure function of
    /// `(seed, index)` — bit-identical for any worker count, including the
    /// serial `workers() == 1` path.
    ///
    /// # Panics
    /// Panics if `sigma` is negative.
    pub fn sample_population_par(
        base: &TftParams,
        sigma: f64,
        seed: u64,
        n: usize,
    ) -> Vec<VariedModel> {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        let indices: Vec<u64> = (0..n as u64).collect();
        bdc_exec::par_map(&indices, |&i| {
            let mut rng = bdc_exec::SplitMix64::new(bdc_exec::task_seed(seed, i));
            let vt0 = base.vt0 + sigma * rng.next_normal();
            let model = Level61Model::new(TftParams {
                vt0,
                ..base.clone()
            });
            let delta_vt = model.params().vt0 - base.vt0;
            VariedModel { model, delta_vt }
        })
    }
}

/// Generates a synthetic “measured” transfer sweep: the level-61 nominal
/// curve with multiplicative log-normal noise (σ = 8 % of a decade at the
/// floor, shrinking where the current is strong, mimicking SMU accuracy).
///
/// Sweeps from +|vt0|·... the positive (off) side down to −10 V like Fig 3.
pub fn synthetic_measured_curve(
    params: &TftParams,
    vds: f64,
    n: usize,
    seed: u64,
) -> Vec<TransferPoint> {
    let model = Level61Model::new(params.clone());
    let clean = transfer_curve(&model, vds, 10.0, -10.0, n);
    let mut rng = SmallRng::seed_from_u64(seed);
    clean
        .into_iter()
        .map(|p| {
            let u1: f64 = rng.gen_range(1.0e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
            // Noise in log-space: smaller where the signal is far above the
            // instrument floor.
            let floor = 1.0e-13;
            let decades_up = (p.id.max(floor) / floor).log10();
            let sigma_log = 0.08 / (1.0 + 0.15 * decades_up);
            let id = p.id.max(floor) * 10f64.powf(sigma_log * z);
            TransferPoint { vgs: p.vgs, id }
        })
        .collect()
}

/// Convenience: the measured curve of the paper's fabricated pentacene
/// device at V_DS = −1 V (Figure 3's low-bias trace).
pub fn paper_measured_curve(seed: u64) -> Vec<TransferPoint> {
    synthetic_measured_curve(&TftParams::pentacene(), -1.0, 201, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DeviceModel;

    #[test]
    fn sampled_sigma_matches_configured() {
        let mut v = VtVariation::new(TftParams::pentacene(), 0.2, 42);
        let s = v.sampled_vt_sigma(4000);
        assert!((s - 0.2).abs() < 0.02, "sigma = {s}");
    }

    #[test]
    fn paper_spread_within_half_volt() {
        let mut v = VtVariation::paper_spread(TftParams::pentacene(), 7);
        let pop = VariedModel::sample_population(&mut v, 500);
        let within = pop.iter().filter(|m| m.delta_vt.abs() <= 0.5).count();
        // 3-sigma window → ~99.7 % inside.
        assert!(within >= 490, "{within}/500 within 0.5 V");
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let mut v = VtVariation::new(TftParams::pentacene(), 0.0, 1);
        let a = v.sample();
        let b = v.sample();
        assert_eq!(a.params().vt0, b.params().vt0);
    }

    #[test]
    fn synthetic_curve_is_noisy_but_close() {
        let p = TftParams::pentacene();
        let noisy = synthetic_measured_curve(&p, -1.0, 101, 3);
        let clean = transfer_curve(&Level61Model::new(p), -1.0, 10.0, -10.0, 101);
        let rms: f64 = noisy
            .iter()
            .zip(&clean)
            .map(|(a, b)| {
                let d = (a.id.max(1e-14)).log10() - (b.id.max(1e-14)).log10();
                d * d
            })
            .sum::<f64>()
            / 101.0;
        let rms = rms.sqrt();
        assert!(rms > 0.005 && rms < 0.15, "rms log noise {rms}");
    }

    #[test]
    fn par_population_is_a_pure_function_of_seed_and_index() {
        let base = TftParams::pentacene();
        let pop = VariedModel::sample_population_par(&base, 0.2, 42, 64);
        assert_eq!(pop.len(), 64);
        for (i, m) in pop.iter().enumerate() {
            let mut rng = bdc_exec::SplitMix64::new(bdc_exec::task_seed(42, i as u64));
            let expect = base.vt0 + 0.2 * rng.next_normal();
            assert_eq!(m.model.params().vt0, expect, "index {i}");
        }
    }

    #[test]
    fn par_population_spread_matches_sigma() {
        let base = TftParams::pentacene();
        let pop = VariedModel::sample_population_par(&base, 0.5 / 3.0, 7, 500);
        let within = pop.iter().filter(|m| m.delta_vt.abs() <= 0.5).count();
        assert!(within >= 490, "{within}/500 within 0.5 V");
    }

    #[test]
    fn varied_devices_still_conduct() {
        let mut v = VtVariation::paper_spread(TftParams::pentacene(), 11);
        for m in VariedModel::sample_population(&mut v, 50) {
            assert!(m.model.ids(-10.0, -10.0).abs() > 1.0e-7);
        }
    }
}
