//! Transfer and output curve generation.
//!
//! These helpers produce the `I_D–V_GS` and `I_D–V_DS` sweeps plotted in the
//! paper's Figures 3 and 4, and feed the parameter-extraction routines in
//! [`crate::extract`].

use crate::model::DeviceModel;

/// One point of a transfer sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferPoint {
    /// Gate-source voltage (V).
    pub vgs: f64,
    /// Drain current magnitude (A).
    pub id: f64,
}

/// Sweeps `V_GS` from `vgs_start` to `vgs_stop` (inclusive) in `n` points at
/// fixed `vds`, returning drain-current magnitudes.
///
/// # Panics
/// Panics if `n < 2`.
pub fn transfer_curve(
    model: &dyn DeviceModel,
    vds: f64,
    vgs_start: f64,
    vgs_stop: f64,
    n: usize,
) -> Vec<TransferPoint> {
    assert!(n >= 2, "a sweep needs at least two points");
    (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            let vgs = vgs_start + t * (vgs_stop - vgs_start);
            TransferPoint {
                vgs,
                id: model.ids(vgs, vds).abs(),
            }
        })
        .collect()
}

/// Sweeps `V_DS` at fixed `V_GS`, returning `(vds, |id|)` pairs.
///
/// # Panics
/// Panics if `n < 2`.
pub fn output_curve(
    model: &dyn DeviceModel,
    vgs: f64,
    vds_start: f64,
    vds_stop: f64,
    n: usize,
) -> Vec<(f64, f64)> {
    assert!(n >= 2, "a sweep needs at least two points");
    (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            let vds = vds_start + t * (vds_stop - vds_start);
            (vds, model.ids(vgs, vds).abs())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Level61Model, TftParams};

    #[test]
    fn transfer_curve_covers_endpoints() {
        let m = Level61Model::new(TftParams::pentacene());
        let c = transfer_curve(&m, -1.0, 10.0, -10.0, 41);
        assert_eq!(c.len(), 41);
        assert!((c[0].vgs - 10.0).abs() < 1e-12);
        assert!((c[40].vgs + 10.0).abs() < 1e-12);
        // Current grows toward negative vgs for p-type.
        assert!(c[40].id > c[0].id);
    }

    #[test]
    fn output_curve_monotone_for_on_device() {
        let m = Level61Model::new(TftParams::pentacene());
        let c = output_curve(&m, -10.0, 0.0, -10.0, 21);
        for w in c.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-15);
        }
    }
}
