//! Level-1 Shichman–Hodges square-law MOSFET model.
//!
//! The paper implements this model first (§4.2) for fast qualitative analysis
//! of mobility and threshold voltage, then rejects it for accurate work: it
//! has no subthreshold conduction and no leakage floor, so it cannot match
//! the measured pentacene curve of Figure 4 below threshold. We keep it both
//! as a baseline for the Figure 4 fitting experiment and as a sanity model in
//! tests.

use crate::model::{to_n_frame, with_sd_swap, DeviceModel, Polarity};
use crate::params::Level1Params;

/// Classic square-law model: cutoff / triode / saturation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Level1Model {
    params: Level1Params,
}

impl Level1Model {
    /// Creates a model from a parameter set.
    ///
    /// # Panics
    /// Panics if geometry or `kp` are non-positive.
    pub fn new(params: Level1Params) -> Self {
        assert!(
            params.w > 0.0 && params.l > 0.0,
            "geometry must be positive"
        );
        assert!(params.kp > 0.0, "kp must be positive");
        Level1Model { params }
    }

    /// Borrow the parameter set.
    pub fn params(&self) -> &Level1Params {
        &self.params
    }

    fn ids_n_frame(&self, vgs: f64, vds: f64) -> f64 {
        let p = &self.params;
        let beta = p.kp * p.w / p.l;
        let vgt = vgs - p.vt0;
        if vgt <= 0.0 {
            0.0
        } else if vds < vgt {
            beta * (vgt * vds - 0.5 * vds * vds) * (1.0 + p.lambda * vds)
        } else {
            0.5 * beta * vgt * vgt * (1.0 + p.lambda * vds)
        }
    }
}

impl DeviceModel for Level1Model {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        let (vgs_n, vds_n, sign) = to_n_frame(self.params.polarity, vgs, vds);
        sign * with_sd_swap(vgs_n, vds_n, |g, d| self.ids_n_frame(g, d))
    }

    fn polarity(&self) -> Polarity {
        self.params.polarity
    }

    fn gate_capacitance(&self) -> f64 {
        self.params.ci * self.params.w * self.params.l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pentacene() -> Level1Model {
        Level1Model::new(Level1Params::pentacene())
    }

    #[test]
    fn cutoff_is_exactly_zero() {
        // The defining deficiency vs level 61: no subthreshold current.
        let m = pentacene();
        assert_eq!(m.ids(0.0, -5.0), 0.0);
        assert_eq!(m.ids(-1.0, -5.0), 0.0);
    }

    #[test]
    fn triode_saturation_boundary_is_continuous() {
        let m = pentacene();
        let vgs = -6.0; // vgt = 4.7 in n-frame
        let eps = 1e-6;
        let below = m.ids(vgs, -(4.7 - eps));
        let above = m.ids(vgs, -(4.7 + eps));
        // The two branches agree at the boundary up to the local slope · 2ε.
        assert!((below - above).abs() < 1e-4 * below.abs().max(1e-12));
    }

    #[test]
    fn square_law_in_saturation() {
        let m = pentacene();
        // |I(vgt=8)| / |I(vgt=4)| ≈ 4 modulo lambda.
        let i1 = m.ids(-5.3, -10.0).abs(); // vgt = 4
        let i2 = m.ids(-9.3, -10.0).abs(); // vgt = 8
        let ratio = i2 / i1;
        assert!((ratio - 4.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn magnitude_matches_pentacene_scale() {
        // 0.5 · µCi · (W/L) · vgt² with vgt ≈ 8.7 → a few µA.
        let m = pentacene();
        let i = m.ids(-10.0, -10.0).abs();
        assert!(i > 1.0e-6 && i < 2.0e-5, "I = {i:.3e}");
    }

    #[test]
    fn source_drain_swap_symmetry() {
        let m = pentacene();
        let a = m.ids(-7.0, -3.0);
        // Swap S and D: vgd = vgs - vds = -4, vsd = 3.
        let b = m.ids(-4.0, 3.0);
        assert!((a + b).abs() < 1e-15);
    }
}
