//! Parameter sets for the compact models.
//!
//! The pentacene defaults reproduce the fabricated device the paper
//! characterizes in §4.1 / Figure 3; the silicon defaults target a public
//! 45 nm-class bulk CMOS process (the comparison library in §5.1).

use crate::{Polarity, EPS0};

/// Geometry and material parameters for a level-61-class organic TFT.
///
/// Field names follow the RPI a-Si TFT model vocabulary where applicable.
#[derive(Debug, Clone, PartialEq)]
pub struct TftParams {
    /// Carrier polarity (pentacene is p-type).
    pub polarity: Polarity,
    /// Channel width (m).
    pub w: f64,
    /// Channel length (m).
    pub l: f64,
    /// Gate dielectric capacitance per area (F/m²).
    pub ci: f64,
    /// Band mobility prefactor (m²/V·s) — the low-field bound on mobility.
    pub mu0: f64,
    /// Power-law mobility enhancement exponent `gamma`:
    /// µ_eff ∝ (V_GT / V_AA)^gamma. Organic semiconductors show gamma ≈ 0.2–0.5.
    pub gamma: f64,
    /// Mobility normalization voltage V_AA (V).
    pub vaa: f64,
    /// Threshold voltage magnitude (V); the device conducts for
    /// |V_GS| > |V_T| of the appropriate sign.
    pub vt0: f64,
    /// Subthreshold ideality: SS = n · kT/q · ln 10. The paper's device has
    /// SS = 350 mV/dec → n ≈ 5.9.
    pub subthreshold_n: f64,
    /// Off-state leakage floor (A), sets the on/off ratio.
    pub i_off: f64,
    /// Gate leakage conductance-ish scale (A at 10 V), for I_G curves.
    pub i_gate_10v: f64,
    /// Channel-length modulation (1/V).
    pub lambda: f64,
    /// Saturation-voltage factor: V_sat = alpha_sat · V_GTe.
    pub alpha_sat: f64,
    /// Knee sharpness of the linear→saturation transition.
    pub m_knee: f64,
    /// Drain-induced threshold shift: initial slope (V of V_T per V of
    /// V_DS). The paper's device shows V_T moving from -1.3 V at V_DS = 1 V
    /// to +1.3 V at 10 V (p-type: less negative gate needed at higher drain
    /// bias).
    pub vt_dibl: f64,
    /// Saturation cap of the drain-induced V_T shift (V). The shift follows
    /// `cap·(1 − exp(−slope·V_DS/cap))`, so it reproduces the measured
    /// ±1.3 V window without destroying output resistance at deep V_DS.
    pub vt_dibl_cap: f64,
    /// Source/drain-to-gate overlap length per side (m); shadow-mask
    /// patterning forces tens of microns of overlap.
    pub l_overlap: f64,
}

impl TftParams {
    /// The paper's fabricated bottom-gate top-contact pentacene OTFT.
    ///
    /// * W/L = 1000 µm / 80 µm
    /// * 50 nm ALD Al₂O₃ gate dielectric (ε_r ≈ 9 → C_i ≈ 1.59 mF/m²)
    /// * µ_lin = 0.16 cm²V⁻¹s⁻¹, SS = 350 mV/dec, on/off = 10⁶
    /// * V_T = −1.3 V at V_DS = −1 V, drifting positive with drain bias
    pub fn pentacene() -> Self {
        let ci = 9.0 * EPS0 / 50.0e-9;
        TftParams {
            polarity: Polarity::PType,
            w: 1000.0e-6,
            l: 80.0e-6,
            ci,
            mu0: 0.16e-4,
            gamma: 0.30,
            vaa: 7.5,
            vt0: 1.3,
            subthreshold_n: 0.350 / (std::f64::consts::LN_10 * crate::VT_THERMAL),
            i_off: 2.0e-12,
            i_gate_10v: 6.0e-11,
            lambda: 0.006,
            alpha_sat: 0.55,
            m_knee: 3.0,
            vt_dibl: 0.32,
            vt_dibl_cap: 3.0,
            l_overlap: 20.0e-6,
        }
    }

    /// Same process, different drawn geometry. Width and length in metres.
    ///
    /// # Panics
    /// Panics if `w` or `l` is not strictly positive.
    pub fn pentacene_sized(w: f64, l: f64) -> Self {
        assert!(w > 0.0 && l > 0.0, "transistor geometry must be positive");
        TftParams {
            w,
            l,
            ..Self::pentacene()
        }
    }

    /// The device at a point in its *transient* (biodegradable) life.
    ///
    /// Biodegradable electronics are designed to decay: as the pentacene
    /// film and contacts degrade, mobility falls, the threshold drifts and
    /// off-leakage rises. `life` runs from 0.0 (fresh) to 1.0 (end of
    /// mission, just before functional failure); the model follows the
    /// qualitative aging behaviour reported for pentacene in air (µ down to
    /// ~30 %, |V_T| growing ~1 V, on/off collapsing ~10×).
    ///
    /// # Panics
    /// Panics if `life` is outside `[0, 1]`.
    pub fn aged(&self, life: f64) -> Self {
        assert!((0.0..=1.0).contains(&life), "life must be in [0, 1]");
        TftParams {
            mu0: self.mu0 * (1.0 - 0.7 * life),
            vt0: self.vt0 + 1.0 * life,
            i_off: self.i_off * (1.0 + 9.0 * life),
            subthreshold_n: self.subthreshold_n * (1.0 + 0.4 * life),
            ..self.clone()
        }
    }

    /// A hypothetical DNTT-class device: ~10× the mobility of pentacene and a
    /// steeper subthreshold slope (Zschieschang et al. 2011), used by the
    /// future-work device-scaling ablation.
    pub fn dntt() -> Self {
        TftParams {
            mu0: 1.6e-4,
            subthreshold_n: 0.120 / (std::f64::consts::LN_10 * crate::VT_THERMAL),
            i_off: 5.0e-13,
            ..Self::pentacene()
        }
    }

    /// W/L aspect ratio.
    pub fn aspect(&self) -> f64 {
        self.w / self.l
    }

    /// Total gate-channel capacitance C_i·W·L (F).
    pub fn gate_cap(&self) -> f64 {
        self.ci * self.w * self.l
    }

    /// Overlap capacitance per side: C_i·W·L_ov (F).
    pub fn overlap_cap(&self) -> f64 {
        self.ci * self.w * self.l_overlap
    }
}

/// Parameters of the level-1 Shichman–Hodges square-law model (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Level1Params {
    /// Carrier polarity.
    pub polarity: Polarity,
    /// Channel width (m).
    pub w: f64,
    /// Channel length (m).
    pub l: f64,
    /// Transconductance parameter KP = µ·C_i (A/V²).
    pub kp: f64,
    /// Threshold voltage magnitude (V).
    pub vt0: f64,
    /// Channel-length modulation (1/V).
    pub lambda: f64,
    /// Gate dielectric capacitance per area (F/m²), for load modelling.
    pub ci: f64,
}

impl Level1Params {
    /// A level-1 starting point for the pentacene device of
    /// [`TftParams::pentacene`]: KP = µ_lin·C_i with the extracted µ_lin.
    pub fn pentacene() -> Self {
        let tft = TftParams::pentacene();
        Level1Params {
            polarity: Polarity::PType,
            w: tft.w,
            l: tft.l,
            kp: tft.mu0 * tft.ci,
            vt0: tft.vt0,
            lambda: tft.lambda,
            ci: tft.ci,
        }
    }
}

/// Alpha-power-law parameters for a deep-submicron silicon MOSFET.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiliconMosParams {
    /// Carrier polarity.
    pub polarity: Polarity,
    /// Channel width (m).
    pub w: f64,
    /// Channel length (m).
    pub l: f64,
    /// Saturation current per micron of width at V_GS = V_DD (A/µm).
    pub id_sat_per_um: f64,
    /// Supply the factor is quoted at (V).
    pub vdd_ref: f64,
    /// Threshold voltage magnitude (V).
    pub vt0: f64,
    /// Velocity-saturation exponent alpha (≈1.2–1.4 at 45 nm).
    pub alpha: f64,
    /// Subthreshold ideality factor n (SS = n·kT/q·ln10 ≈ 90–100 mV/dec).
    pub subthreshold_n: f64,
    /// Channel-length modulation (1/V).
    pub lambda: f64,
    /// Gate capacitance per area (F/m²).
    pub ci: f64,
    /// Off leakage floor per µm of width (A/µm).
    pub i_off_per_um: f64,
}

impl SiliconMosParams {
    /// 45 nm-class NMOS: I_on ≈ 1.1 mA/µm at 1.0 V, V_T ≈ 0.32 V,
    /// SS ≈ 95 mV/dec, C_ox ≈ 15 mF/m² (~1.2 nm EOT incl. inversion-layer
    /// thickness), drawn with a default W = 10·L_min.
    pub fn nmos_45() -> Self {
        SiliconMosParams {
            polarity: Polarity::NType,
            w: 450.0e-9,
            l: 45.0e-9,
            id_sat_per_um: 1.1e-3,
            vdd_ref: 1.0,
            vt0: 0.32,
            alpha: 1.3,
            subthreshold_n: 1.55,
            lambda: 0.10,
            ci: 1.5e-2,
            i_off_per_um: 1.0e-7,
        }
    }

    /// 45 nm-class PMOS: ~45% of the NMOS drive per width.
    pub fn pmos_45() -> Self {
        SiliconMosParams {
            polarity: Polarity::PType,
            id_sat_per_um: 0.5e-3,
            vt0: 0.34,
            ..Self::nmos_45()
        }
    }

    /// Same process, different drawn width (m).
    ///
    /// # Panics
    /// Panics if `w` is not strictly positive.
    pub fn with_width(self, w: f64) -> Self {
        assert!(w > 0.0, "transistor width must be positive");
        SiliconMosParams { w, ..self }
    }

    /// Total gate capacitance C_i·W·L (F).
    pub fn gate_cap(&self) -> f64 {
        self.ci * self.w * self.l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pentacene_matches_reported_scalars() {
        let p = TftParams::pentacene();
        // C_i for 50 nm Al2O3 is ~1.6 mF/m² = 160 nF/cm².
        assert!((p.ci - 1.59e-3).abs() / 1.59e-3 < 0.02);
        // SS = 350 mV/dec encodes as n ≈ 5.9.
        assert!((p.subthreshold_n - 5.88).abs() < 0.1);
        assert_eq!(p.polarity, Polarity::PType);
        assert!((p.aspect() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn gate_cap_is_127_pf() {
        // Huge gate loads are what make organic gates slow: ~127 pF here.
        let p = TftParams::pentacene();
        assert!((p.gate_cap() - 127.0e-12).abs() < 5.0e-12);
    }

    #[test]
    fn dntt_is_10x_pentacene_mobility() {
        assert!((TftParams::dntt().mu0 / TftParams::pentacene().mu0 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn aging_degrades_monotonically() {
        let fresh = TftParams::pentacene();
        let mid = fresh.aged(0.5);
        let old = fresh.aged(1.0);
        assert!(fresh.mu0 > mid.mu0 && mid.mu0 > old.mu0);
        assert!(old.mu0 > 0.25 * fresh.mu0);
        assert!(old.vt0 > fresh.vt0);
        assert!(old.i_off > 5.0 * fresh.i_off);
        // life = 0 is the identity.
        assert_eq!(fresh.aged(0.0), fresh);
    }

    #[test]
    #[should_panic(expected = "life must be in")]
    fn aging_rejects_out_of_range() {
        let _ = TftParams::pentacene().aged(1.5);
    }

    #[test]
    fn silicon_defaults_sane() {
        let n = SiliconMosParams::nmos_45();
        let p = SiliconMosParams::pmos_45();
        assert!(n.id_sat_per_um > p.id_sat_per_um);
        assert!(n.gate_cap() > 0.0 && n.gate_cap() < 1.0e-15);
    }

    #[test]
    #[should_panic(expected = "geometry must be positive")]
    fn rejects_zero_geometry() {
        let _ = TftParams::pentacene_sized(0.0, 1.0e-6);
    }
}
