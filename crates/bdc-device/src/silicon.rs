//! Alpha-power-law model for deep-submicron silicon MOSFETs.
//!
//! The paper's silicon comparison point is a trimmed TSMC 45 nm standard cell
//! library. We model 45 nm-class transistors with Sakurai–Newton's
//! alpha-power law (velocity-saturated drive, `I ∝ V_GT^α` with α ≈ 1.3)
//! plus an exponential subthreshold region, calibrated so a fanout-of-4
//! inverter delay lands in the published 12–17 ps range.

use crate::model::{to_n_frame, with_sd_swap, DeviceModel, Polarity};
use crate::params::SiliconMosParams;
use crate::VT_THERMAL;

/// Velocity-saturated short-channel MOSFET (alpha-power law).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiliconMosModel {
    params: SiliconMosParams,
}

impl SiliconMosModel {
    /// Creates a model from a parameter set.
    ///
    /// # Panics
    /// Panics if geometry or drive parameters are non-positive.
    pub fn new(params: SiliconMosParams) -> Self {
        assert!(
            params.w > 0.0 && params.l > 0.0,
            "geometry must be positive"
        );
        assert!(params.id_sat_per_um > 0.0, "drive must be positive");
        SiliconMosModel { params }
    }

    /// Borrow the parameter set.
    pub fn params(&self) -> &SiliconMosParams {
        &self.params
    }

    /// Smooth effective overdrive with subthreshold tail.
    fn vgte(&self, vgt: f64) -> f64 {
        let nvt = self.params.subthreshold_n * VT_THERMAL;
        let x = vgt / nvt;
        if x > 40.0 {
            vgt
        } else {
            nvt * x.exp().ln_1p()
        }
    }

    fn ids_n_frame(&self, vgs: f64, vds: f64) -> f64 {
        let p = &self.params;
        let vgte = self.vgte(vgs - p.vt0);
        let leak = p.i_off_per_um * (p.w / 1.0e-6) * (vds / (vds.abs() + 1.0));
        if vgte <= 0.0 {
            return leak;
        }
        // Normalize drive so that vgs = vdd_ref gives id_sat_per_um · W.
        let vgt_ref = p.vdd_ref - p.vt0;
        let i_dsat = p.id_sat_per_um * (p.w / 1.0e-6) * (vgte / vgt_ref).powf(p.alpha);
        // Saturation voltage shrinks with overdrive per the alpha-power law.
        let vdsat = (vgt_ref * 0.5) * (vgte / vgt_ref).powf(p.alpha / 2.0);
        let m = 3.0;
        let vdse = vds / (1.0 + (vds / vdsat).powf(m)).powf(1.0 / m);
        i_dsat * (vdse / vdsat) * (1.0 + p.lambda * vds)
    }
}

impl DeviceModel for SiliconMosModel {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        let (vgs_n, vds_n, sign) = to_n_frame(self.params.polarity, vgs, vds);
        sign * with_sd_swap(vgs_n, vds_n, |g, d| self.ids_n_frame(g, d))
    }

    fn polarity(&self) -> Polarity {
        self.params.polarity
    }

    fn gate_capacitance(&self) -> f64 {
        self.params.gate_cap()
    }

    fn overlap_capacitance(&self) -> f64 {
        // Roughly 0.3 fF/µm of width of fringe + overlap at 45 nm.
        0.3e-15 * (self.params.w / 1.0e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> SiliconMosModel {
        SiliconMosModel::new(SiliconMosParams::nmos_45())
    }

    fn pmos() -> SiliconMosModel {
        SiliconMosModel::new(SiliconMosParams::pmos_45())
    }

    #[test]
    fn on_current_matches_per_um_rating() {
        let m = nmos();
        let i = m.ids(1.0, 1.0);
        let expect = 1.1e-3 * 0.45; // W = 0.45 µm
        assert!((i - expect).abs() / expect < 0.25, "I_on = {i:.3e}");
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let m = pmos();
        let i = m.ids(-1.0, -1.0);
        assert!(i < 0.0);
        assert!(i.abs() > 1.0e-4);
        assert!(m.ids(0.3, -1.0).abs() < 1.0e-6);
    }

    #[test]
    fn subthreshold_conduction_present() {
        // Unlike the level-1 model, silicon at 45 nm leaks below V_T.
        let m = nmos();
        let sub = m.ids(0.2, 1.0);
        assert!(sub > 1.0e-9, "subthreshold current {sub:.3e}");
        assert!(sub < 1.0e-4);
    }

    #[test]
    fn drive_ratio_nmos_to_pmos_about_2x() {
        let r = nmos().ids(1.0, 1.0) / pmos().ids(-1.0, -1.0).abs();
        assert!(r > 1.5 && r < 3.0, "N/P drive ratio {r}");
    }

    #[test]
    fn alpha_power_sublinear_vs_square() {
        // I(vgt)/I(vgt/2) should be ≈ 2^alpha ≈ 2.46, well below the
        // square-law 4.
        let m = nmos();
        let hi = m.ids(1.0, 1.0);
        let lo = m.ids(0.32 + 0.34, 1.0); // half the overdrive
        let ratio = hi / lo;
        assert!(ratio > 2.0 && ratio < 3.2, "ratio {ratio}");
    }

    #[test]
    fn gate_cap_is_femtofarads() {
        // 45 nm minimum devices present ~0.3 fF of channel capacitance:
        // six orders of magnitude below the pentacene OTFT's 127 pF.
        let c = nmos().gate_capacitance();
        assert!(c > 1.0e-16 && c < 1.0e-15, "Cg = {c:.3e}");
    }
}
