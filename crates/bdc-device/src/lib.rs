#![warn(missing_docs)]

//! Device models for biodegradable-computing architecture studies.
//!
//! This crate is the lowest layer of the `biodegradable-computing` workspace.
//! It provides compact transistor models for the two process technologies
//! compared in *“Architectural Tradeoffs for Biodegradable Computing”*
//! (MICRO-50, 2017):
//!
//! * **Pentacene organic thin-film transistors (OTFTs)** — a level-61-class
//!   RPI TFT model ([`Level61Model`]) and the simpler level-1
//!   Shichman–Hodges model ([`Level1Model`]), both fitted against a synthetic
//!   “measured” transfer curve generated from the device parameters the paper
//!   reports for its fabricated devices (µ_lin = 0.16 cm²V⁻¹s⁻¹,
//!   SS = 350 mV/dec, on/off = 10⁶, V_T = ∓1.3 V, W/L = 1000/80 µm).
//! * **Deep-submicron silicon MOSFETs** — an alpha-power-law model
//!   ([`SiliconMosModel`]) calibrated to public 45 nm-class numbers, used to
//!   build the reduced silicon comparison library.
//!
//! All models implement the [`DeviceModel`] trait, which exposes the DC
//! drain-current characteristic and lumped terminal capacitances consumed by
//! the `bdc-circuit` simulator.
//!
//! # Example
//!
//! ```
//! use bdc_device::{Level61Model, TftParams, DeviceModel};
//!
//! // The paper's fabricated pentacene OTFT: W/L = 1000 µm / 80 µm.
//! let tft = Level61Model::new(TftParams::pentacene());
//! // A p-type device conducts for negative V_GS; at V_GS = -10 V,
//! // V_DS = -10 V it carries microamps.
//! let id = tft.ids(-10.0, -10.0).abs();
//! assert!(id > 1.0e-6 && id < 1.0e-4);
//! ```
//!
//! Units are SI throughout: volts, amperes, farads, metres, seconds.

pub mod curves;
pub mod extract;
pub mod level1;
pub mod level61;
pub mod model;
pub mod params;
pub mod silicon;
pub mod variation;

pub use curves::{output_curve, transfer_curve, TransferPoint};
pub use extract::{extract_metrics, fit_level1, fit_level61, DeviceMetrics, FitError, FitReport};
pub use level1::Level1Model;
pub use level61::Level61Model;
pub use model::{DeviceModel, Polarity};
pub use params::{Level1Params, SiliconMosParams, TftParams};
pub use silicon::SiliconMosModel;
pub use variation::{VariedModel, VtVariation};

/// Permittivity of free space (F/m).
pub const EPS0: f64 = 8.854_187_812_8e-12;

/// Thermal voltage kT/q at room temperature (V).
pub const VT_THERMAL: f64 = 0.02585;
