//! Level-61-class (RPI a-Si TFT) compact model.
//!
//! The paper fits a SPICE level 61 RPI thin-film-transistor model to its
//! measured pentacene transfer curves (§4.2, Figure 4) because — unlike the
//! level 1 square law — it captures sub-V_T conduction, leakage floors, and
//! the power-law field-effect mobility typical of disordered semiconductors.
//!
//! This implementation keeps the model's defining structure:
//!
//! * a smooth effective gate overdrive `V_GTe` that decays exponentially in
//!   subthreshold with the device's measured swing and approaches
//!   `V_GS − V_T` above threshold;
//! * power-law mobility enhancement `µ_eff = µ₀ (V_GTe / V_AA)^γ`;
//! * a smooth linear→saturation knee `V_DSe`;
//! * an off-current floor and a small gate-leakage term, which set the on/off
//!   ratio seen in Figure 3.

use crate::model::{to_n_frame, with_sd_swap, DeviceModel, Polarity};
use crate::params::TftParams;
use crate::VT_THERMAL;

/// Level-61-class RPI TFT model instance.
///
/// See the [module documentation](self) for the equations.
#[derive(Debug, Clone, PartialEq)]
pub struct Level61Model {
    params: TftParams,
}

impl Level61Model {
    /// Creates a model from a parameter set.
    ///
    /// # Panics
    /// Panics if geometry or capacitance parameters are non-positive.
    pub fn new(params: TftParams) -> Self {
        assert!(
            params.w > 0.0 && params.l > 0.0 && params.ci > 0.0,
            "TFT geometry/capacitance must be positive"
        );
        assert!(params.mu0 > 0.0, "mobility must be positive");
        Level61Model { params }
    }

    /// Borrow the parameter set.
    pub fn params(&self) -> &TftParams {
        &self.params
    }

    /// Smooth effective overdrive (n-frame): exponential below threshold with
    /// the device's subthreshold swing, → `v_gt` above threshold.
    ///
    /// In deep subthreshold the channel current goes as
    /// `V_GTe^(2+γ)` (mobility power law × saturated `V_DSe ∝ V_GTe`), so the
    /// softplus scale is stretched by `2+γ` to make the *current* decay at
    /// exactly the device's measured swing.
    fn vgte(&self, vgt: f64) -> f64 {
        let nvt = self.params.subthreshold_n * VT_THERMAL * (2.0 + self.params.gamma);
        // Softplus with slope-matched knee. Clamp the exponent to avoid
        // overflow for very large overdrives.
        let x = vgt / nvt;
        if x > 40.0 {
            vgt
        } else {
            nvt * x.exp().ln_1p()
        }
    }

    /// Channel current in the n-frame with `vds >= 0`.
    fn ids_n_frame(&self, vgs: f64, vds: f64) -> f64 {
        let p = &self.params;
        // Drain-induced V_T shift: higher drain bias helps turn-on, but the
        // shift saturates so deep-V_DS output resistance survives.
        let shift = p.vt_dibl_cap * (1.0 - (-p.vt_dibl * vds / p.vt_dibl_cap).exp());
        let vt = p.vt0 - shift;
        let vgte = self.vgte(vgs - vt);
        if vgte <= 0.0 {
            return p.i_off * (vds / (vds.abs() + 1.0));
        }
        // Power-law field-effect mobility.
        let mu_eff = p.mu0 * (vgte / p.vaa).powf(p.gamma);
        // Smooth saturation knee.
        let vsat = p.alpha_sat * vgte;
        let vdse = vds / (1.0 + (vds / vsat).powf(p.m_knee)).powf(1.0 / p.m_knee);
        let gch = mu_eff * p.ci * p.aspect() * vgte;
        let i_chan = gch * vdse * (1.0 + p.lambda * vds);
        i_chan + p.i_off * (vds / (vds.abs() + 1.0))
    }

    /// Gate leakage current magnitude at a given gate bias (A), used to plot
    /// the I_G traces of Figure 3. Modelled as a weakly superlinear function
    /// of |V_GS| calibrated by `i_gate_10v`.
    pub fn gate_leakage(&self, vgs: f64) -> f64 {
        let v = vgs.abs() / 10.0;
        self.params.i_gate_10v * v.powf(1.5) + 2.0e-13
    }
}

impl DeviceModel for Level61Model {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        let (vgs_n, vds_n, sign) = to_n_frame(self.params.polarity, vgs, vds);
        sign * with_sd_swap(vgs_n, vds_n, |g, d| self.ids_n_frame(g, d))
    }

    fn polarity(&self) -> Polarity {
        self.params.polarity
    }

    fn gate_capacitance(&self) -> f64 {
        self.params.gate_cap()
    }

    fn overlap_capacitance(&self) -> f64 {
        self.params.overlap_cap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pentacene() -> Level61Model {
        Level61Model::new(TftParams::pentacene())
    }

    #[test]
    fn p_type_conducts_in_third_quadrant() {
        let m = pentacene();
        // Strongly on.
        let on = m.ids(-10.0, -10.0);
        assert!(
            on < 0.0,
            "p-type current should be negative at negative vds"
        );
        assert!(on.abs() > 1.0e-6);
        // Off.
        let off = m.ids(5.0, -10.0).abs();
        assert!(off < 1.0e-10);
    }

    #[test]
    fn on_off_ratio_about_1e6() {
        let m = pentacene();
        let on = m.ids(-10.0, -10.0).abs();
        let off = m.ids(3.0, -10.0).abs();
        let ratio = on / off;
        assert!(ratio > 1.0e5 && ratio < 1.0e8, "on/off ratio {ratio:.3e}");
    }

    #[test]
    fn current_monotone_in_gate_drive() {
        let m = pentacene();
        let mut last = 0.0f64;
        for i in 0..100 {
            let vgs = -(i as f64) * 0.1;
            let id = m.ids(vgs, -5.0).abs();
            assert!(id >= last * 0.999999, "non-monotone at vgs={vgs}");
            last = id;
        }
    }

    #[test]
    fn output_curve_saturates_weakly_like_figure_3() {
        // Drain-induced V_T shift keeps the output curve superlinear in these
        // OTFTs: Figure 3 shows roughly a decade between the V_DS = 1 V and
        // V_DS = 10 V transfer traces at V_GS = -10 V.
        let m = pentacene();
        let lin = m.ids(-10.0, -1.0).abs();
        let sat = m.ids(-10.0, -10.0).abs();
        let ratio = sat / lin;
        assert!(
            ratio > 3.0 && ratio < 25.0,
            "V_DS 10:1 current ratio {ratio:.2}"
        );
    }

    #[test]
    fn continuity_across_vds_zero() {
        let m = pentacene();
        let below = m.ids(-5.0, -1e-7);
        let above = m.ids(-5.0, 1e-7);
        assert!((below - above).abs() < 1e-9);
        assert!(m.ids(-5.0, 0.0).abs() < 1e-12);
    }

    #[test]
    fn subthreshold_slope_near_350mv_per_decade() {
        let m = pentacene();
        // Measure SS on the decades between ~1e-10 and 1e-8 A at V_DS = -1 V.
        let mut pts = Vec::new();
        for i in 0..400 {
            let vgs = 2.0 - (i as f64) * 0.02;
            let id = m.ids(vgs, -1.0).abs();
            if id > 1.0e-10 && id < 1.0e-8 {
                pts.push((vgs, id.log10()));
            }
        }
        assert!(pts.len() > 4, "need points in the subthreshold window");
        let (v0, l0) = pts[0];
        let (v1, l1) = *pts.last().unwrap();
        let ss = ((v1 - v0) / (l1 - l0)).abs();
        assert!(ss > 0.25 && ss < 0.45, "SS = {ss:.3} V/dec");
    }

    #[test]
    fn gate_leakage_small_and_increasing() {
        let m = pentacene();
        let g1 = m.gate_leakage(-1.0);
        let g10 = m.gate_leakage(-10.0);
        assert!(g10 > g1);
        assert!(g10 < 1.0e-9);
    }

    #[test]
    fn dibl_shifts_threshold_positive() {
        // Paper: V_T = -1.3 V at V_DS = -1 V but +1.3 V at V_DS = -10 V,
        // i.e. at higher drain bias the device turns on with *positive* V_GS.
        let m = pentacene();
        let at_pos_vgs = m.ids(1.0, -10.0).abs();
        let reference = m.ids(1.0, -1.0).abs();
        assert!(
            at_pos_vgs > 30.0 * reference,
            "DIBL should boost high-V_DS turn-on"
        );
    }

    #[test]
    fn gm_positive_when_on() {
        let m = pentacene();
        // n-frame gm of a p-type device at on bias: d|I|/d|Vgs| > 0.
        let g = m.gm(-8.0, -5.0);
        // p-type: dIds/dVgs is negative-current vs negative-voltage → positive.
        assert!(g > 0.0);
    }
}
