//! The [`DeviceModel`] trait shared by every compact transistor model.

use std::fmt::Debug;

/// Carrier polarity of a field-effect transistor.
///
/// High-performance organic semiconductors such as pentacene are p-type only,
/// which is why the paper's standard cells use unipolar p-type (pseudo-E)
/// logic. The silicon comparison library has both polarities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// Electron conduction; conducts for positive gate overdrive.
    NType,
    /// Hole conduction; conducts for negative gate overdrive.
    PType,
}

impl Polarity {
    /// Sign convention multiplier: `+1` for n-type, `-1` for p-type.
    ///
    /// Models are written for n-type internally; p-type devices mirror all
    /// terminal voltages and the resulting current through this factor.
    pub fn sign(self) -> f64 {
        match self {
            Polarity::NType => 1.0,
            Polarity::PType => -1.0,
        }
    }
}

/// A DC + lumped-capacitance compact model of a three-terminal FET.
///
/// Implementations must be *odd-symmetric* in the polarity sense: a p-type
/// device's `ids(vgs, vds)` must equal minus the corresponding n-type current
/// at mirrored voltages. The `bdc-circuit` Newton–Raphson solver relies on
/// `ids` being continuous and (piecewise) differentiable, with finite values
/// for any real input.
///
/// Models are `Send + Sync` so circuits can be shared across threads (e.g.
/// by a parallel characterization driver).
pub trait DeviceModel: Debug + Send + Sync {
    /// Drain-to-source current in amperes for gate-source voltage `vgs` and
    /// drain-source voltage `vds` (both in volts).
    ///
    /// The returned current is positive when conventional current flows from
    /// drain to source (n-type convention); p-type devices in their normal
    /// operating quadrant (negative `vds`) return negative values.
    fn ids(&self, vgs: f64, vds: f64) -> f64;

    /// Carrier polarity of this device.
    fn polarity(&self) -> Polarity;

    /// Total gate oxide/dielectric capacitance `C_i · W · L` in farads.
    ///
    /// This is the dominant load a logic gate presents to its driver; the
    /// characterization flow lumps it as fixed gate-source and gate-drain
    /// capacitances.
    fn gate_capacitance(&self) -> f64;

    /// Lumped gate-source capacitance in farads (defaults to half of
    /// [`gate_capacitance`](Self::gate_capacitance) plus overlap).
    fn cgs(&self) -> f64 {
        0.5 * self.gate_capacitance() + self.overlap_capacitance()
    }

    /// Lumped gate-drain capacitance in farads (defaults to half of
    /// [`gate_capacitance`](Self::gate_capacitance) plus overlap).
    fn cgd(&self) -> f64 {
        0.5 * self.gate_capacitance() + self.overlap_capacitance()
    }

    /// Source/drain overlap capacitance in farads. Shadow-mask patterned
    /// OTFTs have large overlaps; photolithographic silicon has small ones.
    fn overlap_capacitance(&self) -> f64 {
        0.0
    }

    /// Transconductance ∂I_DS/∂V_GS evaluated by central difference.
    ///
    /// A numerically robust default is provided; models with cheap analytic
    /// derivatives may override it.
    fn gm(&self, vgs: f64, vds: f64) -> f64 {
        let h = 1.0e-6;
        (self.ids(vgs + h, vds) - self.ids(vgs - h, vds)) / (2.0 * h)
    }

    /// Output conductance ∂I_DS/∂V_DS evaluated by central difference.
    fn gds(&self, vgs: f64, vds: f64) -> f64 {
        let h = 1.0e-6;
        (self.ids(vgs, vds + h) - self.ids(vgs, vds - h)) / (2.0 * h)
    }
}

/// Mirrors `(vgs, vds)` into the n-type frame for a device of polarity `pol`,
/// returning the mirrored voltages and the sign to apply to the computed
/// n-frame current.
pub(crate) fn to_n_frame(pol: Polarity, vgs: f64, vds: f64) -> (f64, f64, f64) {
    let s = pol.sign();
    (s * vgs, s * vds, s)
}

/// Handles negative `vds` in the n-frame by swapping source and drain:
/// `ids(vgs, vds) = -ids(vgs - vds, -vds)`.
///
/// Calls `f` with guaranteed non-negative `vds` and applies the sign.
pub(crate) fn with_sd_swap(vgs: f64, vds: f64, f: impl Fn(f64, f64) -> f64) -> f64 {
    if vds >= 0.0 {
        f(vgs, vds)
    } else {
        -f(vgs - vds, -vds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_signs() {
        assert_eq!(Polarity::NType.sign(), 1.0);
        assert_eq!(Polarity::PType.sign(), -1.0);
    }

    #[test]
    fn sd_swap_is_odd() {
        // Swapping source and drain maps (vgs, vds) → (vgs - vds, -vds) and
        // negates the current.
        let f = |vgs: f64, vds: f64| vgs.max(0.0).powi(2) * vds.min(1.0);
        let fwd = with_sd_swap(3.0, 0.5, f);
        let rev = with_sd_swap(3.0 - 0.5, -0.5, f);
        assert!((fwd + rev).abs() < 1e-12);
    }

    #[test]
    fn n_frame_mirrors_p_type() {
        let (vgs, vds, s) = to_n_frame(Polarity::PType, -5.0, -2.0);
        assert_eq!((vgs, vds, s), (5.0, 2.0, -1.0));
    }
}
