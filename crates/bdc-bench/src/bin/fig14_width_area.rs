//! Figure 14: core area heatmaps over superscalar widths.

use bdc_core::experiments::{fig13_14_width, width_ipc_matrix, SimBudget};
use bdc_core::report::render_matrix;
use bdc_core::{Process, TechKit};

fn main() {
    bdc_bench::header("Fig 14", "area: front-end width 1..6 x back-end pipes 3..7");
    // Area does not need IPC; use the minimal budget for the shared matrix.
    let ipc = width_ipc_matrix(
        &(1..=6).collect::<Vec<_>>(),
        &(3..=7).collect::<Vec<_>>(),
        SimBudget {
            outer: 2,
            instructions: 500,
        },
    );
    for p in Process::both() {
        let kit = TechKit::load_or_build(p).expect("characterization");
        let m = fig13_14_width(&kit, &ipc);
        print!(
            "{}",
            render_matrix(&format!("\n{} normalized area:", p.name()), &m, &m.area)
        );
    }
    println!("\n(paper: the area surfaces are nearly identical for the two processes,");
    println!(" growing from 0.48 at [3][1] to 1.00 at [7][6])");
}
