//! Legacy shim: renders registry node `fig14` (see `bdc_core::registry`).
//! Prefer `bdc run fig14`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("fig14");
}
