//! Legacy shim: renders registry node `table-netlist-stats` (see `bdc_core::registry`).
//! Prefer `bdc run table-netlist-stats`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("table-netlist-stats");
}
