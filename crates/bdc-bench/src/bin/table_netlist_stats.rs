//! Synthesis report: structural statistics and per-library cell coverage
//! (the §5.5 NAND2/NAND3 coverage observation, measured).

use bdc_core::{alu_cluster, Process, TechKit};
use bdc_synth::blocks;
use bdc_synth::map::remap_for_library;
use bdc_synth::stats::{coverage_ratio, netlist_stats, render_stats};

fn main() {
    bdc_bench::header("Table", "netlist statistics and per-library coverage");
    for (name, n) in [
        ("ripple_adder32", blocks::ripple_adder(32)),
        ("carry_select32", blocks::carry_select_adder(32)),
        ("kogge_stone32", blocks::kogge_stone_adder(32)),
        ("array_mult32", blocks::array_multiplier(32)),
        ("complex_alu", alu_cluster()),
        ("wakeup_cam 32x4", blocks::wakeup_cam(32, 6, 4)),
    ] {
        print!("\n{}", render_stats(name, &netlist_stats(&n)));
    }

    println!("\nper-library mapping of the complex ALU (§5.5 coverage):");
    let alu = alu_cluster();
    for p in Process::both() {
        let kit = TechKit::load_or_build(p).expect("characterization");
        let (mapped, report) = remap_for_library(&alu, &kit.lib);
        let (frac2, total) = coverage_ratio(&mapped);
        println!(
            "  {:>8}: {:.1}% two-input coverage of {total} NAND/NOR cells (nand3 {}, nor3 {})",
            p.name(),
            frac2 * 100.0,
            if report.nand3_decomposed {
                "decomposed"
            } else {
                "kept"
            },
            if report.nor3_decomposed {
                "decomposed"
            } else {
                "kept"
            },
        );
    }
}
