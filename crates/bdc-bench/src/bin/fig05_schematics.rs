//! Legacy shim: renders registry node `fig05` (see `bdc_core::registry`).
//! Prefer `bdc run fig05`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("fig05");
}
