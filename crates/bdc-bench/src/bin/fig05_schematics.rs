//! Figure 5: the three organic inverter schematics, as element listings
//! and exportable SPICE decks.

use bdc_cells::{organic_inverter, OrganicSizing, OrganicStyle};
use bdc_circuit::{describe, write_spice};

fn main() {
    bdc_bench::header("Fig 5", "organic inverter topologies (schematic listings)");
    let sizing = OrganicSizing::library_default();
    for (label, style, vdd, vss) in [
        ("(a) diode-load", OrganicStyle::DiodeLoad, 15.0, 0.0),
        ("(b) biased-load", OrganicStyle::BiasedLoad, 15.0, -5.0),
        ("(c) pseudo-E", OrganicStyle::PseudoE, 5.0, -15.0),
    ] {
        let gate = organic_inverter(style, &sizing, vdd, vss);
        println!("\n{label}  ({} transistors):", gate.transistor_count);
        print!("{}", describe(&gate.circuit));
    }
    // Emit one full SPICE deck as the interchange artifact.
    let pe = organic_inverter(OrganicStyle::PseudoE, &sizing, 5.0, -15.0);
    println!("\nSPICE deck of the pseudo-E inverter (for external cross-check):");
    print!(
        "{}",
        write_spice(&pe.circuit, "pseudo-E inverter, pentacene, VDD=5 VSS=-15")
    );
}
