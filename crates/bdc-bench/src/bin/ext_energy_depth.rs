//! Legacy shim: renders registry node `ext-energy-depth` (see `bdc_core::registry`).
//! Prefer `bdc run ext-energy-depth`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("ext-energy-depth");
}
