//! Extension (paper §7): energy per instruction vs pipeline depth.

use bdc_core::extensions::energy_depth;
use bdc_core::report::{fmt_freq, fmt_time};
use bdc_core::{Process, TechKit};

fn main() {
    bdc_bench::header(
        "Ext: energy",
        "energy/instruction vs depth (paper §7 future work)",
    );
    let budget = bdc_bench::budget();
    for p in Process::both() {
        let kit = TechKit::load_or_build(p).expect("characterization");
        let pts = energy_depth(&kit, budget);
        println!("\n{}:", p.name());
        println!(
            "{:>3}  {:>10}  {:>6}  {:>10}  {:>9}  {:>12}",
            "N", "clock", "IPC", "power", "static%", "energy/instr"
        );
        let e0 = pts[0].epi;
        for pt in &pts {
            println!(
                "{:>3}  {:>10}  {:>6.2}  {:>8.2e}W  {:>8.1}%  {:>9.2e}J ({:.2}x)",
                pt.stages,
                fmt_freq(pt.frequency),
                pt.ipc,
                pt.power.total_w(),
                100.0 * pt.power.static_fraction(),
                pt.epi,
                pt.epi / e0,
            );
        }
        let _ = fmt_time(0.0);
    }
    println!("\n(extension result: ratioed pseudo-E logic is static-dominated, so deeper");
    println!(" organic pipelines REDUCE energy/instruction — race-to-idle — while");
    println!(" silicon's added pipeline registers raise its switching energy)");
}
