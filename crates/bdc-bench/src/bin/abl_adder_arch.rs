//! Ablation: does the best adder architecture depend on the process?
//!
//! Ripple (minimal gates, linear depth) vs carry-select (moderate) vs
//! Kogge–Stone (log depth, heavy wiring/fanout). The interesting measured
//! result: the prefix adder helps the organic process *less* — its
//! carry-merge OR gates map to the unipolar library's slow series (NOR)
//! cells, the same rise/fall imbalance the paper flags in §5.5. Cell-level
//! asymmetries, not just the wire ratio, steer architecture choices.

use bdc_core::report::{fmt_time, render_table};
use bdc_core::{Process, TechKit};
use bdc_synth::blocks;
use bdc_synth::map::remap_for_library;
use bdc_synth::sta::analyze;

fn main() {
    bdc_bench::header("Ablation", "adder architecture per process (32-bit)");
    let adders = [
        ("ripple", blocks::ripple_adder(32)),
        ("carry-select", blocks::carry_select_adder(32)),
        ("kogge-stone", blocks::kogge_stone_adder(32)),
    ];
    for p in Process::both() {
        let kit = TechKit::load_or_build(p).expect("characterization");
        println!("\n{}:", p.name());
        let mut rows = Vec::new();
        let mut base_delay = 0.0;
        for (name, netlist) in &adders {
            let (mapped, _) = remap_for_library(netlist, &kit.lib);
            let r = analyze(&mapped, &kit.lib, &kit.sta);
            if *name == "ripple" {
                base_delay = r.max_arrival;
            }
            rows.push(vec![
                name.to_string(),
                format!("{}", mapped.gates().len()),
                fmt_time(r.max_arrival),
                format!("{:.2}x", base_delay / r.max_arrival),
                format!("{:.2e}", r.area_um2),
            ]);
        }
        print!(
            "{}",
            render_table(
                &[
                    "adder",
                    "gates",
                    "critical path",
                    "speedup vs ripple",
                    "area um2"
                ],
                &rows
            )
        );
    }
    println!("\n(measured: Kogge-Stone helps SILICON more. The organic prefix tree's");
    println!(" carry-merge ORs land on the unipolar library's slow series NOR cells —");
    println!(" the §5.5 rise/fall imbalance — which taxes back more than organic's");
    println!(" free wires give; the best adder architecture is process-dependent)");
}
