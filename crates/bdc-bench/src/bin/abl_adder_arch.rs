//! Legacy shim: renders registry node `abl-adder-arch` (see `bdc_core::registry`).
//! Prefer `bdc run abl-adder-arch`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("abl-adder-arch");
}
