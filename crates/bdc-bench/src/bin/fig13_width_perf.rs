//! Legacy shim: renders registry node `fig13` (see `bdc_core::registry`).
//! Prefer `bdc run fig13`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("fig13");
}
