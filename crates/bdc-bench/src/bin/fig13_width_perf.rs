//! Figure 13: core performance heatmaps over superscalar widths.

use bdc_core::experiments::{fig13_14_width, width_ipc_matrix};
use bdc_core::report::render_matrix;
use bdc_core::{Process, TechKit};

fn main() {
    bdc_bench::header(
        "Fig 13",
        "performance: front-end width 1..6 x back-end pipes 3..7",
    );
    let budget = bdc_bench::budget();
    let fe: Vec<usize> = (1..=6).collect();
    let be: Vec<usize> = (3..=7).collect();
    println!("simulating the benchmark suite on all 30 width points...");
    let ipc = width_ipc_matrix(&fe, &be, budget);
    for p in Process::both() {
        let kit = TechKit::load_or_build(p).expect("characterization");
        let m = fig13_14_width(&kit, &ipc);
        print!(
            "{}",
            render_matrix(
                &format!("\n{} normalized performance:", p.name()),
                &m,
                &m.perf
            )
        );
        let (b, f) = m.optimum();
        println!("optimum: M[be={b}][fe={f}]");
    }
    print!(
        "{}",
        render_matrix(
            "\nshared geometric-mean IPC (process-independent):",
            &fig13_14_width(&TechKit::synthetic(Process::Silicon), &ipc),
            &ipc
        )
    );
    println!("\n(paper: silicon optimum M[4][2]; organic optimum M[7][2] — three execution");
    println!(" pipes wider — with a much flatter surface around it)");
}
