//! Legacy shim: renders registry node `ext-variation` (see `bdc_core::registry`).
//! Prefer `bdc run ext-variation`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("ext-variation");
}
