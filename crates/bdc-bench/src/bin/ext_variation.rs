//! Extension (paper §4.1/§4.3.3): V_T variation and V_SS compensation.

use bdc_core::extensions::variation_tuning;

fn main() {
    bdc_bench::header(
        "Ext: variation",
        "Monte-Carlo V_T spread and V_SS compensation (paper §4.3.3)",
    );
    let n = if bdc_bench::quick_mode() { 12 } else { 40 };
    let study = variation_tuning(n, 2026).expect("monte carlo");
    println!("samples: {n}   V_T spread: sigma = 0.167 V (paper: \"within 0.5 V\")");
    println!("{:>10}  {:>8}", "dVT (V)", "VM (V)");
    for (dvt, vm) in study.raw.iter().take(12) {
        println!("{dvt:>10.3}  {vm:>8.2}");
    }
    println!("...");
    println!("V_M sigma before compensation: {:.3} V", study.sigma_before);
    println!("V_M sigma after V_SS retuning : {:.3} V", study.sigma_after);
    println!(
        "compensation shrinks the spread {:.1}x using the Fig 8 slope ({:.3} V/V)",
        study.sigma_before / study.sigma_after.max(1e-9),
        study.slope
    );
    println!("\n(paper §4.3.3: \"the cross-sample variation of VM from process variation");
    println!(" can be tuned by applying a different VSS\" — quantified here)");
}
