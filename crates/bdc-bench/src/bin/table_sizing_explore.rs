//! Legacy shim: renders registry node `table-sizing-explore` (see `bdc_core::registry`).
//! Prefer `bdc run table-sizing-explore`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("table-sizing-explore");
}
