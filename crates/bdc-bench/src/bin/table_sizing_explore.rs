//! §4.3.4: the cell-sizing design-space script.

use bdc_cells::{explore_inverter_sizing, Utility};
use bdc_core::report::render_table;

fn main() {
    bdc_bench::header("Table (§4.3.4)", "pseudo-E inverter sizing exploration");
    let ranked =
        explore_inverter_sizing(&[], 5.0, -15.0, &Utility::default()).expect("sizing sweep");
    let rows: Vec<Vec<String>> = ranked
        .iter()
        .map(|c| {
            vec![
                format!("{:.0}", c.sizing.shifter_drive_w * 1.0e6),
                format!("{:.0}", c.sizing.shifter_load_w * 1.0e6),
                format!("{:.0}", c.sizing.output_drive_w * 1.0e6),
                format!("{:.0}", c.sizing.output_load_w * 1.0e6),
                format!("{:.2}", c.vm),
                format!("{:.2}", c.gain),
                format!("{:.2}", c.nm),
                if c.delay.is_finite() {
                    format!("{:.0}", c.delay * 1.0e6)
                } else {
                    "-".into()
                },
                format!("{:.2}", c.utility),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["M1 um", "M2 um", "M3 um", "M4 um", "VM V", "gain", "NM V", "delay us", "utility"],
            &rows
        )
    );
    println!("\n(paper §4.3.4: \"we utilized a script to explore the design space and");
    println!(" select the best parameter sets for each gate. The switching threshold,");
    println!(" noise margin, gate delay, and area are all taken into consideration\" —");
    println!(" the top row is the sizing the shipped library uses)");
}
