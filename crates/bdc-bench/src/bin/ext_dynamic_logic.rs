//! Legacy shim: renders registry node `ext-dynamic-logic` (see `bdc_core::registry`).
//! Prefer `bdc run ext-dynamic-logic`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("ext-dynamic-logic");
}
