//! Extension (paper §7, last paragraph): dynamic unipolar logic.

use bdc_cells::{
    characterize_dynamic, characterize_gate, organic_dynamic_gate, organic_inverter,
    CharacterizeConfig, OrganicSizing, OrganicStyle,
};

fn main() {
    bdc_bench::header(
        "Ext: dynamic logic",
        "precharge-evaluate unipolar gates (paper §7)",
    );
    let sizing = OrganicSizing::library_default();
    let load = 200.0e-12;

    let static_inv = organic_inverter(OrganicStyle::PseudoE, &sizing, 5.0, -15.0);
    let t_static = characterize_gate(&static_inv, &CharacterizeConfig::organic()).expect("static");
    let d_static = t_static.delay_worst().lookup(60.0e-6, load);
    println!(
        "static pseudo-E inverter : {} transistors, delay {:.1} us, needs VSS = -15 V",
        static_inv.transistor_count,
        d_static * 1.0e6
    );

    for fan_in in [1usize, 2, 3] {
        let g = organic_dynamic_gate(fan_in, &sizing, 5.0);
        let t = characterize_dynamic(&g, load, 4.0e-3).expect("dynamic sim");
        println!(
            "dynamic gate (stack of {fan_in}): {} transistors, evaluate {:.1} us, precharge {:.1} us, cycle charge {:.1} nC",
            g.transistor_count,
            t.evaluate_delay * 1.0e6,
            t.precharge_delay * 1.0e6,
            t.cycle_charge * 1.0e9,
        );
    }
    println!("\n(paper §7: \"unipolar transistor design favors the use of dynamic logic");
    println!(" because only roughly half the transistors are needed and switching time");
    println!(" can be faster with the tradeoff being possibly worse power\" — the");
    println!(" per-cycle precharge charge above is that power cost, burned on every");
    println!(" clock regardless of data activity)");
}
