//! Legacy shim: renders registry node `abl-predictor-depth` (see `bdc_core::registry`).
//! Prefer `bdc run abl-predictor-depth`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("abl-predictor-depth");
}
