//! Ablation: the predictor-quality × pipeline-depth interaction.
//!
//! The paper's depth tradeoff (§5.3) hinges on the branch-misprediction
//! penalty growing with front-end depth. This ablation sweeps predictor
//! quality (gshare / bimodal / static not-taken) against depth and shows
//! the deep-pipeline payoff shrinking as prediction degrades — deep
//! pipelines are only worth their registers if you can feed them.

use bdc_core::flow::{performance, split_critical, synthesize_core_cached};
use bdc_core::{CoreSpec, Process, TechKit};
use bdc_uarch::{BpredKind, Workload};

fn main() {
    bdc_bench::header("Ablation", "predictor quality vs pipeline depth (organic)");
    let budget = bdc_bench::budget();
    let kit = TechKit::load_or_build(Process::Organic).expect("characterization");

    // Pre-compute the split schedule once (synthesis is predictor-blind).
    let mut specs = vec![CoreSpec::baseline()];
    for _ in 0..6 {
        let (deeper, _) = split_critical(&kit, specs.last().unwrap());
        specs.push(deeper);
    }
    let freqs: Vec<f64> = specs
        .iter()
        .map(|s| synthesize_core_cached(&kit, s).frequency)
        .collect();

    println!(
        "normalized performance on parser (branchy) per depth, by predictor:\n{:>16} {}",
        "predictor",
        (9..=15).map(|n| format!("{n:>7}")).collect::<String>()
    );
    for (label, kind) in [
        ("gshare", BpredKind::Gshare),
        ("bimodal", BpredKind::Bimodal),
        ("static-NT", BpredKind::StaticNotTaken),
    ] {
        let mut perfs = Vec::new();
        for (spec, freq) in specs.iter().zip(&freqs) {
            // Thread the predictor kind through the config.
            let mut cfg = spec.core_config();
            cfg.bpred.kind = kind;
            let program = bdc_uarch::build_workload(Workload::Parser, budget.outer);
            let mut core = bdc_uarch::OooCore::new(&program, cfg, Workload::Parser.memory_words());
            let stats = core.run(budget.instructions);
            perfs.push(performance(stats.ipc(), *freq));
        }
        let base = perfs[0];
        let row: String = perfs.iter().map(|p| format!("{:>7.2}", p / base)).collect();
        let best = 9 + perfs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        println!("{label:>16} {row}   (optimum: {best} stages)");
    }
    println!("\n(the deep-pipeline payoff shrinks as prediction degrades — organic");
    println!(" frequency gains are large enough that the optimum stays deep, but the");
    println!(" margin over shallow designs narrows with every mispredict)");
}
