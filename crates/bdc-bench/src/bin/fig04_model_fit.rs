//! Legacy shim: renders registry node `fig04` (see `bdc_core::registry`).
//! Prefer `bdc run fig04`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("fig04");
}
