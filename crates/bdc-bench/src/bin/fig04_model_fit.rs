//! Figure 4: level 1 vs level 61 SPICE model fits to the measured curve.

use bdc_core::experiments::fig04_model_fit;

fn main() {
    bdc_bench::header("Fig 4", "SPICE model fits (level 1 vs level 61)");
    let f = fig04_model_fit(7).expect("model fitting");
    println!("RMS log10-current fit error over the VDS = -1 V sweep:");
    println!("  level 1  (Shichman-Hodges): {:.3} decades", f.level1_rms);
    println!("  level 61 (RPI TFT class)  : {:.3} decades", f.level61_rms);
    println!(
        "  level 61 improves the fit by {:.1}x (paper: level 61 \"fits the device well\", level 1 cannot reproduce sub-VT conduction)",
        f.level1_rms / f.level61_rms
    );
    println!(
        "{:>8}  {:>12}  {:>12}  {:>12}",
        "VGS (V)", "measured", "level1", "level61"
    );
    for i in (0..f.measured.len()).step_by(10) {
        println!(
            "{:>8.2}  {:>12.3e}  {:>12.3e}  {:>12.3e}",
            f.measured[i].vgs, f.measured[i].id, f.level1_curve[i].id, f.level61_curve[i].id
        );
    }
}
