//! Legacy shim: renders registry node `ext-parallel-array` (see `bdc_core::registry`).
//! Prefer `bdc run ext-parallel-array`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("ext-parallel-array");
}
