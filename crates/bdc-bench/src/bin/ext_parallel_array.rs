//! Extension (paper §7): arrays of organic cores for throughput.

use bdc_core::extensions::parallel_array;
use bdc_core::report::render_table;
use bdc_core::{Process, TechKit};

fn main() {
    bdc_bench::header(
        "Ext: parallelism",
        "organic core arrays (paper §7 future work)",
    );
    let budget = bdc_bench::budget();
    let org = TechKit::load_or_build(Process::Organic).expect("characterization");
    let pts = parallel_array(&org, 16, budget);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.cores),
                format!("{:.1}", p.throughput),
                format!("{:.1}", p.area_um2 / 1.0e8),
                format!("{:.3}", p.power_w),
                format!("{:.1}", p.ops_per_joule),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["cores", "instr/s", "panel cm2", "power W", "instr/J"],
            &rows
        )
    );
    println!("\n(organic arrays scale throughput linearly in panel area — wires are free,");
    println!(" and large-area fabrication is exactly what organic processes are good at;");
    println!(" this is the paper's suggested lever against the mobility gap)");
}
