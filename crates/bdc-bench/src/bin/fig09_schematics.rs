//! Figure 9: pseudo-E NAND and NOR gate schematics.

use bdc_cells::{organic_gate, LogicKind, OrganicSizing};
use bdc_circuit::describe;

fn main() {
    bdc_bench::header("Fig 9", "pseudo-E NAND/NOR topologies (schematic listings)");
    let sizing = OrganicSizing::library_default();
    for (label, kind) in [
        ("(a) NAND2 — parallel pull-up networks", LogicKind::Nand2),
        ("(b) NOR2 — series pull-up networks", LogicKind::Nor2),
        ("NAND3", LogicKind::Nand3),
        ("NOR3", LogicKind::Nor3),
    ] {
        let gate = organic_gate(kind, &sizing, 5.0, -15.0);
        println!("\n{label}  ({} transistors):", gate.transistor_count);
        print!("{}", describe(&gate.circuit));
    }
    println!("\n(NAND gates replicate the input transistors in parallel — any low");
    println!(" input pulls up; NOR gates stack them in series, which is why the");
    println!(" organic NOR3 is ~4x slower than NAND3 and drives §5.5's mapping bias)");
}
