//! Legacy shim: renders registry node `fig09` (see `bdc_core::registry`).
//! Prefer `bdc run fig09`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("fig09");
}
