//! Figure 3: I_D–V_GS transfer characteristics of the pentacene OTFT.

use bdc_core::experiments::fig03_transfer;

fn main() {
    bdc_bench::header("Fig 3", "pentacene OTFT transfer characteristics");
    let f = fig03_transfer().expect("device sweep");
    println!(
        "W/L: 1000/80 um   extracted: u_lin = {:.2} cm2/Vs, SS = {:.0} mV/dec, on/off = {:.1e}, V_T(lin) = {:.2} V",
        f.metrics.mu_lin * 1.0e4,
        f.metrics.subthreshold_swing * 1.0e3,
        f.metrics.on_off_ratio,
        f.metrics.vt,
    );
    println!(
        "{:>8}  {:>12}  {:>12}  {:>12}",
        "VGS (V)", "ID@VDS=-1V", "ID@VDS=-10V", "IG (A)"
    );
    for i in (0..f.id_vds1.len()).step_by(10) {
        println!(
            "{:>8.2}  {:>12.3e}  {:>12.3e}  {:>12.3e}",
            f.id_vds1[i].vgs, f.id_vds1[i].id, f.id_vds10[i].id, f.ig[i].1
        );
    }
    println!("(paper: u_lin = 0.16 cm2/Vs, SS = 350 mV/dec, on/off = 1e6, V_T = -1.3 V @ VDS=1V)");
}
