//! Legacy shim: renders registry node `fig03` (see `bdc_core::registry`).
//! Prefer `bdc run fig03`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("fig03");
}
