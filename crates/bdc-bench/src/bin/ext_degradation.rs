//! Extension: transient-electronics degradation over the mission life.
//!
//! The paper's whole motivation is circuits that *biodegrade* (Figure 1).
//! This experiment ages the pseudo-E cell across its mission window and
//! reports the delay/gain/noise-margin trajectory — the guardband a
//! designer must clock a biodegradable processor at so it still works the
//! day before it dissolves.

use bdc_core::extensions::{degradation_guardband, degradation_sweep};
use bdc_core::report::render_table;

fn main() {
    bdc_bench::header(
        "Ext: degradation",
        "pseudo-E cell across its transient life",
    );
    let lives = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let points = degradation_sweep(&lives).expect("aging sweep");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.life * 100.0),
                if p.delay.is_finite() {
                    format!("{:.0}", p.delay * 1.0e6)
                } else {
                    "-".into()
                },
                format!("{:.2}", p.gain),
                format!("{:.2}", p.nm_mec),
                if p.functional {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["life", "delay us", "gain", "NM (MEC) V", "functional"],
            &rows
        )
    );
    let guardband = degradation_guardband(&points);
    println!("\nend-of-life clock guardband: {guardband:.2}x the fresh-device period");
    if let Some(fail) = points.iter().find(|p| !p.functional) {
        println!(
            "functional failure at ~{:.0}% of mission life",
            fail.life * 100.0
        );
    } else {
        println!("the cell stays functional across the modelled mission window");
    }
    println!("\n(mobility decays ~70%, |V_T| drifts +1 V and leakage rises 10x across");
    println!(" the window; a biodegradable design must be signed off at the aged");
    println!(" corner — or use the Fig 8 V_SS knob to retune as it decays)");
}
