//! Legacy shim: renders registry node `ext-degradation` (see `bdc_core::registry`).
//! Prefer `bdc run ext-degradation`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("ext-degradation");
}
