//! Legacy shim: renders registry node `fig06` (see `bdc_core::registry`).
//! Prefer `bdc run fig06`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("fig06");
}
