//! Figure 6: diode-load vs biased-load vs pseudo-E inverter DC comparison.

use bdc_core::experiments::fig06_inverters;
use bdc_core::report::render_table;

fn main() {
    bdc_bench::header("Fig 6", "organic inverter styles at VDD = 15 V");
    let rows = fig06_inverters().expect("inverter sweeps");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.1}", r.vss),
                format!("{:.1}", r.dc.vm),
                format!("{:.2}", r.dc.max_gain),
                format!("{:.2}", r.dc.nmh),
                format!("{:.2}", r.dc.nml),
                format!("{:.2}", r.dc.nm_mec),
                format!("{:.1}", r.dc.static_power_in_low * 1.0e6),
                format!("{:.2}", r.dc.static_power_in_high * 1.0e6),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "style",
                "VSS(V)",
                "VM(V)",
                "gain",
                "NMH(V)",
                "NML(V)",
                "MEC(V)",
                "P(in=0) uW",
                "P(in=hi) uW"
            ],
            &table
        )
    );
    println!("\nVTC of the pseudo-E inverter (VIN, VOUT):");
    let pe = &rows[2].dc.vtc;
    for (i, (vin, vout)) in pe.points().iter().enumerate() {
        if i % 15 == 0 {
            println!("  {vin:>6.2}  {vout:>6.2}");
        }
    }
    println!("(paper Fig 6d: diode VM=8.1 gain=1.2 NM~0.3-0.4; biased VM=6.8 gain=1.6 NM~1; pseudo-E VM=7.7 gain=3.0 NM~3-3.5)");
}
