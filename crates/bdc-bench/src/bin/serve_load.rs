//! Load generator for the `bdc_serve` daemon.
//!
//! ```text
//! serve_load --addr HOST:PORT [--addr HOST:PORT ...] [--cluster]
//!            [--mode closed|open] [--conns N] [--rate R]
//!            [--duration SECS] [--seed S] [--mix warm|cold|mixed]
//!            [--prime] [--check-metrics] [--max-p99-ms MS] [--retries N]
//!            [--json]
//! ```
//!
//! `--addr` is repeatable: with several targets the generator spreads its
//! workers/requests across them round-robin, reports a per-target latency
//! table, and gates on the merged tally — the shape used to compare a
//! `bdc cluster` router against its shards, or shards against each other.
//! `--cluster` switches `--check-metrics` to the router's aggregated
//! `/v1/metrics` shape (`router`/`shards`/`fleet` sections).
//!
//! Two drive modes:
//!
//! * **closed-loop** (default): `--conns` workers each hold one keep-alive
//!   connection and issue the next request as soon as the previous reply
//!   lands. Throughput is whatever the server sustains.
//! * **open-loop**: requests are fired on a fixed schedule of `--rate`
//!   requests/second regardless of completions (each request on a fresh
//!   connection), so server slowdown cannot throttle the generator — the
//!   honest way to observe shedding.
//!
//! The request mix is drawn from a seeded [`SplitMix64`] stream, so two
//! runs with the same `--seed` issue the identical request sequence.
//! `429`/`503` responses count as *shed*, not errors; any `5xx` fails the
//! run (nonzero exit). `--retries N` re-attempts retryable outcomes
//! (shed, deadline-expired 503, 500, transport errors) up to N times per
//! request with seeded jittered backoff before tallying — the chaos CI
//! job uses it to assert zero *client-visible* 5xx under fault injection.
//! The summary reports **retry amplification** (mean attempts per
//! successful request, plus the p99 of attempts) so the cost of those
//! recoveries stays observable and the retry budgets stay honest.
//! `--max-p99-ms` gates the p99 of successful requests — the CI smoke job
//! uses `--prime --mix warm --max-p99-ms 50` to pin the warm-cache
//! latency bound from the acceptance criteria.

use std::time::{Duration, Instant};

use bdc_exec::SplitMix64;
use bdc_serve::client::{get_once, is_retryable, ClientResponse, Connection};

/// A latency sample set with exact quantiles (small runs; sorting is fine).
#[derive(Default)]
struct Samples {
    us: Vec<u64>,
}

impl Samples {
    fn record(&mut self, us: u64) {
        self.us.push(us);
    }

    fn quantile_ms(&mut self, q: f64) -> f64 {
        if self.us.is_empty() {
            return 0.0;
        }
        self.us.sort_unstable();
        let idx = ((self.us.len() - 1) as f64 * q).round() as usize;
        self.us[idx] as f64 / 1000.0
    }
}

#[derive(Default)]
struct Tally {
    ok: u64,
    client_err: u64,
    shed: u64,
    server_err: u64,
    transport_err: u64,
    retried: u64,
    samples: Samples,
    /// Attempts each *successful* request took (1 = first try landed).
    /// The mean is the retry amplification the retry budgets are meant to
    /// bound; the p99 shows the unluckiest client's experience.
    attempts: Vec<u64>,
}

impl Tally {
    fn absorb(&mut self, other: Tally) {
        self.ok += other.ok;
        self.client_err += other.client_err;
        self.shed += other.shed;
        self.server_err += other.server_err;
        self.transport_err += other.transport_err;
        self.retried += other.retried;
        self.samples.us.extend(other.samples.us);
        self.attempts.extend(other.attempts);
    }

    /// `(mean attempts per successful request, p99 of attempts)` —
    /// `(1.0, 1)` when nothing succeeded, so the gates below stay simple.
    fn retry_amplification(&mut self) -> (f64, u64) {
        if self.attempts.is_empty() {
            return (1.0, 1);
        }
        self.attempts.sort_unstable();
        let mean = self.attempts.iter().sum::<u64>() as f64 / self.attempts.len() as f64;
        let idx = ((self.attempts.len() - 1) as f64 * 0.99).round() as usize;
        (mean, self.attempts[idx])
    }

    fn record(&mut self, status: u16, us: u64) {
        match status {
            200..=299 => {
                self.ok += 1;
                self.samples.record(us);
            }
            429 | 503 => self.shed += 1,
            400..=499 => self.client_err += 1,
            _ => self.server_err += 1,
        }
    }
}

struct Args {
    addrs: Vec<String>,
    cluster: bool,
    mode: String,
    conns: usize,
    rate: f64,
    duration: Duration,
    seed: u64,
    mix: String,
    prime: bool,
    check_metrics: bool,
    max_p99_ms: Option<f64>,
    retries: u32,
    json: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_load --addr HOST:PORT [--addr HOST:PORT ...] [--cluster] \
         [--mode closed|open] [--conns N] [--rate R] \
         [--duration SECS] [--seed S] [--mix warm|cold|mixed] [--prime] [--check-metrics] \
         [--max-p99-ms MS] [--retries N] [--json]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut a = Args {
        addrs: Vec::new(),
        cluster: false,
        mode: "closed".into(),
        conns: 4,
        rate: 50.0,
        duration: Duration::from_secs(5),
        seed: 1,
        mix: "mixed".into(),
        prime: false,
        check_metrics: false,
        max_p99_ms: None,
        retries: 0,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        let num = |raw: String| -> f64 { raw.parse().unwrap_or_else(|_| usage()) };
        match flag.as_str() {
            "--addr" => a.addrs.push(value()),
            "--cluster" => a.cluster = true,
            "--mode" => a.mode = value(),
            "--conns" => a.conns = num(value()) as usize,
            "--rate" => a.rate = num(value()),
            "--duration" => a.duration = Duration::from_secs_f64(num(value())),
            "--seed" => a.seed = num(value()) as u64,
            "--mix" => a.mix = value(),
            "--prime" => a.prime = true,
            "--check-metrics" => a.check_metrics = true,
            "--max-p99-ms" => a.max_p99_ms = Some(num(value())),
            "--retries" => a.retries = num(value()) as u32,
            "--json" => a.json = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if a.addrs.is_empty() || !["closed", "open"].contains(&a.mode.as_str()) {
        usage();
    }
    if !["warm", "cold", "mixed"].contains(&a.mix.as_str()) {
        usage();
    }
    a
}

/// The warm working set: a handful of cheap queries the `--prime` pass
/// computes once, after which every repeat is a response-cache hit.
const WARM_SET: [&str; 6] = [
    "/v1/library?process=organic",
    "/v1/library?process=silicon",
    "/v1/synth?process=silicon",
    "/v1/width?process=silicon&fe=2&be=4",
    "/v1/ipc?workload=dhrystone&outer=5&instructions=4000",
    "/healthz",
];

/// Draws the next request path from the seeded mix. `cold` requests vary a
/// parameter with the draw index so repeats rarely collide with the cache;
/// `warm` requests cycle the primed working set; `mixed` interleaves both.
fn draw(rng: &mut SplitMix64, mix: &str) -> String {
    let warm = match mix {
        "warm" => true,
        "cold" => false,
        _ => rng.next_u64().is_multiple_of(2),
    };
    if warm {
        WARM_SET[(rng.next_u64() % WARM_SET.len() as u64) as usize].to_string()
    } else {
        // Distinct-but-valid points: sweep the simulation budget knob, the
        // cheapest axis that still exercises the full execute path.
        let outer = 2 + rng.next_u64() % 12;
        let workloads = ["dhrystone", "gzip", "mcf", "parser"];
        let w = workloads[(rng.next_u64() % workloads.len() as u64) as usize];
        format!("/v1/ipc?workload={w}&outer={outer}&instructions=4000")
    }
}

/// Issues one request per attempt via `attempt_once`, re-attempting
/// retryable outcomes up to `retries` times with seeded jittered backoff,
/// and tallies the final outcome. Latency samples cover the successful
/// attempt only — the retry chain is a recovery path, not a latency
/// observation.
fn fetch_with_retry(
    retries: u32,
    path: &str,
    local: &mut Tally,
    mut attempt_once: impl FnMut() -> std::io::Result<ClientResponse>,
) {
    let mut attempt: u32 = 0;
    loop {
        let t0 = Instant::now();
        match attempt_once() {
            Ok(r) if attempt < retries && is_retryable(r.status) => local.retried += 1,
            Ok(r) => {
                if (200..=299).contains(&r.status) {
                    local.attempts.push(u64::from(attempt) + 1);
                }
                local.record(r.status, t0.elapsed().as_micros() as u64);
                return;
            }
            Err(_) if attempt < retries => local.retried += 1,
            Err(_) => {
                local.transport_err += 1;
                return;
            }
        }
        attempt += 1;
        std::thread::sleep(bdc_exec::faults::backoff_delay(path, u64::from(attempt)));
    }
}

/// One tally per `--addr` target, in argv order.
fn per_target(n: usize) -> Vec<std::sync::Mutex<Tally>> {
    (0..n)
        .map(|_| std::sync::Mutex::new(Tally::default()))
        .collect()
}

fn closed_loop(a: &Args) -> Vec<Tally> {
    let deadline = Instant::now() + a.duration;
    let tallies = per_target(a.addrs.len());
    std::thread::scope(|s| {
        for worker in 0..a.conns.max(1) {
            let tallies = &tallies;
            // Workers spread round-robin over the targets.
            let target = worker % a.addrs.len();
            let addr = &a.addrs[target];
            s.spawn(move || {
                let mut local = Tally::default();
                let mut rng = SplitMix64::new(bdc_exec::task_seed(a.seed, worker as u64));
                let mut conn: Option<Connection> = Connection::open(addr).ok();
                while Instant::now() < deadline {
                    let path = draw(&mut rng, &a.mix);
                    fetch_with_retry(a.retries, &path, &mut local, || {
                        if conn.is_none() {
                            conn = Connection::open(addr).ok();
                        }
                        let result = match conn.as_mut() {
                            Some(c) => c.get(&path),
                            None => Err(std::io::Error::new(
                                std::io::ErrorKind::NotConnected,
                                "connect failed",
                            )),
                        };
                        if result.is_err() {
                            // Keep-alive connections shed at the door are
                            // closed by the server; reconnect next attempt.
                            conn = None;
                        }
                        result
                    });
                }
                tallies[target].lock().unwrap().absorb(local);
            });
        }
    });
    tallies
        .into_iter()
        .map(|t| t.into_inner().unwrap())
        .collect()
}

fn open_loop(a: &Args) -> Vec<Tally> {
    let interval = Duration::from_secs_f64(1.0 / a.rate.max(0.1));
    let start = Instant::now();
    let total = (a.duration.as_secs_f64() * a.rate).floor() as u64;
    let tallies = per_target(a.addrs.len());
    let mut rng = SplitMix64::new(a.seed);
    std::thread::scope(|s| {
        for i in 0..total {
            let path = draw(&mut rng, &a.mix);
            // Fire on schedule, never waiting for completions: arrivals
            // stay at the configured rate even when the server stalls.
            let due = start + interval * (i as u32);
            if let Some(sleep) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(sleep);
            }
            let target = (i as usize) % a.addrs.len();
            let addr = a.addrs[target].clone();
            let tallies = &tallies;
            s.spawn(move || {
                let mut local = Tally::default();
                fetch_with_retry(a.retries, &path, &mut local, || get_once(&addr, &path));
                tallies[target].lock().unwrap().absorb(local);
            });
        }
    });
    tallies
        .into_iter()
        .map(|t| t.into_inner().unwrap())
        .collect()
}

fn check_metrics(addr: &str, cluster: bool) -> Result<(), String> {
    let r = get_once(addr, "/v1/metrics").map_err(|e| format!("metrics fetch: {e}"))?;
    if r.status != 200 {
        return Err(format!("metrics returned {}", r.status));
    }
    let text = String::from_utf8(r.body).map_err(|_| "metrics not utf-8".to_string())?;
    // A router aggregates the fleet; a single daemon reports itself.
    let keys: &[&str] = if cluster {
        &["\"router\"", "\"shards\"", "\"fleet\""]
    } else {
        &["\"connections\"", "\"endpoints\"", "\"queue_depth\""]
    };
    for key in keys {
        if !text.contains(key) {
            return Err(format!("metrics body missing {key}"));
        }
    }
    Ok(())
}

fn main() {
    if let Err(e) = bdc_exec::env_config() {
        eprintln!("serve_load: {e}");
        std::process::exit(2);
    }
    let a = parse_args();
    if a.prime {
        // Prime every target: each daemon (or each shard behind a router)
        // warms its own response cache.
        for addr in &a.addrs {
            for path in WARM_SET {
                match get_once(addr, path) {
                    Ok(r) if r.status == 200 => {}
                    Ok(r) => {
                        eprintln!("serve_load: priming {addr} {path} returned {}", r.status);
                        std::process::exit(1);
                    }
                    Err(e) => {
                        eprintln!("serve_load: priming {addr} {path} failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
    }

    let wall = Instant::now();
    let mut targets = match a.mode.as_str() {
        "closed" => closed_loop(&a),
        _ => open_loop(&a),
    };
    let elapsed = wall.elapsed().as_secs_f64();

    // Per-target tables (only interesting with several targets), then the
    // merged tally every gate below runs against.
    let mut target_rows = Vec::new();
    let mut target_lines = Vec::new();
    if a.addrs.len() > 1 {
        for (addr, t) in a.addrs.iter().zip(targets.iter_mut()) {
            let n = t.ok + t.client_err + t.shed + t.server_err;
            let (tp50, tp95, tp99) = (
                t.samples.quantile_ms(0.50),
                t.samples.quantile_ms(0.95),
                t.samples.quantile_ms(0.99),
            );
            target_rows.push(format!(
                "{{\"addr\": \"{addr}\", \"requests\": {n}, \"ok\": {}, \"shed\": {}, \
                 \"server_errors\": {}, \"transport_errors\": {}, \
                 \"p50_ms\": {tp50:.3}, \"p95_ms\": {tp95:.3}, \"p99_ms\": {tp99:.3}}}",
                t.ok, t.shed, t.server_err, t.transport_err
            ));
            target_lines.push(format!(
                "  target {addr}: {n} requests, ok={} shed={} 5xx={} transport={} \
                 p50={tp50:.3}ms p95={tp95:.3}ms p99={tp99:.3}ms",
                t.ok, t.shed, t.server_err, t.transport_err
            ));
        }
    }
    let mut tally = Tally::default();
    for t in targets {
        tally.absorb(t);
    }

    let total = tally.ok + tally.client_err + tally.shed + tally.server_err;
    let rps = if elapsed > 0.0 {
        total as f64 / elapsed
    } else {
        0.0
    };
    let (p50, p95, p99) = (
        tally.samples.quantile_ms(0.50),
        tally.samples.quantile_ms(0.95),
        tally.samples.quantile_ms(0.99),
    );
    let (amplification, p99_attempts) = tally.retry_amplification();

    if a.json {
        let targets_json = if target_rows.is_empty() {
            String::new()
        } else {
            format!(", \"targets\": [{}]", target_rows.join(", "))
        };
        println!(
            "{{\"mode\": \"{}\", \"mix\": \"{}\", \"seed\": {}, \"requests\": {total}, \
             \"rps\": {rps:.2}, \"ok\": {}, \"shed\": {}, \"client_errors\": {}, \
             \"server_errors\": {}, \"transport_errors\": {}, \"retried\": {}, \
             \"retry_amplification\": {amplification:.4}, \"p99_attempts\": {p99_attempts}, \
             \"p50_ms\": {p50:.3}, \"p95_ms\": {p95:.3}, \"p99_ms\": {p99:.3}{targets_json}}}",
            a.mode,
            a.mix,
            a.seed,
            tally.ok,
            tally.shed,
            tally.client_err,
            tally.server_err,
            tally.transport_err,
            tally.retried,
        );
    } else {
        println!(
            "serve_load: {} mode, mix={}, seed={}: {total} requests in {elapsed:.2}s ({rps:.1} req/s)",
            a.mode, a.mix, a.seed
        );
        println!(
            "  ok={} shed(429/503)={} 4xx={} 5xx={} transport={} retried={}",
            tally.ok,
            tally.shed,
            tally.client_err,
            tally.server_err,
            tally.transport_err,
            tally.retried
        );
        println!("  latency (ok only): p50={p50:.3}ms p95={p95:.3}ms p99={p99:.3}ms");
        println!(
            "  retry amplification: {amplification:.4} attempts/ok (p99 attempts {p99_attempts})"
        );
        for line in &target_lines {
            println!("{line}");
        }
    }

    if a.check_metrics {
        if let Err(e) = check_metrics(&a.addrs[0], a.cluster) {
            eprintln!("serve_load: metrics check failed: {e}");
            std::process::exit(1);
        }
    }
    if tally.server_err > 0 {
        eprintln!("serve_load: {} server errors (5xx)", tally.server_err);
        std::process::exit(1);
    }
    if tally.ok == 0 {
        eprintln!("serve_load: no successful requests");
        std::process::exit(1);
    }
    if let Some(max) = a.max_p99_ms {
        if p99 > max {
            eprintln!("serve_load: p99 {p99:.3}ms exceeds the {max:.3}ms gate");
            std::process::exit(1);
        }
    }
}
