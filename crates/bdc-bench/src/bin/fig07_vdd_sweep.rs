//! Legacy shim: renders registry node `fig07` (see `bdc_core::registry`).
//! Prefer `bdc run fig07`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("fig07");
}
