//! Figure 7: pseudo-E inverter at VDD = 5/10/15 V.

use bdc_core::experiments::fig07_vdd_sweep;
use bdc_core::report::render_table;

fn main() {
    bdc_bench::header("Fig 7", "pseudo-E inverter across supply voltages");
    let rows = fig07_vdd_sweep().expect("sweeps");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.0}", r.vss),
                format!("{:.2}", r.dc.vm),
                format!("{:.2}", r.dc.max_gain),
                format!("{:.2}", r.dc.nmh),
                format!("{:.2}", r.dc.nml),
                format!("{:.1}", r.dc.static_power_in_low * 1.0e6),
                format!("{:.2}", r.dc.static_power_in_high * 1.0e6),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "VDD",
                "VSS(V)",
                "VM(V)",
                "gain",
                "NMH(V)",
                "NML(V)",
                "P(in=0) uW",
                "P(in=VDD) uW"
            ],
            &table
        )
    );
    println!("\n(paper Fig 7d: VM 2.4/4.6/7.7, gain 3.2/2.9/3.0, NM ~20-25% of VDD,");
    println!(" static power drops ~16x from VDD=15 to VDD=5 with input low)");
    let p5 = rows[0].dc.static_power_in_low;
    let p15 = rows[2].dc.static_power_in_low;
    println!(
        " measured here: P(5V)/P(15V) = {:.2} (paper: ~0.06)",
        p5 / p15
    );
}
