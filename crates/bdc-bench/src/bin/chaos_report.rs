//! Chaos survival report: the full flow under escalating fault rates.
//!
//! Installs a seeded [`bdc_exec::faults`] configuration in-process (no
//! `BDC_FAULTS` needed), then for each escalation level runs the whole
//! experiment plan at the quick budget *and* a serve-layer request burst
//! against an in-process daemon, recording what survived: nodes rendered
//! vs failed, client responses after retries, quarantine/rebuild and
//! panic-containment counters, and the daemon's health state after the
//! burst. Prints a survival table and merges a `"chaos"` section into
//! `BENCH_flow.json` (creating the file if `bench_report` has not run;
//! re-encoding it compactly if it has).
//!
//! The zero-rate level doubles as the determinism gate: with every rate
//! at 0 the plan must complete all nodes first-try, the burst must see
//! only 200s, and every fault counter must stay flat — otherwise the
//! report exits 1, because the injection framework would be perturbing
//! the unfaulted flow.

use std::fmt::Write as _;
use std::time::Duration;

use bdc_core::registry::{self, NODES};
use bdc_exec::faults::{self, FaultConfig, FaultCounters};
use bdc_exec::json::{self, Json};
use bdc_serve::client;
use bdc_serve::ServeConfig;

/// Root seed every level derives its injection decisions from; fixed so
/// two runs of the report inject the same faults at the same sites.
const CHAOS_SEED: u64 = 42;

/// Retry budget given to the plan scheduler at every level.
const PLAN_MAX_RETRIES: u32 = 3;

/// Client-side retry budget for each burst request.
const CLIENT_RETRIES: u32 = 3;

/// The request mix each burst drives through the daemon (three passes).
const BURST_QUERIES: [&str; 6] = [
    "/v1/library?process=organic",
    "/v1/library?process=silicon",
    "/v1/synth?process=silicon",
    "/v1/width?process=silicon&fe=2&be=4",
    "/v1/ipc?workload=dhrystone&outer=5&instructions=4000",
    "/v1/ipc?workload=gzip&outer=5&instructions=4000",
];
const BURST_PASSES: usize = 3;

/// One escalation level of the chaos ladder.
struct Level {
    label: &'static str,
    cfg: FaultConfig,
}

/// What one level's plan + burst survived.
struct Survival {
    label: &'static str,
    spec: String,
    nodes_total: usize,
    nodes_ok: usize,
    serve_requests: usize,
    serve_ok: usize,
    serve_failed: usize,
    health: String,
    cluster_requests: usize,
    cluster_ok: usize,
    cluster_failed: usize,
    cluster_health: String,
    faults: FaultCounters,
}

fn levels() -> Vec<Level> {
    let mk =
        |label, cache_corrupt, task_panic, io_slow_ms, disk_full, peer_slow_ms, partition| Level {
            label,
            cfg: FaultConfig {
                cache_corrupt,
                task_panic,
                io_slow: Duration::from_millis(io_slow_ms),
                disk_full,
                peer_slow: Duration::from_millis(peer_slow_ms),
                partition,
                seed: CHAOS_SEED,
            },
        };
    vec![
        mk("none", 0.0, 0.0, 0, 0.0, 0, 0.0),
        mk("light", 0.05, 0.02, 2, 0.02, 2, 0.01),
        mk("moderate", 0.2, 0.1, 5, 0.1, 5, 0.05),
        mk("heavy", 0.5, 0.25, 10, 0.25, 10, 0.1),
    ]
}

/// Boots the daemon, drives the burst with client-side retries, reads
/// `/healthz`, and shuts down cleanly. Returns
/// `(requests, ok, failed_after_retry, health)`.
fn serve_burst() -> (usize, usize, usize, String) {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    };
    let handle = match bdc_serve::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("chaos_report: serve burst skipped: bind failed: {e}");
            return (0, 0, 0, "unavailable".into());
        }
    };
    let addr = format!("127.0.0.1:{}", handle.port());
    let (mut ok, mut failed) = (0usize, 0usize);
    for _ in 0..BURST_PASSES {
        for q in BURST_QUERIES {
            match client::get_with_retry(&addr, q, CLIENT_RETRIES) {
                Ok(r) if r.status == 200 => ok += 1,
                Ok(r) => {
                    eprintln!("chaos_report: {q} -> {} after retries", r.status);
                    failed += 1;
                }
                Err(e) => {
                    eprintln!("chaos_report: {q} failed after retries: {e}");
                    failed += 1;
                }
            }
        }
    }
    // Health after the burst: `degraded` is expected while injection is
    // live; the status string goes into the survival row as-is.
    let health = match client::get_once(&addr, "/healthz") {
        Ok(r) => json::parse(&String::from_utf8_lossy(&r.body))
            .ok()
            .and_then(|j| j.get("status").and_then(|s| s.as_str().map(String::from)))
            .unwrap_or_else(|| format!("http {}", r.status)),
        Err(e) => format!("unreachable: {e}"),
    };
    handle.shutdown();
    (ok + failed, ok, failed, health)
}

/// The cluster burst: a 2-shard in-process fleet behind the router, the
/// same request mix via the router — with one shard killed halfway
/// through the burst. The fault injection level applies to the shard
/// engines (same process), so this measures survival under simultaneous
/// data faults and a topology fault. Returns
/// `(requests, ok, failed_after_retry, router_health_after)`.
fn cluster_burst() -> (usize, usize, usize, String) {
    use bdc_cluster::router::{start_router, RouterConfig};

    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for shard in 0..2 {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".into(),
            shard: Some(shard),
            ..ServeConfig::default()
        };
        match bdc_serve::start(cfg) {
            Ok(h) => {
                addrs.push(format!("127.0.0.1:{}", h.port()));
                handles.push(h);
            }
            Err(e) => {
                eprintln!("chaos_report: cluster burst skipped: bind failed: {e}");
                for h in handles {
                    h.shutdown();
                }
                return (0, 0, 0, "unavailable".into());
            }
        }
    }
    let router = match start_router(RouterConfig {
        addr: "127.0.0.1:0".into(),
        shard_addrs: addrs,
        ring_seed: CHAOS_SEED,
        ..RouterConfig::default()
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos_report: cluster burst skipped: router bind failed: {e}");
            for h in handles {
                h.shutdown();
            }
            return (0, 0, 0, "unavailable".into());
        }
    };
    let addr = format!("127.0.0.1:{}", router.port());

    let total = BURST_PASSES * BURST_QUERIES.len();
    let kill_at = total / 2;
    let (mut ok, mut failed, mut issued) = (0usize, 0usize, 0usize);
    for _ in 0..BURST_PASSES {
        for q in BURST_QUERIES {
            if issued == kill_at {
                // Topology fault: one shard dies mid-burst. The router
                // must fail its keys over to the survivor invisibly.
                handles.remove(0).shutdown();
            }
            issued += 1;
            match client::get_with_retry(&addr, q, CLIENT_RETRIES) {
                Ok(r) if r.status == 200 => ok += 1,
                Ok(r) => {
                    eprintln!("chaos_report: cluster {q} -> {} after retries", r.status);
                    failed += 1;
                }
                Err(e) => {
                    eprintln!("chaos_report: cluster {q} failed after retries: {e}");
                    failed += 1;
                }
            }
        }
    }
    let health = match client::get_once(&addr, "/healthz") {
        Ok(r) => json::parse(&String::from_utf8_lossy(&r.body))
            .ok()
            .and_then(|j| j.get("status").and_then(|s| s.as_str().map(String::from)))
            .unwrap_or_else(|| format!("http {}", r.status)),
        Err(e) => format!("unreachable: {e}"),
    };
    router.shutdown();
    for h in handles {
        h.shutdown();
    }
    (ok + failed, ok, failed, health)
}

fn run_level(level: &Level) -> Survival {
    faults::install(Some(level.cfg.clone()));
    let before = faults::counters();

    let ids: Vec<&str> = NODES.iter().map(|n| n.id).collect();
    let (nodes_total, nodes_ok) =
        match registry::run_plan_with_retries(&ids, true, PLAN_MAX_RETRIES) {
            Ok(report) => {
                for node in report.failed() {
                    eprintln!(
                        "chaos_report: [{}] node {} failed after {} attempts: {}",
                        level.label,
                        node.id,
                        node.attempts,
                        node.error.as_deref().unwrap_or("?")
                    );
                }
                let ok = report.nodes.iter().filter(|n| n.ok()).count();
                (report.nodes.len(), ok)
            }
            Err(e) => {
                eprintln!("chaos_report: [{}] plan rejected: {e}", level.label);
                (ids.len(), 0)
            }
        };

    let (serve_requests, serve_ok, serve_failed, health) = serve_burst();
    let (cluster_requests, cluster_ok, cluster_failed, cluster_health) = cluster_burst();

    Survival {
        label: level.label,
        spec: level.cfg.to_spec(),
        nodes_total,
        nodes_ok,
        serve_requests,
        serve_ok,
        serve_failed,
        health,
        cluster_requests,
        cluster_ok,
        cluster_failed,
        cluster_health,
        faults: faults::counters().since(&before),
    }
}

/// The zero-rate level must be indistinguishable from an unfaulted run:
/// nothing injected, nothing panicking, every node and request served.
/// Quarantine/rebuild counts are deliberately NOT gated — a store holding
/// artifacts from an older framing version heals them on first read, and
/// that migration is correct behavior, not injection leakage.
fn inert_level_is_clean(s: &Survival) -> bool {
    let f = &s.faults;
    let flat = f.injected_corrupt == 0
        && f.injected_panics == 0
        && f.io_delays == 0
        && f.panics_contained == 0
        && f.injected_disk_full == 0
        && f.peer_slow_delays == 0
        && f.injected_partitions == 0;
    // The cluster burst kills a shard even at the inert level, so its
    // health is `degraded` by design — but failover must make the kill
    // invisible to clients: zero failed-after-retry.
    s.nodes_ok == s.nodes_total
        && s.serve_failed == 0
        && s.health == "ok"
        && s.cluster_failed == 0
        && flat
}

fn survival_json(rows: &[Survival]) -> Json {
    Json::Obj(vec![
        ("seed".into(), Json::Int(CHAOS_SEED as i64)),
        (
            "plan_max_retries".into(),
            Json::Int(i64::from(PLAN_MAX_RETRIES)),
        ),
        (
            "client_retries".into(),
            Json::Int(i64::from(CLIENT_RETRIES)),
        ),
        (
            "levels".into(),
            Json::Arr(
                rows.iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("level".into(), Json::str(s.label)),
                            ("spec".into(), Json::str(&*s.spec)),
                            ("nodes_total".into(), Json::Int(s.nodes_total as i64)),
                            ("nodes_ok".into(), Json::Int(s.nodes_ok as i64)),
                            ("serve_requests".into(), Json::Int(s.serve_requests as i64)),
                            ("serve_ok".into(), Json::Int(s.serve_ok as i64)),
                            (
                                "serve_failed_after_retry".into(),
                                Json::Int(s.serve_failed as i64),
                            ),
                            ("health_after_burst".into(), Json::str(&*s.health)),
                            (
                                "cluster_requests".into(),
                                Json::Int(s.cluster_requests as i64),
                            ),
                            ("cluster_ok".into(), Json::Int(s.cluster_ok as i64)),
                            (
                                "cluster_failed_after_retry".into(),
                                Json::Int(s.cluster_failed as i64),
                            ),
                            (
                                "cluster_health_after_kill".into(),
                                Json::str(&*s.cluster_health),
                            ),
                            ("faults".into(), registry::fault_counters_json(&s.faults)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Merges the `"chaos"` section into `BENCH_flow.json`, preserving any
/// sections `bench_report` already wrote (the file is re-encoded
/// compactly) and starting a fresh object when it is absent or
/// unparseable.
fn write_bench_json(chaos: Json) {
    let mut members = match std::fs::read_to_string("BENCH_flow.json")
        .ok()
        .and_then(|text| json::parse(&text).ok())
    {
        Some(Json::Obj(members)) => members,
        _ => vec![("generated_by".into(), Json::str("chaos_report"))],
    };
    members.retain(|(k, _)| k != "chaos");
    members.push(("chaos".into(), chaos));
    let encoded = Json::Obj(members).encode();
    match std::fs::write("BENCH_flow.json", encoded + "\n") {
        Ok(()) => println!("\nwrote chaos section into BENCH_flow.json"),
        Err(e) => eprintln!("chaos_report: could not write BENCH_flow.json: {e}"),
    }
}

fn main() {
    if let Err(e) = bdc_exec::env_config() {
        eprintln!("chaos_report: {e}");
        std::process::exit(2);
    }
    bdc_bench::header(
        "chaos",
        "plan + serve survival under escalating fault rates",
    );
    println!(
        "   seed {CHAOS_SEED}, plan retries {PLAN_MAX_RETRIES}, client retries {CLIENT_RETRIES}\n"
    );

    let mut rows = Vec::new();
    for level in levels() {
        println!("-- level {}: {}", level.label, level.cfg.to_spec());
        rows.push(run_level(&level));
    }
    faults::install(None);

    let mut table = String::new();
    let _ = writeln!(
        table,
        "\n{:<10} {:>8} {:>9} {:>8} {:>10} {:>8} {:>10} {:>7} {:>10} {:>8} {:>9}",
        "level",
        "nodes",
        "serve ok",
        "5xx/err",
        "cluster ok",
        "cl. err",
        "contained",
        "retry",
        "quarantine",
        "rebuilt",
        "health"
    );
    for s in &rows {
        let _ = writeln!(
            table,
            "{:<10} {:>8} {:>9} {:>8} {:>10} {:>8} {:>10} {:>7} {:>10} {:>8} {:>9}",
            s.label,
            format!("{}/{}", s.nodes_ok, s.nodes_total),
            format!("{}/{}", s.serve_ok, s.serve_requests),
            s.serve_failed,
            format!("{}/{}", s.cluster_ok, s.cluster_requests),
            s.cluster_failed,
            s.faults.panics_contained,
            s.faults.retries,
            s.faults.quarantined,
            s.faults.rebuilt,
            s.health
        );
    }
    print!("{table}");

    write_bench_json(survival_json(&rows));

    match rows.iter().find(|s| s.label == "none") {
        Some(inert) if inert_level_is_clean(inert) => {
            println!("chaos_report: zero-rate level clean (determinism gate holds)");
        }
        Some(_) => {
            eprintln!(
                "chaos_report: FAIL — zero-rate level saw failures or counter \
                 movement; injection is not inert"
            );
            std::process::exit(1);
        }
        None => unreachable!("levels() always includes the inert level"),
    }
}
