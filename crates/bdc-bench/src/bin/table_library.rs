//! Legacy shim: renders registry node `table-library` (see `bdc_core::registry`).
//! Prefer `bdc run table-library`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("table-library");
}
