//! §4.4 library characterization summary for both processes, plus the
//! §5.5 mapping-preference observation.

use bdc_core::experiments::{table_library, table_mapping_preference};
use bdc_core::report::{fmt_time, render_table};
use bdc_core::{Process, TechKit};

fn main() {
    bdc_bench::header("Table (§4.4)", "characterized 6-cell libraries");
    for p in Process::both() {
        let kit = TechKit::load_or_build(p).expect("characterization");
        println!(
            "\nlibrary: {} (VDD = {} V, VSS = {} V)",
            kit.lib.name, kit.lib.vdd, kit.lib.vss
        );
        let rows: Vec<Vec<String>> = table_library(&kit)
            .into_iter()
            .map(|(name, area, cap, delay)| {
                vec![
                    name,
                    format!("{area:.3e}"),
                    format!("{cap:.3e}"),
                    fmt_time(delay),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &["cell", "area (um2)", "input cap (F)", "nominal delay"],
                &rows
            )
        );
        println!(
            "FO4-like delay: {}   DFF: setup {} / clk-Q {}",
            fmt_time(kit.lib.fo4_delay()),
            fmt_time(kit.lib.dff.setup),
            fmt_time(kit.lib.dff.clk_to_q)
        );
        let (nand3, nor3) = table_mapping_preference(&kit);
        println!(
            "mapping preference (§5.5): NAND3 {}; NOR3 {}",
            if nand3 {
                "decomposed to 2-input"
            } else {
                "kept"
            },
            if nor3 {
                "decomposed to 2-input"
            } else {
                "kept"
            },
        );
    }
    println!("\n(paper §5.5: the organic library's rise/fall imbalance makes its 3-input");
    println!(" series cells less desirable than in silicon; here the organic NOR3 runs");
    println!(" ~4x slower than its NAND3, while silicon's differ by ~15%)");
}
