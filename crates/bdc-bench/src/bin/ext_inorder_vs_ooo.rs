//! Legacy shim: renders registry node `ext-inorder-vs-ooo` (see `bdc_core::registry`).
//! Prefer `bdc run ext-inorder-vs-ooo`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("ext-inorder-vs-ooo");
}
