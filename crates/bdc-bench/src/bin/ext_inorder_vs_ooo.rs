//! Extension (paper §7): many simple cores vs one out-of-order core.

use bdc_core::extensions::inorder_vs_ooo;
use bdc_core::report::render_table;
use bdc_core::{Process, TechKit};

fn main() {
    bdc_bench::header(
        "Ext: core style",
        "in-order arrays vs out-of-order at iso-area (organic, gzip-like)",
    );
    let budget = bdc_bench::budget();
    let kit = TechKit::load_or_build(Process::Organic).expect("characterization");
    let rows = inorder_vs_ooo(&kit, budget);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.2}", r.throughput),
                format!("{:.2e}", r.area_um2),
                format!("{:.3}", r.power_w),
                format!("{:.1}", r.cores_per_budget),
                format!("{:.2}", r.iso_area_throughput),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "core",
                "instr/s",
                "area um2",
                "power W",
                "cores/budget",
                "iso-area instr/s"
            ],
            &table
        )
    );
    let speedup = rows[1].iso_area_throughput / rows[0].iso_area_throughput;
    println!("\niso-area advantage of the in-order array: {speedup:.2}x");
    println!("(for throughput work on a fixed organic panel, an array of Myny-class");
    println!(" scalar cores beats one out-of-order core — rename/window area buys");
    println!(" less than more cores do; the paper's §7 parallelism lever quantified.");
    println!(" The OoO machine still wins on single-stream latency.)");
}
