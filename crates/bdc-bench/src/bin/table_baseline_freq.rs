//! §5.3 baseline/optimized operating frequencies for both processes.

use bdc_core::experiments::table_baseline_frequency;
use bdc_core::flow::{split_critical, synthesize_core_cached};
use bdc_core::report::{fmt_freq, fmt_time};
use bdc_core::{CoreSpec, Process, TechKit};

fn main() {
    bdc_bench::header(
        "Table (§5.3)",
        "baseline (9-stage) and deepened core frequencies",
    );
    for p in Process::both() {
        let kit = TechKit::load_or_build(p).expect("characterization");
        let base = table_baseline_frequency(&kit);
        // Deepen to 14 stages like the paper's Fig 15(b) comparison point.
        let mut spec = CoreSpec::baseline();
        for _ in 0..5 {
            let (deeper, _) = split_critical(&kit, &spec);
            spec = deeper;
        }
        let deep = synthesize_core_cached(&kit, &spec);
        println!("\n{}:", p.name());
        println!(
            "  9-stage baseline : {} (period {})",
            fmt_freq(base.frequency),
            fmt_time(base.period)
        );
        println!(
            "  14-stage deepened: {} ({:.2}x the baseline clock)",
            fmt_freq(deep.frequency),
            deep.frequency / base.frequency
        );
        println!(
            "  per-cycle overheads at 14 stages: sequential {}, feedback wire {}",
            fmt_time(deep.seq_overhead),
            fmt_time(deep.wire_overhead)
        );
    }
    println!("\n(paper: organic baseline ~200 Hz vs silicon ~800 MHz; optimized ~1.36 GHz");
    println!(" silicon; at 14 stages organic reaches 2.0x its baseline clock, silicon 1.5x.");
    println!(" Note EXPERIMENTS.md on the paper's internally inconsistent \"40 Hz\" figure.)");
}
