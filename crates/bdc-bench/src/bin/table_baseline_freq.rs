//! Legacy shim: renders registry node `table-baseline-freq` (see `bdc_core::registry`).
//! Prefer `bdc run table-baseline-freq`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("table-baseline-freq");
}
