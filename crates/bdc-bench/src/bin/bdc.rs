//! `bdc` — the experiment-registry CLI.
//!
//! One binary over `bdc_core::registry` replaces the 25 per-figure
//! binaries (which remain as shims):
//!
//! ```text
//! bdc list [--json]                  # the catalogue, with node ids
//! bdc run fig12 --quick              # one node, legacy-identical stdout
//! bdc run --all --quick              # the whole plan, parallel
//! bdc run --all --quick --require-warm   # fail unless every node hit cache
//! bdc run --all --max-retries 5      # widen the per-node retry budget
//! bdc verify [--audit-deps] [--quick]    # plan-graph static analysis
//! bdc lint --workspace               # determinism audit over the sources
//! bdc cluster --shards 3             # sharded serving fleet + router
//! bdc sweep --param organic.vt=-1.4:-0.6:21 --quick   # incremental grid
//! ```
//!
//! `run` prints the selected nodes' rendered text to stdout in catalogue
//! order (a single-node run is byte-identical to the legacy binary) and
//! writes the run manifest — per-node status/attempts, wall time, cache
//! hit/miss, artifact key, and the run's fault/recovery counters — to
//! `results/run_manifest.json`. Progress and the per-node summary go to
//! stderr so stdout stays clean for diffing. A node that panics or errors
//! is retried (`--max-retries`, default 2) and reported as a `failed`
//! manifest row rather than aborting the other nodes; the exit status is
//! nonzero only when a node exhausts its retries (or `--require-warm`
//! finds a cold node).

use bdc_core::registry::{self, NODES};
use bdc_core::sweep;

fn usage() -> ! {
    eprintln!(
        "usage:\n  bdc list [--json]\n  bdc run [--quick] [--all] [--require-warm] \
         [--max-retries N] <id>...\n  bdc sweep --param NAME=START:END:COUNT [--quick] \
         [--resume] [<id>...]\n  bdc verify [--audit-deps] [--quick]\n  \
         bdc lint --workspace\n  \
         bdc cluster [--shards N] [--addr HOST:PORT] [--base-port P] [--ring-seed S] \
         [--vnodes V]\n              [--proxy-retries R] [--serve-bin PATH] [--cache-root DIR] \
         [--pid-file PATH]\n              [--queue-cap N] [--deadline-ms MS] [--max-retries N] \
         [--warm]\n\
         \nids: see `bdc list`; sweep params: organic.vt (physical volts)"
    );
    std::process::exit(2);
}

fn cmd_list(json: bool) {
    if json {
        println!("{}", registry::catalogue_json().encode());
        return;
    }
    let wid = NODES.iter().map(|n| n.id.len()).max().unwrap_or(0);
    let wtitle = NODES.iter().map(|n| n.title.len()).max().unwrap_or(0);
    for n in NODES {
        println!("{:<wid$}  {:<wtitle$}  {}", n.id, n.title, n.what);
    }
    eprintln!(
        "\n{} experiments; run one with `bdc run <id> --quick`",
        NODES.len()
    );
}

fn cmd_run(args: &[String]) -> ! {
    let mut all = false;
    let mut require_warm = false;
    let mut max_retries = registry::DEFAULT_MAX_RETRIES;
    let mut ids: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--all" => all = true,
            "--require-warm" => require_warm = true,
            "--quick" => {} // consumed by bdc_bench::quick_mode()
            "--max-retries" => {
                max_retries = match iter.next().map(|v| v.parse::<u32>()) {
                    Some(Ok(n)) => n,
                    _ => {
                        eprintln!("--max-retries needs an unsigned integer");
                        usage();
                    }
                };
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`");
                usage();
            }
            id => ids.push(id),
        }
    }
    if all {
        ids = NODES.iter().map(|n| n.id).collect();
    } else if ids.is_empty() {
        eprintln!("no experiment ids given (or pass --all)");
        usage();
    }

    let quick = bdc_bench::quick_mode();
    let report = match registry::run_plan_with_retries(&ids, quick, max_retries) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    for node in &report.nodes {
        print!("{}", node.text);
    }

    let manifest = registry::manifest_json(&report).encode();
    let manifest_note = if std::fs::create_dir_all("results").is_ok()
        && std::fs::write("results/run_manifest.json", manifest + "\n").is_ok()
    {
        " -> results/run_manifest.json"
    } else {
        " (manifest not written)"
    };

    let hits = report.nodes.iter().filter(|n| n.cache_hit).count();
    eprintln!(
        "\nran {} node(s) on {} worker(s), {} cache hit(s){manifest_note}",
        report.nodes.len(),
        report.workers,
        hits
    );
    for node in &report.nodes {
        let outcome = if !node.ok() {
            "FAILED"
        } else if node.cache_hit {
            "hit"
        } else {
            "miss"
        };
        let retried = if node.attempts > 1 {
            format!("  ({} attempts)", node.attempts)
        } else {
            String::new()
        };
        eprintln!(
            "  {:<22} {:>8.3}s  {outcome}{retried}",
            node.id, node.wall_s
        );
    }

    let failed: Vec<&str> = report.failed().map(|n| n.id).collect();
    if !failed.is_empty() {
        for node in report.failed() {
            eprintln!(
                "error: node {} failed after {} attempt(s): {}",
                node.id,
                node.attempts,
                node.error.as_deref().unwrap_or("unknown")
            );
        }
        std::process::exit(1);
    }

    if require_warm {
        let cold: Vec<&str> = report
            .nodes
            .iter()
            .filter(|n| !n.cache_hit)
            .map(|n| n.id)
            .collect();
        if !cold.is_empty() {
            eprintln!("--require-warm: cold nodes: {}", cold.join(" "));
            std::process::exit(1);
        }
    }
    std::process::exit(0);
}

fn cmd_sweep(args: &[String]) -> ! {
    let mut spec: Option<sweep::SweepSpec> = None;
    let mut resume = false;
    let mut ids: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--param" => {
                let Some(raw) = iter.next() else {
                    eprintln!("--param needs NAME=START:END:COUNT");
                    usage();
                };
                spec = match sweep::SweepSpec::parse(raw) {
                    Ok(s) => Some(s),
                    Err(e) => {
                        eprintln!("error: {e}");
                        usage();
                    }
                };
            }
            "--resume" => resume = true,
            "--quick" => {} // consumed by bdc_bench::quick_mode()
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`");
                usage();
            }
            id => ids.push(id),
        }
    }
    let Some(spec) = spec else {
        eprintln!("no --param given");
        usage();
    };
    if ids.is_empty() {
        ids = NODES.iter().map(|n| n.id).collect();
    }

    let quick = bdc_bench::quick_mode();
    let checkpoint_dir = std::path::Path::new(sweep::DEFAULT_CHECKPOINT_DIR);
    let report =
        match sweep::run_sweep_checkpointed(&spec, &ids, quick, Some(checkpoint_dir), resume) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };

    // Stdout carries only the deterministic transcript; telemetry goes to
    // the manifest and stderr so the output stays byte-diffable.
    let transcript = sweep::render_transcript(&report);
    print!("{transcript}");

    let manifest = sweep::manifest_json(&report).encode();
    let written = std::fs::create_dir_all("results").is_ok()
        && std::fs::write("results/sweep_manifest.json", manifest + "\n").is_ok()
        && std::fs::write("results/sweep_output.txt", &transcript).is_ok();
    let note = if written {
        " -> results/sweep_manifest.json, results/sweep_output.txt"
    } else {
        " (sweep artifacts not written)"
    };

    eprintln!(
        "\nswept {} = {}..{} over {} point(s), {} node(s) each{note}",
        report.spec.param.name(),
        report.spec.start,
        report.spec.end,
        report.points.len(),
        ids.len()
    );
    eprintln!(
        "  checkpoints: restored {} point(s), recomputed {}",
        report.restored_points,
        report.points.len() - report.restored_points
    );
    for p in &report.points {
        let (hits, misses) = p.totals();
        eprintln!(
            "  point {:>3}  {} = {:>8.4}  {:>8.3}s  {} stage hit(s), {} miss(es)",
            p.index,
            report.spec.param.name(),
            p.value,
            p.wall_s,
            hits,
            misses
        );
    }
    eprintln!(
        "  total {:>8.3}s elapsed (points past the first run concurrently)",
        report.elapsed_s
    );
    if sweep::stage_key_collisions(&report) != 0 {
        eprintln!("error: stage-key collision detected across sweep points");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn cmd_verify(args: &[String]) -> ! {
    let mut audit = false;
    for a in args {
        match a.as_str() {
            "--audit-deps" => audit = true,
            "--quick" => {} // consumed by bdc_bench::quick_mode()
            flag => {
                eprintln!("unknown flag `{flag}`");
                usage();
            }
        }
    }
    let quick = bdc_bench::quick_mode();

    let ir = bdc_verify::build_ir();
    let mut report = bdc_verify::verify_static(&ir);
    let (stage_count, stage_findings) = bdc_verify::verify_stages();
    let stage_finding_count = stage_findings.diagnostics.len();
    for d in stage_findings.diagnostics {
        report.push(d);
    }
    let audited = if audit {
        let dyn_report = bdc_verify::audit_deps(&ir, quick);
        for d in dyn_report.diagnostics {
            report.push(d);
        }
        Some(quick)
    } else {
        None
    };

    // Stdout carries only deterministic content (no timings, no worker
    // counts) so the report is diffable across runs — golden-tested.
    println!(
        "plan-graph: {} nodes, {} cache keys, {} finding(s)",
        ir.nodes.len(),
        ir.nodes.len() * 2,
        report.diagnostics.len() - stage_finding_count
    );
    println!("stage-graph: {stage_count} stages, {stage_finding_count} finding(s)");
    println!(
        "dep-audit: {}",
        match audited {
            None => "skipped (pass --audit-deps)",
            Some(true) => "ok at quick budget",
            Some(false) => "ok at standard budget",
        }
    );
    for d in &report.diagnostics {
        println!("  {d}");
    }

    let json = bdc_verify::report_json(&ir, &report, audited, stage_count).encode();
    let root = bdc_lint::find_workspace_root().unwrap_or_else(|| std::path::PathBuf::from("."));
    let dir = root.join("results");
    let written = std::fs::create_dir_all(&dir).is_ok()
        && std::fs::write(dir.join("verify_report.json"), json + "\n").is_ok();
    if written {
        println!("report -> results/verify_report.json");
    } else {
        eprintln!("warning: could not write results/verify_report.json");
    }

    if report.is_clean() {
        std::process::exit(0);
    }
    eprintln!("error: plan-graph verification failed");
    std::process::exit(1);
}

fn cmd_lint(args: &[String]) -> ! {
    if args.iter().any(|a| a != "--workspace") || args.is_empty() {
        eprintln!("`bdc lint` currently supports exactly: bdc lint --workspace");
        usage();
    }
    let root = match bdc_lint::find_workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("error: could not locate the workspace root (no Cargo.toml with [workspace] above the current directory)");
            std::process::exit(2);
        }
    };
    let report = bdc_lint::lint_workspace(&root);
    print!("{report}");
    if report.is_clean() {
        std::process::exit(0);
    }
    std::process::exit(1);
}

fn cmd_cluster(args: &[String]) -> ! {
    let parsed = match bdc_cluster::parse_cluster_args(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    bdc_serve::install_signal_handlers();
    let code = bdc_cluster::run_cluster(&parsed, &bdc_serve::signalled);
    std::process::exit(code);
}

fn main() {
    if let Err(e) = bdc_exec::env_config() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(args.iter().any(|a| a == "--json")),
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("cluster") => cmd_cluster(&args[1..]),
        _ => usage(),
    }
}
