//! Figure 12: complex-ALU area and frequency vs pipeline stages.

use bdc_core::experiments::fig12_alu_depth;
use bdc_core::report::fmt_freq;
use bdc_core::{Process, TechKit};

fn main() {
    bdc_bench::header("Fig 12", "ALU (2x mult + 2x div) pipelined to 1..30 stages");
    let stages: Vec<usize> = vec![1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30];
    for p in Process::both() {
        let kit = TechKit::load_or_build(p).expect("characterization");
        let f = fig12_alu_depth(&kit, &stages);
        let nf = f.normalized_frequency();
        let na = f.normalized_area();
        println!("\n{}:", p.name());
        println!(
            "{:>7}  {:>10}  {:>10}  {:>12}  {:>10}",
            "stages", "norm freq", "norm area", "abs freq", "registers"
        );
        for (i, s) in stages.iter().enumerate() {
            println!(
                "{s:>7}  {:>10.2}  {:>10.2}  {:>12}  {:>10}",
                nf[i],
                na[i],
                fmt_freq(f.results[i].frequency),
                f.results[i].registers
            );
        }
    }
    println!("\n(paper: silicon frequency stops improving past ~8 stages while area keeps");
    println!(" rising slowly; organic frequency and area grow ~linearly, topping out ~22)");
}
