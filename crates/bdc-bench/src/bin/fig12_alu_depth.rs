//! Legacy shim: renders registry node `fig12` (see `bdc_core::registry`).
//! Prefer `bdc run fig12`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("fig12");
}
