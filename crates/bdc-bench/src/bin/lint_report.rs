//! Static-analysis audit of every artifact the figure/table binaries
//! consume: the generated netlists (mapped per library, as STA sees them),
//! the characterized organic and silicon libraries, and the fitted device
//! models.
//!
//! Prints the audit, writes it to `results/lint_report.txt`, and exits
//! nonzero if any Error-severity diagnostic fires — wire it into CI next to
//! the test suite.

use std::fmt::Write as _;

use bdc_core::corespec::{stage_netlist, CoreSpec, StageKind};
use bdc_core::{alu_cluster, Process, TechKit};
use bdc_device::TftParams;
use bdc_lint::{lint_device, lint_library, lint_netlist, LintReport, Severity};
use bdc_synth::blocks;
use bdc_synth::gate::Netlist;
use bdc_synth::map::remap_for_library;

/// Tallies one report into the audit text and the running counters.
fn tally(out: &mut String, totals: &mut [usize; 3], report: &LintReport) {
    totals[0] += report.count(Severity::Error);
    totals[1] += report.count(Severity::Warning);
    totals[2] += report.count(Severity::Info);
    writeln!(out, "  {}", report.summary()).unwrap();
    for d in &report.diagnostics {
        writeln!(out, "    {d}").unwrap();
    }
}

fn main() {
    if let Err(e) = bdc_exec::env_config() {
        eprintln!("lint_report: {e}");
        std::process::exit(2);
    }
    bdc_bench::header(
        "Audit",
        "static analysis of generated netlists and shipped libraries",
    );

    let netlists: Vec<(String, Netlist)> = {
        let mut v: Vec<(String, Netlist)> = vec![
            ("ripple_adder32".into(), blocks::ripple_adder(32)),
            ("carry_select32".into(), blocks::carry_select_adder(32)),
            ("kogge_stone32".into(), blocks::kogge_stone_adder(32)),
            ("array_mult32".into(), blocks::array_multiplier(32)),
            ("divider_stage32".into(), blocks::divider_stage(32)),
            ("wakeup_cam32x4".into(), blocks::wakeup_cam(32, 6, 4)),
            ("complex_alu".into(), alu_cluster()),
        ];
        let spec = CoreSpec::baseline();
        for kind in StageKind::all() {
            v.push((
                format!("stage_{kind:?}").to_lowercase(),
                stage_netlist(kind, spec.fe_width, spec.be_pipes),
            ));
        }
        v
    };

    let mut out = String::new();
    let mut totals = [0usize; 3]; // errors, warnings, notes

    for p in Process::both() {
        let kit = TechKit::load_or_build(p).expect("library characterization");

        writeln!(out, "\n[{} library]", p.name()).unwrap();
        tally(&mut out, &mut totals, &lint_library(&kit.lib));

        writeln!(out, "\n[{} netlists, mapped as STA sees them]", p.name()).unwrap();
        for (name, n) in &netlists {
            let (mapped, _) = remap_for_library(n, &kit.lib);
            let mut report = lint_netlist(&mapped, &kit.lib, &kit.sta);
            report.subject = format!("{}/{name}", p.name());
            tally(&mut out, &mut totals, &report);
        }
    }

    writeln!(out, "\n[device models]").unwrap();
    for (name, p) in [
        ("pentacene", TftParams::pentacene()),
        ("dntt", TftParams::dntt()),
        ("pentacene_aged_1y", TftParams::pentacene().aged(1.0)),
    ] {
        let mut report = lint_device(&p);
        report.subject = name.into();
        tally(&mut out, &mut totals, &report);
    }

    writeln!(
        out,
        "\ntotal: {} errors, {} warnings, {} notes",
        totals[0], totals[1], totals[2]
    )
    .unwrap();
    print!("{out}");

    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        match std::fs::write(dir.join("lint_report.txt"), &out) {
            Ok(()) => println!("wrote results/lint_report.txt"),
            Err(e) => eprintln!("could not write results/lint_report.txt: {e}"),
        }
    }

    if totals[0] > 0 {
        eprintln!("FAIL: {} Error-severity diagnostics", totals[0]);
        std::process::exit(1);
    }
}
