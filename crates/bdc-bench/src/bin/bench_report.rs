//! Flow-stage timing report: serial vs parallel, cold vs warm cache.
//!
//! Times each expensive stage of the Figure-10 flow under controlled
//! worker counts and cache states, prints a table, and writes
//! `BENCH_flow.json` (repo root, machine-readable — CI uploads it and
//! gates on the warm-cache library load) plus `results/bench_report.txt`.
//!
//! Methodology notes:
//! * "cold" rows bypass the artifact cache entirely
//!   ([`TechKit::build`] / `synthesize_core`); "warm" rows go through the
//!   cached entry points after priming them, so they measure a cache hit.
//! * serial rows pin the pool to one worker with
//!   [`bdc_exec::set_workers`]; parallel rows use every available core.
//!   On a single-core machine the two coincide — the report records the
//!   worker counts actually used rather than assuming a speedup.

use std::fmt::Write as _;
use std::time::Instant;

use bdc_core::experiments::{width_ipc_matrix, SimBudget};
use bdc_core::{synthesize_core, synthesize_core_cached, CoreSpec, Process, TechKit};
use bdc_device::variation::{VariedModel, VtVariation};
use bdc_device::TftParams;
use bdc_serve::client::Connection;
use bdc_serve::{ServeConfig, ServerHandle};

/// One timed measurement.
struct Row {
    stage: &'static str,
    detail: String,
    workers: usize,
    /// Batch-lane count in effect for the measurement (1 = scalar kernel).
    lanes: usize,
    cache: &'static str,
    seconds: f64,
}

/// Scalar-vs-batched summary for one library's cold characterization.
struct Speedup {
    process: &'static str,
    scalar_s: f64,
    batched_s: f64,
    lanes: usize,
}

/// Incremental-sweep summary: one measured grid plus its 21-point
/// projection against independent cold runs.
struct SweepBench {
    /// Grid points actually executed.
    points: usize,
    /// Wall time of the cold first point (every stage computes).
    cold_s: f64,
    /// Effective wall time per incremental point:
    /// `(elapsed - cold) / (points - 1)`, so concurrent points divide
    /// correctly instead of summing their overlapping spans.
    incr_s: f64,
    /// Stage-cache hit rate across the incremental points.
    hit_rate: f64,
    /// Cross-point stage-key collisions (must be zero).
    collisions: usize,
    /// Projected wall for a 21-point sweep: `cold + 20 * incr`.
    sweep21_s: f64,
    /// Projected wall for 21 independent cold runs: `21 * cold`.
    cold21_s: f64,
}

/// Runs a 5-point organic V_T sweep (standard budget) in a throwaway
/// cache directory. Point 0 is a genuine cold plan run; each later point
/// recomputes only the organic invalidation cone. The 21-point
/// projection is the acceptance comparison for `bdc sweep`: one sweep vs
/// 21 independent cold runs of the same plan.
fn sweep_section() -> Option<SweepBench> {
    use bdc_core::sweep::{run_sweep, stage_key_collisions, SweepSpec};
    let dir = std::env::temp_dir().join(format!("bdc-bench-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let prev = std::env::var_os("BDC_CACHE_DIR");
    std::env::set_var("BDC_CACHE_DIR", &dir);
    let spec = SweepSpec::parse("organic.vt=-1.5:-1.1:5").expect("bench sweep spec");
    let ids: Vec<&str> = bdc_core::registry::NODES.iter().map(|n| n.id).collect();
    let outcome = run_sweep(&spec, &ids, false);
    match prev {
        Some(v) => std::env::set_var("BDC_CACHE_DIR", v),
        None => std::env::remove_var("BDC_CACHE_DIR"),
    }
    let _ = std::fs::remove_dir_all(&dir);
    let report = match outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep section skipped: {e}");
            return None;
        }
    };
    let points = report.points.len();
    let cold_s = report.points[0].wall_s;
    let incr_s = (report.elapsed_s - cold_s).max(0.0) / (points - 1) as f64;
    let (mut hits, mut misses) = (0u64, 0u64);
    for p in report.points.iter().skip(1) {
        let (h, m) = p.totals();
        hits += h;
        misses += m;
    }
    let hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    Some(SweepBench {
        points,
        cold_s,
        incr_s,
        hit_rate,
        collisions: stage_key_collisions(&report),
        sweep21_s: cold_s + 20.0 * incr_s,
        cold21_s: 21.0 * cold_s,
    })
}

/// One serve-layer measurement: a request mix driven through the full
/// HTTP stack against an in-process daemon.
struct ServeStat {
    cache: &'static str,
    requests: u64,
    rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

fn quantile_ms(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx] as f64 / 1000.0
}

/// Boots the daemon on an ephemeral port, measures the cold pass (every
/// query computes through the engine) and a warm pass (every query is a
/// response-cache hit), and shuts the server down cleanly.
fn serve_section() -> Vec<ServeStat> {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    };
    let handle: ServerHandle = match bdc_serve::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve section skipped: bind failed: {e}");
            return Vec::new();
        }
    };
    let addr = format!("127.0.0.1:{}", handle.port());
    let queries = [
        "/v1/library?process=organic",
        "/v1/library?process=silicon",
        "/v1/synth?process=silicon",
        "/v1/width?process=silicon&fe=2&be=4",
        "/v1/ipc?workload=dhrystone&outer=5&instructions=4000",
        "/v1/ipc?workload=gzip&outer=5&instructions=4000",
    ];
    let mut stats = Vec::new();
    let mut conn = match Connection::open(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve section skipped: connect failed: {e}");
            handle.shutdown();
            return Vec::new();
        }
    };
    // Cold: first issue of each distinct query computes in the engine.
    // Warm: every repeat is answered from the engine's response cache.
    for (cache, passes) in [("cold", 1usize), ("warm", 50)] {
        let mut lat_us: Vec<u64> = Vec::new();
        let t0 = Instant::now();
        for _ in 0..passes {
            for q in queries {
                let t = Instant::now();
                match conn.get(q) {
                    Ok(r) if r.status == 200 => {
                        lat_us.push(t.elapsed().as_micros() as u64);
                    }
                    Ok(r) => eprintln!("serve section: {q} returned {}", r.status),
                    Err(e) => eprintln!("serve section: {q} failed: {e}"),
                }
            }
        }
        let elapsed = t0.elapsed().as_secs_f64();
        lat_us.sort_unstable();
        stats.push(ServeStat {
            cache,
            requests: lat_us.len() as u64,
            rps: if elapsed > 0.0 {
                lat_us.len() as f64 / elapsed
            } else {
                0.0
            },
            p50_ms: quantile_ms(&lat_us, 0.50),
            p95_ms: quantile_ms(&lat_us, 0.95),
            p99_ms: quantile_ms(&lat_us, 0.99),
        });
    }
    handle.shutdown();
    stats
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64())
}

/// One cluster measurement: the same warm query stream via a shard
/// directly and via the router, isolating the proxy hop's cost.
struct ClusterStat {
    path: &'static str,
    requests: u64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Boots a 3-shard in-process fleet behind the router and measures the
/// router's proxy overhead (warm query direct vs proxied) and the peer
/// artifact path (framed fetch wall vs full recharacterization wall).
fn cluster_section() -> (Vec<ClusterStat>, Option<(f64, f64)>) {
    use bdc_cluster::router::{start_router, RouterConfig};

    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for shard in 0..3 {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".into(),
            shard: Some(shard),
            ..ServeConfig::default()
        };
        match bdc_serve::start(cfg) {
            Ok(h) => {
                addrs.push(format!("127.0.0.1:{}", h.port()));
                handles.push(h);
            }
            Err(e) => {
                eprintln!("cluster section skipped: shard bind failed: {e}");
                for h in handles {
                    h.shutdown();
                }
                return (Vec::new(), None);
            }
        }
    }
    let router = match start_router(RouterConfig {
        addr: "127.0.0.1:0".into(),
        shard_addrs: addrs.clone(),
        ring_seed: 42,
        ..RouterConfig::default()
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cluster section skipped: router bind failed: {e}");
            for h in handles {
                h.shutdown();
            }
            return (Vec::new(), None);
        }
    };
    let router_addr = format!("127.0.0.1:{}", router.port());

    // Warm overhead: the identical cached query, 100 times direct to a
    // shard vs 100 times through the router. The difference is one proxy
    // hop (connect + parse + forward).
    let query = "/v1/ipc?workload=gzip&outer=5&instructions=4000";
    let mut stats = Vec::new();
    for (path, addr) in [("direct-warm", &addrs[0]), ("router-warm", &router_addr)] {
        let mut lat_us = Vec::new();
        if let Ok(mut conn) = Connection::open(addr) {
            let _ = conn.get(query); // warm this target's response cache
            for _ in 0..100 {
                let t = Instant::now();
                if matches!(conn.get(query), Ok(r) if r.status == 200) {
                    lat_us.push(t.elapsed().as_micros() as u64);
                }
            }
        }
        lat_us.sort_unstable();
        stats.push(ClusterStat {
            path,
            requests: lat_us.len() as u64,
            p50_ms: quantile_ms(&lat_us, 0.50),
            p99_ms: quantile_ms(&lat_us, 0.99),
        });
    }

    // Peer-fetch vs recompute: fetching the framed library artifact from
    // its ring owner vs characterizing the library from scratch — the
    // wall-time argument for cross-filling caches instead of recomputing.
    let (name, key) = bdc_core::library_artifact(bdc_core::Process::Silicon);
    let peer = Connection::open(&router_addr).ok().and_then(|mut conn| {
        // Ensure the artifact exists: computing the library on any shard
        // stores it in the artifact cache the peer endpoint reads.
        let _ = conn.get("/v1/library?process=silicon");
        let peer_path = format!("/v1/peer/artifact?name={name}&key={key:016x}");
        let t = Instant::now();
        match conn.get(&peer_path) {
            Ok(r) if r.status == 200 => Some(t.elapsed().as_secs_f64() * 1000.0),
            _ => None,
        }
    });
    let pair = peer.map(|peer_ms| {
        let (_, rebuild_s) = time(|| bdc_core::TechKit::build(bdc_core::Process::Silicon));
        (peer_ms, rebuild_s * 1000.0)
    });

    router.shutdown();
    for h in handles {
        h.shutdown();
    }
    (stats, pair)
}

fn main() {
    if let Err(e) = bdc_exec::env_config() {
        eprintln!("bench_report: {e}");
        std::process::exit(2);
    }
    bdc_bench::header("bench", "flow-stage timings (serial/parallel, cold/warm)");
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let ambient_lanes = bdc_exec::batch_lanes();
    // Worker sweeps: on a 1-core runner the "parallel" point IS the serial
    // point, so emit it once and label rows with the effective count
    // instead of claiming a speedup that was never measured.
    let mut worker_points: Vec<(usize, &str)> = vec![(1, "serial")];
    if avail > 1 {
        worker_points.push((avail, "parallel"));
    }
    let mut rows: Vec<Row> = Vec::new();

    // --- Library characterization: the slew x load grid fans out per cell
    // (workers) and packs into SoA lanes (batched kernel). Both kernels run
    // cold at one worker so the speedup row isolates the lane win; the
    // scalar row is pinned via the lane override, the batched rows use the
    // environment's resolution (so BDC_NO_BATCH makes them coincide).
    // Batched rows come first: the scalar run's per-attempt solver churn
    // leaves the allocator fragmented, which taxes the batched kernel's
    // large SoA buffers by ~25% if it runs second — each row is a cold
    // build either way, so the order only removes cross-kernel bleed.
    let mut speedups: Vec<Speedup> = Vec::new();
    for p in Process::both() {
        bdc_exec::set_workers(Some(1));
        bdc_exec::set_batch_lanes(None);
        let lanes = bdc_exec::batch_lanes();
        let (_, batched_s) = time(|| TechKit::build(p).expect("characterization"));
        rows.push(Row {
            stage: "characterize_library",
            detail: format!("{} batched", p.name()),
            workers: 1,
            lanes,
            cache: "cold",
            seconds: batched_s,
        });
        bdc_exec::set_workers(Some(avail));
        let (_, s) = time(|| TechKit::build(p).expect("characterization"));
        rows.push(Row {
            stage: "characterize_library",
            detail: format!("{} batched", p.name()),
            workers: avail,
            lanes,
            cache: "cold",
            seconds: s,
        });
        bdc_exec::set_workers(Some(1));
        bdc_exec::set_batch_lanes(Some(1));
        let (_, scalar_s) = time(|| TechKit::build(p).expect("characterization"));
        rows.push(Row {
            stage: "characterize_library",
            detail: format!("{} scalar", p.name()),
            workers: 1,
            lanes: 1,
            cache: "cold",
            seconds: scalar_s,
        });
        speedups.push(Speedup {
            process: p.name(),
            scalar_s,
            batched_s,
            lanes,
        });
        bdc_exec::set_batch_lanes(None);
        bdc_exec::set_workers(Some(avail));
        // Prime, then measure the warm load (Liberty parse, no simulation).
        let _ = TechKit::load_or_build(p).expect("prime");
        let (_, s) = time(|| TechKit::load_or_build(p).expect("cached"));
        rows.push(Row {
            stage: "load_library",
            detail: p.name().into(),
            workers: avail,
            lanes,
            cache: "warm",
            seconds: s,
        });
    }

    // --- Core synthesis: baseline spec, cold vs warm.
    for p in Process::both() {
        let kit = TechKit::load_or_build(p).expect("characterization");
        let spec = CoreSpec::baseline();
        let (_, s) = time(|| synthesize_core(&kit, &spec));
        rows.push(Row {
            stage: "synthesize_core",
            detail: format!("{} baseline", p.name()),
            workers: 1,
            lanes: ambient_lanes,
            cache: "cold",
            seconds: s,
        });
        let _ = synthesize_core_cached(&kit, &spec);
        let (_, s) = time(|| synthesize_core_cached(&kit, &spec));
        rows.push(Row {
            stage: "synthesize_core",
            detail: format!("{} baseline", p.name()),
            workers: 1,
            lanes: ambient_lanes,
            cache: "warm",
            seconds: s,
        });
    }

    // --- OoO simulation fan-out: a 2x2 width sub-matrix, quick budget.
    for &(w, label) in &worker_points {
        bdc_exec::set_workers(Some(w));
        let (_, s) = time(|| width_ipc_matrix(&[1, 2], &[3, 4], SimBudget::quick()));
        rows.push(Row {
            stage: "width_ipc_matrix",
            detail: format!("2x2 quick, {label} x{w}"),
            workers: w,
            lanes: ambient_lanes,
            cache: "none",
            seconds: s,
        });
    }

    // --- Monte-Carlo V_T sampling.
    let base = TftParams::pentacene();
    let (_, s) = time(|| {
        let mut v = VtVariation::paper_spread(base.clone(), 7);
        VariedModel::sample_population(&mut v, 2000)
    });
    rows.push(Row {
        stage: "monte_carlo_vt",
        detail: "2000 draws, sequential stream".into(),
        workers: 1,
        lanes: ambient_lanes,
        cache: "none",
        seconds: s,
    });
    for &(w, label) in &worker_points {
        bdc_exec::set_workers(Some(w));
        let (_, s) = time(|| VariedModel::sample_population_par(&base, 0.5 / 3.0, 7, 2000));
        rows.push(Row {
            stage: "monte_carlo_vt",
            detail: format!("2000 draws, per-index seeds, {label} x{w}"),
            workers: w,
            lanes: ambient_lanes,
            cache: "none",
            seconds: s,
        });
    }
    bdc_exec::set_workers(None);

    // --- Experiment registry: every catalogued node at the quick budget,
    // scheduled through the plan runner (fan-out + artifact cache). One
    // row per node so regressions localize.
    let ids: Vec<&str> = bdc_core::registry::NODES.iter().map(|n| n.id).collect();
    match bdc_core::registry::run_plan(&ids, true) {
        Ok(report) => {
            for node in &report.nodes {
                rows.push(Row {
                    stage: "experiment_node",
                    detail: format!("{} --quick", node.id),
                    workers: report.workers,
                    lanes: ambient_lanes,
                    cache: if node.cache_hit { "warm" } else { "cold" },
                    seconds: node.wall_s,
                });
            }
        }
        Err(e) => eprintln!("registry section skipped: {e}"),
    }

    // --- Incremental sweep: cold first point vs per-point recompute of
    // the organic invalidation cone, projected to the 21-point grid.
    bdc_exec::set_workers(None);
    let sweep = sweep_section();
    if let Some(s) = &sweep {
        rows.push(Row {
            stage: "sweep_point",
            detail: "organic.vt grid, cold first point".into(),
            workers: avail,
            lanes: ambient_lanes,
            cache: "cold",
            seconds: s.cold_s,
        });
        rows.push(Row {
            stage: "sweep_point",
            detail: "organic.vt grid, incremental point".into(),
            workers: avail,
            lanes: ambient_lanes,
            cache: "warm",
            seconds: s.incr_s,
        });
    }

    // --- Serving layer: the same queries through the full HTTP stack,
    // cold (engine compute) vs warm (response-cache hit).
    let serve = serve_section();

    // --- Cluster layer: proxy overhead and peer-fetch vs recompute.
    let (cluster, peer_pair) = cluster_section();

    // --- Render.
    let mut txt = String::new();
    let _ = writeln!(
        txt,
        "flow-stage timings ({avail} core(s) available)\n\n{:<22} {:<34} {:>7} {:>5} {:>6} {:>10}",
        "stage", "detail", "workers", "lanes", "cache", "seconds"
    );
    for r in &rows {
        let _ = writeln!(
            txt,
            "{:<22} {:<34} {:>7} {:>5} {:>6} {:>10.4}",
            r.stage, r.detail, r.workers, r.lanes, r.cache, r.seconds
        );
    }
    if !speedups.is_empty() {
        let _ = writeln!(
            txt,
            "\ncold characterization, scalar vs batched kernel (1 worker)\n\n{:<10} {:>10} {:>10} {:>6} {:>8}",
            "process", "scalar s", "batched s", "lanes", "speedup"
        );
        for s in &speedups {
            let _ = writeln!(
                txt,
                "{:<10} {:>10.4} {:>10.4} {:>6} {:>7.2}x",
                s.process,
                s.scalar_s,
                s.batched_s,
                s.lanes,
                s.scalar_s / s.batched_s
            );
        }
    }
    if let Some(s) = &sweep {
        let _ = writeln!(
            txt,
            "\nincremental sweep (organic.vt, {} measured points, standard budget)\n\n\
             cold point {:.3} s, incremental point {:.3} s, stage hit rate {:.3}, \
             key collisions {}\n\
             21-point projection: sweep {:.1} s vs 21 cold runs {:.1} s ({:.1}x less wall)",
            s.points,
            s.cold_s,
            s.incr_s,
            s.hit_rate,
            s.collisions,
            s.sweep21_s,
            s.cold21_s,
            s.cold21_s / s.sweep21_s.max(1e-9)
        );
    }
    if !serve.is_empty() {
        let _ = writeln!(
            txt,
            "\nserve layer (in-process daemon, 6-query mix)\n\n{:<6} {:>9} {:>10} {:>9} {:>9} {:>9}",
            "cache", "requests", "req/s", "p50 ms", "p95 ms", "p99 ms"
        );
        for s in &serve {
            let _ = writeln!(
                txt,
                "{:<6} {:>9} {:>10.1} {:>9.3} {:>9.3} {:>9.3}",
                s.cache, s.requests, s.rps, s.p50_ms, s.p95_ms, s.p99_ms
            );
        }
    }
    if !cluster.is_empty() {
        let _ = writeln!(
            txt,
            "\ncluster layer (3 in-process shards behind the router)\n\n{:<12} {:>9} {:>9} {:>9}",
            "path", "requests", "p50 ms", "p99 ms"
        );
        for c in &cluster {
            let _ = writeln!(
                txt,
                "{:<12} {:>9} {:>9.3} {:>9.3}",
                c.path, c.requests, c.p50_ms, c.p99_ms
            );
        }
        if let Some((peer_ms, rebuild_ms)) = peer_pair {
            let _ = writeln!(
                txt,
                "\npeer artifact fetch {peer_ms:.3} ms vs recharacterize {rebuild_ms:.3} ms \
                 ({:.1}x cheaper)",
                rebuild_ms / peer_ms.max(0.001)
            );
        }
    }
    print!("{txt}");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"generated_by\": \"bench_report\",");
    let _ = writeln!(json, "  \"workers_available\": {avail},");
    let _ = writeln!(json, "  \"serve\": [");
    for (i, s) in serve.iter().enumerate() {
        let comma = if i + 1 < serve.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"cache\": \"{}\", \"requests\": {}, \"rps\": {:.2}, \
             \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}{comma}",
            s.cache, s.requests, s.rps, s.p50_ms, s.p95_ms, s.p99_ms
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"cluster\": {{");
    let _ = writeln!(json, "    \"paths\": [");
    for (i, c) in cluster.iter().enumerate() {
        let comma = if i + 1 < cluster.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"path\": \"{}\", \"requests\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{comma}",
            c.path, c.requests, c.p50_ms, c.p99_ms
        );
    }
    let _ = writeln!(json, "    ],");
    match peer_pair {
        Some((peer_ms, rebuild_ms)) => {
            let _ = writeln!(
                json,
                "    \"peer_fetch_ms\": {peer_ms:.3}, \"recompute_ms\": {rebuild_ms:.3}"
            );
        }
        None => {
            let _ = writeln!(json, "    \"peer_fetch_ms\": null, \"recompute_ms\": null");
        }
    }
    let _ = writeln!(json, "  }},");
    match &sweep {
        Some(s) => {
            let _ = writeln!(
                json,
                "  \"sweep\": {{\"param\": \"organic.vt\", \"points_measured\": {}, \
                 \"cold_point_s\": {:.6}, \"incremental_point_s\": {:.6}, \
                 \"incremental_hit_rate\": {:.4}, \"stage_key_collisions\": {}, \
                 \"sweep_21pt_s\": {:.3}, \"cold_runs_21_s\": {:.3}, \
                 \"reuse_speedup_21pt\": {:.2}}},",
                s.points,
                s.cold_s,
                s.incr_s,
                s.hit_rate,
                s.collisions,
                s.sweep21_s,
                s.cold21_s,
                s.cold21_s / s.sweep21_s.max(1e-9)
            );
        }
        None => {
            let _ = writeln!(json, "  \"sweep\": null,");
        }
    }
    let _ = writeln!(json, "  \"characterize_speedup\": [");
    for (i, s) in speedups.iter().enumerate() {
        let comma = if i + 1 < speedups.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"process\": \"{}\", \"scalar_s\": {:.6}, \"batched_s\": {:.6}, \
             \"lanes\": {}, \"speedup\": {:.3}}}{comma}",
            s.process,
            s.scalar_s,
            s.batched_s,
            s.lanes,
            s.scalar_s / s.batched_s
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"stage\": \"{}\", \"detail\": \"{}\", \"workers\": {}, \"lanes\": {}, \"cache\": \"{}\", \"seconds\": {:.6}}}{comma}",
            r.stage, r.detail, r.workers, r.lanes, r.cache, r.seconds
        );
    }
    let _ = writeln!(json, "  ]\n}}");
    match std::fs::write("BENCH_flow.json", &json) {
        Ok(()) => println!("\nwrote BENCH_flow.json"),
        Err(e) => eprintln!("could not write BENCH_flow.json: {e}"),
    }
    if std::fs::create_dir_all("results").is_ok() {
        match std::fs::write("results/bench_report.txt", &txt) {
            Ok(()) => println!("wrote results/bench_report.txt"),
            Err(e) => eprintln!("could not write results/bench_report.txt: {e}"),
        }
    }
}
