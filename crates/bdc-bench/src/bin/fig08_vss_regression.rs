//! Figure 8: switching threshold vs V_SS (linear tuning relationship).

use bdc_core::experiments::fig08_vss_regression;

fn main() {
    bdc_bench::header(
        "Fig 8",
        "V_M vs V_SS for the pseudo-E inverter at VDD = 5 V",
    );
    let f = fig08_vss_regression().expect("sweep");
    println!("{:>8}  {:>8}", "VSS (V)", "VM (V)");
    for (vss, vm) in &f.points {
        println!("{vss:>8.1}  {vm:>8.2}");
    }
    println!("regression: VM = {:.3} * VSS + {:.2}", f.slope, f.intercept);
    let vss_for_mid = (2.5 - f.intercept) / f.slope;
    println!("VSS for VM = VDD/2: {vss_for_mid:.1} V");
    println!("(paper: VM = 0.22*VSS + 5.76; VSS = -14.8 V for VM = VDD/2 -> they chose -15 V)");
}
