//! Legacy shim: renders registry node `fig08` (see `bdc_core::registry`).
//! Prefer `bdc run fig08`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("fig08");
}
