//! Legacy shim: renders registry node `abl-structures` (see `bdc_core::registry`).
//! Prefer `bdc run abl-structures`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("abl-structures");
}
