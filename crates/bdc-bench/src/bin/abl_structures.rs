//! Ablation: superscalar structure sizes (IQ / ROB / LSQ).
//!
//! AnyCore's design space includes “superscalar structure sizes” alongside
//! depth and width (§5.1). This ablation sweeps window sizes at the
//! paper's two width optima and reports IPC — establishing that the
//! depth/width conclusions are not artifacts of a starved (or lavish)
//! instruction window.

use bdc_core::report::render_table;
use bdc_core::CoreSpec;
use bdc_uarch::{build_workload, OooCore, Workload};

fn main() {
    bdc_bench::header("Ablation", "instruction-window structure sizes");
    let budget = bdc_bench::budget();
    let sweep = [
        (8usize, 24usize, 8usize),
        (16, 48, 12),
        (32, 64, 16),
        (64, 128, 32),
    ];
    for (fe, be, label) in [
        (2usize, 4usize, "silicon optimum M[4][2]"),
        (2, 7, "organic optimum M[7][2]"),
    ] {
        println!("\nwidths fe={fe}, be={be} ({label}):");
        let mut rows = Vec::new();
        for (iq, rob, lsq) in sweep {
            let spec = CoreSpec::with_widths(fe, be);
            let mut cfg = spec.core_config();
            cfg.iq_size = iq;
            cfg.rob_size = rob;
            cfg.lsq_size = lsq;
            let mut log_ipc = 0.0;
            let suite = [Workload::Dhrystone, Workload::Gzip, Workload::Gap];
            for w in suite {
                let program = build_workload(w, budget.outer);
                let mut core = OooCore::new(&program, cfg.clone(), w.memory_words());
                let stats = core.run(budget.instructions);
                log_ipc += stats.ipc().max(1e-6).ln();
            }
            let ipc = (log_ipc / suite.len() as f64).exp();
            rows.push(vec![
                format!("{iq}"),
                format!("{rob}"),
                format!("{lsq}"),
                format!("{ipc:.3}"),
            ]);
        }
        print!(
            "{}",
            render_table(&["IQ", "ROB", "LSQ", "gmean IPC"], &rows)
        );
    }
    println!("\n(the paper's baseline-class window — IQ 32 / ROB 64 / LSQ 16, the");
    println!(" third row — sits on the flat part of the curve: bigger windows add");
    println!(" little IPC at these widths, so the depth/width results stand)");
}
