//! Figure 11: core area and performance vs pipeline depth (9–15 stages).

use bdc_core::experiments::fig11_core_depth;
use bdc_core::report::fmt_freq;
use bdc_core::{Process, TechKit};

fn main() {
    bdc_bench::header("Fig 11", "core depth 9..15, per-benchmark performance");
    let budget = bdc_bench::budget();
    for p in Process::both() {
        let kit = TechKit::load_or_build(p).expect("characterization");
        let pts = fig11_core_depth(&kit, budget);
        let base: Vec<f64> = pts[0].per_workload.iter().map(|x| x.2).collect();
        println!(
            "\n{} (area and performance normalized to the 9-stage baseline):",
            p.name()
        );
        let names: Vec<&str> = pts[0]
            .per_workload
            .iter()
            .map(|(w, _, _)| w.name())
            .collect();
        println!(
            "{:>3} {:>9} {:>10} {:>6}  {}",
            "N",
            "cut",
            "freq",
            "area",
            names.iter().map(|n| format!("{n:>9}")).collect::<String>()
        );
        let a0 = pts[0].synth.area_um2;
        for pt in &pts {
            let norms: String = pt
                .per_workload
                .iter()
                .zip(&base)
                .map(|((_, _, perf), b)| format!("{:>9.2}", perf / b))
                .collect();
            println!(
                "{:>3} {:>9} {:>10} {:>6.2}  {norms}",
                pt.stages,
                pt.split.map(|s| s.name()).unwrap_or("-"),
                fmt_freq(pt.synth.frequency),
                pt.synth.area_um2 / a0,
            );
        }
        // Report the optimum depth per benchmark.
        let mut opt_line = String::new();
        for (k, name) in names.iter().enumerate() {
            let (best_stage, _) = pts
                .iter()
                .map(|pt| (pt.stages, pt.per_workload[k].2))
                .fold((9, 0.0), |acc, x| if x.1 > acc.1 { x } else { acc });
            opt_line += &format!("{name}={best_stage} ");
        }
        println!("optimal depth per benchmark: {opt_line}");
    }
    println!("\n(paper: silicon optima at 10-11 stages, organic at 14-15; areas near-flat)");
}
