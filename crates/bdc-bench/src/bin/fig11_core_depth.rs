//! Legacy shim: renders registry node `fig11` (see `bdc_core::registry`).
//! Prefer `bdc run fig11`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("fig11");
}
