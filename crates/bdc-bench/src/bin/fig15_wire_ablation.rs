//! Legacy shim: renders registry node `fig15` (see `bdc_core::registry`).
//! Prefer `bdc run fig15`; this binary remains for script compatibility.

fn main() {
    bdc_bench::run_legacy("fig15");
}
