//! Figure 15: frequency scaling with and without wire delay.

use bdc_core::experiments::fig15_wire_ablation;
use bdc_core::report::render_series;
use bdc_core::{Process, TechKit};

fn main() {
    bdc_bench::header("Fig 15", "frequency vs stages, with and without wire cost");
    let alu_stages: Vec<usize> = vec![1, 2, 4, 8, 12, 16, 20, 24, 28, 30];
    for p in Process::both() {
        let kit = TechKit::load_or_build(p).expect("characterization");
        let f = fig15_wire_ablation(&kit, &alu_stages);
        println!("\n{}:", p.name());
        print!(
            "{}",
            render_series("  ALU, with wire:", &f.alu_stages, &f.alu.0)
        );
        print!(
            "{}",
            render_series("  ALU, w/o wire:", &f.alu_stages, &f.alu.1)
        );
        print!(
            "{}",
            render_series("  core, with wire:", &f.core_stages, &f.core.0)
        );
        print!(
            "{}",
            render_series("  core, w/o wire:", &f.core_stages, &f.core.1)
        );
        let last = f.alu.0.len() - 1;
        println!(
            "  deep-pipeline wire penalty (ALU, 30 stages): {:.1}% of achievable frequency",
            100.0 * (1.0 - f.alu.0[last] / f.alu.1[last])
        );
    }
    println!("\n(paper: removing wire cost makes silicon scale like organic — the");
    println!(" organic process's advantage is its relatively free interconnect)");
}
