#![warn(missing_docs)]

//! Shared plumbing for the experiment binaries.
//!
//! The experiments themselves live in `bdc_core::registry`; the `bdc`
//! binary is the CLI over that catalogue (`bdc list`, `bdc run fig12
//! --quick`, `bdc run --all`) and the 25 per-figure binaries are legacy
//! shims over [`run_legacy`]. Pass `--quick` (or set `BDC_QUICK=1`) to
//! use a reduced simulation budget for smoke runs.

use bdc_core::experiments::SimBudget;

/// True when the invocation asked for the reduced budget.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("BDC_QUICK").is_some()
}

/// The simulation budget implied by the command line.
pub fn budget() -> SimBudget {
    if quick_mode() {
        SimBudget::quick()
    } else {
        SimBudget::standard()
    }
}

/// Prints a standard report header (the experiment binaries render their
/// headers from registry node metadata instead).
pub fn header(id: &str, what: &str) {
    println!("== {id}: {what} ==");
    if quick_mode() {
        println!("   (quick mode: reduced simulation budget)");
    }
}

/// Entry point for the legacy per-experiment shims: validate the shared
/// environment knobs once, render the registry node, print its text
/// (byte-identical to the pre-registry binary) and exit.
pub fn run_legacy(id: &str) -> ! {
    if let Err(e) = bdc_exec::env_config() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    match bdc_core::registry::run_one(id, quick_mode()) {
        Ok(out) => {
            print!("{}", out.text);
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_positive() {
        let b = budget();
        assert!(b.outer > 0 && b.instructions > 0);
    }
}
