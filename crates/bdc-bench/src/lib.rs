#![warn(missing_docs)]

//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! `DESIGN.md` §4 for the index) and prints the rows/series the paper
//! reports. Pass `--quick` (or set `BDC_QUICK=1`) to use a reduced
//! simulation budget for smoke runs.

use bdc_core::experiments::SimBudget;

/// True when the invocation asked for the reduced budget.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("BDC_QUICK").is_some()
}

/// The simulation budget implied by the command line.
pub fn budget() -> SimBudget {
    if quick_mode() {
        SimBudget::quick()
    } else {
        SimBudget {
            outer: 150,
            instructions: 60_000,
        }
    }
}

/// Prints a standard experiment header.
pub fn header(id: &str, what: &str) {
    println!("== {id}: {what} ==");
    if quick_mode() {
        println!("   (quick mode: reduced simulation budget)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_positive() {
        let b = budget();
        assert!(b.outer > 0 && b.instructions > 0);
    }
}
