//! Criterion micro-benchmarks for the simulation substrates: how fast the
//! framework itself runs (device evaluation, circuit solving, STA,
//! pipeline cutting, cycle-accurate simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bdc_cells::{CellLibrary, ProcessKind};
use bdc_circuit::{Circuit, DcSolver};
use bdc_device::{DeviceModel, Level61Model, TftParams};
use bdc_synth::blocks;
use bdc_synth::pipeline::{pipeline_cut, PipelineOptions};
use bdc_synth::sta::{analyze, StaConfig};
use bdc_uarch::{build_workload, CoreConfig, OooCore, Workload};

fn bench_device(c: &mut Criterion) {
    let m = Level61Model::new(TftParams::pentacene());
    c.bench_function("device/level61_ids", |b| {
        b.iter(|| black_box(m.ids(black_box(-5.0), black_box(-2.5))))
    });
}

fn bench_dc_solver(c: &mut Criterion) {
    let gate = bdc_cells::organic_inverter(
        bdc_cells::OrganicStyle::PseudoE,
        &bdc_cells::OrganicSizing::library_default(),
        5.0,
        -15.0,
    );
    c.bench_function("circuit/pseudo_e_dc_op", |b| {
        b.iter(|| {
            let mut circuit = gate.circuit.clone();
            circuit.set_vsource(gate.inputs[0].1, 2.5);
            black_box(DcSolver::new().solve(&circuit).unwrap());
        })
    });
    c.bench_function("circuit/divider_dc_op", |b| {
        let mut circuit = Circuit::new();
        let a = circuit.node("a");
        let mid = circuit.node("m");
        circuit.vsource(a, Circuit::GND, 10.0);
        circuit.resistor(a, mid, 1.0e3);
        circuit.resistor(mid, Circuit::GND, 1.0e3);
        b.iter(|| black_box(DcSolver::new().solve(&circuit).unwrap()))
    });
}

fn bench_sta(c: &mut Criterion) {
    let lib = CellLibrary::synthetic(ProcessKind::Silicon45, 12.0e-12);
    let mult = blocks::array_multiplier(32);
    let cfg = StaConfig::default();
    c.bench_function("synth/sta_mult32", |b| {
        b.iter(|| black_box(analyze(&mult, &lib, &cfg)))
    });
    c.bench_function("synth/pipeline_cut_mult32_x8", |b| {
        b.iter(|| {
            black_box(pipeline_cut(
                &mult,
                &lib,
                &cfg,
                &PipelineOptions::with_stages(8),
            ))
        })
    });
}

fn bench_uarch(c: &mut Criterion) {
    let program = build_workload(Workload::Dhrystone, 10_000);
    let mut group = c.benchmark_group("uarch");
    group.sample_size(10);
    group.bench_function("ooo_dhrystone_50k_instrs", |b| {
        b.iter(|| {
            let mut core = OooCore::new(
                &program,
                CoreConfig::baseline(),
                Workload::Dhrystone.memory_words(),
            );
            black_box(core.run(50_000))
        })
    });
    group.finish();
}

fn bench_workload_build(c: &mut Criterion) {
    c.bench_function("workload/build_gzip", |b| {
        b.iter(|| black_box(build_workload(Workload::Gzip, 100)))
    });
}

criterion_group!(
    benches,
    bench_device,
    bench_dc_solver,
    bench_sta,
    bench_uarch,
    bench_workload_build
);
criterion_main!(benches);
