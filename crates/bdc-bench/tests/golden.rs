//! Golden-output tests (ISSUE 4 satellite): representative registry
//! nodes render byte-identically to the stdout the pre-registry legacy
//! binaries produced at `--quick` (captured before the refactor and
//! committed under `tests/golden/`).
//!
//! The set spans every node family: a device figure, the model fit, a
//! cell figure, the V_SS regression, a depth figure, a width figure, a
//! table, and an extension. Byte equality here, plus the determinism
//! contract (cold vs warm renders are identical), is what lets the 25
//! legacy binaries be ~5-line shims over the registry.

use bdc_core::registry::run_one;

fn check(id: &str, golden: &str) {
    let out = run_one(id, true).unwrap_or_else(|e| panic!("{id}: {e}"));
    assert!(
        out.text == golden,
        "{id}: rendered text differs from the pre-refactor golden capture\n\
         --- golden ---\n{golden}\n--- rendered ---\n{}",
        out.text
    );
}

#[test]
fn golden_fig03_device_transfer() {
    check("fig03", include_str!("golden/fig03.quick.txt"));
}

#[test]
fn golden_fig04_model_fit() {
    check("fig04", include_str!("golden/fig04.quick.txt"));
}

#[test]
fn golden_fig06_cell_inverters() {
    check("fig06", include_str!("golden/fig06.quick.txt"));
}

#[test]
fn golden_fig08_vss_regression() {
    check("fig08", include_str!("golden/fig08.quick.txt"));
}

#[test]
fn golden_fig12_alu_depth() {
    check("fig12", include_str!("golden/fig12.quick.txt"));
}

#[test]
fn golden_fig14_width_area() {
    check("fig14", include_str!("golden/fig14.quick.txt"));
}

#[test]
fn golden_table_library() {
    check(
        "table-library",
        include_str!("golden/table-library.quick.txt"),
    );
}

#[test]
fn golden_ext_degradation() {
    check(
        "ext-degradation",
        include_str!("golden/ext-degradation.quick.txt"),
    );
}
