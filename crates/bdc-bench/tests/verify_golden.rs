//! Golden test: `bdc verify` is byte-stable across worker counts.
//!
//! The verify report is a build artifact other tooling diffs, so its
//! stdout and its `results/verify_report.json` must be identical whether
//! the process runs with 1, 2, or 8 workers (`BDC_WORKERS`). The static
//! pass renders nothing, but `--audit-deps` executes every node through
//! `bdc_exec` — the same machinery whose parallelism must never leak into
//! artifact bytes.
//!
//! Each invocation runs in its own scratch directory (outside the
//! workspace, so `find_workspace_root` falls back to the cwd and the
//! report lands in the scratch `results/`), keeping the real repo's
//! `results/` untouched and proving the report carries no absolute paths.

use std::path::Path;
use std::process::Command;

struct VerifyOutput {
    stdout: Vec<u8>,
    report: Vec<u8>,
}

fn run_verify(dir: &Path, workers: &str, extra: &[&str]) -> VerifyOutput {
    let out = Command::new(env!("CARGO_BIN_EXE_bdc"))
        .arg("verify")
        .args(extra)
        .current_dir(dir)
        .env("BDC_WORKERS", workers)
        .env_remove("BDC_QUICK")
        .output()
        .expect("spawn bdc");
    assert!(
        out.status.success(),
        "bdc verify failed under BDC_WORKERS={workers}: stdout={} stderr={}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let report =
        std::fs::read(dir.join("results/verify_report.json")).expect("verify_report.json written");
    VerifyOutput {
        stdout: out.stdout,
        report,
    }
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bdc-verify-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn verify_report_is_byte_stable_across_workers() {
    let baseline = {
        let dir = scratch("w1");
        let out = run_verify(&dir, "1", &[]);
        let _ = std::fs::remove_dir_all(&dir);
        out
    };
    assert!(
        baseline
            .stdout
            .starts_with(b"plan-graph: 25 nodes, 50 cache keys, 0 finding(s)\n"),
        "unexpected verify stdout: {}",
        String::from_utf8_lossy(&baseline.stdout)
    );
    let json = String::from_utf8(baseline.report.clone()).expect("report is UTF-8");
    assert!(json.contains("\"version\":\"bdc-verify-v2\""), "{json}");
    assert!(json.contains("\"stages\":47"), "{json}");
    assert!(json.contains("\"findings\":[]"), "{json}");

    for workers in ["2", "8"] {
        let dir = scratch(&format!("w{workers}"));
        let out = run_verify(&dir, workers, &[]);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(
            out.stdout, baseline.stdout,
            "stdout differs at BDC_WORKERS={workers}"
        );
        assert_eq!(
            out.report, baseline.report,
            "verify_report.json differs at BDC_WORKERS={workers}"
        );
    }
}

#[test]
fn audited_verify_report_is_byte_stable_across_workers() {
    // The dynamic PG006 audit renders all 25 nodes (quick budget); the
    // report must still not depend on how many workers rendered them.
    let baseline = {
        let dir = scratch("aw1");
        let out = run_verify(&dir, "1", &["--audit-deps", "--quick"]);
        let _ = std::fs::remove_dir_all(&dir);
        out
    };
    let json = String::from_utf8(baseline.report.clone()).expect("report is UTF-8");
    assert!(json.contains("\"dep_audit\":\"quick\""), "{json}");
    assert!(json.contains("\"findings\":[]"), "{json}");

    let dir = scratch("aw8");
    let out = run_verify(&dir, "8", &["--audit-deps", "--quick"]);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(out.stdout, baseline.stdout, "stdout differs across workers");
    assert_eq!(out.report, baseline.report, "report differs across workers");
}
