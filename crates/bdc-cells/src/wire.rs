//! Interconnect delay models.
//!
//! The paper's central observation is that the organic process has
//! *relatively* fast wires: metal interconnect RC is similar in both
//! technologies, but organic gates are ~10⁶× slower, so wire delay is a
//! vanishing fraction of an organic clock period while it is a large
//! fraction of a silicon one (§5.5, Figure 15).
//!
//! Silicon long wires are modelled as optimally repeated (delay linear in
//! length); organic wires are raw RC — repeaters are useless when a repeater
//! costs 100 µs.

/// Distributed-RC wire model with optional repeatered long-wire mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// Resistance per metre (Ω/m).
    pub r_per_m: f64,
    /// Capacitance per metre (F/m).
    pub c_per_m: f64,
    /// Delay per metre of an optimally repeated wire (s/m), when the
    /// technology's gates are fast enough for repeaters to pay off.
    pub repeated_s_per_m: Option<f64>,
}

impl WireModel {
    /// Gold/chromium interconnect on glass for the pentacene process:
    /// 50 nm-thick metal, wide traces. ~50 Ω/mm and ~0.1 pF/mm.
    pub fn organic() -> Self {
        WireModel {
            r_per_m: 50.0e3,
            c_per_m: 100.0e-12,
            repeated_s_per_m: None,
        }
    }

    /// 45 nm-class intermediate-layer copper: ~2 Ω/µm, ~0.2 pF/mm, and
    /// ~65 ps/mm when repeated.
    pub fn silicon_45nm() -> Self {
        WireModel {
            r_per_m: 2.0e6,
            c_per_m: 200.0e-12,
            repeated_s_per_m: Some(65.0e-9),
        }
    }

    /// The "w/o wire" ablation of Figure 15: free interconnect.
    pub fn ideal() -> Self {
        WireModel {
            r_per_m: 0.0,
            c_per_m: 0.0,
            repeated_s_per_m: None,
        }
    }

    /// Total capacitance of a wire of `length` metres (added to the driving
    /// cell's NLDM load).
    pub fn capacitance(&self, length: f64) -> f64 {
        self.c_per_m * length
    }

    /// Wire propagation delay for a wire of `length` metres driven by a
    /// source with effective resistance `driver_res` (Ω).
    ///
    /// Uses the Elmore delay of the distributed line, switching to the
    /// repeated-wire linear model when that is faster and available.
    pub fn delay(&self, length: f64, driver_res: f64) -> f64 {
        if length <= 0.0 {
            return 0.0;
        }
        let r_w = self.r_per_m * length;
        let c_w = self.c_per_m * length;
        // Driver sees the full wire cap; the wire itself contributes RC/2.
        let elmore = driver_res * c_w + 0.5 * r_w * c_w;
        match self.repeated_s_per_m {
            Some(k) => elmore.min(k * length),
            None => elmore,
        }
    }

    /// Fraction of a `gate_delay` consumed by a wire of `length` driven with
    /// `driver_res` — a diagnostic used in tests and reports.
    pub fn relative_cost(&self, length: f64, driver_res: f64, gate_delay: f64) -> f64 {
        self.delay(length, driver_res) / gate_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_wire_is_free() {
        let w = WireModel::ideal();
        assert_eq!(w.delay(1.0, 1.0e6), 0.0);
        assert_eq!(w.capacitance(1.0), 0.0);
    }

    #[test]
    fn silicon_long_wire_uses_repeaters() {
        let w = WireModel::silicon_45nm();
        // 1 mm driven by a 3 kΩ gate: unrepeated Elmore would be
        // 3k·0.2p + 0.5·2k·0.2p = 0.8 ns; repeated is 65 ps.
        let d = w.delay(1.0e-3, 3.0e3);
        assert!((d - 65.0e-12).abs() < 5.0e-12, "d = {d:.3e}");
    }

    #[test]
    fn silicon_short_wire_is_elmore() {
        let w = WireModel::silicon_45nm();
        // 10 µm: Elmore ≈ 3k·2fF + 20Ω·2fF/2 ≈ 6 ps < repeated 0.65 ps?
        // Repeated would be 0.65 ps but you cannot beat the driver RC —
        // the min() keeps the smaller, which here is the repeated bound.
        let d = w.delay(10.0e-6, 3.0e3);
        assert!(d <= 6.1e-12);
        assert!(d > 0.0);
    }

    #[test]
    fn organic_wire_negligible_vs_gate() {
        let w = WireModel::organic();
        // 1 cm wire driven by a 1 MΩ organic gate vs a 100 µs gate delay.
        let rel = w.relative_cost(1.0e-2, 1.0e6, 100.0e-6);
        assert!(rel < 0.05, "organic relative wire cost {rel}");
    }

    #[test]
    fn silicon_wire_significant_vs_gate() {
        let w = WireModel::silicon_45nm();
        // 100 µm wire driven by a 3 kΩ gate vs a 15 ps FO4.
        let rel = w.relative_cost(100.0e-6, 3.0e3, 15.0e-12);
        assert!(rel > 0.3, "silicon relative wire cost {rel}");
    }

    #[test]
    fn delay_monotone_in_length() {
        for w in [WireModel::organic(), WireModel::silicon_45nm()] {
            let mut last = 0.0;
            for i in 1..20 {
                let d = w.delay(i as f64 * 1.0e-4, 5.0e3);
                assert!(d >= last);
                last = d;
            }
        }
    }
}
