//! Dynamic (precharge–evaluate) unipolar logic — the paper's closing §7
//! direction: “unipolar transistor design favors the use of dynamic logic
//! because only roughly half the transistors are needed and switching time
//! can be faster with the tradeoff being possibly worse power.”
//!
//! A p-type dynamic gate precharges its output to VDD while the clock is
//! low (the precharge FET's gate sees CLK = 0 and conducts), then
//! evaluates while the clock is high: the p-type evaluation network from
//! OUT down to GND conducts when its inputs are low, discharging OUT.
//! The stage is therefore *non-inverting* (domino-style): `out = AND` of
//! the input-low conditions.

use std::sync::Arc;

use bdc_circuit::{
    crossing_time, BatchLane, BatchTranSolver, Circuit, CircuitError, TranSolver, Waveform,
};
use bdc_device::{DeviceModel, Level61Model, TftParams};

use crate::topology::{GateCircuit, OrganicSizing, ORGANIC_CHANNEL_L};
use crate::tracker::CrossTracker;

fn otft(w: f64) -> Arc<dyn DeviceModel> {
    Arc::new(Level61Model::new(TftParams::pentacene_sized(
        w,
        ORGANIC_CHANNEL_L,
    )))
}

/// Builds a dynamic unipolar gate with `fan_in` series evaluation
/// transistors (1 = dynamic buffer, 2 = dynamic AND2-of-lows, …).
///
/// `inputs[0]` is the clock; logic inputs follow.
///
/// # Panics
/// Panics if `vdd <= 0` or `fan_in == 0`.
pub fn organic_dynamic_gate(fan_in: usize, sizing: &OrganicSizing, vdd: f64) -> GateCircuit {
    assert!(vdd > 0.0, "vdd must be positive");
    assert!(fan_in >= 1, "dynamic gate needs at least one input");
    let mut c = Circuit::new();
    let n_vdd = c.node("vdd");
    let n_clk = c.node("clk");
    let n_out = c.node("out");
    let vdd_src = c.vsource(n_vdd, Circuit::GND, vdd);
    let clk_src = c.vsource(n_clk, Circuit::GND, 0.0);
    // Precharge FET: conducts while CLK is low, pulling OUT to VDD.
    c.fet(n_out, n_clk, n_vdd, otft(sizing.output_drive_w));
    // Evaluation stack: OUT → … → GND through p-FETs gated by the inputs.
    let mut inputs = vec![("CLK".to_string(), clk_src)];
    let mut src = n_out;
    // The transistors saved by dropping the level-shifter stage are
    // reinvested in the evaluation stack (×2.5 width), keeping total drawn
    // width comparable to the 4-transistor pseudo-E cell.
    let w_eval = sizing.output_drive_w * 2.5 * fan_in as f64;
    for i in 0..fan_in {
        let n_in = c.node(&format!("in{i}"));
        let in_src = c.vsource(n_in, Circuit::GND, 0.0);
        let dst = if i + 1 == fan_in {
            Circuit::GND
        } else {
            c.node(&format!("ev{i}"))
        };
        c.fet(dst, n_in, src, otft(w_eval));
        src = dst;
        inputs.push((format!("A{i}"), in_src));
    }
    let params = TftParams::pentacene_sized(sizing.output_drive_w, ORGANIC_CHANNEL_L);
    GateCircuit {
        circuit: c,
        inputs,
        output: n_out,
        vdd_src,
        vss_src: None,
        vdd,
        vss: 0.0,
        transistor_count: 1 + fan_in,
        input_cap: params.gate_cap() + 2.0 * params.overlap_cap(),
        side_inputs_high: false,
    }
}

/// Measured behaviour of a dynamic gate over one precharge/evaluate cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicTiming {
    /// Time from the evaluate clock edge to the output crossing mid-rail
    /// with conducting inputs (s).
    pub evaluate_delay: f64,
    /// Time for the precharge phase to restore the output (s).
    pub precharge_delay: f64,
    /// Charge drawn from VDD over the full cycle (C) — the energy cost the
    /// paper warns about is `q·VDD` every cycle regardless of data.
    pub cycle_charge: f64,
}

/// Simulates one precharge→evaluate cycle with all logic inputs held low
/// (the conducting case) and `load` farads on the output.
///
/// # Errors
/// Propagates transient-simulation failures, and reports `NoConvergence`
/// if the output never discharges during evaluation.
pub fn characterize_dynamic(
    gate: &GateCircuit,
    load: f64,
    phase: f64,
) -> Result<DynamicTiming, CircuitError> {
    let mut c = gate.circuit.clone();
    c.capacitor(gate.output, Circuit::GND, load);
    // Inputs low (conducting evaluation stack).
    for (_, s) in gate.inputs.iter().skip(1) {
        c.set_vsource(*s, 0.0);
    }
    // Three phases: start in evaluate (clock high, so the DC initial
    // condition has the output discharged), precharge at `phase`, evaluate
    // again at `2·phase`.
    let clk = dynamic_clock(gate.vdd, phase);
    let tstop = 3.0 * phase;
    let steps = 1800usize;
    let res = TranSolver::new(tstop / steps as f64, tstop)
        .with_step_clamp(0.5 * gate.vdd)
        .drive(gate.inputs[0].1, clk)
        .run(&c)?;
    let wf = res.node_waveform(gate.output);
    let mid = 0.5 * gate.vdd;
    // Precharge: the output rises past mid during [phase, 2·phase].
    let pre: Vec<(f64, f64)> = wf
        .iter()
        .copied()
        .filter(|(t, _)| (phase..=2.0 * phase).contains(t))
        .collect();
    let t_rise = crossing_time(&pre, mid).ok_or(CircuitError::NoConvergence {
        residual: f64::NAN,
        iterations: 0,
    })?;
    let precharge_delay = t_rise - phase;
    // Evaluate: the output falls past mid after 2·phase.
    let ev: Vec<(f64, f64)> = wf
        .iter()
        .copied()
        .filter(|(t, _)| *t >= 2.0 * phase)
        .collect();
    let t_fall = crossing_time(&ev, mid).ok_or(CircuitError::NoConvergence {
        residual: f64::NAN,
        iterations: 0,
    })?;
    let evaluate_delay = t_fall - 2.0 * phase;
    // Integrate |i_vdd| over the cycle for the charge cost.
    // (Approximate with the load charge + a crowbar term: q = C·V + ∫i.)
    let cycle_charge = load * gate.vdd;
    Ok(DynamicTiming {
        evaluate_delay,
        precharge_delay,
        cycle_charge,
    })
}

/// The precharge/evaluate clock shared by every load lane.
fn dynamic_clock(vdd: f64, phase: f64) -> Waveform {
    Waveform::Pwl(vec![
        (0.0, vdd),
        (phase, vdd),
        (phase * 1.01, 0.0),
        (2.0 * phase, 0.0),
        (2.0 * phase * 1.005, vdd),
        (3.0 * phase, vdd),
    ])
}

/// Batched multi-load variant of [`characterize_dynamic`]: lanes share the
/// gate, clock, and time axis and differ only in the output capacitor, so
/// a chunk of the load sweep advances through the lockstep SoA kernel in
/// one call. Results are bit-identical to calling [`characterize_dynamic`]
/// per load (the scalar path is taken when [`bdc_exec::batch_lanes`] is 1).
pub fn characterize_dynamic_loads(
    gate: &GateCircuit,
    loads: &[f64],
    phase: f64,
) -> Vec<Result<DynamicTiming, CircuitError>> {
    let lanes = bdc_exec::batch_lanes();
    if lanes <= 1 || loads.len() <= 1 {
        return loads
            .iter()
            .map(|&ld| characterize_dynamic(gate, ld, phase))
            .collect();
    }
    loads
        .chunks(lanes)
        .flat_map(|chunk| dynamic_pack(gate, chunk, phase))
        .collect()
}

/// One lockstep batch of the load sweep. Each lane streams its output into
/// two trackers — the precharge rise inside `[phase, 2·phase]` and the
/// evaluate fall after `2·phase` — and retires once both are pinned.
fn dynamic_pack(
    gate: &GateCircuit,
    loads: &[f64],
    phase: f64,
) -> Vec<Result<DynamicTiming, CircuitError>> {
    let clk = dynamic_clock(gate.vdd, phase);
    let tstop = 3.0 * phase;
    let steps = 1800usize;
    let mid = 0.5 * gate.vdd;
    let batch: Vec<BatchLane> = loads
        .iter()
        .map(|&ld| {
            let mut c = gate.circuit.clone();
            c.capacitor(gate.output, Circuit::GND, ld);
            for (_, s) in gate.inputs.iter().skip(1) {
                c.set_vsource(*s, 0.0);
            }
            BatchLane::new(c).drive(gate.inputs[0].1, clk.clone())
        })
        .collect();
    let mut pre: Vec<CrossTracker> = loads
        .iter()
        .map(|_| CrossTracker::window(phase, 2.0 * phase, vec![mid]))
        .collect();
    let mut ev: Vec<CrossTracker> = loads
        .iter()
        .map(|_| CrossTracker::new(2.0 * phase, vec![mid]))
        .collect();
    let out_idx = gate.output.index() - 1;
    let outcomes = BatchTranSolver::new(tstop / steps as f64, tstop)
        .with_step_clamp(0.5 * gate.vdd)
        .run(&batch, |l, t, volts| {
            let v = volts[out_idx];
            pre[l].feed(t, v);
            ev[l].feed(t, v);
            !(pre[l].all_found() && ev[l].all_found())
        });
    outcomes
        .into_iter()
        .enumerate()
        .map(|(l, outcome)| {
            outcome?;
            // Same measurement (and error) order as the scalar path:
            // precharge crossing first, then evaluate.
            let t_rise = pre[l].time(0).ok_or(CircuitError::NoConvergence {
                residual: f64::NAN,
                iterations: 0,
            })?;
            let t_fall = ev[l].time(0).ok_or(CircuitError::NoConvergence {
                residual: f64::NAN,
                iterations: 0,
            })?;
            Ok(DynamicTiming {
                evaluate_delay: t_fall - 2.0 * phase,
                precharge_delay: t_rise - phase,
                cycle_charge: loads[l] * gate.vdd,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_gate, CharacterizeConfig};
    use crate::topology::{organic_inverter, OrganicStyle};

    #[test]
    fn dynamic_gate_evaluates_and_precharges() {
        let g = organic_dynamic_gate(1, &OrganicSizing::library_default(), 5.0);
        assert_eq!(g.transistor_count, 2);
        let t = characterize_dynamic(&g, 200.0e-12, 3.0e-3).expect("dynamic sim");
        assert!(
            t.evaluate_delay > 1.0e-6 && t.evaluate_delay < 3.0e-3,
            "{t:?}"
        );
        assert!(t.precharge_delay > 0.0 && t.precharge_delay < 3.0e-3);
    }

    #[test]
    fn dynamic_beats_static_speed_with_fewer_transistors() {
        // The §7 claim: ~half the transistors, faster switching.
        let sizing = OrganicSizing::library_default();
        let dynamic = organic_dynamic_gate(1, &sizing, 5.0);
        let static_inv = organic_inverter(OrganicStyle::PseudoE, &sizing, 5.0, -15.0);
        assert!(dynamic.transistor_count * 2 <= static_inv.transistor_count);

        let load = 200.0e-12;
        let t_dyn = characterize_dynamic(&dynamic, load, 3.0e-3).expect("dynamic");
        let cfg = CharacterizeConfig::organic();
        let t_static = characterize_gate(&static_inv, &cfg).expect("static");
        let d_static = t_static.delay_worst().lookup(60.0e-6, load);
        assert!(
            t_dyn.evaluate_delay < d_static,
            "dynamic {:.3e} vs static {:.3e}",
            t_dyn.evaluate_delay,
            d_static
        );
    }

    #[test]
    fn batched_load_sweep_is_bit_identical_to_scalar() {
        let g = organic_dynamic_gate(2, &OrganicSizing::library_default(), 5.0);
        let loads = [60.0e-12, 200.0e-12, 600.0e-12, 2.0e-9];
        let phase = 4.0e-3;
        // Call the pack directly so the test pins the batched kernel even
        // if the ambient environment (BDC_NO_BATCH) disables batching.
        let batched = dynamic_pack(&g, &loads, phase);
        for (&ld, b) in loads.iter().zip(&batched) {
            let s = characterize_dynamic(&g, ld, phase).expect("scalar");
            let b = b.as_ref().expect("batched");
            assert_eq!(s.evaluate_delay.to_bits(), b.evaluate_delay.to_bits());
            assert_eq!(s.precharge_delay.to_bits(), b.precharge_delay.to_bits());
            assert_eq!(s.cycle_charge.to_bits(), b.cycle_charge.to_bits());
        }
    }

    #[test]
    fn deeper_stacks_evaluate_slower() {
        let sizing = OrganicSizing::library_default();
        let g1 = organic_dynamic_gate(1, &sizing, 5.0);
        let g3 = organic_dynamic_gate(3, &sizing, 5.0);
        let t1 = characterize_dynamic(&g1, 200.0e-12, 4.0e-3).expect("1-deep");
        let t3 = characterize_dynamic(&g3, 200.0e-12, 4.0e-3).expect("3-deep");
        assert!(t3.evaluate_delay > t1.evaluate_delay);
    }
}
