//! Liberty-flavoured text serialization of characterized libraries.
//!
//! The real flow writes `.lib` files from SiliconSmart and reads them in
//! Design Compiler; here a compact line-oriented dialect captures the same
//! information (cells, NLDM tables, wire model, sequential constraints) and
//! round-trips losslessly, so characterized libraries can be cached on disk
//! instead of re-simulated.

use std::fmt::Write as _;

use crate::characterize::GateTiming;
use crate::library::{Cell, CellKind, CellLibrary, DffTiming, ProcessKind};
use crate::nldm::NldmTable;
use crate::wire::WireModel;

/// Errors raised while parsing a library file.
#[derive(Debug, Clone, PartialEq)]
pub enum LibertyError {
    /// Unexpected or missing token.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The file parsed but did not contain a complete library.
    Incomplete(String),
}

impl std::fmt::Display for LibertyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LibertyError::Parse { line, message } => write!(f, "line {line}: {message}"),
            LibertyError::Incomplete(what) => write!(f, "incomplete library: missing {what}"),
        }
    }
}

impl std::error::Error for LibertyError {}

/// Serializes a library to the text dialect.
pub fn write_library(lib: &CellLibrary) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "library {}", lib.name);
    let _ = writeln!(
        s,
        "process {}",
        match lib.process {
            ProcessKind::Organic => "organic",
            ProcessKind::Silicon45 => "silicon45",
        }
    );
    let _ = writeln!(s, "vdd {:e}", lib.vdd);
    let _ = writeln!(s, "vss {:e}", lib.vss);
    let rep = lib
        .wire
        .repeated_s_per_m
        .map(|v| format!("{v:e}"))
        .unwrap_or_else(|| "none".into());
    let _ = writeln!(
        s,
        "wire {:e} {:e} {rep}",
        lib.wire.r_per_m, lib.wire.c_per_m
    );
    let _ = writeln!(
        s,
        "dff_timing {:e} {:e} {:e}",
        lib.dff.setup, lib.dff.hold, lib.dff.clk_to_q
    );
    for cell in lib.cells() {
        let _ = writeln!(s, "cell {}", cell.kind.name());
        let _ = writeln!(s, "area {:e}", cell.area);
        let _ = writeln!(s, "input_cap {:e}", cell.input_cap);
        let _ = writeln!(s, "leakage {:e}", cell.leakage_w);
        let _ = writeln!(s, "switching_energy {:e}", cell.switching_energy);
        write_table(&mut s, "delay_rise", &cell.timing.delay_rise);
        write_table(&mut s, "delay_fall", &cell.timing.delay_fall);
        write_table(&mut s, "out_slew", &cell.timing.out_slew);
        let _ = writeln!(s, "end_cell");
    }
    let _ = writeln!(s, "end_library");
    s
}

fn write_table(s: &mut String, name: &str, t: &NldmTable) {
    let fmt_axis = |a: &[f64]| {
        a.iter()
            .map(|v| format!("{v:e}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let _ = writeln!(s, "table {name}");
    let _ = writeln!(s, "slews {}", fmt_axis(t.slews()));
    let _ = writeln!(s, "loads {}", fmt_axis(t.loads()));
    for row in t.values() {
        let _ = writeln!(s, "row {}", fmt_axis(row));
    }
    let _ = writeln!(s, "end_table");
}

/// Parses the text dialect back into a [`CellLibrary`].
///
/// # Errors
/// Returns [`LibertyError`] for malformed input or incomplete libraries.
pub fn parse_library(text: &str) -> Result<CellLibrary, LibertyError> {
    let mut lines = text.lines().enumerate().peekable();
    let mut name = None;
    let mut process = None;
    let mut vdd = None;
    let mut vss = None;
    let mut wire = None;
    let mut dff = None;
    let mut cells: Vec<Cell> = Vec::new();

    let err = |line: usize, message: &str| LibertyError::Parse {
        line: line + 1,
        message: message.into(),
    };

    while let Some((ln, raw)) = lines.next() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let mut tok = line.split_whitespace();
        let key = tok.next().unwrap();
        match key {
            "library" => name = Some(tok.collect::<Vec<_>>().join(" ")),
            "process" => {
                process = Some(match tok.next() {
                    Some("organic") => ProcessKind::Organic,
                    Some("silicon45") => ProcessKind::Silicon45,
                    other => return Err(err(ln, &format!("unknown process {other:?}"))),
                })
            }
            "vdd" => vdd = Some(parse_f64(tok.next(), ln)?),
            "vss" => vss = Some(parse_f64(tok.next(), ln)?),
            "wire" => {
                let r = parse_f64(tok.next(), ln)?;
                let c = parse_f64(tok.next(), ln)?;
                let rep = match tok.next() {
                    Some("none") | None => None,
                    Some(v) => Some(
                        v.parse::<f64>()
                            .map_err(|_| err(ln, "bad repeated value"))?,
                    ),
                };
                wire = Some(WireModel {
                    r_per_m: r,
                    c_per_m: c,
                    repeated_s_per_m: rep,
                });
            }
            "dff_timing" => {
                dff = Some(DffTiming {
                    setup: parse_f64(tok.next(), ln)?,
                    hold: parse_f64(tok.next(), ln)?,
                    clk_to_q: parse_f64(tok.next(), ln)?,
                });
            }
            "cell" => {
                let kind_name = tok.next().ok_or_else(|| err(ln, "cell needs a name"))?;
                let kind = CellKind::from_name(kind_name)
                    .ok_or_else(|| err(ln, &format!("unknown cell {kind_name}")))?;
                let cell = parse_cell(kind, &mut lines)?;
                cells.push(cell);
            }
            "end_library" => break,
            other => return Err(err(ln, &format!("unexpected token {other}"))),
        }
    }

    let name = name.ok_or_else(|| LibertyError::Incomplete("library name".into()))?;
    let process = process.ok_or_else(|| LibertyError::Incomplete("process".into()))?;
    let vdd = vdd.ok_or_else(|| LibertyError::Incomplete("vdd".into()))?;
    let vss = vss.ok_or_else(|| LibertyError::Incomplete("vss".into()))?;
    let wire = wire.ok_or_else(|| LibertyError::Incomplete("wire".into()))?;
    let dff = dff.ok_or_else(|| LibertyError::Incomplete("dff_timing".into()))?;
    if cells.len() != 6 {
        return Err(LibertyError::Incomplete(format!(
            "6 cells (got {})",
            cells.len()
        )));
    }
    Ok(CellLibrary::from_cells(
        name, process, vdd, vss, wire, dff, cells,
    ))
}

fn parse_f64(tok: Option<&str>, line: usize) -> Result<f64, LibertyError> {
    tok.ok_or(LibertyError::Parse {
        line: line + 1,
        message: "missing number".into(),
    })?
    .parse::<f64>()
    .map_err(|_| LibertyError::Parse {
        line: line + 1,
        message: "bad number".into(),
    })
}

type Lines<'a> = std::iter::Peekable<std::iter::Enumerate<std::str::Lines<'a>>>;

fn parse_cell(kind: CellKind, lines: &mut Lines<'_>) -> Result<Cell, LibertyError> {
    let mut area = None;
    let mut input_cap = None;
    let mut leakage = 0.0;
    let mut switching_energy = 0.0;
    let mut delay_rise = None;
    let mut delay_fall = None;
    let mut out_slew = None;
    while let Some((ln, raw)) = lines.next() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let mut tok = line.split_whitespace();
        match tok.next().unwrap() {
            "area" => area = Some(parse_f64(tok.next(), ln)?),
            "input_cap" => input_cap = Some(parse_f64(tok.next(), ln)?),
            "leakage" => leakage = parse_f64(tok.next(), ln)?,
            "switching_energy" => switching_energy = parse_f64(tok.next(), ln)?,
            "table" => {
                let tname = tok.next().unwrap_or("");
                let table = parse_table(lines)?;
                match tname {
                    "delay_rise" => delay_rise = Some(table),
                    "delay_fall" => delay_fall = Some(table),
                    "out_slew" => out_slew = Some(table),
                    other => {
                        return Err(LibertyError::Parse {
                            line: ln + 1,
                            message: format!("unknown table {other}"),
                        })
                    }
                }
            }
            "end_cell" => break,
            other => {
                return Err(LibertyError::Parse {
                    line: ln + 1,
                    message: format!("unexpected token {other} in cell"),
                })
            }
        }
    }
    Ok(Cell {
        kind,
        area: area.ok_or_else(|| LibertyError::Incomplete("cell area".into()))?,
        input_cap: input_cap.ok_or_else(|| LibertyError::Incomplete("cell input_cap".into()))?,
        leakage_w: leakage,
        switching_energy,
        timing: GateTiming {
            delay_rise: delay_rise.ok_or_else(|| LibertyError::Incomplete("delay_rise".into()))?,
            delay_fall: delay_fall.ok_or_else(|| LibertyError::Incomplete("delay_fall".into()))?,
            out_slew: out_slew.ok_or_else(|| LibertyError::Incomplete("out_slew".into()))?,
        },
    })
}

fn parse_table(lines: &mut Lines<'_>) -> Result<NldmTable, LibertyError> {
    let mut slews = None;
    let mut loads = None;
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (ln, raw) in lines.by_ref() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let mut tok = line.split_whitespace();
        let parse_axis = |tok: std::str::SplitWhitespace<'_>, ln: usize| {
            tok.map(|t| {
                t.parse::<f64>().map_err(|_| LibertyError::Parse {
                    line: ln + 1,
                    message: format!("bad number {t}"),
                })
            })
            .collect::<Result<Vec<f64>, _>>()
        };
        match tok.next().unwrap() {
            "slews" => slews = Some(parse_axis(tok, ln)?),
            "loads" => loads = Some(parse_axis(tok, ln)?),
            "row" => rows.push(parse_axis(tok, ln)?),
            "end_table" => break,
            other => {
                return Err(LibertyError::Parse {
                    line: ln + 1,
                    message: format!("unexpected token {other} in table"),
                })
            }
        }
    }
    let slews = slews.ok_or_else(|| LibertyError::Incomplete("table slews".into()))?;
    let loads = loads.ok_or_else(|| LibertyError::Incomplete("table loads".into()))?;
    Ok(NldmTable::new(slews, loads, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_synthetic_library() {
        let lib = CellLibrary::synthetic(ProcessKind::Organic, 1.1e-4);
        let text = write_library(&lib);
        let back = parse_library(&text).expect("parse");
        assert_eq!(back.name, lib.name);
        assert_eq!(back.process, lib.process);
        assert_eq!(back.vdd, lib.vdd);
        assert_eq!(back.wire, lib.wire);
        assert_eq!(back.dff, lib.dff);
        for kind in CellKind::all() {
            let a = lib.cell(kind);
            let b = back.cell(kind);
            assert_eq!(a.area, b.area);
            assert_eq!(a.input_cap, b.input_cap);
            assert_eq!(a.timing.delay_rise, b.timing.delay_rise);
            assert_eq!(a.timing.out_slew, b.timing.out_slew);
        }
    }

    #[test]
    fn round_trip_silicon_flavor() {
        let lib = CellLibrary::synthetic(ProcessKind::Silicon45, 1.4e-11);
        let back = parse_library(&write_library(&lib)).expect("parse");
        assert_eq!(back.wire.repeated_s_per_m, lib.wire.repeated_s_per_m);
        assert_eq!(
            back.cell(CellKind::Dff).timing.delay_fall,
            lib.cell(CellKind::Dff).timing.delay_fall
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            parse_library("nonsense here"),
            Err(LibertyError::Parse { .. })
        ));
        assert!(matches!(
            parse_library(""),
            Err(LibertyError::Incomplete(_))
        ));
    }

    #[test]
    fn parse_reports_missing_cells() {
        let lib = CellLibrary::synthetic(ProcessKind::Organic, 1.0);
        let mut text = write_library(&lib);
        // Drop the last cell block.
        let idx = text.rfind("cell ").unwrap();
        text.truncate(idx);
        text.push_str("end_library\n");
        match parse_library(&text) {
            Err(LibertyError::Incomplete(m)) => assert!(m.contains("6 cells")),
            other => panic!("expected Incomplete, got {other:?}"),
        }
    }

    #[test]
    fn error_display_mentions_line() {
        let e = LibertyError::Parse {
            line: 42,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("42"));
    }
}
