//! Characterized cell libraries.
//!
//! A [`CellLibrary`] is the interface between the analog world
//! (`bdc-device` + `bdc-circuit`) and the digital world (`bdc-synth`): six
//! cells (INV, NAND2, NAND3, NOR2, NOR3, DFF) with NLDM timing, input
//! capacitance and area, plus the process's supply rails and wire model.
//!
//! The organic library mirrors the paper's §4.3–4.4 (pseudo-E cells at
//! VDD = 5 V, VSS = −15 V); the silicon library is the reduced 6-cell 45 nm
//! comparison library of §5.1, characterized through the same flow.

use crate::characterize::{
    characterize_gate, measure_static_power, CharacterizeConfig, GateTiming,
};
use crate::nldm::NldmTable;
use crate::topology::{cmos_gate, organic_gate_shifted, GateCircuit, LogicKind, OrganicSizing};
use crate::wire::WireModel;
use bdc_circuit::CircuitError;

/// The six cell kinds of the paper's library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// D-flip-flop with preset and clear.
    Dff,
}

impl CellKind {
    /// All six kinds.
    pub fn all() -> [CellKind; 6] {
        [
            CellKind::Inv,
            CellKind::Nand2,
            CellKind::Nand3,
            CellKind::Nor2,
            CellKind::Nor3,
            CellKind::Dff,
        ]
    }

    /// The logic function, for combinational kinds.
    pub fn logic(self) -> Option<LogicKind> {
        match self {
            CellKind::Inv => Some(LogicKind::Inv),
            CellKind::Nand2 => Some(LogicKind::Nand2),
            CellKind::Nand3 => Some(LogicKind::Nand3),
            CellKind::Nor2 => Some(LogicKind::Nor2),
            CellKind::Nor3 => Some(LogicKind::Nor3),
            CellKind::Dff => None,
        }
    }

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Inv => "inv",
            CellKind::Nand2 => "nand2",
            CellKind::Nand3 => "nand3",
            CellKind::Nor2 => "nor2",
            CellKind::Nor3 => "nor3",
            CellKind::Dff => "dff",
        }
    }

    /// Parses a canonical name.
    pub fn from_name(s: &str) -> Option<CellKind> {
        CellKind::all().into_iter().find(|k| k.name() == s)
    }
}

/// Which process a library models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessKind {
    /// Pentacene OTFT, unipolar p-type pseudo-E logic.
    Organic,
    /// 45 nm-class bulk CMOS (the reduced comparison library).
    Silicon45,
}

/// One characterized cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Which of the six cells this is.
    pub kind: CellKind,
    /// Footprint area (µm²).
    pub area: f64,
    /// Capacitance of one input pin (F).
    pub input_cap: f64,
    /// Average static power across input states (W). Ratioed pseudo-E logic
    /// burns orders of magnitude more than CMOS here.
    pub leakage_w: f64,
    /// Energy per output transition (J), ≈ C_swing·V_DD² at a self-load.
    pub switching_energy: f64,
    /// NLDM timing (for the DFF this is the clk→Q arc).
    pub timing: GateTiming,
}

/// Sequential-cell timing parameters (s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DffTiming {
    /// Setup time before the clock edge.
    pub setup: f64,
    /// Hold time after the clock edge.
    pub hold: f64,
    /// Clock-to-Q nominal delay.
    pub clk_to_q: f64,
}

/// A characterized 6-cell library.
#[derive(Debug, Clone)]
pub struct CellLibrary {
    /// Human-readable name.
    pub name: String,
    /// Process this library models.
    pub process: ProcessKind,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Negative bias rail (V); 0 for CMOS.
    pub vss: f64,
    /// Interconnect model.
    pub wire: WireModel,
    /// Sequential timing.
    pub dff: DffTiming,
    cells: Vec<Cell>,
}

impl CellLibrary {
    /// Assembles a library from parts.
    ///
    /// # Panics
    /// Panics unless exactly the six [`CellKind`]s are present once each.
    pub fn from_cells(
        name: impl Into<String>,
        process: ProcessKind,
        vdd: f64,
        vss: f64,
        wire: WireModel,
        dff: DffTiming,
        cells: Vec<Cell>,
    ) -> Self {
        assert_eq!(cells.len(), 6, "a library has exactly six cells");
        for kind in CellKind::all() {
            assert_eq!(
                cells.iter().filter(|c| c.kind == kind).count(),
                1,
                "missing or duplicate cell {kind:?}"
            );
        }
        CellLibrary {
            name: name.into(),
            process,
            vdd,
            vss,
            wire,
            dff,
            cells,
        }
    }

    /// Looks up a cell.
    pub fn cell(&self, kind: CellKind) -> &Cell {
        self.cells
            .iter()
            .find(|c| c.kind == kind)
            .expect("all six cells present")
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Worst-case delay of `kind` at (`slew`, `load`).
    pub fn delay(&self, kind: CellKind, slew: f64, load: f64) -> f64 {
        self.cell(kind).timing.delay_worst().lookup(slew, load)
    }

    /// A nominal "fanout-of-4-like" gate delay: the inverter driving four
    /// copies of itself at a mid-grid input slew. This is the natural time
    /// unit of the process.
    pub fn fo4_delay(&self) -> f64 {
        let inv = self.cell(CellKind::Inv);
        let slews = inv.timing.delay_rise.slews();
        let slew = slews[slews.len() / 2];
        inv.timing.delay_worst().lookup(slew, 4.0 * inv.input_cap)
    }

    /// Effective driver resistance of the inverter (Ω), for wire Elmore
    /// calculations.
    pub fn drive_resistance(&self) -> f64 {
        self.cell(CellKind::Inv)
            .timing
            .delay_worst()
            .drive_resistance()
    }

    /// Replaces the wire model (used by the Figure 15 "w/o wire" ablation).
    pub fn with_wire(mut self, wire: WireModel) -> Self {
        self.wire = wire;
        self
    }

    /// A structural FNV-1a fingerprint of everything the library means:
    /// rails, wire model, sequential timing, and every cell's area, caps,
    /// power, and NLDM surfaces (axes and values, bit-exact). Two
    /// libraries with equal fingerprints time every netlist identically.
    ///
    /// Computed on demand from content — never stored — so it can't go
    /// stale through `with_wire` or field mutation. It replaces hashing
    /// the full Liberty text in downstream cache keys: same sensitivity,
    /// without rendering ~30 KB of text per key derivation.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        struct Fnv(u64);
        impl Fnv {
            fn bytes(&mut self, b: &[u8]) {
                for &x in b {
                    self.0 ^= u64::from(x);
                    self.0 = self.0.wrapping_mul(PRIME);
                }
            }
            fn f64(&mut self, v: f64) {
                self.bytes(&v.to_bits().to_le_bytes());
            }
            fn axis(&mut self, a: &[f64]) {
                self.bytes(&(a.len() as u64).to_le_bytes());
                for &v in a {
                    self.f64(v);
                }
            }
            fn table(&mut self, t: &NldmTable) {
                self.axis(t.slews());
                self.axis(t.loads());
                for row in t.values() {
                    self.axis(row);
                }
            }
        }
        let mut h = Fnv(OFFSET);
        h.bytes(b"bdc-libfp-v1");
        h.bytes(self.name.as_bytes());
        h.bytes(match self.process {
            ProcessKind::Organic => b"organic",
            ProcessKind::Silicon45 => b"silicon",
        });
        h.f64(self.vdd);
        h.f64(self.vss);
        h.f64(self.wire.r_per_m);
        h.f64(self.wire.c_per_m);
        match self.wire.repeated_s_per_m {
            None => h.bytes(b"n"),
            Some(v) => {
                h.bytes(b"s");
                h.f64(v);
            }
        }
        h.f64(self.dff.setup);
        h.f64(self.dff.hold);
        h.f64(self.dff.clk_to_q);
        for cell in &self.cells {
            h.bytes(cell.kind.name().as_bytes());
            h.f64(cell.area);
            h.f64(cell.input_cap);
            h.f64(cell.leakage_w);
            h.f64(cell.switching_energy);
            h.table(&cell.timing.delay_rise);
            h.table(&cell.timing.delay_fall);
            h.table(&cell.timing.out_slew);
        }
        h.0
    }

    /// A synthetic library with analytically chosen constant delays — no
    /// circuit simulation. Intended for fast unit tests and examples that
    /// exercise synthesis/STA machinery rather than device physics.
    ///
    /// `gate_delay` sets the inverter delay (s); other cells scale from it
    /// with typical ratios. The wire model still matches the process.
    pub fn synthetic(process: ProcessKind, gate_delay: f64) -> Self {
        let (vdd, vss, wire, cap_scale, area_scale) = match process {
            ProcessKind::Organic => (5.0, -15.0, WireModel::organic(), 250.0e-12, 8.5e5),
            ProcessKind::Silicon45 => (1.0, 0.0, WireModel::silicon_45nm(), 1.5e-15, 1.0),
        };
        let leak = match process {
            ProcessKind::Organic => 15.0e-6,
            ProcessKind::Silicon45 => 60.0e-9,
        };
        let mk = |kind: CellKind, d: f64, area: f64, cap: f64| Cell {
            kind,
            area: area * area_scale,
            input_cap: cap * cap_scale,
            leakage_w: leak * d,
            switching_energy: 2.0 * cap * cap_scale * vdd * vdd,
            timing: GateTiming {
                delay_rise: NldmTable::constant(d * gate_delay),
                delay_fall: NldmTable::constant(d * gate_delay * 1.15),
                out_slew: NldmTable::constant(d * gate_delay * 0.8),
            },
        };
        let cells = vec![
            mk(CellKind::Inv, 1.0, 1.0, 1.0),
            mk(CellKind::Nand2, 1.4, 1.4, 1.4),
            mk(CellKind::Nand3, 1.9, 1.9, 1.9),
            mk(CellKind::Nor2, 1.5, 1.4, 1.4),
            mk(CellKind::Nor3, 2.1, 1.9, 1.9),
            mk(
                CellKind::Dff,
                3.4,
                if matches!(process, ProcessKind::Organic) {
                    11.2
                } else {
                    5.9
                },
                1.4,
            ),
        ];
        let dff = DffTiming {
            setup: 2.8 * gate_delay,
            hold: 0.4 * gate_delay,
            clk_to_q: 3.1 * gate_delay,
        };
        CellLibrary::from_cells(
            format!("synthetic-{process:?}"),
            process,
            vdd,
            vss,
            wire,
            dff,
            cells,
        )
    }

    /// Builds and characterizes the organic pentacene library at the
    /// paper's operating point (VDD = 5 V, VSS = −15 V, §4.3.3).
    ///
    /// # Errors
    /// Propagates characterization failures.
    pub fn organic_pentacene() -> Result<Self, CircuitError> {
        Self::organic_at(5.0, -15.0)
    }

    /// Organic library at explicit rails (the VDD sweep of Figure 7 uses
    /// this).
    ///
    /// # Errors
    /// Propagates characterization failures.
    pub fn organic_at(vdd: f64, vss: f64) -> Result<Self, CircuitError> {
        Self::organic_at_shifted(vdd, vss, 0.0)
    }

    /// Organic library with a global threshold-voltage shift `delta_vt`
    /// (V) on every transistor — the library-level entry point of the
    /// `bdc sweep` parameter machinery. `delta_vt = 0.0` is bit-identical
    /// to [`CellLibrary::organic_at`].
    ///
    /// # Errors
    /// Propagates characterization failures.
    pub fn organic_at_shifted(vdd: f64, vss: f64, delta_vt: f64) -> Result<Self, CircuitError> {
        let sizing = OrganicSizing::library_default();
        let cfg = CharacterizeConfig::organic();
        let mut cells = Vec::new();
        for kind in LogicKind::all() {
            cells.push(build_organic_cell(kind, &sizing, vdd, vss, delta_vt, &cfg)?);
        }
        Ok(assemble_organic_library(cells, vdd, vss))
    }

    /// Builds and characterizes the reduced 6-cell 45 nm silicon library.
    ///
    /// # Errors
    /// Propagates characterization failures.
    pub fn silicon_45nm() -> Result<Self, CircuitError> {
        let vdd = 1.0;
        let cfg = CharacterizeConfig::silicon();
        let mut cells = Vec::new();
        for kind in LogicKind::all() {
            cells.push(build_silicon_cell(kind, 450.0e-9, vdd, &cfg)?);
        }
        Ok(assemble_silicon_library(cells, vdd))
    }
}

/// Characterizes one organic pseudo-E cell — the per-cell unit of the
/// stage cache. Callers that cache per cell build each combinational cell
/// independently (possibly loading siblings from cache) and then fold them
/// through [`assemble_organic_library`]; the result is bit-identical to
/// [`CellLibrary::organic_at_shifted`], which is this loop inlined.
///
/// # Errors
/// Propagates characterization failures.
pub fn build_organic_cell(
    kind: LogicKind,
    sizing: &OrganicSizing,
    vdd: f64,
    vss: f64,
    delta_vt: f64,
    cfg: &CharacterizeConfig,
) -> Result<Cell, CircuitError> {
    let gate = organic_gate_shifted(kind, sizing, vdd, vss, delta_vt);
    let timing = characterize_gate(&gate, cfg)?;
    let leakage_w = measure_static_power(&gate)?;
    Ok(Cell {
        kind: logic_to_cell(kind),
        area: organic_gate_area(&gate),
        input_cap: gate.input_cap,
        leakage_w,
        switching_energy: 2.0 * gate.input_cap * vdd * vdd,
        timing,
    })
}

/// Characterizes one silicon CMOS cell (per-cell stage-cache unit; see
/// [`build_organic_cell`]).
///
/// # Errors
/// Propagates characterization failures.
pub fn build_silicon_cell(
    kind: LogicKind,
    l: f64,
    vdd: f64,
    cfg: &CharacterizeConfig,
) -> Result<Cell, CircuitError> {
    let gate = cmos_gate(kind, l, vdd);
    let timing = characterize_gate(&gate, cfg)?;
    let leakage_w = measure_static_power(&gate)?;
    Ok(Cell {
        kind: logic_to_cell(kind),
        area: silicon_gate_area(kind),
        input_cap: gate.input_cap,
        leakage_w,
        switching_energy: 2.0 * gate.input_cap * vdd * vdd,
        timing,
    })
}

/// Folds the five characterized combinational organic cells into the full
/// library: derives the DFF from the NAND2 and attaches rails, wire model
/// and name. `cells` must be the five combinational cells in
/// [`LogicKind::all`] order.
pub fn assemble_organic_library(mut cells: Vec<Cell>, vdd: f64, vss: f64) -> CellLibrary {
    let (dff_cell, dff) = derive_dff(&cells, 8.0);
    cells.push(dff_cell);
    CellLibrary::from_cells(
        "pentacene-pseudoE",
        ProcessKind::Organic,
        vdd,
        vss,
        WireModel::organic(),
        dff,
        cells,
    )
}

/// Folds the five characterized combinational silicon cells into the full
/// library (see [`assemble_organic_library`]).
pub fn assemble_silicon_library(mut cells: Vec<Cell>, vdd: f64) -> CellLibrary {
    let (dff_cell, dff) = derive_dff(&cells, 4.2);
    cells.push(dff_cell);
    CellLibrary::from_cells(
        "reduced-45nm",
        ProcessKind::Silicon45,
        vdd,
        0.0,
        WireModel::silicon_45nm(),
        dff,
        cells,
    )
}

fn logic_to_cell(kind: LogicKind) -> CellKind {
    match kind {
        LogicKind::Inv => CellKind::Inv,
        LogicKind::Nand2 => CellKind::Nand2,
        LogicKind::Nand3 => CellKind::Nand3,
        LogicKind::Nor2 => CellKind::Nor2,
        LogicKind::Nor3 => CellKind::Nor3,
    }
}

/// Area of an organic cell (µm²): every transistor occupies
/// (W + routing margin) × (L + 2·overlap + margin), shadow-mask rules.
fn organic_gate_area(gate: &GateCircuit) -> f64 {
    // Reconstruct widths is awkward post-hoc; approximate from transistor
    // count and input structure: the pseudo-E cells are dominated by their
    // output stage. Margins per shadow-mask alignment: 40 µm each side.
    let um = 1.0e6;
    let l_eff = (crate::topology::ORGANIC_CHANNEL_L * um) + 2.0 * 20.0 + 60.0;
    // Average drawn width across the cell's transistors (library default
    // sizing): (400 + 100 + 1000 + 500)/4 = 500 µm.
    let w_avg = 500.0 + 80.0;
    gate.transistor_count as f64 * w_avg * l_eff
}

/// Area of a silicon cell (µm²), standard-cell track estimates at 45 nm.
fn silicon_gate_area(kind: LogicKind) -> f64 {
    match kind {
        LogicKind::Inv => 1.0,
        LogicKind::Nand2 | LogicKind::Nor2 => 1.4,
        LogicKind::Nand3 | LogicKind::Nor3 => 1.9,
    }
}

/// Derives the DFF cell from the characterized NAND2: the flip-flop is the
/// classic 6-NAND edge-triggered structure with preset/clear, so its timing
/// and area are NAND multiples. `area_factor` is the DFF/NAND2 area ratio
/// (larger in the organic process, where each pseudo-E gate carries a
/// level-shifter stage and registers cannot share it).
fn derive_dff(cells: &[Cell], area_factor: f64) -> (Cell, DffTiming) {
    let nand2 = cells
        .iter()
        .find(|c| c.kind == CellKind::Nand2)
        .expect("nand2 characterized");
    let slews = nand2.timing.delay_rise.slews();
    let mid_slew = slews[slews.len() / 2];
    let d_nom = nand2
        .timing
        .delay_worst()
        .lookup(mid_slew, 2.0 * nand2.input_cap);
    let dff = DffTiming {
        setup: 2.0 * d_nom,
        hold: 0.3 * d_nom,
        clk_to_q: 2.2 * d_nom,
    };
    // clk→Q arc: two internal NAND stages, load-dependent like the NAND.
    let timing = GateTiming {
        delay_rise: nand2.timing.delay_rise.map(|d| d + 1.2 * d_nom),
        delay_fall: nand2.timing.delay_fall.map(|d| d + 1.2 * d_nom),
        out_slew: nand2.timing.out_slew.clone(),
    };
    let cell = Cell {
        kind: CellKind::Dff,
        area: nand2.area * area_factor,
        input_cap: nand2.input_cap,
        leakage_w: nand2.leakage_w * 0.75 * area_factor,
        switching_energy: nand2.switching_energy * 2.0,
        timing,
    };
    (cell, dff)
}

// ---------------------------------------------------------------------------
// Per-cell artifact serialization (the stage cache's on-disk unit)
// ---------------------------------------------------------------------------

fn f64_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_f64_hex(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Serializes one characterized cell as a bit-exact text artifact
/// (`bdccell v1`): every `f64` is written as the hex of its bit pattern,
/// so [`parse_cell_text`] reconstructs the exact same values and a cell
/// loaded from cache is indistinguishable from a freshly characterized
/// one.
pub fn write_cell_text(cell: &Cell) -> String {
    let mut out = String::new();
    out.push_str("bdccell v1\n");
    out.push_str(&format!("kind {}\n", cell.kind.name()));
    out.push_str(&format!("area {}\n", f64_hex(cell.area)));
    out.push_str(&format!("input_cap {}\n", f64_hex(cell.input_cap)));
    out.push_str(&format!("leakage_w {}\n", f64_hex(cell.leakage_w)));
    out.push_str(&format!(
        "switching_energy {}\n",
        f64_hex(cell.switching_energy)
    ));
    let mut table = |label: &str, t: &NldmTable| {
        out.push_str(&format!(
            "table {label} {} {}\n",
            t.slews().len(),
            t.loads().len()
        ));
        let axis = |name: &str, v: &[f64]| {
            let mut line = String::from(name);
            for x in v {
                line.push(' ');
                line.push_str(&f64_hex(*x));
            }
            line.push('\n');
            line
        };
        out.push_str(&axis("slews", t.slews()));
        out.push_str(&axis("loads", t.loads()));
        for row in t.values() {
            out.push_str(&axis("row", row));
        }
    };
    table("delay_rise", &cell.timing.delay_rise);
    table("delay_fall", &cell.timing.delay_fall);
    table("out_slew", &cell.timing.out_slew);
    out
}

/// Parses a `bdccell v1` artifact back into a [`Cell`]. Any malformed
/// input — wrong header, bad hex, short rows, non-increasing axes,
/// trailing junk — returns `None` (a cache miss), never a panic: the
/// stage cache treats corrupt artifacts as absent and recomputes.
pub fn parse_cell_text(text: &str) -> Option<Cell> {
    let mut lines = text.lines();
    if lines.next()? != "bdccell v1" {
        return None;
    }
    let mut field = |name: &str| -> Option<String> {
        let line = lines.next()?;
        let rest = line.strip_prefix(name)?.strip_prefix(' ')?;
        Some(rest.to_string())
    };
    let kind = CellKind::from_name(&field("kind")?)?;
    let area = parse_f64_hex(&field("area")?)?;
    let input_cap = parse_f64_hex(&field("input_cap")?)?;
    let leakage_w = parse_f64_hex(&field("leakage_w")?)?;
    let switching_energy = parse_f64_hex(&field("switching_energy")?)?;
    let mut table = |label: &str| -> Option<NldmTable> {
        let head = lines.next()?;
        let mut parts = head.split(' ');
        if parts.next()? != "table" || parts.next()? != label {
            return None;
        }
        let n_slews: usize = parts.next()?.parse().ok()?;
        let n_loads: usize = parts.next()?.parse().ok()?;
        if parts.next().is_some() || n_slews == 0 || n_loads == 0 {
            return None;
        }
        let mut axis = |name: &str, n: usize| -> Option<Vec<f64>> {
            let line = lines.next()?;
            let mut parts = line.split(' ');
            if parts.next()? != name {
                return None;
            }
            let v: Option<Vec<f64>> = parts.map(parse_f64_hex).collect();
            let v = v?;
            if v.len() != n {
                return None;
            }
            Some(v)
        };
        let slews = axis("slews", n_slews)?;
        let loads = axis("loads", n_loads)?;
        // NldmTable::new panics on non-increasing axes; validate here so
        // corruption stays a miss. NaN fails the `<` and is rejected too.
        for a in [&slews, &loads] {
            if !a.windows(2).all(|w| w[0] < w[1]) {
                return None;
            }
        }
        let mut values = Vec::with_capacity(n_slews);
        for _ in 0..n_slews {
            values.push(axis("row", n_loads)?);
        }
        Some(NldmTable::new(slews, loads, values))
    };
    let delay_rise = table("delay_rise")?;
    let delay_fall = table("delay_fall")?;
    let out_slew = table("out_slew")?;
    if lines.next().is_some() {
        return None;
    }
    Some(Cell {
        kind,
        area,
        input_cap,
        leakage_w,
        switching_energy,
        timing: GateTiming {
            delay_rise,
            delay_fall,
            out_slew,
        },
    })
}

/// Returns a load-independent summary row for reports: name, area, input
/// cap, and nominal delay.
pub fn cell_summary(lib: &CellLibrary) -> Vec<(String, f64, f64, f64)> {
    lib.cells()
        .iter()
        .map(|c| {
            let slews = c.timing.delay_rise.slews();
            let s = slews[slews.len() / 2];
            let d = c.timing.delay_worst().lookup(s, 2.0 * c.input_cap);
            (c.kind.name().to_string(), c.area, c.input_cap, d)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Full library construction is exercised end-to-end in the integration
    // tests; here we cover the pure-logic pieces with the synthetic library.

    #[test]
    fn cell_kind_roundtrip_names() {
        for k in CellKind::all() {
            assert_eq!(CellKind::from_name(k.name()), Some(k));
        }
        assert_eq!(CellKind::from_name("xor2"), None);
    }

    #[test]
    fn library_lookup_and_fo4() {
        let lib = CellLibrary::synthetic(ProcessKind::Silicon45, 1.0e-12);
        assert_eq!(lib.cell(CellKind::Nand3).kind, CellKind::Nand3);
        // Constant tables → fo4 = worst-case inv delay = 1.15 ps.
        assert!((lib.fo4_delay() - 1.15e-12).abs() < 1e-17);
        assert_eq!(lib.cells().len(), 6);
    }

    #[test]
    fn synthetic_processes_differ_where_they_should() {
        let org = CellLibrary::synthetic(ProcessKind::Organic, 1.0e-4);
        let si = CellLibrary::synthetic(ProcessKind::Silicon45, 1.5e-11);
        assert!(org.cell(CellKind::Inv).input_cap > 1.0e4 * si.cell(CellKind::Inv).input_cap);
        // Organic DFF is relatively larger vs its NAND2 than silicon's.
        let r_org = org.cell(CellKind::Dff).area / org.cell(CellKind::Nand2).area;
        let r_si = si.cell(CellKind::Dff).area / si.cell(CellKind::Nand2).area;
        assert!(
            r_org > 1.5 * r_si,
            "organic {r_org:.1} vs silicon {r_si:.1}"
        );
    }

    #[test]
    #[should_panic(expected = "exactly six cells")]
    fn from_cells_rejects_wrong_count() {
        let lib = CellLibrary::synthetic(ProcessKind::Organic, 1.0);
        let mut cells = lib.cells().to_vec();
        cells.pop();
        let dff = lib.dff;
        let _ = CellLibrary::from_cells(
            "bad",
            ProcessKind::Organic,
            5.0,
            -15.0,
            lib.wire,
            dff,
            cells,
        );
    }

    #[test]
    fn with_wire_swaps_model() {
        let lib = CellLibrary::synthetic(ProcessKind::Silicon45, 1.0);
        let lib = lib.with_wire(WireModel::ideal());
        assert_eq!(lib.wire.delay(1.0, 1.0e3), 0.0);
    }

    // A cell with multi-point tables and awkward bit patterns for the
    // round-trip tests (synthetic constants exercise only 1×1 tables).
    fn gridded_cell() -> Cell {
        let t = |scale: f64| {
            NldmTable::new(
                vec![1.0e-6, 3.0e-6, 9.0e-6],
                vec![1.0e-12, 2.0e-12],
                vec![
                    vec![scale, scale * 1.5],
                    vec![scale * 2.0, scale * 0.1],
                    vec![scale * std::f64::consts::PI, scale * 4.0],
                ],
            )
        };
        Cell {
            kind: CellKind::Nor3,
            area: 1234.5678,
            input_cap: 3.0e-13,
            leakage_w: 5.0e-9,
            switching_energy: 7.25e-15,
            timing: GateTiming {
                delay_rise: t(1.0e-9),
                delay_fall: t(1.3e-9),
                out_slew: t(0.8e-9),
            },
        }
    }

    #[test]
    fn cell_text_roundtrip_is_bit_exact() {
        let cell = gridded_cell();
        let text = write_cell_text(&cell);
        let back = parse_cell_text(&text).expect("parse");
        assert_eq!(back.kind, cell.kind);
        for (a, b) in [
            (back.area, cell.area),
            (back.input_cap, cell.input_cap),
            (back.leakage_w, cell.leakage_w),
            (back.switching_energy, cell.switching_energy),
        ] {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (ta, tb) in [
            (&back.timing.delay_rise, &cell.timing.delay_rise),
            (&back.timing.delay_fall, &cell.timing.delay_fall),
            (&back.timing.out_slew, &cell.timing.out_slew),
        ] {
            assert_eq!(ta.slews(), tb.slews());
            assert_eq!(ta.loads(), tb.loads());
            assert_eq!(ta.values(), tb.values());
        }
        // Re-serializing the parsed cell reproduces the exact artifact.
        assert_eq!(write_cell_text(&back), text);
    }

    #[test]
    fn malformed_cell_text_is_a_miss_not_a_panic() {
        let good = write_cell_text(&gridded_cell());
        assert!(parse_cell_text(&good).is_some());
        assert!(parse_cell_text("").is_none());
        assert!(parse_cell_text("bdccell v2\n").is_none());
        assert!(parse_cell_text(&good[..good.len() - 20]).is_none());
        assert!(parse_cell_text(&format!("{good}extra\n")).is_none());
        // Corrupt one hex digit of the slew axis into a non-increasing
        // (or NaN) axis: must reject before NldmTable::new can panic.
        let swapped = good.replace("slews", "loads").replacen("loads", "slews", 1);
        assert!(parse_cell_text(&swapped).is_none());
        let bad_hex = good.replacen("area ", "area z", 1);
        assert!(parse_cell_text(&bad_hex).is_none());
    }
}
