//! Characterized cell libraries.
//!
//! A [`CellLibrary`] is the interface between the analog world
//! (`bdc-device` + `bdc-circuit`) and the digital world (`bdc-synth`): six
//! cells (INV, NAND2, NAND3, NOR2, NOR3, DFF) with NLDM timing, input
//! capacitance and area, plus the process's supply rails and wire model.
//!
//! The organic library mirrors the paper's §4.3–4.4 (pseudo-E cells at
//! VDD = 5 V, VSS = −15 V); the silicon library is the reduced 6-cell 45 nm
//! comparison library of §5.1, characterized through the same flow.

use crate::characterize::{
    characterize_gate, measure_static_power, CharacterizeConfig, GateTiming,
};
use crate::nldm::NldmTable;
use crate::topology::{cmos_gate, organic_gate, GateCircuit, LogicKind, OrganicSizing};
use crate::wire::WireModel;
use bdc_circuit::CircuitError;

/// The six cell kinds of the paper's library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// D-flip-flop with preset and clear.
    Dff,
}

impl CellKind {
    /// All six kinds.
    pub fn all() -> [CellKind; 6] {
        [
            CellKind::Inv,
            CellKind::Nand2,
            CellKind::Nand3,
            CellKind::Nor2,
            CellKind::Nor3,
            CellKind::Dff,
        ]
    }

    /// The logic function, for combinational kinds.
    pub fn logic(self) -> Option<LogicKind> {
        match self {
            CellKind::Inv => Some(LogicKind::Inv),
            CellKind::Nand2 => Some(LogicKind::Nand2),
            CellKind::Nand3 => Some(LogicKind::Nand3),
            CellKind::Nor2 => Some(LogicKind::Nor2),
            CellKind::Nor3 => Some(LogicKind::Nor3),
            CellKind::Dff => None,
        }
    }

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Inv => "inv",
            CellKind::Nand2 => "nand2",
            CellKind::Nand3 => "nand3",
            CellKind::Nor2 => "nor2",
            CellKind::Nor3 => "nor3",
            CellKind::Dff => "dff",
        }
    }

    /// Parses a canonical name.
    pub fn from_name(s: &str) -> Option<CellKind> {
        CellKind::all().into_iter().find(|k| k.name() == s)
    }
}

/// Which process a library models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessKind {
    /// Pentacene OTFT, unipolar p-type pseudo-E logic.
    Organic,
    /// 45 nm-class bulk CMOS (the reduced comparison library).
    Silicon45,
}

/// One characterized cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Which of the six cells this is.
    pub kind: CellKind,
    /// Footprint area (µm²).
    pub area: f64,
    /// Capacitance of one input pin (F).
    pub input_cap: f64,
    /// Average static power across input states (W). Ratioed pseudo-E logic
    /// burns orders of magnitude more than CMOS here.
    pub leakage_w: f64,
    /// Energy per output transition (J), ≈ C_swing·V_DD² at a self-load.
    pub switching_energy: f64,
    /// NLDM timing (for the DFF this is the clk→Q arc).
    pub timing: GateTiming,
}

/// Sequential-cell timing parameters (s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DffTiming {
    /// Setup time before the clock edge.
    pub setup: f64,
    /// Hold time after the clock edge.
    pub hold: f64,
    /// Clock-to-Q nominal delay.
    pub clk_to_q: f64,
}

/// A characterized 6-cell library.
#[derive(Debug, Clone)]
pub struct CellLibrary {
    /// Human-readable name.
    pub name: String,
    /// Process this library models.
    pub process: ProcessKind,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Negative bias rail (V); 0 for CMOS.
    pub vss: f64,
    /// Interconnect model.
    pub wire: WireModel,
    /// Sequential timing.
    pub dff: DffTiming,
    cells: Vec<Cell>,
}

impl CellLibrary {
    /// Assembles a library from parts.
    ///
    /// # Panics
    /// Panics unless exactly the six [`CellKind`]s are present once each.
    pub fn from_cells(
        name: impl Into<String>,
        process: ProcessKind,
        vdd: f64,
        vss: f64,
        wire: WireModel,
        dff: DffTiming,
        cells: Vec<Cell>,
    ) -> Self {
        assert_eq!(cells.len(), 6, "a library has exactly six cells");
        for kind in CellKind::all() {
            assert_eq!(
                cells.iter().filter(|c| c.kind == kind).count(),
                1,
                "missing or duplicate cell {kind:?}"
            );
        }
        CellLibrary {
            name: name.into(),
            process,
            vdd,
            vss,
            wire,
            dff,
            cells,
        }
    }

    /// Looks up a cell.
    pub fn cell(&self, kind: CellKind) -> &Cell {
        self.cells
            .iter()
            .find(|c| c.kind == kind)
            .expect("all six cells present")
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Worst-case delay of `kind` at (`slew`, `load`).
    pub fn delay(&self, kind: CellKind, slew: f64, load: f64) -> f64 {
        self.cell(kind).timing.delay_worst().lookup(slew, load)
    }

    /// A nominal "fanout-of-4-like" gate delay: the inverter driving four
    /// copies of itself at a mid-grid input slew. This is the natural time
    /// unit of the process.
    pub fn fo4_delay(&self) -> f64 {
        let inv = self.cell(CellKind::Inv);
        let slews = inv.timing.delay_rise.slews();
        let slew = slews[slews.len() / 2];
        inv.timing.delay_worst().lookup(slew, 4.0 * inv.input_cap)
    }

    /// Effective driver resistance of the inverter (Ω), for wire Elmore
    /// calculations.
    pub fn drive_resistance(&self) -> f64 {
        self.cell(CellKind::Inv)
            .timing
            .delay_worst()
            .drive_resistance()
    }

    /// Replaces the wire model (used by the Figure 15 "w/o wire" ablation).
    pub fn with_wire(mut self, wire: WireModel) -> Self {
        self.wire = wire;
        self
    }

    /// A synthetic library with analytically chosen constant delays — no
    /// circuit simulation. Intended for fast unit tests and examples that
    /// exercise synthesis/STA machinery rather than device physics.
    ///
    /// `gate_delay` sets the inverter delay (s); other cells scale from it
    /// with typical ratios. The wire model still matches the process.
    pub fn synthetic(process: ProcessKind, gate_delay: f64) -> Self {
        let (vdd, vss, wire, cap_scale, area_scale) = match process {
            ProcessKind::Organic => (5.0, -15.0, WireModel::organic(), 250.0e-12, 8.5e5),
            ProcessKind::Silicon45 => (1.0, 0.0, WireModel::silicon_45nm(), 1.5e-15, 1.0),
        };
        let leak = match process {
            ProcessKind::Organic => 15.0e-6,
            ProcessKind::Silicon45 => 60.0e-9,
        };
        let mk = |kind: CellKind, d: f64, area: f64, cap: f64| Cell {
            kind,
            area: area * area_scale,
            input_cap: cap * cap_scale,
            leakage_w: leak * d,
            switching_energy: 2.0 * cap * cap_scale * vdd * vdd,
            timing: GateTiming {
                delay_rise: NldmTable::constant(d * gate_delay),
                delay_fall: NldmTable::constant(d * gate_delay * 1.15),
                out_slew: NldmTable::constant(d * gate_delay * 0.8),
            },
        };
        let cells = vec![
            mk(CellKind::Inv, 1.0, 1.0, 1.0),
            mk(CellKind::Nand2, 1.4, 1.4, 1.4),
            mk(CellKind::Nand3, 1.9, 1.9, 1.9),
            mk(CellKind::Nor2, 1.5, 1.4, 1.4),
            mk(CellKind::Nor3, 2.1, 1.9, 1.9),
            mk(
                CellKind::Dff,
                3.4,
                if matches!(process, ProcessKind::Organic) {
                    11.2
                } else {
                    5.9
                },
                1.4,
            ),
        ];
        let dff = DffTiming {
            setup: 2.8 * gate_delay,
            hold: 0.4 * gate_delay,
            clk_to_q: 3.1 * gate_delay,
        };
        CellLibrary::from_cells(
            format!("synthetic-{process:?}"),
            process,
            vdd,
            vss,
            wire,
            dff,
            cells,
        )
    }

    /// Builds and characterizes the organic pentacene library at the
    /// paper's operating point (VDD = 5 V, VSS = −15 V, §4.3.3).
    ///
    /// # Errors
    /// Propagates characterization failures.
    pub fn organic_pentacene() -> Result<Self, CircuitError> {
        Self::organic_at(5.0, -15.0)
    }

    /// Organic library at explicit rails (the VDD sweep of Figure 7 uses
    /// this).
    ///
    /// # Errors
    /// Propagates characterization failures.
    pub fn organic_at(vdd: f64, vss: f64) -> Result<Self, CircuitError> {
        let sizing = OrganicSizing::library_default();
        let cfg = CharacterizeConfig::organic();
        let mut cells = Vec::new();
        for kind in LogicKind::all() {
            let gate = organic_gate(kind, &sizing, vdd, vss);
            let timing = characterize_gate(&gate, &cfg)?;
            let leakage_w = measure_static_power(&gate)?;
            cells.push(Cell {
                kind: logic_to_cell(kind),
                area: organic_gate_area(&gate),
                input_cap: gate.input_cap,
                leakage_w,
                switching_energy: 2.0 * gate.input_cap * vdd * vdd,
                timing,
            });
        }
        let (dff_cell, dff) = derive_dff(&cells, 8.0);
        cells.push(dff_cell);
        Ok(CellLibrary::from_cells(
            "pentacene-pseudoE",
            ProcessKind::Organic,
            vdd,
            vss,
            WireModel::organic(),
            dff,
            cells,
        ))
    }

    /// Builds and characterizes the reduced 6-cell 45 nm silicon library.
    ///
    /// # Errors
    /// Propagates characterization failures.
    pub fn silicon_45nm() -> Result<Self, CircuitError> {
        let vdd = 1.0;
        let cfg = CharacterizeConfig::silicon();
        let mut cells = Vec::new();
        for kind in LogicKind::all() {
            let gate = cmos_gate(kind, 450.0e-9, vdd);
            let timing = characterize_gate(&gate, &cfg)?;
            let leakage_w = measure_static_power(&gate)?;
            cells.push(Cell {
                kind: logic_to_cell(kind),
                area: silicon_gate_area(kind),
                input_cap: gate.input_cap,
                leakage_w,
                switching_energy: 2.0 * gate.input_cap * vdd * vdd,
                timing,
            });
        }
        let (dff_cell, dff) = derive_dff(&cells, 4.2);
        cells.push(dff_cell);
        Ok(CellLibrary::from_cells(
            "reduced-45nm",
            ProcessKind::Silicon45,
            vdd,
            0.0,
            WireModel::silicon_45nm(),
            dff,
            cells,
        ))
    }
}

fn logic_to_cell(kind: LogicKind) -> CellKind {
    match kind {
        LogicKind::Inv => CellKind::Inv,
        LogicKind::Nand2 => CellKind::Nand2,
        LogicKind::Nand3 => CellKind::Nand3,
        LogicKind::Nor2 => CellKind::Nor2,
        LogicKind::Nor3 => CellKind::Nor3,
    }
}

/// Area of an organic cell (µm²): every transistor occupies
/// (W + routing margin) × (L + 2·overlap + margin), shadow-mask rules.
fn organic_gate_area(gate: &GateCircuit) -> f64 {
    // Reconstruct widths is awkward post-hoc; approximate from transistor
    // count and input structure: the pseudo-E cells are dominated by their
    // output stage. Margins per shadow-mask alignment: 40 µm each side.
    let um = 1.0e6;
    let l_eff = (crate::topology::ORGANIC_CHANNEL_L * um) + 2.0 * 20.0 + 60.0;
    // Average drawn width across the cell's transistors (library default
    // sizing): (400 + 100 + 1000 + 500)/4 = 500 µm.
    let w_avg = 500.0 + 80.0;
    gate.transistor_count as f64 * w_avg * l_eff
}

/// Area of a silicon cell (µm²), standard-cell track estimates at 45 nm.
fn silicon_gate_area(kind: LogicKind) -> f64 {
    match kind {
        LogicKind::Inv => 1.0,
        LogicKind::Nand2 | LogicKind::Nor2 => 1.4,
        LogicKind::Nand3 | LogicKind::Nor3 => 1.9,
    }
}

/// Derives the DFF cell from the characterized NAND2: the flip-flop is the
/// classic 6-NAND edge-triggered structure with preset/clear, so its timing
/// and area are NAND multiples. `area_factor` is the DFF/NAND2 area ratio
/// (larger in the organic process, where each pseudo-E gate carries a
/// level-shifter stage and registers cannot share it).
fn derive_dff(cells: &[Cell], area_factor: f64) -> (Cell, DffTiming) {
    let nand2 = cells
        .iter()
        .find(|c| c.kind == CellKind::Nand2)
        .expect("nand2 characterized");
    let slews = nand2.timing.delay_rise.slews();
    let mid_slew = slews[slews.len() / 2];
    let d_nom = nand2
        .timing
        .delay_worst()
        .lookup(mid_slew, 2.0 * nand2.input_cap);
    let dff = DffTiming {
        setup: 2.0 * d_nom,
        hold: 0.3 * d_nom,
        clk_to_q: 2.2 * d_nom,
    };
    // clk→Q arc: two internal NAND stages, load-dependent like the NAND.
    let timing = GateTiming {
        delay_rise: nand2.timing.delay_rise.map(|d| d + 1.2 * d_nom),
        delay_fall: nand2.timing.delay_fall.map(|d| d + 1.2 * d_nom),
        out_slew: nand2.timing.out_slew.clone(),
    };
    let cell = Cell {
        kind: CellKind::Dff,
        area: nand2.area * area_factor,
        input_cap: nand2.input_cap,
        leakage_w: nand2.leakage_w * 0.75 * area_factor,
        switching_energy: nand2.switching_energy * 2.0,
        timing,
    };
    (cell, dff)
}

/// Returns a load-independent summary row for reports: name, area, input
/// cap, and nominal delay.
pub fn cell_summary(lib: &CellLibrary) -> Vec<(String, f64, f64, f64)> {
    lib.cells()
        .iter()
        .map(|c| {
            let slews = c.timing.delay_rise.slews();
            let s = slews[slews.len() / 2];
            let d = c.timing.delay_worst().lookup(s, 2.0 * c.input_cap);
            (c.kind.name().to_string(), c.area, c.input_cap, d)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Full library construction is exercised end-to-end in the integration
    // tests; here we cover the pure-logic pieces with the synthetic library.

    #[test]
    fn cell_kind_roundtrip_names() {
        for k in CellKind::all() {
            assert_eq!(CellKind::from_name(k.name()), Some(k));
        }
        assert_eq!(CellKind::from_name("xor2"), None);
    }

    #[test]
    fn library_lookup_and_fo4() {
        let lib = CellLibrary::synthetic(ProcessKind::Silicon45, 1.0e-12);
        assert_eq!(lib.cell(CellKind::Nand3).kind, CellKind::Nand3);
        // Constant tables → fo4 = worst-case inv delay = 1.15 ps.
        assert!((lib.fo4_delay() - 1.15e-12).abs() < 1e-17);
        assert_eq!(lib.cells().len(), 6);
    }

    #[test]
    fn synthetic_processes_differ_where_they_should() {
        let org = CellLibrary::synthetic(ProcessKind::Organic, 1.0e-4);
        let si = CellLibrary::synthetic(ProcessKind::Silicon45, 1.5e-11);
        assert!(org.cell(CellKind::Inv).input_cap > 1.0e4 * si.cell(CellKind::Inv).input_cap);
        // Organic DFF is relatively larger vs its NAND2 than silicon's.
        let r_org = org.cell(CellKind::Dff).area / org.cell(CellKind::Nand2).area;
        let r_si = si.cell(CellKind::Dff).area / si.cell(CellKind::Nand2).area;
        assert!(
            r_org > 1.5 * r_si,
            "organic {r_org:.1} vs silicon {r_si:.1}"
        );
    }

    #[test]
    #[should_panic(expected = "exactly six cells")]
    fn from_cells_rejects_wrong_count() {
        let lib = CellLibrary::synthetic(ProcessKind::Organic, 1.0);
        let mut cells = lib.cells().to_vec();
        cells.pop();
        let dff = lib.dff;
        let _ = CellLibrary::from_cells(
            "bad",
            ProcessKind::Organic,
            5.0,
            -15.0,
            lib.wire,
            dff,
            cells,
        );
    }

    #[test]
    fn with_wire_swaps_model() {
        let lib = CellLibrary::synthetic(ProcessKind::Silicon45, 1.0);
        let lib = lib.with_wire(WireModel::ideal());
        assert_eq!(lib.wire.delay(1.0, 1.0e3), 0.0);
    }
}
