//! Incremental first-crossing detection for batched transients.
//!
//! The scalar measurement path collects a full waveform, filters it to a
//! time window, and calls [`bdc_circuit::crossing_time`] per threshold.
//! The batched kernel instead observes samples as lanes advance, so each
//! lane needs a streaming equivalent that (a) reproduces `crossing_time`'s
//! arithmetic bit-for-bit and (b) reports when every threshold has been
//! found, letting the lane retire from the lockstep batch early.
//!
//! Bit-parity argument: `crossing_time` scans `windows(2)` of the filtered
//! sample list and returns the first window that sign-crosses the level
//! with a well-conditioned interpolation. The kept samples form one
//! contiguous time range, so consecutive *kept* samples fed here pair up
//! exactly like the filtered list's windows, and the guard + interpolation
//! below are copied operation-for-operation.

/// Streams `(t, v)` samples and records the first crossing of each level,
/// restricted to samples with `t_min <= t` (and `t <= t_max` when set).
#[derive(Debug, Clone)]
pub(crate) struct CrossTracker {
    t_min: f64,
    t_max: f64,
    levels: Vec<f64>,
    times: Vec<Option<f64>>,
    prev: Option<(f64, f64)>,
}

impl CrossTracker {
    /// Tracker over the suffix window `t >= t_min`.
    pub(crate) fn new(t_min: f64, levels: Vec<f64>) -> Self {
        Self::window(t_min, f64::INFINITY, levels)
    }

    /// Tracker over the closed window `t_min <= t <= t_max`.
    pub(crate) fn window(t_min: f64, t_max: f64, levels: Vec<f64>) -> Self {
        let times = vec![None; levels.len()];
        CrossTracker {
            t_min,
            t_max,
            levels,
            times,
            prev: None,
        }
    }

    /// Feeds the next waveform sample (samples must arrive in time order).
    pub(crate) fn feed(&mut self, t: f64, v: f64) {
        if t < self.t_min || t > self.t_max {
            return;
        }
        if let Some((t0, v0)) = self.prev {
            for (k, &level) in self.levels.iter().enumerate() {
                // First match wins, exactly like `crossing_time`'s early
                // return; a degenerate (flat) window is skipped and the
                // scan continues.
                if self.times[k].is_none()
                    && (v0 - level) * (v - level) <= 0.0
                    && (v - v0).abs() > 1e-300
                {
                    let f = (level - v0) / (v - v0);
                    if (0.0..=1.0).contains(&f) {
                        self.times[k] = Some(t0 + f * (t - t0));
                    }
                }
            }
        }
        self.prev = Some((t, v));
    }

    /// Whether every level has a recorded crossing (the lane can retire).
    pub(crate) fn all_found(&self) -> bool {
        self.times.iter().all(Option::is_some)
    }

    /// First crossing time of level `k`, if found.
    pub(crate) fn time(&self, k: usize) -> Option<f64> {
        self.times[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdc_circuit::crossing_time;

    #[test]
    fn matches_crossing_time_on_filtered_waveform() {
        let wf: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let t = i as f64 * 0.1;
                (t, (t - 2.0).tanh())
            })
            .collect();
        let t_min = 0.55;
        let filtered: Vec<(f64, f64)> = wf.iter().copied().filter(|(t, _)| *t >= t_min).collect();
        let levels = [-0.5, 0.0, 0.5];
        let mut tr = CrossTracker::new(t_min, levels.to_vec());
        for &(t, v) in &wf {
            tr.feed(t, v);
        }
        for (k, &level) in levels.iter().enumerate() {
            let expect = crossing_time(&filtered, level);
            assert_eq!(tr.time(k), expect, "level {level}");
        }
        assert!(tr.all_found());
    }

    #[test]
    fn bounded_window_matches_range_filter() {
        let wf: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let t = i as f64 * 0.1;
                (t, (t * 0.7).sin())
            })
            .collect();
        let (a, b) = (3.0, 7.0);
        let filtered: Vec<(f64, f64)> = wf
            .iter()
            .copied()
            .filter(|(t, _)| (a..=b).contains(t))
            .collect();
        let mut tr = CrossTracker::window(a, b, vec![0.0]);
        for &(t, v) in &wf {
            tr.feed(t, v);
        }
        assert_eq!(tr.time(0), crossing_time(&filtered, 0.0));
    }

    #[test]
    fn missing_level_reports_not_found() {
        let mut tr = CrossTracker::new(0.0, vec![10.0, 0.5]);
        for i in 0..10 {
            tr.feed(i as f64, i as f64 * 0.1);
        }
        assert_eq!(tr.time(0), None);
        assert!(tr.time(1).is_some());
        assert!(!tr.all_found());
    }
}
