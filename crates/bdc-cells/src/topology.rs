//! Transistor-level topologies for the standard cells.
//!
//! Organic cells use unipolar p-type logic. Three inverter styles from the
//! paper's Figure 5 are provided — diode-load, biased-load, and the
//! pseudo-E (pseudo-CMOS) style the paper adopts — plus pseudo-E NAND/NOR
//! gates (Figure 9). Silicon cells use complementary CMOS.
//!
//! Conventions for the p-type cells (supplies `VDD > GND > VSS`):
//!
//! * a p-type transistor with source at VDD and gate at an input *conducts
//!   when the input is low*;
//! * the pseudo-E level-shifter stage (transistors M1/M2) produces an
//!   internal node swinging between ≈VDD and ≈VSS, which gates the output
//!   pull-down M4 — this is what restores full rail-to-rail swing.

use std::sync::Arc;

use bdc_circuit::{Circuit, NodeId};
use bdc_device::{DeviceModel, Level61Model, SiliconMosModel, SiliconMosParams, TftParams};

/// Logic function of a combinational standard cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicKind {
    /// Inverter.
    Inv,
    /// Two-input NAND.
    Nand2,
    /// Three-input NAND.
    Nand3,
    /// Two-input NOR.
    Nor2,
    /// Three-input NOR.
    Nor3,
}

impl LogicKind {
    /// Number of logic inputs.
    pub fn fan_in(self) -> usize {
        match self {
            LogicKind::Inv => 1,
            LogicKind::Nand2 | LogicKind::Nor2 => 2,
            LogicKind::Nand3 | LogicKind::Nor3 => 3,
        }
    }

    /// Evaluates the boolean function.
    ///
    /// # Panics
    /// Panics if `inputs.len() != self.fan_in()`.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.fan_in());
        match self {
            LogicKind::Inv => !inputs[0],
            LogicKind::Nand2 | LogicKind::Nand3 => !inputs.iter().all(|&b| b),
            LogicKind::Nor2 | LogicKind::Nor3 => !inputs.iter().any(|&b| b),
        }
    }

    /// All cell kinds in a canonical order (the 6-cell library of the paper
    /// is these five logic cells plus the D-flip-flop).
    pub fn all() -> [LogicKind; 5] {
        [
            LogicKind::Inv,
            LogicKind::Nand2,
            LogicKind::Nand3,
            LogicKind::Nor2,
            LogicKind::Nor3,
        ]
    }
}

/// Unipolar inverter styles compared in the paper's §4.3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrganicStyle {
    /// Diode-connected load to ground (Figure 5a) — simplest, worst gain.
    DiodeLoad,
    /// Load gate tied to a negative bias rail V_SS (Figure 5b).
    BiasedLoad,
    /// Pseudo-CMOS "pseudo-E": level-shifter stage + output stage
    /// (Figure 5c) — the style adopted for the library.
    PseudoE,
}

/// Transistor geometries (m) for the organic cells. Drive transistors use
/// the process's minimum 80 µm channel; the always-on load devices sit at a
/// deeply negative V_GS (gate at V_SS) and must be made deliberately weak
/// with narrow widths and long channels, as the paper's design-space script
/// (§4.3.4) does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrganicSizing {
    /// Level-shifter input transistor(s) M1 width.
    pub shifter_drive_w: f64,
    /// Level-shifter load M2 width.
    pub shifter_load_w: f64,
    /// Level-shifter load M2 channel length.
    pub shifter_load_l: f64,
    /// Output-stage pull-up M3 width.
    pub output_drive_w: f64,
    /// Output-stage pull-down M4 width.
    pub output_load_w: f64,
    /// Load width for the diode-load inverter style.
    pub diode_load_w: f64,
    /// Load width for the biased-load inverter style.
    pub biased_load_w: f64,
}

impl OrganicSizing {
    /// Sizing selected by the design-space script of §4.3.4 (calibrated so
    /// the pseudo-E inverter at VDD = 5 V / VSS = −15 V has V_M ≈ VDD/2,
    /// gain ≈ 3 and noise margins ≈ 20–25 % of VDD).
    pub fn library_default() -> Self {
        OrganicSizing {
            shifter_drive_w: 1000.0e-6,
            shifter_load_w: 40.0e-6,
            shifter_load_l: 240.0e-6,
            output_drive_w: 1000.0e-6,
            output_load_w: 500.0e-6,
            diode_load_w: 350.0e-6,
            biased_load_w: 200.0e-6,
        }
    }
}

impl Default for OrganicSizing {
    fn default() -> Self {
        Self::library_default()
    }
}

/// A standard-cell circuit ready for DC or transient analysis.
#[derive(Debug, Clone)]
pub struct GateCircuit {
    /// The transistor-level netlist.
    pub circuit: Circuit,
    /// Per logic input: `(name, vsource index)`.
    pub inputs: Vec<(String, usize)>,
    /// Output node.
    pub output: NodeId,
    /// Source index of the VDD supply (for static-power measurement).
    pub vdd_src: usize,
    /// Source index of the VSS supply, when the style uses one.
    pub vss_src: Option<usize>,
    /// VDD rail value (V).
    pub vdd: f64,
    /// VSS rail value (V); 0 when unused.
    pub vss: f64,
    /// Number of transistors in the cell.
    pub transistor_count: usize,
    /// Capacitance presented by ONE logic input (F).
    pub input_cap: f64,
    /// Logic level non-switching inputs must be held at during
    /// characterization so the switching input controls the output
    /// (`true` = VDD). Parallel pull-up networks (NAND family) want their
    /// other inputs off (high); series networks (NOR family) want them
    /// conducting (low).
    pub side_inputs_high: bool,
}

impl GateCircuit {
    /// Input levels for logic-low and logic-high at this cell's rails.
    pub fn rail(&self, high: bool) -> f64 {
        if high {
            self.vdd
        } else {
            0.0
        }
    }
}

/// The 80 µm channel length of the shadow-mask pentacene process.
pub const ORGANIC_CHANNEL_L: f64 = 80.0e-6;

/// Per-build device adjustments: Monte-Carlo V_T shift and transient-life
/// aging (see [`TftParams::aged`]).
#[derive(Debug, Clone, Copy, PartialEq)]
struct DeviceTweak {
    delta_vt: f64,
    life: f64,
}

impl DeviceTweak {
    const NONE: DeviceTweak = DeviceTweak {
        delta_vt: 0.0,
        life: 0.0,
    };

    fn apply(&self, base: TftParams) -> TftParams {
        let aged = base.aged(self.life);
        TftParams {
            vt0: aged.vt0 + self.delta_vt,
            ..aged
        }
    }
}

/// A pentacene device with the given tweaks applied.
fn otft_tweaked(w: f64, tweak: DeviceTweak) -> Arc<dyn DeviceModel> {
    Arc::new(Level61Model::new(
        tweak.apply(TftParams::pentacene_sized(w, ORGANIC_CHANNEL_L)),
    ))
}

/// Builds an organic inverter whose transistors all carry a threshold-
/// voltage shift `delta_vt` (V) — the Monte-Carlo handle for the paper's
/// §4.1 cross-sample V_T spread and the §4.3.3 V_SS-compensation study.
///
/// # Panics
/// Panics like [`organic_inverter`].
pub fn organic_inverter_shifted(
    style: OrganicStyle,
    sizing: &OrganicSizing,
    vdd: f64,
    vss: f64,
    delta_vt: f64,
) -> GateCircuit {
    organic_inverter_inner(
        style,
        sizing,
        vdd,
        vss,
        DeviceTweak {
            delta_vt,
            life: 0.0,
        },
    )
}

/// Builds an organic inverter at a point in its transient (biodegradable)
/// life: `life` = 0 is fresh, 1 is end of mission (see
/// [`TftParams::aged`]). Used by the degradation extension experiment.
///
/// # Panics
/// Panics like [`organic_inverter`], or if `life` is outside `[0, 1]`.
pub fn organic_inverter_aged(
    style: OrganicStyle,
    sizing: &OrganicSizing,
    vdd: f64,
    vss: f64,
    life: f64,
) -> GateCircuit {
    organic_inverter_inner(
        style,
        sizing,
        vdd,
        vss,
        DeviceTweak {
            delta_vt: 0.0,
            life,
        },
    )
}

/// Builds one of the three organic inverter styles at the given rails.
///
/// `vss` is only used by the biased-load and pseudo-E styles.
///
/// # Panics
/// Panics if `vdd <= 0` or (when used) `vss >= 0`.
pub fn organic_inverter(
    style: OrganicStyle,
    sizing: &OrganicSizing,
    vdd: f64,
    vss: f64,
) -> GateCircuit {
    organic_inverter_inner(style, sizing, vdd, vss, DeviceTweak::NONE)
}

fn organic_inverter_inner(
    style: OrganicStyle,
    sizing: &OrganicSizing,
    vdd: f64,
    vss: f64,
    tweak: DeviceTweak,
) -> GateCircuit {
    assert!(vdd > 0.0, "vdd must be positive");
    let mut c = Circuit::new();
    let n_vdd = c.node("vdd");
    let n_in = c.node("in");
    let n_out = c.node("out");
    let vdd_src = c.vsource(n_vdd, Circuit::GND, vdd);
    let in_src = c.vsource(n_in, Circuit::GND, 0.0);

    match style {
        OrganicStyle::DiodeLoad => {
            // Drive: pulls OUT to VDD when IN is low.
            c.fet(
                n_out,
                n_in,
                n_vdd,
                otft_tweaked(sizing.output_drive_w, tweak),
            );
            // Diode-connected load to ground.
            c.fet(
                Circuit::GND,
                Circuit::GND,
                n_out,
                otft_tweaked(sizing.diode_load_w, tweak),
            );
            GateCircuit {
                circuit: c,
                inputs: vec![("A".into(), in_src)],
                output: n_out,
                vdd_src,
                vss_src: None,
                vdd,
                vss: 0.0,
                transistor_count: 2,
                input_cap: input_cap_of(&[sizing.output_drive_w]),
                side_inputs_high: true,
            }
        }
        OrganicStyle::BiasedLoad => {
            assert!(vss < 0.0, "biased-load requires a negative vss");
            let n_vss = c.node("vss");
            let vss_src = c.vsource(n_vss, Circuit::GND, vss);
            c.fet(
                n_out,
                n_in,
                n_vdd,
                otft_tweaked(sizing.output_drive_w, tweak),
            );
            // Load gate biased at VSS: always on, stronger pull-down.
            c.fet(
                Circuit::GND,
                n_vss,
                n_out,
                otft_tweaked(sizing.biased_load_w, tweak),
            );
            GateCircuit {
                circuit: c,
                inputs: vec![("A".into(), in_src)],
                output: n_out,
                vdd_src,
                vss_src: Some(vss_src),
                vdd,
                vss,
                transistor_count: 2,
                input_cap: input_cap_of(&[sizing.output_drive_w]),
                side_inputs_high: true,
            }
        }
        OrganicStyle::PseudoE => build_pseudo_e(
            c,
            n_vdd,
            vdd_src,
            &[(n_in, in_src)],
            n_out,
            sizing,
            vdd,
            vss,
            false,
            tweak,
        ),
    }
}

/// Builds a pseudo-E organic gate of any supported logic kind.
///
/// NAND gates place the input transistors in parallel (any low input pulls
/// up); NOR gates place them in series (all inputs must be low to pull up).
///
/// # Panics
/// Panics if `vdd <= 0` or `vss >= 0`.
pub fn organic_gate(kind: LogicKind, sizing: &OrganicSizing, vdd: f64, vss: f64) -> GateCircuit {
    organic_gate_inner(kind, sizing, vdd, vss, DeviceTweak::NONE)
}

/// [`organic_gate`] with a threshold-voltage shift `delta_vt` (V) applied
/// to every transistor — the whole-library handle for the parameter-sweep
/// machinery (`bdc sweep --param organic.vt=…`). At `delta_vt = 0.0` the
/// devices are bit-identical to [`organic_gate`]'s.
///
/// # Panics
/// Panics like [`organic_gate`].
pub fn organic_gate_shifted(
    kind: LogicKind,
    sizing: &OrganicSizing,
    vdd: f64,
    vss: f64,
    delta_vt: f64,
) -> GateCircuit {
    organic_gate_inner(
        kind,
        sizing,
        vdd,
        vss,
        DeviceTweak {
            delta_vt,
            life: 0.0,
        },
    )
}

fn organic_gate_inner(
    kind: LogicKind,
    sizing: &OrganicSizing,
    vdd: f64,
    vss: f64,
    tweak: DeviceTweak,
) -> GateCircuit {
    assert!(vdd > 0.0, "vdd must be positive");
    assert!(vss < 0.0, "pseudo-E requires a negative vss");
    let mut c = Circuit::new();
    let n_vdd = c.node("vdd");
    let vdd_src = c.vsource(n_vdd, Circuit::GND, vdd);
    let names = ["A", "B", "C"];
    let ins: Vec<(NodeId, usize)> = (0..kind.fan_in())
        .map(|i| {
            let n = c.node(names[i]);
            let s = c.vsource(n, Circuit::GND, 0.0);
            (n, s)
        })
        .collect();
    let n_out = c.node("out");
    let series = matches!(kind, LogicKind::Nor2 | LogicKind::Nor3);
    build_pseudo_e(
        c, n_vdd, vdd_src, &ins, n_out, sizing, vdd, vss, series, tweak,
    )
}

/// Core pseudo-E builder: a level-shifter stage replicating the pull-up
/// network into internal node X (swinging VDD…VSS), and an output stage
/// whose pull-down is gated by X.
#[allow(clippy::too_many_arguments)]
fn build_pseudo_e(
    mut c: Circuit,
    n_vdd: NodeId,
    vdd_src: usize,
    ins: &[(NodeId, usize)],
    n_out: NodeId,
    sizing: &OrganicSizing,
    vdd: f64,
    vss: f64,
    series: bool,
    tweak: DeviceTweak,
) -> GateCircuit {
    assert!(vss < 0.0, "pseudo-E requires a negative vss");
    let n_vss = c.node("vss");
    let vss_src = c.vsource(n_vss, Circuit::GND, vss);
    let n_x = c.node("x");

    let mut count = 0;
    // Pull-up networks: the same structure drives both X and OUT.
    for (target, w) in [
        (n_x, sizing.shifter_drive_w),
        (n_out, sizing.output_drive_w),
    ] {
        if series {
            // Series chain from VDD through intermediate nodes to target.
            // Series stacks are widened to keep drive comparable.
            let w_each = w * ins.len() as f64;
            let mut src = n_vdd;
            for (i, (n_in, _)) in ins.iter().enumerate() {
                let dst = if i + 1 == ins.len() {
                    target
                } else {
                    let nm = format!("{}_s{}", c.node_name(target), i);
                    c.node(&nm)
                };
                c.fet(dst, *n_in, src, otft_tweaked(w_each, tweak));
                src = dst;
                count += 1;
            }
        } else {
            for (n_in, _) in ins {
                c.fet(target, *n_in, n_vdd, otft_tweaked(w, tweak));
                count += 1;
            }
        }
    }
    // Level-shifter load: X → VSS, gate at VSS (always on); long-channel
    // narrow device so the input stage can overpower it.
    c.fet(n_vss, n_vss, n_x, {
        let base = TftParams::pentacene_sized(sizing.shifter_load_w, sizing.shifter_load_l);
        Arc::new(Level61Model::new(tweak.apply(base)))
    });
    // Output pull-down: OUT → GND, gated by the shifted node X.
    c.fet(
        Circuit::GND,
        n_x,
        n_out,
        otft_tweaked(sizing.output_load_w, tweak),
    );
    count += 2;

    let per_input_w = if series {
        (sizing.shifter_drive_w + sizing.output_drive_w) * ins.len() as f64
    } else {
        sizing.shifter_drive_w + sizing.output_drive_w
    };
    GateCircuit {
        circuit: c,
        inputs: ins
            .iter()
            .enumerate()
            .map(|(i, (_, s))| (["A", "B", "C"][i].to_string(), *s))
            .collect(),
        output: n_out,
        vdd_src,
        vss_src: Some(vss_src),
        vdd,
        vss,
        transistor_count: count,
        input_cap: input_cap_of(&[per_input_w]),
        side_inputs_high: !series,
    }
}

/// Gate capacitance presented by p-type inputs of the given widths.
fn input_cap_of(widths: &[f64]) -> f64 {
    widths
        .iter()
        .map(|w| {
            let p = TftParams::pentacene_sized(*w, ORGANIC_CHANNEL_L);
            p.gate_cap() + 2.0 * p.overlap_cap()
        })
        .sum()
}

/// Builds a complementary CMOS gate in the 45 nm-class silicon process.
///
/// PMOS devices are drawn 2× the NMOS width for roughly symmetric drive;
/// series stacks are widened by the stack depth.
///
/// # Panics
/// Panics if `vdd <= 0` or `unit_w <= 0`.
pub fn cmos_gate(kind: LogicKind, unit_w: f64, vdd: f64) -> GateCircuit {
    assert!(vdd > 0.0, "vdd must be positive");
    assert!(unit_w > 0.0, "unit width must be positive");
    let mut c = Circuit::new();
    let n_vdd = c.node("vdd");
    let vdd_src = c.vsource(n_vdd, Circuit::GND, vdd);
    let names = ["A", "B", "C"];
    let ins: Vec<(NodeId, usize)> = (0..kind.fan_in())
        .map(|i| {
            let n = c.node(names[i]);
            let s = c.vsource(n, Circuit::GND, 0.0);
            (n, s)
        })
        .collect();
    let n_out = c.node("out");

    let k = ins.len();
    let nmos = |w: f64| -> Arc<dyn DeviceModel> {
        Arc::new(SiliconMosModel::new(
            SiliconMosParams::nmos_45().with_width(w),
        ))
    };
    let pmos = |w: f64| -> Arc<dyn DeviceModel> {
        Arc::new(SiliconMosModel::new(
            SiliconMosParams::pmos_45().with_width(w),
        ))
    };
    let (p_series, n_series) = match kind {
        LogicKind::Inv => (false, false),
        LogicKind::Nand2 | LogicKind::Nand3 => (false, true),
        LogicKind::Nor2 | LogicKind::Nor3 => (true, false),
    };
    let mut count = 0;
    // PMOS network VDD → OUT.
    if p_series {
        let w = 2.0 * unit_w * k as f64;
        let mut src = n_vdd;
        for (i, (n_in, _)) in ins.iter().enumerate() {
            let dst = if i + 1 == k {
                n_out
            } else {
                c.node(&format!("p{i}"))
            };
            c.fet(dst, *n_in, src, pmos(w));
            src = dst;
            count += 1;
        }
    } else {
        for (n_in, _) in &ins {
            c.fet(n_out, *n_in, n_vdd, pmos(2.0 * unit_w));
            count += 1;
        }
    }
    // NMOS network OUT → GND.
    if n_series {
        let w = unit_w * k as f64;
        let mut src = Circuit::GND;
        for (i, (n_in, _)) in ins.iter().enumerate() {
            let dst = if i + 1 == k {
                n_out
            } else {
                c.node(&format!("n{i}"))
            };
            // Build from GND upward; current flows out → gnd.
            c.fet(dst, *n_in, src, nmos(w));
            src = dst;
            count += 1;
        }
    } else {
        for (n_in, _) in &ins {
            c.fet(n_out, *n_in, Circuit::GND, nmos(unit_w));
            count += 1;
        }
    }

    let stack_p = if p_series { k as f64 } else { 1.0 };
    let stack_n = if n_series { k as f64 } else { 1.0 };
    let cap_of = |params: SiliconMosParams| {
        let m = SiliconMosModel::new(params);
        m.gate_capacitance() + 2.0 * m.overlap_capacitance()
    };
    let input_cap = cap_of(SiliconMosParams::pmos_45().with_width(2.0 * unit_w * stack_p))
        + cap_of(SiliconMosParams::nmos_45().with_width(unit_w * stack_n));
    GateCircuit {
        circuit: c,
        inputs: ins
            .iter()
            .enumerate()
            .map(|(i, (_, s))| (names[i].to_string(), *s))
            .collect(),
        output: n_out,
        vdd_src,
        vss_src: None,
        vdd,
        vss: 0.0,
        transistor_count: count,
        input_cap,
        side_inputs_high: !matches!(kind, LogicKind::Nor2 | LogicKind::Nor3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdc_circuit::DcSolver;

    fn solve_logic(gate: &GateCircuit, inputs: &[bool]) -> f64 {
        let mut c = gate.circuit.clone();
        for (i, hi) in inputs.iter().enumerate() {
            c.set_vsource(gate.inputs[i].1, gate.rail(*hi));
        }
        DcSolver::new().solve(&c).unwrap().voltage(gate.output)
    }

    #[test]
    fn logic_kind_truth_tables() {
        assert!(LogicKind::Nand2.eval(&[true, false]));
        assert!(!LogicKind::Nand2.eval(&[true, true]));
        assert!(LogicKind::Nor3.eval(&[false, false, false]));
        assert!(!LogicKind::Nor3.eval(&[false, true, false]));
        assert_eq!(LogicKind::Inv.fan_in(), 1);
    }

    #[test]
    fn pseudo_e_inverter_has_full_swing() {
        let g = organic_inverter(OrganicStyle::PseudoE, &OrganicSizing::default(), 5.0, -15.0);
        let v_hi = solve_logic(&g, &[false]);
        let v_lo = solve_logic(&g, &[true]);
        // The paper's point: pseudo-E restores VOH ≈ VDD and VOL ≈ 0.
        assert!(v_hi > 0.93 * 5.0, "VOH = {v_hi:.2}");
        assert!(v_lo < 0.08 * 5.0, "VOL = {v_lo:.2}");
        assert_eq!(g.transistor_count, 4);
    }

    #[test]
    fn diode_load_inverter_degraded_output() {
        let g = organic_inverter(
            OrganicStyle::DiodeLoad,
            &OrganicSizing::default(),
            15.0,
            0.0,
        );
        let v_hi = solve_logic(&g, &[false]);
        assert!(v_hi < 0.99 * 15.0 && v_hi > 0.4 * 15.0, "VOH = {v_hi:.2}");
        assert_eq!(g.transistor_count, 2);
    }

    #[test]
    fn pseudo_e_nand2_truth_table_analog() {
        let g = organic_gate(LogicKind::Nand2, &OrganicSizing::default(), 5.0, -15.0);
        assert_eq!(g.transistor_count, 6);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let v = solve_logic(&g, &[a, b]);
            let expect_hi = LogicKind::Nand2.eval(&[a, b]);
            if expect_hi {
                assert!(v > 0.8 * 5.0, "NAND({a},{b}) = {v:.2}");
            } else {
                assert!(v < 0.2 * 5.0, "NAND({a},{b}) = {v:.2}");
            }
        }
    }

    #[test]
    fn pseudo_e_nor2_truth_table_analog() {
        let g = organic_gate(LogicKind::Nor2, &OrganicSizing::default(), 5.0, -15.0);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let v = solve_logic(&g, &[a, b]);
            let expect_hi = LogicKind::Nor2.eval(&[a, b]);
            if expect_hi {
                assert!(v > 0.8 * 5.0, "NOR({a},{b}) = {v:.2}");
            } else {
                assert!(v < 0.2 * 5.0, "NOR({a},{b}) = {v:.2}");
            }
        }
    }

    #[test]
    fn cmos_gates_rail_to_rail() {
        for kind in LogicKind::all() {
            let g = cmos_gate(kind, 450.0e-9, 1.0);
            let n = kind.fan_in();
            for pattern in 0..(1u32 << n) {
                let bits: Vec<bool> = (0..n).map(|i| pattern & (1 << i) != 0).collect();
                let v = solve_logic(&g, &bits);
                if kind.eval(&bits) {
                    assert!(v > 0.95, "{kind:?}({bits:?}) = {v:.3}");
                } else {
                    assert!(v < 0.05, "{kind:?}({bits:?}) = {v:.3}");
                }
            }
        }
    }

    #[test]
    fn input_caps_scale_with_technology() {
        let org = organic_gate(LogicKind::Inv, &OrganicSizing::default(), 5.0, -15.0);
        let si = cmos_gate(LogicKind::Inv, 450.0e-9, 1.0);
        // Organic inputs are ~5 orders of magnitude heavier than silicon's.
        assert!(
            org.input_cap / si.input_cap > 1.0e4,
            "ratio {}",
            org.input_cap / si.input_cap
        );
    }
}
