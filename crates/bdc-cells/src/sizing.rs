//! Automated cell sizing — the paper's §4.3.4 design-space script.
//!
//! “The fine-tuning of circuit sizing is crucial for creating a good logic
//! gate. However, adjusting the parameters and running simulations manually
//! is time-consuming. Therefore, we utilized a script to explore the design
//! space and select the best parameter sets for each gate. The switching
//! threshold, noise margin, gate delay, and area are all taken into
//! consideration when we define the utility function.”
//!
//! [`explore_inverter_sizing`] does exactly that: it sweeps candidate
//! [`OrganicSizing`] parameter sets, simulates each pseudo-E inverter's DC
//! and transient behaviour, scores them with a [`Utility`] function over
//! (V_M centring, noise margin, delay, area), and returns the ranked
//! candidates.

use bdc_circuit::CircuitError;

use crate::characterize::{characterize_gate, measure_inverter_dc, CharacterizeConfig};
use crate::topology::{organic_inverter, OrganicSizing, OrganicStyle};

/// Weights of the §4.3.4 utility function. Each term is normalized before
/// weighting; higher utility is better.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utility {
    /// Weight on V_M proximity to VDD/2.
    pub vm_centring: f64,
    /// Weight on the worst-case noise margin (MEC).
    pub noise_margin: f64,
    /// Weight on gate speed (inverse delay).
    pub speed: f64,
    /// Weight on small area (inverse total transistor width).
    pub area: f64,
}

impl Default for Utility {
    fn default() -> Self {
        Utility {
            vm_centring: 1.0,
            noise_margin: 1.0,
            speed: 1.0,
            area: 0.5,
        }
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct SizingCandidate {
    /// The parameter set.
    pub sizing: OrganicSizing,
    /// Switching threshold (V).
    pub vm: f64,
    /// Peak gain.
    pub gain: f64,
    /// MEC noise margin (V).
    pub nm: f64,
    /// FO4-like delay (s).
    pub delay: f64,
    /// Total drawn transistor width (m) — the area proxy.
    pub total_width: f64,
    /// The combined score.
    pub utility: f64,
}

/// Evaluates one sizing at the given rails.
///
/// # Errors
/// Propagates simulator failures.
pub fn evaluate_sizing(
    sizing: &OrganicSizing,
    vdd: f64,
    vss: f64,
) -> Result<(f64, f64, f64, f64, f64), CircuitError> {
    let gate = organic_inverter(OrganicStyle::PseudoE, sizing, vdd, vss);
    let dc = measure_inverter_dc(&gate, 81)?;
    // A single-point transient for speed (mid slew, FO4-like load).
    let cfg = CharacterizeConfig {
        slews: vec![60.0e-6],
        loads: vec![4.0 * gate.input_cap],
        ..CharacterizeConfig::organic()
    };
    let t = characterize_gate(&gate, &cfg)?;
    let delay = t.delay_worst().lookup(60.0e-6, 4.0 * gate.input_cap);
    let width = sizing.shifter_drive_w
        + sizing.shifter_load_w * (sizing.shifter_load_l / crate::topology::ORGANIC_CHANNEL_L)
        + sizing.output_drive_w
        + sizing.output_load_w;
    Ok((dc.vm, dc.max_gain, dc.nm_mec, delay, width))
}

/// Sweeps candidate sizings and returns them ranked by utility (best
/// first). `candidates` defaults (when empty) to a coarse grid around the
/// library sizing.
///
/// # Errors
/// Propagates simulator failures.
pub fn explore_inverter_sizing(
    candidates: &[OrganicSizing],
    vdd: f64,
    vss: f64,
    utility: &Utility,
) -> Result<Vec<SizingCandidate>, CircuitError> {
    let grid: Vec<OrganicSizing> = if candidates.is_empty() {
        default_grid()
    } else {
        candidates.to_vec()
    };
    let mut rows = Vec::with_capacity(grid.len());
    for sizing in grid {
        // A candidate whose output never switches is not an error of the
        // sweep — it is a (very bad) data point.
        let (vm, gain, nm, delay, total_width) = match evaluate_sizing(&sizing, vdd, vss) {
            Ok(v) => v,
            Err(CircuitError::NoConvergence { .. }) => (0.0, 0.0, 0.0, f64::INFINITY, 1.0),
            Err(e) => return Err(e),
        };
        rows.push(SizingCandidate {
            sizing,
            vm,
            gain,
            nm,
            delay,
            total_width,
            utility: 0.0,
        });
    }
    // Normalize each term across the candidate set, then score.
    let max_nm = rows.iter().map(|r| r.nm).fold(1e-12, f64::max);
    let min_delay = rows.iter().map(|r| r.delay).fold(f64::INFINITY, f64::min);
    let min_width = rows
        .iter()
        .map(|r| r.total_width)
        .fold(f64::INFINITY, f64::min);
    for r in &mut rows {
        let vm_term = 1.0 - ((r.vm - vdd / 2.0) / (vdd / 2.0)).abs().min(1.0);
        let nm_term = r.nm / max_nm;
        let speed_term = min_delay / r.delay;
        let area_term = min_width / r.total_width;
        r.utility = utility.vm_centring * vm_term
            + utility.noise_margin * nm_term
            + utility.speed * speed_term
            + utility.area * area_term;
    }
    rows.sort_by(|a, b| b.utility.partial_cmp(&a.utility).unwrap());
    Ok(rows)
}

/// A small grid around the library default (kept coarse so the script runs
/// in seconds, like the paper's overnight sweep scaled down).
fn default_grid() -> Vec<OrganicSizing> {
    let base = OrganicSizing::library_default();
    let mut grid = Vec::new();
    for drive_scale in [0.6, 1.0, 1.5] {
        for load_scale in [0.6, 1.0, 1.6] {
            grid.push(OrganicSizing {
                shifter_drive_w: base.shifter_drive_w * drive_scale,
                output_drive_w: base.output_drive_w * drive_scale,
                shifter_load_w: base.shifter_load_w * load_scale,
                output_load_w: base.output_load_w * load_scale,
                ..base
            });
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utility_ranks_candidates_and_default_is_competitive() {
        let base = OrganicSizing::library_default();
        let weak = OrganicSizing {
            // Deliberately bad: drive too weak to overpower the loads.
            shifter_drive_w: 120.0e-6,
            output_drive_w: 150.0e-6,
            ..base
        };
        let ranked =
            explore_inverter_sizing(&[base, weak], 5.0, -15.0, &Utility::default()).expect("sweep");
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].utility >= ranked[1].utility);
        // The library default must rank above the crippled candidate.
        assert_eq!(ranked[0].sizing, base);
        assert!(ranked[0].nm > ranked[1].nm);
    }

    #[test]
    fn evaluate_reports_physical_values() {
        let (vm, gain, nm, delay, width) =
            evaluate_sizing(&OrganicSizing::library_default(), 5.0, -15.0).expect("evaluate");
        assert!(vm > 1.0 && vm < 4.0);
        assert!(gain > 1.5);
        assert!(nm >= 0.0);
        assert!(delay > 1.0e-5 && delay < 1.0e-2);
        assert!(width > 1.0e-3);
    }
}
