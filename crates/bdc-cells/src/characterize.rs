//! Cell characterization: DC analysis and NLDM extraction.
//!
//! [`measure_inverter_dc`] reproduces the paper's §4.3 DC methodology
//! (VTC sweep → V_M, gain, noise margins, static power). [`characterize_gate`]
//! is the SiliconSmart stand-in of §4.4: it runs a transient simulation for
//! every (input slew × output load) grid point and tabulates propagation
//! delay and output slew into [`NldmTable`]s.

use bdc_circuit::measure::slew_time;
use bdc_circuit::{
    crossing_time, dc_sweep, BatchLane, BatchTranSolver, CircuitError, DcSolver, Operating,
    TranSolver, VtcCurve, Waveform,
};
use bdc_exec::{batch_lanes, par_map};

use crate::nldm::NldmTable;
use crate::topology::GateCircuit;
use crate::tracker::CrossTracker;

/// DC summary of an inverter-like cell, mirroring Fig 6(d)/7(d).
#[derive(Debug, Clone)]
pub struct DcSummary {
    /// The measured VTC.
    pub vtc: VtcCurve,
    /// Switching threshold V_M (V).
    pub vm: f64,
    /// Peak |gain|.
    pub max_gain: f64,
    /// High noise margin (unity-gain criterion), V.
    pub nmh: f64,
    /// Low noise margin (unity-gain criterion), V.
    pub nml: f64,
    /// Maximum-equal-criterion margin, V.
    pub nm_mec: f64,
    /// Static power with input low (W).
    pub static_power_in_low: f64,
    /// Static power with input high (W).
    pub static_power_in_high: f64,
    /// Supply-current trace `(vin, |i_vdd| + |i_vss|)` for Fig 6(c)/7(c).
    pub supply_current: Vec<(f64, f64)>,
}

/// Sweeps the first input of `gate` across the full rail and extracts the
/// §4.3 DC metrics.
///
/// # Errors
/// Propagates DC solver failures.
pub fn measure_inverter_dc(gate: &GateCircuit, points: usize) -> Result<DcSummary, CircuitError> {
    let src = gate.inputs[0].1;
    let sweep = dc_sweep(&gate.circuit, src, 0.0, gate.vdd, points)?;
    let vtc = VtcCurve::new(
        sweep
            .iter()
            .map(|p| (p.input, p.op.voltage(gate.output)))
            .collect(),
    );
    let summary = vtc.summarize();

    let supply_current: Vec<(f64, f64)> = sweep
        .iter()
        .map(|p| {
            let mut i = p.op.source_current(gate.vdd_src).abs();
            if let Some(vss) = gate.vss_src {
                i = i.max(p.op.source_current(vss).abs());
            }
            (p.input, i)
        })
        .collect();

    let power_at = |vin: f64| -> Result<f64, CircuitError> {
        let mut c = gate.circuit.clone();
        c.set_vsource(src, vin);
        let op = DcSolver::new().solve(&c)?;
        let mut p = gate.vdd * op.source_current(gate.vdd_src).abs();
        if let Some(vss) = gate.vss_src {
            p += gate.vss.abs() * op.source_current(vss).abs();
        }
        Ok(p)
    };
    Ok(DcSummary {
        vm: summary.vm,
        max_gain: summary.max_gain,
        nmh: summary.margins.nmh,
        nml: summary.margins.nml,
        nm_mec: vtc.noise_margin_mec(),
        static_power_in_low: power_at(0.0)?,
        static_power_in_high: power_at(gate.vdd)?,
        supply_current,
        vtc,
    })
}

/// Measures a cell's average static power (W): DC-solves every input
/// pattern and averages total supply power (the paper's Fig 6d/7d rows
/// report the input-low / input-high extremes of the same quantity).
///
/// # Errors
/// Propagates DC solver failures.
pub fn measure_static_power(gate: &GateCircuit) -> Result<f64, CircuitError> {
    let n = gate.inputs.len();
    let mut total = 0.0;
    let patterns = 1usize << n;
    for pat in 0..patterns {
        let mut c = gate.circuit.clone();
        for (k, (_, src)) in gate.inputs.iter().enumerate() {
            let hi = pat & (1 << k) != 0;
            c.set_vsource(*src, gate.rail(hi));
        }
        let op = DcSolver::new().solve(&c)?;
        let mut p = gate.vdd * op.source_current(gate.vdd_src).abs();
        if let Some(vss) = gate.vss_src {
            p += gate.vss.abs() * op.source_current(vss).abs();
        }
        total += p;
    }
    Ok(total / patterns as f64)
}

/// Grid and timing-resolution settings for NLDM characterization.
#[derive(Debug, Clone)]
pub struct CharacterizeConfig {
    /// Input slew axis: full-swing ramp durations (s).
    pub slews: Vec<f64>,
    /// Output load axis (F).
    pub loads: Vec<f64>,
    /// Expected settling time after the input edge (s); the transient runs
    /// for `slew + settle` and retries once with 4× if the output has not
    /// crossed mid-rail.
    pub settle: f64,
    /// Transient steps per run.
    pub steps: usize,
}

impl CharacterizeConfig {
    /// Grid tuned for the pentacene process (delays of tens of µs to ms).
    pub fn organic() -> Self {
        CharacterizeConfig {
            slews: vec![20.0e-6, 60.0e-6, 200.0e-6, 600.0e-6],
            // The top point covers the worst buffered-net load the core
            // netlists present (max_fanout pins plus wire, ~8 nF).
            loads: vec![60.0e-12, 200.0e-12, 600.0e-12, 2.0e-9, 10.0e-9],
            settle: 4.0e-3,
            steps: 900,
        }
    }

    /// Grid tuned for the 45 nm silicon process (delays of ps to ns).
    pub fn silicon() -> Self {
        CharacterizeConfig {
            slews: vec![4.0e-12, 16.0e-12, 60.0e-12, 250.0e-12],
            // The top point covers the worst buffered-net load the core
            // netlists present (max_fanout pins plus wire, ~31 fF).
            loads: vec![0.3e-15, 1.2e-15, 5.0e-15, 20.0e-15, 50.0e-15],
            settle: 1.5e-9,
            steps: 900,
        }
    }
}

/// NLDM characterization result for one cell.
#[derive(Debug, Clone)]
pub struct GateTiming {
    /// Delay for output-rising transitions (s).
    pub delay_rise: NldmTable,
    /// Delay for output-falling transitions (s).
    pub delay_fall: NldmTable,
    /// Output slew (full-swing equivalent, s), worst of rise/fall.
    pub out_slew: NldmTable,
}

impl GateTiming {
    /// Worst-case delay table (entry-wise max of rise and fall).
    pub fn delay_worst(&self) -> NldmTable {
        self.delay_rise.max_with(&self.delay_fall)
    }
}

/// Characterizes one gate over the config grid.
///
/// The first input switches; all other inputs are held at the configured
/// side level. For each grid point two transients run (input rise → output
/// fall, input fall → output rise for inverting cells).
///
/// With [`bdc_exec::batch_lanes`] `> 1` the grid points run through the
/// lockstep SoA kernel ([`BatchTranSolver`]), packing one slew row's loads
/// per batch; the scalar per-point path remains the reference
/// implementation (`BDC_BATCH_LANES=1` / `BDC_NO_BATCH`) and both produce
/// bit-identical tables.
///
/// # Errors
/// Propagates simulator failures, and reports
/// [`CircuitError::NoConvergence`] if an output never crosses mid-rail even
/// after the retry (usually a broken topology).
pub fn characterize_gate(
    gate: &GateCircuit,
    cfg: &CharacterizeConfig,
) -> Result<GateTiming, CircuitError> {
    let lanes = batch_lanes();
    if lanes <= 1 {
        characterize_gate_scalar(gate, cfg)
    } else {
        characterize_gate_batched(gate, cfg, lanes)
    }
}

/// The scalar reference path: one transient per (slew, load, direction).
fn characterize_gate_scalar(
    gate: &GateCircuit,
    cfg: &CharacterizeConfig,
) -> Result<GateTiming, CircuitError> {
    let ns = cfg.slews.len();
    let nl = cfg.loads.len();
    let mut rise = vec![vec![0.0; nl]; ns];
    let mut fall = vec![vec![0.0; nl]; ns];
    let mut slew_out = vec![vec![0.0; nl]; ns];
    // The load capacitor is open in DC and adds no nodes, and the input
    // ramp starts from its rail regardless of the settle window, so the
    // operating point depends only on the edge direction — solve it once
    // per direction and reuse it across every grid point and retry.
    let op_in_rising = initial_op(gate, true)?;
    let op_in_falling = initial_op(gate, false)?;
    // Every (slew × load) grid point is an independent pair of transients:
    // fan them out on the pool. Results land in index order, so the tables
    // are bit-identical to the serial loop.
    let grid: Vec<(usize, usize)> = (0..ns).flat_map(|i| (0..nl).map(move |j| (i, j))).collect();
    let measured = par_map(&grid, |&(i, j)| {
        let (sl, ld) = (cfg.slews[i], cfg.loads[j]);
        let f = edge(gate, cfg, sl, ld, true, &op_in_rising)?;
        let r = edge(gate, cfg, sl, ld, false, &op_in_falling)?;
        Ok((f, r))
    });
    for (&(i, j), m) in grid.iter().zip(measured) {
        let ((d_fall, s_fall), (d_rise, s_rise)) = m?;
        rise[i][j] = d_rise;
        fall[i][j] = d_fall;
        slew_out[i][j] = s_rise.max(s_fall);
    }
    assemble_tables(cfg, rise, fall, slew_out)
}

/// One batched transient: a single edge direction and slew, with a chunk of
/// the load axis as lanes.
struct Pack {
    input_rising: bool,
    slew_idx: usize,
    load_start: usize,
    len: usize,
}

/// The batched path: packs the grid into lockstep batches. Lanes within a
/// pack share the edge direction and input slew (hence waveform, time axis,
/// and DC operating point) and differ only in the load capacitor, so the
/// batch is structurally uniform as the SoA kernel requires.
fn characterize_gate_batched(
    gate: &GateCircuit,
    cfg: &CharacterizeConfig,
    lanes: usize,
) -> Result<GateTiming, CircuitError> {
    let ns = cfg.slews.len();
    let nl = cfg.loads.len();
    let op_in_rising = initial_op(gate, true)?;
    let op_in_falling = initial_op(gate, false)?;
    let mut packs: Vec<Pack> = Vec::new();
    for input_rising in [true, false] {
        for slew_idx in 0..ns {
            let mut load_start = 0;
            while load_start < nl {
                let len = lanes.min(nl - load_start);
                packs.push(Pack {
                    input_rising,
                    slew_idx,
                    load_start,
                    len,
                });
                load_start += len;
            }
        }
    }
    // Packs are independent; fan them out on the pool (index-ordered, so
    // still deterministic for any worker count). Errors stay per-lane so
    // the grid walk below can surface them in scalar order.
    let measured: Vec<Vec<Result<(f64, f64), CircuitError>>> = par_map(&packs, |p| {
        let op = if p.input_rising {
            &op_in_rising
        } else {
            &op_in_falling
        };
        let loads = &cfg.loads[p.load_start..p.load_start + p.len];
        edge_pack(gate, cfg, cfg.slews[p.slew_idx], loads, p.input_rising, op)
    });
    let mut fall_m: Vec<Option<Result<(f64, f64), CircuitError>>> =
        (0..ns * nl).map(|_| None).collect();
    let mut rise_m: Vec<Option<Result<(f64, f64), CircuitError>>> =
        (0..ns * nl).map(|_| None).collect();
    for (p, res) in packs.iter().zip(measured) {
        // Input rising drives the (inverting) output falling and vice
        // versa, matching the scalar `edge(.., true, ..)` = fall pairing.
        let dst = if p.input_rising {
            &mut fall_m
        } else {
            &mut rise_m
        };
        for (k, r) in res.into_iter().enumerate() {
            dst[p.slew_idx * nl + p.load_start + k] = Some(r);
        }
    }
    let mut rise = vec![vec![0.0; nl]; ns];
    let mut fall = vec![vec![0.0; nl]; ns];
    let mut slew_out = vec![vec![0.0; nl]; ns];
    for i in 0..ns {
        for j in 0..nl {
            // Scalar error order: within a grid point the fall edge runs
            // (and fails) first; across points the grid is i-major.
            let (d_fall, s_fall) = fall_m[i * nl + j].take().expect("pack covers grid")?;
            let (d_rise, s_rise) = rise_m[i * nl + j].take().expect("pack covers grid")?;
            rise[i][j] = d_rise;
            fall[i][j] = d_fall;
            slew_out[i][j] = s_rise.max(s_fall);
        }
    }
    assemble_tables(cfg, rise, fall, slew_out)
}

/// Shared table assembly: slew-row monotonicity repair + NLDM packing.
fn assemble_tables(
    cfg: &CharacterizeConfig,
    rise: Vec<Vec<f64>>,
    fall: Vec<Vec<f64>>,
    mut slew_out: Vec<Vec<f64>>,
) -> Result<GateTiming, CircuitError> {
    // The threshold-based slew measurement rides the slow tail toward the
    // output's settled level; ratioed (pseudo-E) outputs settle toward a
    // degraded level, so at small loads the 20–80% window can come out
    // *longer* than at larger loads, corrupting bilinear interpolation
    // downstream. Enforce load-axis monotonicity (running max per row), as
    // production characterization does.
    for row in &mut slew_out {
        for j in 1..row.len() {
            row[j] = row[j].max(row[j - 1]);
        }
    }
    Ok(GateTiming {
        delay_rise: NldmTable::new(cfg.slews.clone(), cfg.loads.clone(), rise),
        delay_fall: NldmTable::new(cfg.slews.clone(), cfg.loads.clone(), fall),
        out_slew: NldmTable::new(cfg.slews.clone(), cfg.loads.clone(), slew_out),
    })
}

/// Prepares one edge direction's circuit: side inputs held, switching
/// input at `v0`. Shared by the operating-point solve and the transients.
fn edge_circuit(gate: &GateCircuit, input_rising: bool) -> bdc_circuit::Circuit {
    let mut c = gate.circuit.clone();
    // Hold side inputs at the level that keeps the switching input in
    // control (gate-type dependent).
    let side = if gate.side_inputs_high { gate.vdd } else { 0.0 };
    for (_, s) in gate.inputs.iter().skip(1) {
        c.set_vsource(*s, side);
    }
    let v0 = if input_rising { 0.0 } else { gate.vdd };
    c.set_vsource(gate.inputs[0].1, v0);
    c
}

/// Solves the `t = 0` operating point of one edge direction (no load cap —
/// capacitors are open in DC, so the result is valid for every load).
fn initial_op(gate: &GateCircuit, input_rising: bool) -> Result<Operating, CircuitError> {
    DcSolver::new().solve(&edge_circuit(gate, input_rising))
}

/// Runs one input edge and measures (delay, output slew).
///
/// `input_rising = true` drives the switching input 0 → VDD (inverting
/// cells produce a falling output). `op` must be the matching
/// [`initial_op`] solution; retries (a longer settle window — also a
/// different time step, which rescues marginally non-converging stiff
/// transients) reuse it instead of re-solving DC.
fn edge(
    gate: &GateCircuit,
    cfg: &CharacterizeConfig,
    slew: f64,
    load: f64,
    input_rising: bool,
    op: &Operating,
) -> Result<(f64, f64), CircuitError> {
    // First attempt's failure (either kind) is absorbed by the retry; the
    // retry's outcome is final.
    if let Ok(Some(m)) = edge_attempt(gate, cfg, slew, load, input_rising, op, cfg.settle) {
        return Ok(m);
    }
    match edge_attempt(gate, cfg, slew, load, input_rising, op, cfg.settle * 4.0) {
        Ok(Some(m)) => Ok(m),
        Ok(None) => Err(CircuitError::NoConvergence {
            residual: f64::NAN,
            iterations: 0,
        }),
        Err(e) => Err(e),
    }
}

/// One transient attempt of [`edge`] with an explicit settle window.
/// `Ok(None)` means the simulation converged but the output never crossed
/// mid-rail within the window.
fn edge_attempt(
    gate: &GateCircuit,
    cfg: &CharacterizeConfig,
    slew: f64,
    load: f64,
    input_rising: bool,
    op: &Operating,
    attempt_settle: f64,
) -> Result<Option<(f64, f64)>, CircuitError> {
    let mut c = edge_circuit(gate, input_rising);
    c.capacitor(gate.output, bdc_circuit::Circuit::GND, load);
    let (v0, v1) = if input_rising {
        (0.0, gate.vdd)
    } else {
        (gate.vdd, 0.0)
    };
    let t_start = attempt_settle * 0.05;
    let tstop = t_start + slew + attempt_settle;
    let wave = Waveform::ramp(v0, v1, t_start, slew);
    let res = TranSolver::new(tstop / cfg.steps as f64, tstop)
        .with_step_clamp((0.5 * gate.vdd).max(0.5))
        .with_initial_state(op)
        .drive(gate.inputs[0].1, wave)
        .run(&c)?;
    let out_wf = res.node_waveform(gate.output);
    let mid = 0.5 * gate.vdd;
    let t_in_mid = t_start + 0.5 * slew;
    // Only look at the output after the input begins to move.
    let after: Vec<(f64, f64)> = out_wf
        .iter()
        .copied()
        .filter(|(t, _)| *t >= t_start)
        .collect();
    Ok(crossing_time(&after, mid).map(|t_out| {
        let (from, to) = if input_rising {
            (gate.vdd, 0.0)
        } else {
            (0.0, gate.vdd)
        };
        let s = slew_time(&after, from, to, 0.2, 0.8)
            .map(|s| s / 0.6)
            .unwrap_or(slew);
        ((t_out - t_in_mid).max(0.0), s)
    }))
}

/// One batched attempt of [`edge_attempt`] for a chunk of loads at one
/// (slew, direction), through the lockstep SoA kernel. Each lane streams
/// its output node into a [`CrossTracker`] holding the same three
/// thresholds the scalar path measures (mid-rail for delay, 20%/80% for
/// slew) and retires from the batch as soon as all three crossings are
/// pinned. `Ok(None)` mirrors the scalar meaning: converged, but no
/// mid-rail crossing inside the window.
fn pack_attempt(
    gate: &GateCircuit,
    cfg: &CharacterizeConfig,
    slew: f64,
    loads: &[f64],
    input_rising: bool,
    op: &Operating,
    attempt_settle: f64,
) -> Vec<Result<Option<(f64, f64)>, CircuitError>> {
    let (v0, v1) = if input_rising {
        (0.0, gate.vdd)
    } else {
        (gate.vdd, 0.0)
    };
    let (from, to) = if input_rising {
        (gate.vdd, 0.0)
    } else {
        (0.0, gate.vdd)
    };
    let t_start = attempt_settle * 0.05;
    let tstop = t_start + slew + attempt_settle;
    let wave = Waveform::ramp(v0, v1, t_start, slew);
    let mid = 0.5 * gate.vdd;
    let t_in_mid = t_start + 0.5 * slew;
    // Same expressions as `slew_time` computes internally, so the levels
    // (and hence the interpolated crossings) are bit-identical.
    let lo = from + 0.2 * (to - from);
    let hi = from + 0.8 * (to - from);
    let batch: Vec<BatchLane> = loads
        .iter()
        .map(|&ld| {
            let mut c = edge_circuit(gate, input_rising);
            c.capacitor(gate.output, bdc_circuit::Circuit::GND, ld);
            BatchLane::new(c)
                .drive(gate.inputs[0].1, wave.clone())
                .with_initial_state(op)
        })
        .collect();
    let mut trackers: Vec<CrossTracker> = loads
        .iter()
        .map(|_| CrossTracker::new(t_start, vec![mid, lo, hi]))
        .collect();
    let out_idx = gate.output.index() - 1;
    let outcomes = BatchTranSolver::new(tstop / cfg.steps as f64, tstop)
        .with_step_clamp((0.5 * gate.vdd).max(0.5))
        .run(&batch, |l, t, volts| {
            let tr = &mut trackers[l];
            tr.feed(t, volts[out_idx]);
            !tr.all_found()
        });
    outcomes
        .iter()
        .enumerate()
        .map(|(l, outcome)| match outcome {
            Err(e) => Err(e.clone()),
            Ok(()) => Ok(trackers[l].time(0).map(|t_out| {
                let s = match (trackers[l].time(1), trackers[l].time(2)) {
                    (Some(t_lo), Some(t_hi)) => (t_hi - t_lo).abs() / 0.6,
                    _ => slew,
                };
                ((t_out - t_in_mid).max(0.0), s)
            })),
        })
        .collect()
}

/// Batched [`edge`] for a chunk of loads at one (slew, direction): a first
/// batched attempt over every lane, then — exactly like the scalar retry —
/// one settle×4 attempt for the lanes that errored or never crossed
/// mid-rail. The retry lanes are themselves re-packed into a (narrower)
/// batch, so even the slow stragglers keep the SoA kernel's early-exit
/// instead of paying for a full-window scalar transient.
fn edge_pack(
    gate: &GateCircuit,
    cfg: &CharacterizeConfig,
    slew: f64,
    loads: &[f64],
    input_rising: bool,
    op: &Operating,
) -> Vec<Result<(f64, f64), CircuitError>> {
    let first = pack_attempt(gate, cfg, slew, loads, input_rising, op, cfg.settle);
    let retry_lanes: Vec<usize> = first
        .iter()
        .enumerate()
        .filter(|(_, r)| !matches!(r, Ok(Some(_))))
        .map(|(l, _)| l)
        .collect();
    let mut retried = if retry_lanes.is_empty() {
        Vec::new()
    } else {
        let retry_loads: Vec<f64> = retry_lanes.iter().map(|&l| loads[l]).collect();
        pack_attempt(
            gate,
            cfg,
            slew,
            &retry_loads,
            input_rising,
            op,
            cfg.settle * 4.0,
        )
    }
    .into_iter();
    first
        .into_iter()
        .map(|r| match r {
            Ok(Some(m)) => Ok(m),
            // The retry's outcome is final, as in `edge`.
            Ok(None) | Err(_) => match retried.next().expect("retry covers failed lanes") {
                Ok(Some(m)) => Ok(m),
                Ok(None) => Err(CircuitError::NoConvergence {
                    residual: f64::NAN,
                    iterations: 0,
                }),
                Err(e) => Err(e),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{
        cmos_gate, organic_gate, organic_inverter, LogicKind, OrganicSizing, OrganicStyle,
    };

    #[test]
    fn silicon_inverter_delay_in_fo4_range() {
        let g = cmos_gate(LogicKind::Inv, 450.0e-9, 1.0);
        let cfg = CharacterizeConfig::silicon();
        let t = characterize_gate(&g, &cfg).expect("characterize");
        // FO4-ish point: slew ~ 20 ps, load = 4 inverter inputs.
        let d = t.delay_worst().lookup(20.0e-12, 4.0 * g.input_cap);
        assert!(d > 2.0e-12 && d < 60.0e-12, "FO4-ish delay = {d:.3e}");
        // Delay increases with load.
        let d_big = t.delay_worst().lookup(20.0e-12, 20.0e-15);
        let d_small = t.delay_worst().lookup(20.0e-12, 0.3e-15);
        assert!(d_big > d_small);
    }

    #[test]
    fn organic_inverter_delay_in_tens_of_microseconds() {
        let g = organic_inverter(OrganicStyle::PseudoE, &OrganicSizing::default(), 5.0, -15.0);
        let cfg = CharacterizeConfig::organic();
        let t = characterize_gate(&g, &cfg).expect("characterize");
        let d = t.delay_worst().lookup(60.0e-6, 4.0 * g.input_cap);
        // The paper's 200 Hz, ~30-level cores imply stage delays of this
        // order: tens of µs to a fraction of a ms per gate.
        assert!(d > 3.0e-6 && d < 3.0e-3, "organic FO4-ish delay = {d:.3e}");
    }

    #[test]
    fn organic_nor3_out_slew_is_monotone_in_load() {
        // Regression: the raw 20–80% measurement on the pseudo-E NOR3 dips
        // as load grows at the small-load end of the grid (the output
        // settles toward a degraded high level); characterization must ship
        // monotone rows.
        let g = organic_gate(LogicKind::Nor3, &OrganicSizing::default(), 5.0, -15.0);
        let t = characterize_gate(&g, &CharacterizeConfig::organic()).expect("characterize");
        for row in t.out_slew.values() {
            for j in 1..row.len() {
                assert!(row[j] >= row[j - 1], "out_slew row not monotone: {row:?}");
            }
        }
    }

    #[test]
    fn organic_silicon_gate_speed_ratio_is_enormous() {
        let org = organic_inverter(OrganicStyle::PseudoE, &OrganicSizing::default(), 5.0, -15.0);
        let si = cmos_gate(LogicKind::Inv, 450.0e-9, 1.0);
        let t_org = characterize_gate(&org, &CharacterizeConfig::organic()).unwrap();
        let t_si = characterize_gate(&si, &CharacterizeConfig::silicon()).unwrap();
        let d_org = t_org.delay_worst().lookup(60.0e-6, 4.0 * org.input_cap);
        let d_si = t_si.delay_worst().lookup(20.0e-12, 4.0 * si.input_cap);
        let ratio = d_org / d_si;
        // ~10⁶: the mobility gap (10³) compounded by giant geometries.
        assert!(ratio > 1.0e5 && ratio < 1.0e9, "ratio = {ratio:.3e}");
    }

    /// Bitwise scalar-vs-batched parity at the unit level (one gate per
    /// process); the full-library × lanes × workers matrix lives in
    /// `bdc-core/tests/determinism.rs`.
    #[test]
    fn batched_grid_is_bit_identical_to_scalar() {
        let bits = |t: &GateTiming| -> Vec<u64> {
            [&t.delay_rise, &t.delay_fall, &t.out_slew]
                .iter()
                .flat_map(|tab| tab.values().iter().flatten().map(|v| v.to_bits()))
                .collect()
        };
        for (gate, cfg) in [
            (
                cmos_gate(LogicKind::Inv, 450.0e-9, 1.0),
                CharacterizeConfig::silicon(),
            ),
            (
                organic_gate(
                    LogicKind::Nand2,
                    &OrganicSizing::library_default(),
                    5.0,
                    -15.0,
                ),
                CharacterizeConfig::organic(),
            ),
        ] {
            let scalar = characterize_gate_scalar(&gate, &cfg).expect("scalar");
            for lanes in [2, 5, 8] {
                let batched = characterize_gate_batched(&gate, &cfg, lanes).expect("batched");
                assert_eq!(
                    bits(&scalar),
                    bits(&batched),
                    "lanes={lanes} diverged from scalar"
                );
            }
        }
    }

    #[test]
    fn pseudo_e_dc_summary_sane() {
        let g = organic_inverter(OrganicStyle::PseudoE, &OrganicSizing::default(), 5.0, -15.0);
        let s = measure_inverter_dc(&g, 101).expect("dc");
        assert!(s.vm > 1.5 && s.vm < 3.5, "vm = {}", s.vm);
        assert!(s.max_gain > 1.8, "gain = {}", s.max_gain);
        assert!(s.static_power_in_low > s.static_power_in_high);
    }
}

#[cfg(test)]
mod calib {
    use super::*;
    use crate::topology::*;

    /// Prints the §4.3 inverter design-space rows; run with
    /// `cargo test -p bdc-cells calib -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn print_pseudo_e_metrics() {
        let sz = OrganicSizing::library_default();
        for vss in [-10.0, -12.0, -14.0, -16.0, -18.0, -20.0] {
            let g = organic_inverter(OrganicStyle::PseudoE, &sz, 5.0, vss);
            let s = measure_inverter_dc(&g, 151).unwrap();
            println!(
                "VSS={vss}: VM={:.2} gain={:.2} NMH={:.2} NML={:.2}",
                s.vm, s.max_gain, s.nmh, s.nml
            );
        }
        for (style, lw, vss) in [
            (OrganicStyle::DiodeLoad, 350.0, 0.0),
            (OrganicStyle::DiodeLoad, 150.0, 0.0),
            (OrganicStyle::DiodeLoad, 80.0, 0.0),
            (OrganicStyle::BiasedLoad, 150.0, -5.0),
        ] {
            let s2 = OrganicSizing {
                output_load_w: lw * 1.0e-6,
                ..sz
            };
            let g = organic_inverter(style, &s2, 15.0, vss);
            let s = measure_inverter_dc(&g, 151).unwrap();
            println!(
                "{style:?} lw={lw} VDD=15 VSS={vss}: VM={:.2} gain={:.2} NMH={:.2} NML={:.2} P_lo={:.1e} P_hi={:.1e}",
                s.vm, s.max_gain, s.nmh, s.nml, s.static_power_in_low, s.static_power_in_high
            );
        }
    }
}
