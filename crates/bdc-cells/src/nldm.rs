//! Non-linear delay model (NLDM) look-up tables.
//!
//! The paper characterizes its cells with the conventional NLDM (§4.4): a
//! 2-D table indexed by input slew and output capacitive load, holding
//! propagation delay and output slew. Lookups bilinearly interpolate and
//! clamp-extrapolate at the grid edges, like Liberty consumers do.

/// A slew × load look-up table.
#[derive(Debug, Clone, PartialEq)]
pub struct NldmTable {
    slews: Vec<f64>,
    loads: Vec<f64>,
    /// `values[i][j]` is the entry at `slews[i]`, `loads[j]`.
    values: Vec<Vec<f64>>,
}

impl NldmTable {
    /// Creates a table.
    ///
    /// # Panics
    /// Panics if the axes are not strictly increasing, are empty, or the
    /// value grid does not match the axes.
    pub fn new(slews: Vec<f64>, loads: Vec<f64>, values: Vec<Vec<f64>>) -> Self {
        assert!(
            !slews.is_empty() && !loads.is_empty(),
            "axes must be non-empty"
        );
        assert!(
            slews.windows(2).all(|w| w[1] > w[0]),
            "slew axis must increase"
        );
        assert!(
            loads.windows(2).all(|w| w[1] > w[0]),
            "load axis must increase"
        );
        assert_eq!(values.len(), slews.len(), "row count must match slew axis");
        assert!(
            values.iter().all(|r| r.len() == loads.len()),
            "column count must match load axis"
        );
        NldmTable {
            slews,
            loads,
            values,
        }
    }

    /// A constant (degenerate 1×1) table.
    pub fn constant(value: f64) -> Self {
        NldmTable {
            slews: vec![0.0],
            loads: vec![0.0],
            values: vec![vec![value]],
        }
    }

    /// The slew axis.
    pub fn slews(&self) -> &[f64] {
        &self.slews
    }

    /// The load axis.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Raw grid values.
    pub fn values(&self) -> &[Vec<f64>] {
        &self.values
    }

    /// Bilinear interpolation at (`slew`, `load`), linearly extrapolating
    /// beyond the grid (standard Liberty semantics).
    pub fn lookup(&self, slew: f64, load: f64) -> f64 {
        let (i0, i1, fi) = bracket(&self.slews, slew);
        let (j0, j1, fj) = bracket(&self.loads, load);
        let v00 = self.values[i0][j0];
        let v01 = self.values[i0][j1];
        let v10 = self.values[i1][j0];
        let v11 = self.values[i1][j1];
        let v0 = v00 + fj * (v01 - v00);
        let v1 = v10 + fj * (v11 - v10);
        v0 + fi * (v1 - v0)
    }

    /// Applies `f` to every entry, returning a new table (used for unit
    /// conversion and for derating ablations).
    pub fn map(&self, f: impl Fn(f64) -> f64) -> NldmTable {
        NldmTable {
            slews: self.slews.clone(),
            loads: self.loads.clone(),
            values: self
                .values
                .iter()
                .map(|r| r.iter().map(|v| f(*v)).collect())
                .collect(),
        }
    }

    /// Entry-wise maximum of two tables sharing axes.
    ///
    /// # Panics
    /// Panics if the axes differ.
    pub fn max_with(&self, other: &NldmTable) -> NldmTable {
        assert_eq!(self.slews, other.slews, "slew axes must match");
        assert_eq!(self.loads, other.loads, "load axes must match");
        NldmTable {
            slews: self.slews.clone(),
            loads: self.loads.clone(),
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a.iter().zip(b).map(|(x, y)| x.max(*y)).collect())
                .collect(),
        }
    }

    /// The effective drive resistance: ∂delay/∂load at the table centre
    /// (used by the wire-delay model as the driver impedance).
    pub fn drive_resistance(&self) -> f64 {
        if self.loads.len() < 2 {
            return 0.0;
        }
        let i = self.slews.len() / 2;
        let j0 = self.loads.len() / 2 - 1;
        let j1 = j0 + 1;
        (self.values[i][j1] - self.values[i][j0]) / (self.loads[j1] - self.loads[j0])
    }
}

/// Finds `(lower index, upper index, fraction)` for linear interpolation
/// with clamping-free linear extrapolation at the ends.
fn bracket(axis: &[f64], x: f64) -> (usize, usize, f64) {
    let n = axis.len();
    if n == 1 {
        return (0, 0, 0.0);
    }
    let mut i = 0;
    while i + 2 < n && x > axis[i + 1] {
        i += 1;
    }
    let (a, b) = (axis[i], axis[i + 1]);
    (i, i + 1, (x - a) / (b - a))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> NldmTable {
        NldmTable::new(
            vec![1.0, 2.0, 4.0],
            vec![10.0, 20.0],
            vec![vec![1.0, 2.0], vec![2.0, 3.0], vec![4.0, 5.0]],
        )
    }

    #[test]
    fn exact_grid_points() {
        let t = table();
        assert_eq!(t.lookup(1.0, 10.0), 1.0);
        assert_eq!(t.lookup(4.0, 20.0), 5.0);
    }

    #[test]
    fn interpolates_bilinearly() {
        let t = table();
        assert!((t.lookup(1.5, 15.0) - 2.0).abs() < 1e-12);
        assert!((t.lookup(3.0, 10.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn extrapolates_linearly() {
        let t = table();
        // Beyond the load axis: slope (2-1)/(20-10) = 0.1 per unit load.
        assert!((t.lookup(1.0, 30.0) - 3.0).abs() < 1e-12);
        // Below the slew axis.
        assert!((t.lookup(0.0, 10.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn constant_table_always_returns_value() {
        let t = NldmTable::constant(7.5);
        assert_eq!(t.lookup(123.0, 456.0), 7.5);
    }

    #[test]
    fn drive_resistance_is_load_slope() {
        let t = table();
        assert!((t.drive_resistance() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn max_with_takes_worst_case() {
        let a = table();
        let b = a.map(|v| 10.0 - v);
        let m = a.max_with(&b);
        assert_eq!(m.lookup(1.0, 10.0), 9.0);
        assert_eq!(m.lookup(4.0, 20.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "slew axis must increase")]
    fn rejects_unsorted_axis() {
        let _ = NldmTable::new(vec![2.0, 1.0], vec![1.0], vec![vec![0.0], vec![0.0]]);
    }
}
