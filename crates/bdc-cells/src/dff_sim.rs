//! Transistor-level D-flip-flop simulation.
//!
//! The paper's library includes “a D-flip-flop with preset and clear”
//! (§4.3.4). The library's DFF *timing model* is derived from the
//! characterized NAND (see [`crate::library`]); this module builds the
//! actual 7474-style six-NAND3 flop at the transistor level — pseudo-E
//! NAND3s for the organic process, CMOS for silicon — simulates a clock
//! edge, and measures clk→Q and setup time by bisection. The integration
//! tests use it to validate the derived model.

use bdc_circuit::{
    crossing_time, BatchLane, BatchTranSolver, Circuit, CircuitError, NodeId, TranSolver, Waveform,
};

use crate::topology::{cmos_gate, organic_gate, GateCircuit, LogicKind, OrganicSizing};
use crate::tracker::CrossTracker;

/// A transistor-level DFF ready for transient analysis.
#[derive(Debug, Clone)]
pub struct DffCircuit {
    /// The flattened transistor netlist.
    pub circuit: Circuit,
    /// Voltage-source index of the D input.
    pub d_src: usize,
    /// Voltage-source index of the clock.
    pub clk_src: usize,
    /// Voltage-source index of the active-low clear.
    pub clr_src: usize,
    /// The Q output node.
    pub q: NodeId,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Transistors in the flop.
    pub transistor_count: usize,
}

/// Inlines a characterized gate topology as a subcircuit: `gate`'s input
/// sources are removed and its input nodes driven by the given nets.
fn inline_gate(
    dst: &mut Circuit,
    gate: &GateCircuit,
    input_nets: &[NodeId],
    prefix: &str,
) -> NodeId {
    use bdc_circuit::Element;
    // Map gate-circuit nodes into dst. Rails map to dst rails by name.
    let mut map: Vec<Option<NodeId>> = vec![None; gate.circuit.node_count()];
    map[0] = Some(Circuit::GND);
    for (i, slot) in map.iter_mut().enumerate().skip(1) {
        let id = NodeId::from_index(i);
        let name = gate.circuit.node_name(id);
        let mapped = match name {
            "vdd" | "vss" => dst.node(name),
            other => dst.node(&format!("{prefix}.{other}")),
        };
        *slot = Some(mapped);
    }
    // Alias the gate's logic-input nodes onto the provided nets by
    // REPLACING the mapped node: we re-walk elements and substitute.
    let mut input_nodes: Vec<NodeId> = Vec::new();
    {
        // The gate's input nodes are the positive terminals of its input
        // sources (in `inputs` order).
        let mut idx = 0usize;
        for e in gate.circuit.elements() {
            if let Element::VSource { pos, .. } = e {
                // Source 0 is VDD, possibly VSS next; inputs follow in
                // insertion order — identify by matching recorded indices.
                if gate.inputs.iter().any(|(_, s)| *s == idx) {
                    input_nodes.push(*pos);
                }
                idx += 1;
            }
        }
    }
    assert_eq!(input_nodes.len(), input_nets.len(), "input arity mismatch");
    for (g_node, net) in input_nodes.iter().zip(input_nets) {
        map[g_node.index()] = Some(*net);
    }
    let m = |n: NodeId| map[n.index()].expect("node mapped");
    for e in gate.circuit.elements() {
        match e {
            Element::Resistor { a, b, ohms } => {
                dst.resistor(m(*a), m(*b), *ohms);
            }
            Element::Capacitor { a, b, farads } => {
                dst.capacitor(m(*a), m(*b), *farads);
            }
            Element::VSource { .. } => {
                // Input and rail sources are provided by the parent circuit.
            }
            Element::Fet { d, g, s, model } => {
                dst.fet(m(*d), m(*g), m(*s), model.clone());
            }
        }
    }
    m(gate.output)
}

/// Builds the 7474-style edge-triggered DFF (preset/clear tied inactive)
/// from six NAND3 subcircuits of the given process.
///
/// # Panics
/// Panics on invalid rails (propagated from the gate builders).
pub fn build_dff(organic: bool, sizing: &OrganicSizing, vdd: f64, vss: f64) -> DffCircuit {
    let mut c = Circuit::new();
    let n_vdd = c.node("vdd");
    c.vsource(n_vdd, Circuit::GND, vdd);
    let mut sources = 1;
    if organic {
        let n_vss = c.node("vss");
        c.vsource(n_vss, Circuit::GND, vss);
        sources += 1;
    }
    let n_d = c.node("D");
    let d_src = {
        c.vsource(n_d, Circuit::GND, 0.0);
        sources
    };
    let n_clk = c.node("CLK");
    let clk_src = {
        c.vsource(n_clk, Circuit::GND, 0.0);
        sources + 1
    };
    // Preset' held inactive (high); clear' drivable so simulations can
    // start from a defined Q = 0 (the raw cross-coupled latch's DC solution
    // is the metastable point).
    let n_hi = c.node("tie_hi");
    c.vsource(n_hi, Circuit::GND, vdd);
    let n_clr = c.node("CLRB");
    let clr_src = sources + 3;
    c.vsource(n_clr, Circuit::GND, vdd);

    // Internal latch nodes (driven by the six gates).
    let template = if organic {
        organic_gate(LogicKind::Nand3, sizing, vdd, vss)
    } else {
        cmos_gate(LogicKind::Nand3, 450.0e-9, vdd)
    };
    // We need feedback, so allocate the gate OUTPUT nodes first by inlining
    // with placeholder inputs is impossible; instead inline gates in an
    // order where feedback nets already exist: create named junction nodes
    // and let each gate's output BE that junction via a tiny resistor.
    // Simpler: inline each gate, then tie its output to the junction with a
    // low-value resistor (models the cell's output wire).
    let j: Vec<NodeId> = (1..=6).map(|i| c.node(&format!("n{i}"))).collect();
    let tie = 1.0; // ohm, negligible at cell impedances
    let specs: [(usize, [NodeId; 3]); 6] = [
        (0, [n_hi, j[3], j[1]]),   // G1: NAND(PR', n4, n2) -> n1
        (1, [j[0], n_clr, n_clk]), // G2: NAND(n1, CLR', CLK) -> n2
        (2, [j[1], n_clk, j[3]]),  // G3: NAND(n2, CLK, n4) -> n3
        (3, [j[2], n_clr, n_d]),   // G4: NAND(n3, CLR', D) -> n4
        (4, [n_hi, j[1], j[5]]),   // G5: NAND(PR', n2, Q') -> Q  (n5)
        (5, [j[4], j[2], n_clr]),  // G6: NAND(Q, n3, CLR') -> Q' (n6)
    ];
    let mut transistor_count = 0;
    for (gi, ins) in specs {
        let out = inline_gate(&mut c, &template, &ins, &format!("g{gi}"));
        c.resistor(out, j[gi], tie);
        transistor_count += template.transistor_count;
    }
    // The feedback loop's dynamics come from the transistors' own gate
    // capacitances — attach them explicitly (NLDM characterization lumps
    // them into the *next* cell's load, but a latch loads itself).
    {
        use bdc_circuit::Element;
        let caps: Vec<(NodeId, f64)> = c
            .elements()
            .iter()
            .filter_map(|e| match e {
                Element::Fet { g, model, .. } => Some((*g, model.cgs() + model.cgd())),
                _ => None,
            })
            .collect();
        for (n, cap) in caps {
            if n != Circuit::GND {
                c.capacitor(n, Circuit::GND, cap);
            }
        }
    }
    DffCircuit {
        circuit: c,
        d_src,
        clk_src,
        clr_src,
        q: j[4],
        vdd,
        transistor_count,
    }
}

/// Measured flop timing from transistor-level simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredDff {
    /// Clock-edge to Q 50 % crossing (s), D held stable long before.
    pub clk_to_q: f64,
    /// Minimum D-before-clock time that still captures (s), by bisection.
    pub setup: f64,
}

/// The clear and clock waveforms shared by every capture simulation:
/// clear asserted (low) for the first quarter of the window to define
/// Q = 0, clock rising at `edge`.
fn dff_waves(dff: &DffCircuit, scale: f64) -> (Waveform, Waveform) {
    let window = 40.0 * scale;
    let edge = 20.0 * scale;
    let clr_wave = Waveform::Pwl(vec![
        (0.0, 0.0),
        (10.0 * scale, 0.0),
        (10.5 * scale, dff.vdd),
        (window, dff.vdd),
    ]);
    let clk_wave = Waveform::ramp(0.0, dff.vdd, edge, scale * 0.05);
    (clr_wave, clk_wave)
}

/// One capture simulation: D rises `d_offset_before_edge` before the clock
/// edge; returns Q's 50 % crossing relative to the edge, if any.
fn run_offset(
    dff: &DffCircuit,
    scale: f64,
    d_offset_before_edge: f64,
) -> Result<Option<f64>, CircuitError> {
    let window = 40.0 * scale;
    let edge = 20.0 * scale;
    let (clr_wave, clk_wave) = dff_waves(dff, scale);
    let d_wave = Waveform::ramp(0.0, dff.vdd, edge - d_offset_before_edge, scale * 0.05);
    let res = TranSolver::new(window / 1500.0, window)
        .with_step_clamp(0.5 * dff.vdd)
        .drive(dff.d_src, d_wave)
        .drive(dff.clk_src, clk_wave)
        .drive(dff.clr_src, clr_wave)
        .run(&dff.circuit)?;
    let wf = res.node_waveform(dff.q);
    let after: Vec<(f64, f64)> = wf.into_iter().filter(|(t, _)| *t >= edge).collect();
    Ok(crossing_time(&after, 0.5 * dff.vdd).map(|t| t - edge))
}

/// Simulates one capture of `D: 0→1` and measures clk→Q; then bisects the
/// D-edge offset to find the setup time. `scale` is the process time scale
/// (≈ a gate delay, sets step sizes and windows).
///
/// With [`bdc_exec::batch_lanes`] `> 1` the bisection runs speculatively:
/// capture simulations differ only in the D waveform, so whole levels of
/// the pass/fail tree advance together through the lockstep SoA kernel and
/// only the lanes the scalar walk would have consumed are read back — the
/// result is bit-identical to the sequential bisection.
///
/// # Errors
/// Propagates simulation failures, or `NoConvergence` if Q never captures
/// even with a whole window of setup.
pub fn measure_dff(dff: &DffCircuit, scale: f64) -> Result<MeasuredDff, CircuitError> {
    if bdc_exec::batch_lanes() > 1 {
        measure_dff_speculative(dff, scale)
    } else {
        measure_dff_scalar(dff, scale)
    }
}

/// The scalar reference: one simulation per bisection step.
fn measure_dff_scalar(dff: &DffCircuit, scale: f64) -> Result<MeasuredDff, CircuitError> {
    // Generous setup: D arrives half the window early.
    let clk_to_q = run_offset(dff, scale, 10.0 * scale)?.ok_or(CircuitError::NoConvergence {
        residual: f64::NAN,
        iterations: 0,
    })?;
    // Bisect the pass/fail boundary. "Pass" = Q crosses within the window
    // at a latency not much above nominal.
    let pass = |off: f64| -> Result<bool, CircuitError> {
        Ok(match run_offset(dff, scale, off)? {
            Some(t) => t < 3.0 * clk_to_q + 2.0 * scale,
            None => false,
        })
    };
    let mut lo = 0.0; // fails (D at the edge)
    let mut hi = 10.0 * scale; // passes
    for _ in 0..7 {
        let mid = 0.5 * (lo + hi);
        if pass(mid)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(MeasuredDff {
        clk_to_q,
        setup: hi,
    })
}

/// Runs one capture simulation per offset as a lockstep batch, returning
/// each lane's Q-crossing measurement (the same quantity as
/// [`run_offset`], bit-identically).
fn run_offsets_batched(
    dff: &DffCircuit,
    scale: f64,
    offsets: &[f64],
) -> Vec<Result<Option<f64>, CircuitError>> {
    let window = 40.0 * scale;
    let edge = 20.0 * scale;
    let (clr_wave, clk_wave) = dff_waves(dff, scale);
    let batch: Vec<BatchLane> = offsets
        .iter()
        .map(|&off| {
            let d_wave = Waveform::ramp(0.0, dff.vdd, edge - off, scale * 0.05);
            BatchLane::new(dff.circuit.clone())
                .drive(dff.d_src, d_wave)
                .drive(dff.clk_src, clk_wave.clone())
                .drive(dff.clr_src, clr_wave.clone())
        })
        .collect();
    let mut trackers: Vec<CrossTracker> = offsets
        .iter()
        .map(|_| CrossTracker::new(edge, vec![0.5 * dff.vdd]))
        .collect();
    let q_idx = dff.q.index() - 1;
    let outcomes = BatchTranSolver::new(window / 1500.0, window)
        .with_step_clamp(0.5 * dff.vdd)
        .run(&batch, |l, t, volts| {
            trackers[l].feed(t, volts[q_idx]);
            !trackers[l].all_found()
        });
    outcomes
        .into_iter()
        .zip(&trackers)
        .map(|(o, tr)| o.map(|()| tr.time(0).map(|t| t - edge)))
        .collect()
}

/// Expands `levels` rounds of bisection below the interval `root`,
/// breadth-first: returns the mid offsets in (level, path) order plus the
/// index where each level's block starts. Node `path` at level `k` is
/// reached by the outcome bits of levels `1..k` (0 = pass ⇒ `hi = mid`),
/// so a walk can locate its consumed lane as `starts[k-1] + path`.
fn bisection_tree(root: (f64, f64), levels: usize) -> (Vec<f64>, Vec<usize>) {
    let mut intervals = vec![root];
    let mut mids = Vec::new();
    let mut starts = Vec::with_capacity(levels);
    for _ in 0..levels {
        starts.push(mids.len());
        let mut next = Vec::with_capacity(intervals.len() * 2);
        for &(lo, hi) in &intervals {
            let mid = 0.5 * (lo + hi);
            mids.push(mid);
            next.push((lo, mid));
            next.push((mid, hi));
        }
        intervals = next;
    }
    (mids, starts)
}

/// Speculative bisection: simulate whole tree levels in lockstep batches,
/// then walk the pass/fail outcomes to pick the lanes the scalar loop
/// would have run. Only consumed lanes' errors propagate; a speculative
/// lane on a path never taken cannot fail the measurement (the scalar
/// loop would never have simulated it).
fn measure_dff_speculative(dff: &DffCircuit, scale: f64) -> Result<MeasuredDff, CircuitError> {
    // Phase A: the nominal clk→Q run plus bisection levels 1–3 (1+1+2+4
    // lanes). The pass threshold depends on clk_to_q, but the simulations
    // don't — it is applied after the batch completes.
    let (mids_a, starts_a) = bisection_tree((0.0, 10.0 * scale), 3);
    let mut offsets = vec![10.0 * scale];
    offsets.extend_from_slice(&mids_a);
    let res_a = run_offsets_batched(dff, scale, &offsets);
    let clk_to_q = res_a[0].clone()?.ok_or(CircuitError::NoConvergence {
        residual: f64::NAN,
        iterations: 0,
    })?;
    let pass = |t: &Option<f64>| matches!(t, Some(t) if *t < 3.0 * clk_to_q + 2.0 * scale);
    let mut lo = 0.0;
    let mut hi = 10.0 * scale;
    let mut path = 0usize;
    for &start in &starts_a {
        let t = res_a[1 + start + path].clone()?;
        let mid = 0.5 * (lo + hi);
        if pass(&t) {
            hi = mid;
            path *= 2;
        } else {
            lo = mid;
            path = 2 * path + 1;
        }
    }
    // Phase B: levels 4–6 rooted at the surviving interval (1+2+4 lanes).
    let (mids_b, starts_b) = bisection_tree((lo, hi), 3);
    let res_b = run_offsets_batched(dff, scale, &mids_b);
    path = 0;
    for &start in &starts_b {
        let t = res_b[start + path].clone()?;
        let mid = 0.5 * (lo + hi);
        if pass(&t) {
            hi = mid;
            path *= 2;
        } else {
            lo = mid;
            path = 2 * path + 1;
        }
    }
    // Level 7: by now the interval is fully determined — one scalar run.
    let mid = 0.5 * (lo + hi);
    let t = run_offset(dff, scale, mid)?;
    if pass(&t) {
        hi = mid;
    }
    Ok(MeasuredDff {
        clk_to_q,
        setup: hi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdc_circuit::DcSolver;

    #[test]
    fn silicon_dff_is_a_valid_bistable_circuit() {
        let dff = build_dff(false, &OrganicSizing::library_default(), 1.0, 0.0);
        assert_eq!(dff.transistor_count, 36);
        // DC solves with clock low (holds state).
        let op = DcSolver::new().solve(&dff.circuit).expect("dc");
        let q = op.voltage(dff.q);
        assert!((0.0..=1.0).contains(&(q / 1.0)) || q.abs() < 1.2);
    }

    #[test]
    fn silicon_dff_captures_on_rising_edge() {
        let dff = build_dff(false, &OrganicSizing::library_default(), 1.0, 0.0);
        let m = measure_dff(&dff, 20.0e-12).expect("measure");
        // clk->Q of a 45 nm flop: tens of ps.
        assert!(
            m.clk_to_q > 5.0e-12 && m.clk_to_q < 5.0e-10,
            "clk_to_q {:.3e}",
            m.clk_to_q
        );
        assert!(m.setup > 0.0 && m.setup < 2.0e-10, "setup {:.3e}", m.setup);
    }

    #[test]
    fn speculative_bisection_is_bit_identical_to_scalar() {
        let dff = build_dff(false, &OrganicSizing::library_default(), 1.0, 0.0);
        let scale = 20.0e-12;
        let s = measure_dff_scalar(&dff, scale).expect("scalar");
        let b = measure_dff_speculative(&dff, scale).expect("speculative");
        assert_eq!(s.clk_to_q.to_bits(), b.clk_to_q.to_bits());
        assert_eq!(s.setup.to_bits(), b.setup.to_bits());
    }

    #[test]
    fn organic_dff_captures_with_millisecond_timing() {
        let dff = build_dff(true, &OrganicSizing::library_default(), 5.0, -15.0);
        assert_eq!(dff.transistor_count, 48);
        let m = measure_dff(&dff, 0.7e-3).expect("measure");
        assert!(
            m.clk_to_q > 1.0e-4 && m.clk_to_q < 2.0e-2,
            "clk_to_q {:.3e}",
            m.clk_to_q
        );
        assert!(m.setup < 1.0e-2, "setup {:.3e}", m.setup);
    }
}
