#![warn(missing_docs)]

//! Standard cell libraries for the organic (pentacene) and silicon (45 nm)
//! processes, with NLDM timing characterization.
//!
//! This crate reproduces §4.3–4.4 of *“Architectural Tradeoffs for
//! Biodegradable Computing”*: the unipolar p-type pseudo-E cell topologies,
//! the DC design-space analysis that selects supply rails, and the
//! non-linear delay model (NLDM) characterization that turns transistor
//! netlists into the look-up-table timing libraries consumed by synthesis.
//!
//! The paper's library has six cells: INV, NAND2, NAND3, NOR2, NOR3 and a
//! D-flip-flop with preset and clear. [`CellLibrary::organic_pentacene`]
//! builds and characterizes the organic version;
//! [`CellLibrary::silicon_45nm`] builds the reduced 6-cell silicon
//! comparison library through exactly the same flow.

pub mod characterize;
pub mod dff_sim;
pub mod dynamic;
pub mod liberty;
pub mod library;
pub mod nldm;
pub mod sizing;
pub mod topology;
pub(crate) mod tracker;
pub mod wire;

pub use characterize::{
    characterize_gate, measure_inverter_dc, measure_static_power, CharacterizeConfig, DcSummary,
};
pub use dff_sim::{build_dff, measure_dff, DffCircuit, MeasuredDff};
pub use dynamic::{
    characterize_dynamic, characterize_dynamic_loads, organic_dynamic_gate, DynamicTiming,
};
pub use liberty::{parse_library, write_library, LibertyError};
pub use library::{
    assemble_organic_library, assemble_silicon_library, build_organic_cell, build_silicon_cell,
    parse_cell_text, write_cell_text, Cell, CellKind, CellLibrary, DffTiming, ProcessKind,
};
pub use nldm::NldmTable;
pub use sizing::{evaluate_sizing, explore_inverter_sizing, SizingCandidate, Utility};
pub use topology::{
    cmos_gate, organic_gate, organic_gate_shifted, organic_inverter, organic_inverter_aged,
    organic_inverter_shifted, GateCircuit, LogicKind, OrganicSizing, OrganicStyle,
    ORGANIC_CHANNEL_L,
};
pub use wire::WireModel;
