//! Offline API-compatible subset of the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of criterion 0.5 its benches use: [`Criterion`],
//! [`criterion_group!`], [`criterion_main!`], `bench_function`, and
//! benchmark groups. Instead of criterion's statistical machinery this
//! stub warms each benchmark up, picks an iteration count targeting a
//! fixed measurement window, and prints the mean wall-clock time per
//! iteration.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

/// Runs timing loops for one benchmark.
pub struct Bencher {
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `f`, recording the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that fills the
        // measurement window, then measure.
        let calib_start = Instant::now();
        black_box(f());
        let one = calib_start.elapsed().max(Duration::from_nanos(1));
        let window = Duration::from_millis(200);
        let iters = (window.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean = Some(start.elapsed() / iters as u32);
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one benchmark and prints its mean time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mean: None };
        f(&mut b);
        match b.mean {
            Some(mean) => println!("{name:<40} {mean:>12.3?}/iter"),
            None => println!("{name:<40} (no measurement)"),
        }
        self
    }

    /// Opens a named group; this stub only namespaces the output.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark under the group's namespace.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.parent.bench_function(&full, f);
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("t", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_namespace_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).bench_function("x", |b| b.iter(|| ()));
        g.finish();
    }
}
