//! The case-execution loop behind the `proptest!` macro.

use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng as _};

/// Per-test configuration; only `cases` is honoured by this stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum total rejected (`prop_assume!`) cases before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assert*` failure — the property is violated.
    Fail(String),
    /// `prop_assume!` rejection — the inputs were uninteresting.
    Reject(String),
}

impl TestCaseError {
    /// A property violation.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The random source handed to strategies.
///
/// Concrete (not a trait object) so that `Strategy` stays object-safe.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

macro_rules! rng_int_method {
    ($($name:ident -> $t:ty),*) => {$(
        /// Uniform draw from a half-open range.
        pub fn $name(&mut self, range: std::ops::Range<$t>) -> $t {
            self.inner.gen_range(range)
        }
    )*};
}

impl TestRng {
    fn from_name(name: &str) -> Self {
        // FNV-1a over the test name: deterministic, stable across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }

    /// Raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform draw from a half-open `f64` range (degenerate ranges return
    /// the lower bound).
    pub fn gen_f64(&mut self, range: std::ops::Range<f64>) -> f64 {
        if range.start >= range.end {
            return range.start;
        }
        self.inner.gen_range(range)
    }

    rng_int_method!(
        gen_u8 -> u8, gen_u16 -> u16, gen_u32 -> u32, gen_u64 -> u64, gen_usize -> usize,
        gen_i8 -> i8, gen_i16 -> i16, gen_i32 -> i32, gen_i64 -> i64, gen_isize -> isize
    );
}

/// Runs `case` until `cfg.cases` successes, panicking on the first failure.
///
/// # Panics
/// Panics when a case fails or the reject budget is exhausted — that is how
/// `proptest!` tests report failure to the harness.
pub fn run(
    cfg: ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::from_name(name);
    let mut rejects = 0u32;
    let mut passed = 0u32;
    while passed < cfg.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed after {passed} passing cases: {msg}");
            }
            Err(TestCaseError::Reject(what)) => {
                rejects += 1;
                assert!(
                    rejects <= cfg.max_global_rejects,
                    "proptest '{name}': too many prop_assume! rejections ({what})"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut n = 0;
        run(ProptestConfig::with_cases(17), "t", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failure_panics() {
        run(ProptestConfig::with_cases(5), "t", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn rejections_retry() {
        let mut calls = 0;
        run(ProptestConfig::with_cases(3), "t", |_| {
            calls += 1;
            if calls % 2 == 0 {
                Err(TestCaseError::reject("odd"))
            } else {
                Ok(())
            }
        });
        assert!(calls > 3);
    }

    #[test]
    #[should_panic(expected = "too many")]
    fn reject_budget_is_bounded() {
        run(ProptestConfig::with_cases(1), "t", |_| {
            Err(TestCaseError::reject("never"))
        });
    }
}
