//! Value-generation strategies (no shrinking — see the crate docs).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Generates values of an associated type from a random source.
///
/// Mirrors `proptest::strategy::Strategy` minus shrinking: `generate`
/// replaces the value-tree machinery.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies — the result of [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_usize(0..self.options.len());
        self.options[i].generate(rng)
    }
}

// ---- numeric ranges --------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty => $gen:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.$gen(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.$gen(*self.start()..*self.end() + 1)
            }
        }
    )*};
}

int_range_strategy!(
    u8 => gen_u8, u16 => gen_u16, u32 => gen_u32, u64 => gen_u64, usize => gen_usize,
    i8 => gen_i8, i16 => gen_i16, i32 => gen_i32, i64 => gen_i64, isize => gen_isize
);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_f64(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_f64(*self.start()..*self.end())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_f64(self.start as f64..self.end as f64) as f32
    }
}

// ---- tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 / 0);
tuple_strategy!(S0 / 0, S1 / 1);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7
);

// ---- collections -----------------------------------------------------------

/// Length bound for [`crate::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_usize(self.size.lo..self.size.hi);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

// ---- any::<T>() ------------------------------------------------------------

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_f64(-1.0e9..1.0e9)
    }
}

/// Strategy over the whole domain of `T` — the result of [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
