//! Offline API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest 1.x its tests use: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range/tuple/`any`/`Just`/`prop_oneof!`/
//! `collection::vec` strategies, the `proptest!` macro with
//! `#![proptest_config(..)]`, and `prop_assert*`/`prop_assume!`.
//!
//! Semantics deliberately simplified relative to real proptest:
//!
//! * **No shrinking.** A failing case reports the generated values' Debug
//!   only via the assertion message; it is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name, so failures reproduce without regression files
//!   (`.proptest-regressions` files are ignored).
//! * Rejections via `prop_assume!` retry the case, with a global cap.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each argument is drawn from its strategy and the
/// body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($cfg, stringify!($name), |__pt_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __pt_rng);)+
                let __pt_case = move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    { $body };
                    ::core::result::Result::Ok(())
                };
                __pt_case()
            });
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", a, b, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", a, b, format!($($fmt)+)),
            ));
        }
    }};
}

/// Discards the current case (retried with fresh inputs) when `cond` is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Picks uniformly among the listed strategies (which must share a value
/// type). Weighted alternatives are not supported by this stub.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}
