//! Offline API-compatible subset of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the tiny slice of `rand` 0.8 it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] / [`Rng::gen`]. The generator is xoshiro256++ seeded
//! through SplitMix64 — the same construction the real `SmallRng` uses on
//! 64-bit targets — so it is deterministic, fast, and statistically fine
//! for the Monte-Carlo sampling and property tests in this repo. It is
//! **not** a cryptographic generator, exactly like the real `SmallRng`.

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64-expand the u64 into the full seed, as rand does.
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Ranges that can be sampled uniformly — the argument of
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Types drawable from the "standard" distribution, for [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draw from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(1.0e-12..1.0);
            assert!((1.0e-12..1.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
            let u = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&u));
        }
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }
}
