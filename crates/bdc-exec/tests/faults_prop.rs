//! Property tests for the `BDC_FAULTS` spec parser.
//!
//! Two contracts are pinned:
//!
//! * **Round trip** — any valid [`FaultConfig`] renders via
//!   [`FaultConfig::to_spec`] into text that [`faults::parse_spec`]
//!   accepts and parses back to an equal config, whitespace and key
//!   order notwithstanding.
//! * **Rejection, never panic** — unknown keys, duplicate keys,
//!   out-of-range rates, and arbitrary junk all come back as `Err` with
//!   a diagnostic naming `BDC_FAULTS`; the parser never panics.

use std::time::Duration;

use proptest::prelude::*;

use bdc_exec::faults::{self, FaultConfig};

/// A valid config: rates anywhere in `[0, 1]`, whole-millisecond delays
/// (the spec syntax cannot carry finer resolution), any seed.
fn arb_config() -> BoxedStrategy<FaultConfig> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u32>(),
        any::<u16>(),
        any::<u32>(),
        any::<u64>(),
    )
        .prop_map(|(c, t, ms, d, pms, p, seed)| FaultConfig {
            cache_corrupt: f64::from(c) / f64::from(u32::MAX),
            task_panic: f64::from(t) / f64::from(u32::MAX),
            io_slow: Duration::from_millis(u64::from(ms)),
            disk_full: f64::from(d) / f64::from(u32::MAX),
            peer_slow: Duration::from_millis(u64::from(pms)),
            partition: f64::from(p) / f64::from(u32::MAX),
            seed,
        })
        .boxed()
}

/// A short lowercase identifier (`[a-z_]`), for unknown-key draws.
fn arb_ident() -> BoxedStrategy<String> {
    proptest::collection::vec(0u32..27, 1..16)
        .prop_map(|codes| {
            codes
                .into_iter()
                .map(|c| {
                    if c == 26 {
                        '_'
                    } else {
                        char::from(b'a' + c as u8)
                    }
                })
                .collect()
        })
        .boxed()
}

proptest! {
    #[test]
    fn spec_round_trips(cfg in arb_config()) {
        let spec = cfg.to_spec();
        let parsed = faults::parse_spec(&spec).expect("to_spec output must parse");
        prop_assert_eq!(parsed, cfg);
    }

    #[test]
    fn whitespace_and_key_order_do_not_matter(cfg in arb_config(), swap in any::<bool>()) {
        let mut pairs = [
            format!("cache_corrupt = {}", cfg.cache_corrupt),
            format!("task_panic = {}", cfg.task_panic),
            format!("io_slow = {}ms", cfg.io_slow.as_millis()),
            format!("disk_full = {}", cfg.disk_full),
            format!("peer_slow = {}ms", cfg.peer_slow.as_millis()),
            format!("partition = {}", cfg.partition),
            format!("seed = {}", cfg.seed),
        ];
        if swap {
            pairs.reverse();
        }
        let spec = format!("  {}  ", pairs.join(" , "));
        prop_assert_eq!(faults::parse_spec(&spec).expect("spaced spec"), cfg);
    }

    #[test]
    fn omitted_keys_default_to_inert(seed in any::<u64>()) {
        let cfg = faults::parse_spec(&format!("seed={seed}")).expect("seed-only spec");
        prop_assert!(cfg.is_inert());
        prop_assert_eq!(cfg.seed, seed);
    }

    #[test]
    fn unknown_keys_are_rejected(key in arb_ident(), value in 0u32..2) {
        prop_assume!(!matches!(
            key.as_str(),
            "cache_corrupt" | "task_panic" | "io_slow" | "disk_full" | "peer_slow"
                | "partition" | "seed"
        ));
        let err = faults::parse_spec(&format!("{key}={value}")).unwrap_err();
        prop_assert!(err.contains("BDC_FAULTS"), "diagnostic must name the variable: {}", err);
        prop_assert!(err.contains(&key), "diagnostic must name the key: {}", err);
    }

    #[test]
    fn duplicate_keys_are_rejected(cfg in arb_config()) {
        let spec = format!("seed={},seed={}", cfg.seed, cfg.seed);
        let err = faults::parse_spec(&spec).unwrap_err();
        prop_assert!(err.contains("twice"), "{}", err);
    }

    #[test]
    fn out_of_range_rates_are_rejected(excess in any::<u32>(), negative in any::<bool>()) {
        // Anything outside [0, 1] on either side must be refused.
        let rate = 1.0 + f64::from(excess.max(1)) / f64::from(u32::MAX);
        let value = if negative { -rate } else { rate };
        let err = faults::parse_spec(&format!("task_panic={value}")).unwrap_err();
        prop_assert!(err.contains("BDC_FAULTS"), "{}", err);
        prop_assert!(err.contains("[0, 1]"), "{}", err);
    }

    #[test]
    fn arbitrary_junk_is_rejected_without_panicking(
        bytes in proptest::collection::vec(32u8..=126, 0..64),
    ) {
        // Printable-ASCII fuzz: the parser returns Ok or a BDC_FAULTS
        // diagnostic — it never panics. (Most draws are junk; the few
        // that happen to be valid specs are fine too.)
        let raw: String = bytes.into_iter().map(char::from).collect();
        if let Err(e) = faults::parse_spec(&raw) {
            prop_assert!(e.contains("BDC_FAULTS"), "diagnostic must name the variable: {}", e);
        }
    }

    #[test]
    fn bad_durations_are_rejected(
        n in any::<u16>(),
        unit_bytes in proptest::collection::vec(97u8..=122, 1..4),
    ) {
        let unit: String = unit_bytes.into_iter().map(char::from).collect();
        prop_assume!(unit != "ms" && unit != "s");
        let err = faults::parse_spec(&format!("io_slow={n}{unit}")).unwrap_err();
        prop_assert!(err.contains("io_slow"), "{}", err);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded(
        site_bytes in proptest::collection::vec(97u8..=122, 1..24),
        attempt in 0u64..16,
    ) {
        let site: String = site_bytes.into_iter().map(char::from).collect();
        let d1 = faults::backoff_delay(&site, attempt);
        let d2 = faults::backoff_delay(&site, attempt);
        prop_assert_eq!(d1, d2, "same (site, attempt) must sleep identically");
        // Base 5 ms doubling (capped at 2^6), plus at most 50% jitter.
        let base = 5u64 * (1 << attempt.min(6));
        prop_assert!(d1 >= Duration::from_millis(base));
        prop_assert!(d1 <= Duration::from_millis(base + base / 2 + 1));
    }
}
