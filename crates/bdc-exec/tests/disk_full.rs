//! Integration contract of the `disk_full=` fault kind against the real
//! artifact cache: an injected ENOSPC fails the store silently (the
//! failures-are-misses contract), the injection is counted, and a
//! disarmed retry of the same store lands. Lives in its own test binary
//! because the fault configuration is process-global — installing a
//! rate-1 config next to the cache unit tests would fail their stores.

use bdc_exec::faults::{self, FaultConfig};
use bdc_exec::ArtifactCache;

#[test]
fn injected_disk_full_fails_the_store_silently() {
    let dir = std::env::temp_dir().join(format!("bdc-exec-enospc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let c = ArtifactCache::new(&dir);
    faults::install(Some(FaultConfig {
        disk_full: 1.0,
        seed: 42,
        ..FaultConfig::default()
    }));
    let before = faults::counters();
    assert!(!c.store("lib", 9, "doomed"), "certain ENOSPC must miss");
    assert_eq!(c.load("lib", 9), None);
    faults::install(None);
    let delta = faults::counters().since(&before);
    assert_eq!(delta.injected_disk_full, 1);
    // Disarmed, the same store lands — a full disk heals by eviction or
    // operator action, never by wedging the flow.
    assert!(c.store("lib", 9, "doomed"));
    assert_eq!(c.load("lib", 9).as_deref(), Some("doomed"));
    let _ = std::fs::remove_dir_all(c.root());
}
