//! Scoped work-stealing thread pool with an index-ordered `par_map`.
//!
//! Determinism contract: `par_mapi(items, f)` returns exactly
//! `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()` for any worker
//! count, provided `f` is a pure function of `(i, t)`. The pool only changes
//! *when* each task runs, never what it computes or where its result lands,
//! so parallel output is bit-identical to the serial path.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

thread_local! {
    /// Set on pool worker threads. A `par_map` issued from inside a
    /// worker runs inline instead of spawning a second tier of threads:
    /// the outer fan-out already owns the machine's parallelism, and
    /// nesting would oversubscribe it (w² threads competing for w cores)
    /// without changing any result — the pool's contract is that output
    /// never depends on where tasks run.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Worker-count override installed by [`set_workers`]; 0 means "not set".
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the worker count for subsequent [`par_map`] calls in this
/// process. `None` restores the default resolution order (environment,
/// then hardware). Benchmarks and the determinism suite use this to pin
/// 1/2/8-worker runs.
pub fn set_workers(n: Option<usize>) {
    WORKER_OVERRIDE.store(n.map_or(0, |v| v.max(1)), Ordering::Relaxed);
}

/// The worker count the next [`par_map`] call will use: the
/// [`set_workers`] override if installed, else `BDC_WORKERS` from the
/// environment, else the machine's available parallelism.
///
/// A malformed `BDC_WORKERS` prints the parser's one-line diagnostic to
/// stderr and exits with status 2 — an invalid knob silently falling back
/// to the default would make "I pinned the worker count" runs lie, and a
/// panic's backtrace spam is the wrong answer to a typo'd env var.
/// Binaries that call [`crate::env_config`] up front never reach this
/// backstop.
pub fn workers() -> usize {
    let forced = WORKER_OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var("BDC_WORKERS") {
        return parse_workers(&raw).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Validates a `BDC_WORKERS` value: a positive integer, surrounding
/// whitespace tolerated.
///
/// # Errors
/// A one-line diagnostic naming the variable and the offending value.
pub fn parse_workers(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "BDC_WORKERS must be >= 1 (use 1 for serial execution), got `{raw}`"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "BDC_WORKERS must be a positive integer (e.g. `BDC_WORKERS=8`), got `{raw}`"
        )),
    }
}

/// Maps `f` over `items` on the pool, returning results in index order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_mapi(items, |_, t| f(t))
}

/// Maps `f(index, item)` over `items` on the pool, returning results in
/// index order. The index parameter is how randomized tasks derive a
/// per-task seed (see [`crate::task_seed`]) instead of consuming a shared
/// sequential RNG stream.
///
/// # Panics
/// Propagates the first panic raised by `f` after all workers have joined.
pub fn par_mapi<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let w = workers().min(n);
    if w <= 1 || IN_POOL.with(|p| p.get()) {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Workers inherit the spawning thread's attribution scope so tallies
    // recorded inside the fan-out stay credited to it (see
    // [`crate::stages::enter_scope`]).
    let scope = crate::stages::current_scope();

    // Per-worker deques, seeded with contiguous index blocks for locality.
    // A worker pops from the front of its own deque and, when empty, steals
    // from the back of a victim's — the classic work-stealing discipline,
    // here with plain mutexed deques (tasks are simulation-scale, so lock
    // traffic is negligible).
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..w)
        .map(|k| Mutex::new((k * n / w..(k + 1) * n / w).collect()))
        .collect();

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|s| {
        for k in 0..w {
            let tx = tx.clone();
            let queues = &queues;
            let f = &f;
            s.spawn(move || {
                IN_POOL.with(|p| p.set(true));
                crate::stages::adopt_scope(scope);
                loop {
                    let mine = queues[k].lock().expect("queue poisoned").pop_front();
                    let idx = mine.or_else(|| {
                        (1..w).find_map(|off| {
                            queues[(k + off) % w]
                                .lock()
                                .expect("queue poisoned")
                                .pop_back()
                        })
                    });
                    // Work is only ever consumed, never produced, so finding
                    // every deque empty means this worker is done for good.
                    match idx {
                        Some(i) => {
                            if tx.send((i, f(i, &items[i]))).is_err() {
                                break;
                            }
                        }
                        None => break,
                    }
                }
            });
        }
        drop(tx);
        // Receive until every sender is gone (normal completion or a
        // worker unwinding); placement by index makes the output order
        // independent of completion order.
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        // Leaving the scope joins the workers and propagates any panic.
    });
    slots
        .into_iter()
        .map(|r| r.expect("worker completed every index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that touch the global override.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn par_map_is_index_ordered_for_all_worker_counts() {
        let _g = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for w in [1, 2, 3, 8, 64] {
            set_workers(Some(w));
            let got = par_map(&items, |&x| x * x + 1);
            assert_eq!(got, expect, "workers = {w}");
        }
        set_workers(None);
    }

    #[test]
    fn par_mapi_passes_the_index() {
        let _g = LOCK.lock().unwrap();
        set_workers(Some(4));
        let items = vec!["a"; 100];
        let got = par_mapi(&items, |i, s| format!("{s}{i}"));
        for (i, s) in got.iter().enumerate() {
            assert_eq!(s, &format!("a{i}"));
        }
        set_workers(None);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let _g = LOCK.lock().unwrap();
        set_workers(Some(8));
        assert_eq!(par_map(&[] as &[i32], |x| *x), Vec::<i32>::new());
        assert_eq!(par_map(&[41], |x| x + 1), vec![42]);
        set_workers(None);
    }

    #[test]
    fn worker_panic_propagates() {
        let _g = LOCK.lock().unwrap();
        set_workers(Some(2));
        let items: Vec<usize> = (0..16).collect();
        let res = std::panic::catch_unwind(|| {
            par_map(&items, |&i| {
                assert!(i != 7, "boom");
                i
            })
        });
        assert!(res.is_err());
        set_workers(None);
    }

    #[test]
    fn set_workers_overrides_environment() {
        let _g = LOCK.lock().unwrap();
        set_workers(Some(3));
        assert_eq!(workers(), 3);
        set_workers(None);
        assert!(workers() >= 1);
    }

    #[test]
    fn parse_workers_accepts_positive_integers() {
        for (raw, expect) in [("1", 1), ("8", 8), (" 4 ", 4), ("64", 64)] {
            assert_eq!(parse_workers(raw), Ok(expect), "{raw:?}");
        }
    }

    #[test]
    fn parse_workers_rejects_with_a_diagnostic() {
        for raw in ["0", "-2", "", " ", "abc", "1.5", "8workers", "+"] {
            let err = parse_workers(raw).expect_err(raw);
            assert!(
                err.contains("BDC_WORKERS"),
                "diagnostic names the knob: {err}"
            );
            assert!(err.contains(raw.trim()) || raw.trim().is_empty(), "{err}");
        }
    }
}
