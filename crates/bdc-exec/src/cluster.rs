//! Sharded-fleet primitives: the seeded consistent-hash ring and the
//! hardened `BDC_SHARDS` / `BDC_RING_SEED` / `BDC_SHARD_ID` /
//! `BDC_PEER_PORTS` environment knobs.
//!
//! This module sits in `bdc-exec` (rather than `bdc-cluster`) because both
//! ends of the peer-fetch protocol need it below the serving layer: a
//! `bdc_serve` worker derives its artifact owners from the same ring the
//! `bdc-cluster` router routes requests with, and the artifact cache's
//! peer-fill hook (see [`crate::cache`]) is keyed off the validated
//! identity parsed here. `bdc-cluster` re-exports everything.
//!
//! **Determinism:** ring placement is a pure function of
//! `(seed, shard id, virtual-node index)` via [`task_seed`] — no ambient
//! state — so every process in a fleet that shares the env knobs computes
//! the identical ring, and a key's owner never depends on worker count or
//! construction order.

use crate::cache::fnv1a;
use crate::seed::{task_seed, SplitMix64};

/// Most shards a fleet may have (`BDC_SHARDS` upper bound). Generous for a
/// single-host fleet; keeps the ring and the peer-port list small.
pub const MAX_SHARDS: usize = 64;

/// Virtual nodes per shard in the default ring. 128 points per shard keeps
/// the max/min load ratio tight (≲2 at 1k keys) while the ring stays a few
/// KiB.
pub const DEFAULT_VNODES: usize = 128;

/// A validated snapshot of the cluster environment knobs.
///
/// `shards` and `ring_seed` describe the fleet topology every member must
/// agree on; `shard_id` and `peer_ports` are the *identity* knobs a
/// supervised `bdc_serve` worker additionally receives so its cache layer
/// can locate artifact owners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterEnv {
    /// `BDC_SHARDS`: fleet size, `1..=MAX_SHARDS`.
    pub shards: usize,
    /// `BDC_RING_SEED`: the seed every ring in the fleet is built from.
    pub ring_seed: u64,
    /// `BDC_SHARD_ID`: this process's shard index (`< shards`); `None` for
    /// fleet-level tools (the router, the supervisor) that are not a shard.
    pub shard_id: Option<usize>,
    /// `BDC_PEER_PORTS`: one loopback port per shard, in shard order;
    /// empty when peer fetch is not configured.
    pub peer_ports: Vec<u16>,
}

/// Parses `BDC_SHARDS`: an integer in `1..=MAX_SHARDS`.
///
/// # Errors
/// A one-line diagnostic naming the knob and the offending value.
pub fn parse_shards(raw: &str) -> Result<usize, String> {
    let n: usize = raw
        .trim()
        .parse()
        .map_err(|_| format!("BDC_SHARDS must be an integer in 1..={MAX_SHARDS}, got `{raw}`"))?;
    if !(1..=MAX_SHARDS).contains(&n) {
        return Err(format!(
            "BDC_SHARDS must be an integer in 1..={MAX_SHARDS}, got `{raw}`"
        ));
    }
    Ok(n)
}

/// Parses `BDC_RING_SEED`: any u64.
///
/// # Errors
/// A one-line diagnostic naming the knob and the offending value.
pub fn parse_ring_seed(raw: &str) -> Result<u64, String> {
    raw.trim()
        .parse::<u64>()
        .map_err(|_| format!("BDC_RING_SEED must be an unsigned integer, got `{raw}`"))
}

/// Parses `BDC_SHARD_ID`: an integer (range-checked against `BDC_SHARDS`
/// by [`cluster_env`]).
///
/// # Errors
/// A one-line diagnostic naming the knob and the offending value.
pub fn parse_shard_id(raw: &str) -> Result<usize, String> {
    raw.trim()
        .parse::<usize>()
        .map_err(|_| format!("BDC_SHARD_ID must be an unsigned integer, got `{raw}`"))
}

/// Parses `BDC_PEER_PORTS`: a comma-separated list of distinct TCP ports
/// (one per shard, in shard order; length checked by [`cluster_env`]).
///
/// # Errors
/// A one-line diagnostic naming the knob, the offending entry, and the
/// rule it broke (non-numeric, zero, duplicate, or over `MAX_SHARDS`
/// entries).
pub fn parse_peer_ports(raw: &str) -> Result<Vec<u16>, String> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(
            "BDC_PEER_PORTS is set but empty; give a comma-separated port list like `8801,8802,8803`"
                .to_string(),
        );
    }
    let mut ports = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        let port: u16 = part
            .parse()
            .map_err(|_| format!("BDC_PEER_PORTS entry `{part}` is not a TCP port"))?;
        if port == 0 {
            return Err("BDC_PEER_PORTS entries must be nonzero ports".to_string());
        }
        if ports.contains(&port) {
            return Err(format!("BDC_PEER_PORTS lists port {port} twice"));
        }
        ports.push(port);
        if ports.len() > MAX_SHARDS {
            return Err(format!("BDC_PEER_PORTS lists more than {MAX_SHARDS} ports"));
        }
    }
    Ok(ports)
}

/// Reads and cross-validates the cluster knobs. Returns `Ok(None)` when
/// none of them is set (the common single-process case).
///
/// Cross-field rules: every other knob requires `BDC_SHARDS`;
/// `BDC_SHARD_ID` must be `< BDC_SHARDS`; `BDC_PEER_PORTS` must list
/// exactly one port per shard.
///
/// # Errors
/// A one-line diagnostic naming the offending knob, suitable for printing
/// verbatim before exiting 2.
pub fn cluster_env() -> Result<Option<ClusterEnv>, String> {
    let get = |name: &str| std::env::var(name).ok();
    let (shards_raw, seed_raw, id_raw, ports_raw) = (
        get("BDC_SHARDS"),
        get("BDC_RING_SEED"),
        get("BDC_SHARD_ID"),
        get("BDC_PEER_PORTS"),
    );
    if shards_raw.is_none() && seed_raw.is_none() && id_raw.is_none() && ports_raw.is_none() {
        return Ok(None);
    }
    let Some(shards_raw) = shards_raw else {
        return Err(
            "BDC_RING_SEED/BDC_SHARD_ID/BDC_PEER_PORTS require BDC_SHARDS to be set".to_string(),
        );
    };
    let shards = parse_shards(&shards_raw)?;
    let ring_seed = match seed_raw {
        Some(raw) => parse_ring_seed(&raw)?,
        None => 0,
    };
    let shard_id = match id_raw {
        Some(raw) => {
            let id = parse_shard_id(&raw)?;
            if id >= shards {
                return Err(format!(
                    "BDC_SHARD_ID is {id} but BDC_SHARDS is {shards}; the id must be < the count"
                ));
            }
            Some(id)
        }
        None => None,
    };
    let peer_ports = match ports_raw {
        Some(raw) => {
            let ports = parse_peer_ports(&raw)?;
            if ports.len() != shards {
                return Err(format!(
                    "BDC_PEER_PORTS lists {} port(s) but BDC_SHARDS is {shards}; give one port per shard",
                    ports.len()
                ));
            }
            ports
        }
        None => Vec::new(),
    };
    Ok(Some(ClusterEnv {
        shards,
        ring_seed,
        shard_id,
        peer_ports,
    }))
}

/// A seeded consistent-hash ring with virtual nodes.
///
/// Each shard contributes `vnodes` points placed by a pure function of
/// `(seed, shard, vnode)`; a key's owner is the shard whose point is the
/// first at or clockwise-after the key's slot. Removing a shard removes
/// only its points, so only the keys it owned move (~`1/N` of the space —
/// the minimal-remap property the proptests pin).
#[derive(Debug, Clone)]
pub struct Ring {
    /// Sorted `(position, shard)` points.
    points: Vec<(u64, usize)>,
    /// The distinct shard ids on the ring, ascending.
    shard_ids: Vec<usize>,
}

impl Ring {
    /// A ring over shards `0..shards` (the common fleet case).
    pub fn new(shards: usize, vnodes: usize, seed: u64) -> Ring {
        let ids: Vec<usize> = (0..shards).collect();
        Ring::from_ids(&ids, vnodes, seed)
    }

    /// A ring over an explicit shard-id set (used after removals).
    pub fn from_ids(ids: &[usize], vnodes: usize, seed: u64) -> Ring {
        let mut points = Vec::with_capacity(ids.len() * vnodes.max(1));
        for &shard in ids {
            for vnode in 0..vnodes.max(1) {
                let site = fnv1a(&["bdc-ring-v1", &shard.to_string(), &vnode.to_string()]);
                points.push((task_seed(seed, site), shard));
            }
        }
        // Sort by position; shard id breaks the (astronomically unlikely)
        // position tie so construction order can never matter.
        points.sort_unstable();
        let mut shard_ids = ids.to_vec();
        shard_ids.sort_unstable();
        shard_ids.dedup();
        Ring { points, shard_ids }
    }

    /// The same ring with one shard's points removed.
    pub fn without(&self, shard: usize, vnodes: usize, seed: u64) -> Ring {
        let ids: Vec<usize> = self
            .shard_ids
            .iter()
            .copied()
            .filter(|&s| s != shard)
            .collect();
        Ring::from_ids(&ids, vnodes, seed)
    }

    /// The distinct shard ids on the ring, ascending.
    pub fn shard_ids(&self) -> &[usize] {
        &self.shard_ids
    }

    /// The shard owning `slot` (see [`key_slot`] / [`artifact_slot`]).
    ///
    /// # Panics
    /// Panics on an empty ring (zero shards) — a construction error, not a
    /// runtime state.
    pub fn owner(&self, slot: u64) -> usize {
        assert!(!self.points.is_empty(), "ring has no shards");
        let idx = self.points.partition_point(|&(pos, _)| pos < slot);
        self.points[idx % self.points.len()].1
    }

    /// Every shard in failover order for `slot`: the owner first, then
    /// each further distinct shard in clockwise ring order. The router
    /// walks this list when a shard is down.
    pub fn replicas(&self, slot: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.shard_ids.len());
        if self.points.is_empty() {
            return order;
        }
        let start = self.points.partition_point(|&(pos, _)| pos < slot);
        for i in 0..self.points.len() {
            let shard = self.points[(start + i) % self.points.len()].1;
            if !order.contains(&shard) {
                order.push(shard);
                if order.len() == self.shard_ids.len() {
                    break;
                }
            }
        }
        order
    }
}

/// Maps an arbitrary 64-bit key (e.g. an [`crate::fnv1a`] cache key) to a
/// ring slot. The mix decorrelates ring position from any structure in the
/// key space.
pub fn key_slot(key: u64) -> u64 {
    SplitMix64::new(key).next_u64()
}

/// The ring slot of a cache artifact `(name, key)` — both the peer-fill
/// hook and the router's peer-endpoint proxying derive an artifact's
/// owning shard from this, so they can never disagree.
pub fn artifact_slot(name: &str, key: u64) -> u64 {
    key_slot(fnv1a(&["bdc-peer-v1", name, &format!("{key:016x}")]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_valid_knobs() {
        assert_eq!(parse_shards("3"), Ok(3));
        assert_eq!(parse_ring_seed("42"), Ok(42));
        assert_eq!(parse_shard_id("2"), Ok(2));
        assert_eq!(
            parse_peer_ports("8801, 8802,8803"),
            Ok(vec![8801, 8802, 8803])
        );
    }

    #[test]
    fn rejects_bad_knobs_with_diagnostics() {
        for (raw, knob) in [
            ("0", "BDC_SHARDS"),
            ("65", "BDC_SHARDS"),
            ("three", "BDC_SHARDS"),
            ("-1", "BDC_SHARDS"),
        ] {
            let err = parse_shards(raw).expect_err(raw);
            assert!(err.contains(knob), "{raw}: {err}");
        }
        assert!(parse_ring_seed("-1")
            .expect_err("-1")
            .contains("BDC_RING_SEED"));
        assert!(parse_ring_seed("1.5")
            .expect_err("1.5")
            .contains("BDC_RING_SEED"));
        for raw in ["", "8801,8801", "8801,0", "nope", "8801,,8803"] {
            let err = parse_peer_ports(raw).expect_err(raw);
            assert!(err.contains("BDC_PEER_PORTS"), "{raw}: {err}");
        }
    }

    #[test]
    fn ring_is_deterministic_and_owner_is_stable() {
        let a = Ring::new(4, DEFAULT_VNODES, 42);
        let b = Ring::new(4, DEFAULT_VNODES, 42);
        for key in 0..256u64 {
            let slot = key_slot(key);
            assert_eq!(a.owner(slot), b.owner(slot));
        }
        // A different seed shuffles placement.
        let c = Ring::new(4, DEFAULT_VNODES, 43);
        assert!((0..256u64).any(|k| a.owner(key_slot(k)) != c.owner(key_slot(k))));
    }

    #[test]
    fn replicas_start_at_the_owner_and_cover_every_shard() {
        let ring = Ring::new(5, DEFAULT_VNODES, 7);
        for key in 0..64u64 {
            let slot = key_slot(key);
            let reps = ring.replicas(slot);
            assert_eq!(reps[0], ring.owner(slot));
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "distinct cover: {reps:?}");
        }
    }

    #[test]
    fn removal_only_moves_the_removed_shards_keys() {
        let ring = Ring::new(4, DEFAULT_VNODES, 11);
        let smaller = ring.without(2, DEFAULT_VNODES, 11);
        assert_eq!(smaller.shard_ids(), &[0, 1, 3]);
        for key in 0..512u64 {
            let slot = key_slot(key);
            let before = ring.owner(slot);
            if before != 2 {
                assert_eq!(smaller.owner(slot), before, "key {key} moved needlessly");
            } else {
                assert_ne!(smaller.owner(slot), 2);
            }
        }
    }

    #[test]
    fn artifact_slot_separates_names_and_keys() {
        assert_ne!(
            artifact_slot("lib-organic", 1),
            artifact_slot("lib-silicon", 1)
        );
        assert_ne!(
            artifact_slot("lib-organic", 1),
            artifact_slot("lib-organic", 2)
        );
        assert_eq!(artifact_slot("ipc", 9), artifact_slot("ipc", 9));
    }
}
