//! Content-addressed, self-healing artifact cache under `results/cache/`.
//!
//! An artifact is any serialized flow product — a characterized library in
//! its Liberty-dialect text, a synthesized-core `(T_min, area)` record. The
//! key is an FNV-1a hash over every input that determines the artifact
//! (process, grid parameters, library fingerprint, design point) plus a
//! schema-version salt; the filename embeds the key, so *invalidation is
//! key change* — touching any input addresses a different file and the old
//! entry is simply never read again.
//!
//! On-disk format: a one-line header `bdc-artifact-v1 <fnv:016x> <len>`
//! followed by the payload. Writes go through a temp file + `fsync` +
//! rename (with a post-rename audit) so neither concurrent writers nor a
//! power cut can expose a torn artifact; reads verify the
//! header's version, length, and FNV-1a checksum, and any artifact that
//! fails verification — corrupt, truncated, or written by a different
//! format version — is moved to `quarantine/` under the cache root and
//! reported as a miss, so the caller transparently rebuilds it. Orphaned
//! `.tmp-*` files left by crashed runs are reaped when a store opens, and
//! quarantined artifacts older than [`QUARANTINE_REAP_GENERATIONS`] store
//! generations are reaped with them, so sustained corruption cannot grow
//! `quarantine/` without bound. All
//! I/O failures degrade to cache misses — the cache is an accelerator,
//! never a correctness dependency.
//!
//! **Disk budget.** Every successful store is stamped with a per-root
//! *store generation* (a persisted counter in `store.log`, never wall
//! clock). With `BDC_CACHE_BUDGET_MB` set, a store that pushes the root
//! past the budget evicts the lowest-generation entries first —
//! deterministic LRU, since recency is the generation ledger rather than
//! mtime — and never evicts an artifact whose single-flight lock is held
//! by an in-flight computation (the plan's working set stays pinned).
//!
//! Environment knobs: `BDC_CACHE_DIR` overrides the root directory,
//! `BDC_NO_CACHE=1` disables the cache entirely (every load misses, every
//! store is dropped), `BDC_CACHE_BUDGET_MB` bounds the store's disk
//! footprint, and `BDC_FAULTS` (see [`crate::faults`]) can inject
//! deterministic read corruption, I/O delay, synthetic ENOSPC
//! (`disk_full=`), and peer-fetch delay (`peer_slow=`) to exercise the
//! quarantine/rebuild and eviction paths.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use crate::faults;

/// On-disk artifact format version tag; bump on any framing change so
/// older entries quarantine-and-rebuild instead of misparsing.
const MAGIC: &str = "bdc-artifact-v1";

/// The per-root store-generation ledger: `<gen:020> <filename>` lines,
/// append-only, later mentions win. Recency for the LRU is read from
/// here, never from mtime, so eviction order is a pure function of the
/// store sequence.
const LEDGER_FILE: &str = "store.log";

/// The quarantine-stamp ledger inside `quarantine/`: `<gen:020>
/// <filename>` lines recording the store generation each artifact was
/// quarantined at.
const QUARANTINE_LEDGER: &str = "reap.log";

/// Quarantined artifacts older than this many store generations are
/// reaped at store-open — old enough that any forensic look has had its
/// chance, young enough that sustained corruption faults cannot grow
/// `quarantine/` without bound.
pub const QUARANTINE_REAP_GENERATIONS: u64 = 64;

/// FNV-1a 64-bit hash over a sequence of string parts. Parts are separated
/// by a 0xFF sentinel byte (which cannot occur in UTF-8), so `["ab", "c"]`
/// and `["a", "bc"]` hash differently.
pub fn fnv1a(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for part in parts {
        for b in part.as_bytes() {
            eat(*b);
        }
        eat(0xFF);
    }
    h
}

/// Validates an explicitly requested cache root (`BDC_CACHE_DIR`): the
/// directory must exist or be creatable.
///
/// # Errors
/// A one-line diagnostic naming the knob, the path, and the OS error.
pub fn validate_cache_dir(dir: &Path) -> Result<PathBuf, String> {
    if dir.as_os_str().is_empty() {
        return Err(
            "BDC_CACHE_DIR is set but empty; unset it to use the default results/cache/"
                .to_string(),
        );
    }
    match std::fs::create_dir_all(dir) {
        Ok(()) => Ok(dir.to_path_buf()),
        Err(e) => Err(format!(
            "BDC_CACHE_DIR points at an uncreatable directory `{}`: {e}",
            dir.display()
        )),
    }
}

/// Parses a `BDC_CACHE_BUDGET_MB` value: a positive integer number of
/// megabytes.
///
/// # Errors
/// A one-line diagnostic naming the knob and the offending value.
pub fn parse_cache_budget_mb(raw: &str) -> Result<u64, String> {
    let raw = raw.trim();
    let bad = || {
        format!("BDC_CACHE_BUDGET_MB must be a positive integer number of megabytes, got `{raw}`")
    };
    let mb: u64 = raw.parse().map_err(|_| bad())?;
    if mb == 0 {
        return Err(bad());
    }
    Ok(mb)
}

/// The `BDC_CACHE_BUDGET_MB` disk budget in bytes, read once per process.
/// A malformed value exits with its diagnostic — binaries validate it up
/// front through [`crate::env_config`], so this is a backstop, and
/// silently ignoring an explicitly requested budget would let the store
/// grow unbounded against the operator's stated intent.
fn env_budget_bytes() -> Option<u64> {
    static BUDGET: OnceLock<Option<u64>> = OnceLock::new();
    *BUDGET.get_or_init(|| match std::env::var("BDC_CACHE_BUDGET_MB") {
        Ok(raw) => match parse_cache_budget_mb(&raw) {
            Ok(mb) => Some(mb.saturating_mul(1024 * 1024)),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        },
        Err(_) => None,
    })
}

/// Per-root next-store-generation counters, seeded from the ledger on
/// first use so generations keep monotonically increasing across process
/// restarts.
static NEXT_GEN: Mutex<Option<BTreeMap<PathBuf, u64>>> = Mutex::new(None);

/// Claims the next store generation for `root` (monotonic per process,
/// seeded from the persisted ledger).
fn bump_generation(root: &Path) -> u64 {
    let mut guard = NEXT_GEN.lock().unwrap_or_else(|p| p.into_inner());
    let next = guard
        .get_or_insert_with(BTreeMap::new)
        .entry(root.to_path_buf())
        .or_insert_with(|| {
            ledger_generations(root)
                .values()
                .copied()
                .max()
                .unwrap_or(0)
                + 1
        });
    let gen = *next;
    *next += 1;
    gen
}

/// The highest store generation claimed so far for `root` (0 for a fresh
/// root).
fn current_generation(root: &Path) -> u64 {
    let guard = NEXT_GEN.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(next) = guard.as_ref().and_then(|m| m.get(root)) {
        return next - 1;
    }
    drop(guard);
    ledger_generations(root)
        .values()
        .copied()
        .max()
        .unwrap_or(0)
}

/// Parses a `<gen:020> <filename>` ledger (store or quarantine); later
/// mentions of a filename win, which is exactly the LRU refresh.
fn read_gen_ledger(path: &Path) -> BTreeMap<String, u64> {
    let mut map = BTreeMap::new();
    if let Ok(text) = std::fs::read_to_string(path) {
        for line in text.lines() {
            if let Some((gen, name)) = line.split_once(' ') {
                if let Ok(gen) = gen.parse::<u64>() {
                    map.insert(name.to_string(), gen);
                }
            }
        }
    }
    map
}

/// The store-generation ledger for `root`.
fn ledger_generations(root: &Path) -> BTreeMap<String, u64> {
    read_gen_ledger(&root.join(LEDGER_FILE))
}

/// Appends one `<gen> <filename>` line to a ledger (best effort — the
/// ledger is recency metadata, never a correctness dependency).
fn append_gen_ledger(path: &Path, gen: u64, filename: &str) {
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(f, "{gen:020} {filename}");
    }
}

/// Rewrites a ledger to exactly `entries` (compaction after eviction or
/// reaping), via temp + rename so a crash never leaves a torn ledger.
fn rewrite_gen_ledger(path: &Path, entries: &BTreeMap<String, u64>) {
    if entries.is_empty() {
        let _ = std::fs::remove_file(path);
        return;
    }
    let mut text = String::new();
    let mut rows: Vec<(&u64, &String)> = entries.iter().map(|(n, g)| (g, n)).collect();
    rows.sort();
    for (gen, name) in rows {
        text.push_str(&format!("{gen:020} {name}\n"));
    }
    let tmp = path.with_extension("log.tmp");
    if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// What a peer-fill fetch hook reports back to the cache.
#[derive(Debug, Clone)]
pub enum PeerFetch {
    /// No fetch was attempted (no peer owns this artifact, or this
    /// process *is* the owner). Not counted.
    NotAttempted,
    /// A fetch was attempted but produced nothing usable (owner down or
    /// artifact absent there). Counted as a peer miss.
    Miss,
    /// The owner answered with framed artifact text (`bdc-artifact-v1`
    /// header + payload). The cache verifies the frame before trusting it.
    Framed(String),
}

/// A `fetch` hook: ask the owning shard for `(name, key)` framed text.
pub type PeerFetchFn = Arc<dyn Fn(&str, u64) -> PeerFetch + Send + Sync>;

/// A `push` hook: offer `(name, key, payload)` to the owning shard.
pub type PeerPushFn = Arc<dyn Fn(&str, u64, &str) + Send + Sync>;

/// The peer-to-peer cache-fill hooks a sharded fleet installs (see
/// `bdc-cluster`): `fetch` asks the artifact's ring-owner shard for the
/// framed bytes on a local miss; `push` offers a freshly built artifact to
/// its owner so later misses on other shards hit there.
pub struct PeerHooks {
    /// Fetch `(name, key)` from the owning shard, returning *framed* text.
    pub fetch: PeerFetchFn,
    /// Offer `(name, key, payload)` to the owning shard (fire-and-forget).
    pub push: PeerPushFn,
}

static PEER_HOOKS: Mutex<Option<Arc<PeerHooks>>> = Mutex::new(None);

/// Installs (or, with `None`, removes) the process-wide peer cache-fill
/// hooks. Only the sharded `bdc_serve` worker installs these; every other
/// binary runs with the hooks absent and the cache behaves exactly as
/// before.
pub fn install_peer_hooks(hooks: Option<PeerHooks>) {
    let mut slot = PEER_HOOKS.lock().unwrap_or_else(|p| p.into_inner());
    *slot = hooks.map(Arc::new);
}

fn peer_hooks() -> Option<Arc<PeerHooks>> {
    PEER_HOOKS.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// Frames a payload with the on-disk/wire `bdc-artifact-v1` header — the
/// exact bytes the cache stores and the peer-fetch protocol ships.
pub fn frame_artifact(text: &str) -> String {
    frame(text)
}

/// Parses and verifies a framed artifact, returning the payload.
///
/// # Errors
/// Names the first check that failed (version, framing, length,
/// checksum); peer endpoints reject the frame with this diagnostic.
pub fn unframe_artifact(raw: &str) -> Result<&str, String> {
    unframe(raw)
}

/// Artifacts quarantined by this process, by final path — lets `store`
/// distinguish a rebuild (count it) from a first build.
static QUARANTINED_PATHS: Mutex<Option<BTreeSet<PathBuf>>> = Mutex::new(None);

fn mark_quarantined(path: &Path) {
    let mut set = QUARANTINED_PATHS.lock().unwrap_or_else(|p| p.into_inner());
    set.get_or_insert_with(BTreeSet::new)
        .insert(path.to_path_buf());
}

fn take_quarantined(path: &Path) -> bool {
    let mut set = QUARANTINED_PATHS.lock().unwrap_or_else(|p| p.into_inner());
    set.as_mut().is_some_and(|s| s.remove(path))
}

/// A content-addressed, string-payload artifact cache rooted at one
/// directory.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    root: PathBuf,
    enabled: bool,
    budget_bytes: Option<u64>,
}

/// One artifact's `(root, name, key)` address.
type ArtifactAddr = (PathBuf, String, u64);

/// Per-(root, name, key) in-flight computation locks: a cached helper
/// holds its artifact's lock across load → compute → store, so when N
/// workers miss the same key at once, one computes and the rest block
/// briefly and then load the stored artifact — a hit, not N duplicate
/// recomputations. Entries are tiny and never evicted; the map is
/// bounded by the number of distinct artifacts a process touches.
static IN_FLIGHT: Mutex<Option<BTreeMap<ArtifactAddr, Arc<Mutex<()>>>>> = Mutex::new(None);

/// The single-flight lock for one artifact address. See [`IN_FLIGHT`].
pub fn artifact_flight(root: &Path, name: &str, key: u64) -> Arc<Mutex<()>> {
    IN_FLIGHT
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .get_or_insert_with(BTreeMap::new)
        .entry((root.to_path_buf(), name.to_string(), key))
        .or_default()
        .clone()
}

/// Roots already swept for orphaned temp files by this process. The
/// sweep walks the whole cache directory, and hot paths construct
/// [`ArtifactCache::shared`] once per cache access — so the walk runs
/// once per root per process, not per construction.
static REAPED_ROOTS: Mutex<Option<BTreeSet<PathBuf>>> = Mutex::new(None);

impl ArtifactCache {
    /// A cache rooted at an explicit directory (created lazily on first
    /// store), with the disk budget taken from `BDC_CACHE_BUDGET_MB`.
    /// The first open of a root in this process reaps `.tmp-*`
    /// files orphaned by crashed runs and quarantined artifacts older
    /// than [`QUARANTINE_REAP_GENERATIONS`] store generations.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self::with_budget_bytes(root, env_budget_bytes())
    }

    /// A cache with an explicit disk budget in bytes (`None` = unbounded),
    /// overriding `BDC_CACHE_BUDGET_MB` — the testing seam for the
    /// eviction path.
    pub fn with_budget_bytes(root: impl Into<PathBuf>, budget_bytes: Option<u64>) -> Self {
        let cache = ArtifactCache {
            root: root.into(),
            enabled: true,
            budget_bytes,
        };
        let first_open = REAPED_ROOTS
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get_or_insert_with(BTreeSet::new)
            .insert(cache.root.clone());
        if first_open {
            cache.reap_orphaned_tmp();
            cache.reap_stale_quarantine(current_generation(&cache.root));
        }
        cache
    }

    /// A cache that never hits and never writes.
    pub fn disabled() -> Self {
        ArtifactCache {
            root: PathBuf::new(),
            enabled: false,
            budget_bytes: None,
        }
    }

    /// The process-wide shared cache: disabled under `BDC_NO_CACHE`,
    /// rooted at `BDC_CACHE_DIR` when set, else at `results/cache/` under
    /// the enclosing repository root (found by walking up from the current
    /// directory to the nearest `Cargo.lock`, so experiment binaries run
    /// from the checkout root and `cargo test` run from a crate directory
    /// share one cache).
    ///
    /// # Panics
    /// Panics with a diagnostic when `BDC_CACHE_DIR` is set but names an
    /// uncreatable directory (e.g. a path through an existing file).
    /// An explicitly requested cache root that silently degrades to
    /// all-miss behaviour would hide a misconfiguration; only the
    /// *default* root keeps the failures-are-misses contract.
    pub fn shared() -> Self {
        if std::env::var_os("BDC_NO_CACHE").is_some() {
            return Self::disabled();
        }
        if let Some(dir) = std::env::var_os("BDC_CACHE_DIR") {
            let root = validate_cache_dir(&PathBuf::from(dir)).unwrap_or_else(|e| panic!("{e}"));
            return Self::new(root);
        }
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let mut dir = cwd.as_path();
        loop {
            if dir.join("Cargo.lock").exists() {
                return Self::new(dir.join("results").join("cache"));
            }
            match dir.parent() {
                Some(p) => dir = p,
                None => return Self::new(cwd.join("results").join("cache")),
            }
        }
    }

    /// Whether loads can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The file a `(name, key)` pair addresses.
    pub fn path_for(&self, name: &str, key: u64) -> PathBuf {
        self.root.join(format!("{name}-{key:016x}.txt"))
    }

    /// The quarantine directory failed artifacts are moved to.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    /// Removes `.tmp-{name}-{key}-{pid}` files whose writing process is
    /// gone — a crashed run leaks its temp file forever otherwise. A live
    /// sibling's in-flight temp is left alone (its pid still exists); if
    /// liveness cannot be established the file is only reclaimed when the
    /// pid differs from ours, which at worst turns a concurrent writer's
    /// rename into a silent re-store (the failures-are-misses contract).
    fn reap_orphaned_tmp(&self) {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return;
        };
        let own_pid = std::process::id();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.starts_with(".tmp-") {
                continue;
            }
            let orphaned = match name
                .rsplit_once('-')
                .and_then(|(_, pid)| pid.parse::<u32>().ok())
            {
                // Malformed temp name: nobody will ever rename it.
                None => true,
                Some(pid) if pid == own_pid => false,
                Some(pid) => !pid_is_alive(pid),
            };
            if orphaned {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    /// Loads the artifact addressed by `(name, key)`, or `None` on miss,
    /// any I/O failure, or a failed verification (in which case the
    /// artifact is quarantined first — see [`Self::quarantine_dir`]).
    ///
    /// When peer hooks are installed (a sharded fleet), a local miss — a
    /// missing file *or* a quarantined corrupt one — first asks the
    /// artifact's owning shard for the framed bytes; a verified peer copy
    /// is stored locally and returned, so the expensive recomputation is
    /// skipped.
    pub fn load(&self, name: &str, key: u64) -> Option<String> {
        if !self.enabled {
            return None;
        }
        faults::inject_io_delay();
        let path = self.path_for(name, key);
        // Read as bytes: corruption can produce invalid UTF-8, which must
        // quarantine like any other verification failure (a missing file
        // stays a plain miss).
        let mut bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => return self.peer_fill(name, key),
        };
        if faults::inject_cache_corrupt(name, key) {
            corrupt_in_place(&mut bytes);
        }
        match std::str::from_utf8(&bytes)
            .map_err(|_| "not UTF-8".to_string())
            .and_then(unframe)
        {
            Ok(payload) => Some(payload.to_string()),
            Err(_) => {
                self.quarantine(&path);
                self.peer_fill(name, key)
            }
        }
    }

    /// Attempts to satisfy a local miss from the owning peer shard.
    /// Returns the payload only when the fetched frame verifies; a bad
    /// frame is parked in quarantine (with a `peer-` prefix marking its
    /// provenance) and reported as a miss, the same contract as a corrupt
    /// local artifact.
    fn peer_fill(&self, name: &str, key: u64) -> Option<String> {
        let hooks = peer_hooks()?;
        faults::inject_peer_delay();
        match (hooks.fetch)(name, key) {
            PeerFetch::NotAttempted => None,
            PeerFetch::Miss => {
                faults::note_peer_miss();
                None
            }
            PeerFetch::Framed(raw) => match unframe(&raw) {
                Ok(payload) => {
                    let payload = payload.to_string();
                    self.store_replica(name, key, &payload);
                    faults::note_peer_hit();
                    Some(payload)
                }
                Err(_) => {
                    faults::note_peer_miss();
                    faults::note_quarantine();
                    let dir = self.quarantine_dir();
                    let file = format!("peer-{name}-{key:016x}.txt");
                    if std::fs::create_dir_all(&dir).is_ok()
                        && std::fs::write(dir.join(&file), raw).is_ok()
                    {
                        append_gen_ledger(
                            &dir.join(QUARANTINE_LEDGER),
                            current_generation(&self.root),
                            &file,
                        );
                    }
                    None
                }
            },
        }
    }

    /// Moves a failed artifact into the quarantine directory (best
    /// effort; on failure the file is removed so it cannot poison the
    /// next read either way).
    fn quarantine(&self, path: &Path) {
        faults::note_quarantine();
        mark_quarantined(path);
        let dir = self.quarantine_dir();
        let moved = std::fs::create_dir_all(&dir).is_ok()
            && path
                .file_name()
                .map(|f| std::fs::rename(path, dir.join(f)).is_ok())
                .unwrap_or(false);
        if !moved {
            let _ = std::fs::remove_file(path);
        } else if let Some(file) = path.file_name().and_then(|f| f.to_str()) {
            // Stamp the quarantined artifact with the store generation it
            // arrived at, so the store-open reaper can age it out.
            append_gen_ledger(
                &dir.join(QUARANTINE_LEDGER),
                current_generation(&self.root),
                file,
            );
        }
    }

    /// Reaps quarantined artifacts stamped more than
    /// [`QUARANTINE_REAP_GENERATIONS`] store generations before `current`,
    /// and adopts unstamped ones (quarantined by an older binary) at
    /// `current` so they age out on schedule rather than living forever.
    fn reap_stale_quarantine(&self, current: u64) {
        let qdir = self.quarantine_dir();
        let Ok(entries) = std::fs::read_dir(&qdir) else {
            return;
        };
        let ledger_path = qdir.join(QUARANTINE_LEDGER);
        let stamped = read_gen_ledger(&ledger_path);
        let mut survivors: BTreeMap<String, u64> = BTreeMap::new();
        for entry in entries.flatten() {
            let file = entry.file_name();
            let Some(file) = file.to_str() else { continue };
            if file == QUARANTINE_LEDGER {
                continue;
            }
            match stamped.get(file) {
                Some(&gen) if current.saturating_sub(gen) > QUARANTINE_REAP_GENERATIONS => {
                    if std::fs::remove_file(entry.path()).is_ok() {
                        faults::note_quarantine_reaped();
                    } else {
                        survivors.insert(file.to_string(), gen);
                    }
                }
                Some(&gen) => {
                    survivors.insert(file.to_string(), gen);
                }
                None => {
                    survivors.insert(file.to_string(), current);
                }
            }
        }
        rewrite_gen_ledger(&ledger_path, &survivors);
    }

    /// Stores an artifact (framed with the version + checksum header).
    /// Returns whether the artifact is on disk afterwards; failures are
    /// silent by contract (a cache must never fail the flow). When peer
    /// hooks are installed, a successful store also offers the artifact to
    /// its ring-owner shard so later misses elsewhere hit there.
    pub fn store(&self, name: &str, key: u64, text: &str) -> bool {
        let stored = self.store_replica(name, key, text);
        if stored {
            if let Some(hooks) = peer_hooks() {
                (hooks.push)(name, key, text);
            }
        }
        stored
    }

    /// Stores an artifact *without* invoking the peer push hook. Peer-fill
    /// and the peer-store endpoint use this so a pushed artifact can never
    /// trigger a push chain (the owner would otherwise re-offer what it
    /// just received).
    ///
    /// The write is crash-consistent: framed bytes go to a temp file,
    /// `fsync`, then an atomic rename audited against the framed length —
    /// a torn final artifact can only mean filesystem corruption, which
    /// the read-side checksum still catches. A synthetic ENOSPC from the
    /// `disk_full=` fault kind fails the store silently, the same
    /// failures-are-misses contract as a real full disk.
    pub fn store_replica(&self, name: &str, key: u64, text: &str) -> bool {
        if !self.enabled {
            return false;
        }
        faults::inject_io_delay();
        if faults::inject_disk_full(&format!("{name}-{key:016x}")) {
            return false;
        }
        if std::fs::create_dir_all(&self.root).is_err() {
            return false;
        }
        let final_path = self.path_for(name, key);
        let framed = frame(text);
        let tmp = self
            .root
            .join(format!(".tmp-{name}-{key:016x}-{}", std::process::id()));
        if !write_durable(&tmp, framed.as_bytes()) {
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        if std::fs::rename(&tmp, &final_path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return final_path.exists();
        }
        // Rename audit: the bytes at the final address must be the frame
        // we just synced, not a leftover from a racing writer of a
        // different length. (Same-length racers wrote the same frame —
        // keys are content-addressed.)
        let audited = std::fs::metadata(&final_path)
            .map(|m| m.len() == framed.len() as u64)
            .unwrap_or(false);
        if !audited {
            return false;
        }
        let file = format!("{name}-{key:016x}.txt");
        append_gen_ledger(
            &self.root.join(LEDGER_FILE),
            bump_generation(&self.root),
            &file,
        );
        if take_quarantined(&final_path) {
            faults::note_rebuilt();
        }
        self.enforce_budget(&file);
        true
    }

    /// Evicts lowest-generation artifacts until the root's `*.txt`
    /// footprint fits the budget. `keep` (the artifact just stored) and
    /// any entry whose single-flight lock is held — the working set of an
    /// in-flight plan — are never evicted, so a tight budget degrades hit
    /// rate, never correctness.
    fn enforce_budget(&self, keep: &str) {
        let Some(budget) = self.budget_bytes else {
            return;
        };
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return;
        };
        let mut files: Vec<(String, u64)> = Vec::new();
        for entry in entries.flatten() {
            let file = entry.file_name();
            let Some(file) = file.to_str() else { continue };
            if !file.ends_with(".txt") {
                continue;
            }
            if let Ok(meta) = entry.metadata() {
                if meta.is_file() {
                    files.push((file.to_string(), meta.len()));
                }
            }
        }
        let mut total: u64 = files.iter().map(|(_, size)| size).sum();
        if total <= budget {
            return;
        }
        let mut ledger = ledger_generations(&self.root);
        let pinned = pinned_files(&self.root);
        // Oldest generation first; entries predating the ledger sort
        // before everything at generation 0, ties broken by filename so
        // the order is deterministic.
        files.sort_by(|(a, _), (b, _)| {
            let (ga, gb) = (
                ledger.get(a).copied().unwrap_or(0),
                ledger.get(b).copied().unwrap_or(0),
            );
            ga.cmp(&gb).then_with(|| a.cmp(b))
        });
        for (file, size) in files {
            if total <= budget {
                break;
            }
            if file == keep || pinned.contains(&file) {
                continue;
            }
            if std::fs::remove_file(self.root.join(&file)).is_ok() {
                total -= size;
                ledger.remove(&file);
                faults::note_evicted();
            }
        }
        rewrite_gen_ledger(&self.root.join(LEDGER_FILE), &ledger);
    }
}

/// Artifact filenames under `root` whose single-flight lock is currently
/// held — an in-flight load → compute → store holds its artifact's lock
/// throughout, so these are exactly the keys pinned by running plans.
fn pinned_files(root: &Path) -> BTreeSet<String> {
    let guard = IN_FLIGHT.lock().unwrap_or_else(|p| p.into_inner());
    let Some(map) = guard.as_ref() else {
        return BTreeSet::new();
    };
    map.iter()
        .filter(|((r, _, _), _)| r == root)
        .filter(|(_, lock)| lock.try_lock().is_err())
        .map(|((_, name, key), _)| format!("{name}-{key:016x}.txt"))
        .collect()
}

/// Writes bytes and syncs them to stable storage; a crash after this
/// returns cannot tear the file.
fn write_durable(path: &Path, bytes: &[u8]) -> bool {
    let Ok(mut f) = std::fs::File::create(path) else {
        return false;
    };
    f.write_all(bytes).is_ok() && f.sync_all().is_ok()
}

/// Whether a process with this pid exists (Linux: `/proc/<pid>`;
/// elsewhere conservatively assume dead — the temp file is then reaped,
/// which only costs a concurrent writer one silent re-store).
#[cfg(target_os = "linux")]
fn pid_is_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(not(target_os = "linux"))]
fn pid_is_alive(_pid: u32) -> bool {
    false
}

/// Frames a payload with the `bdc-artifact-v1 <fnv> <len>` header.
fn frame(text: &str) -> String {
    format!("{MAGIC} {:016x} {}\n{text}", fnv1a(&[text]), text.len())
}

/// Parses and verifies a framed artifact, returning the payload slice.
///
/// # Errors
/// Names the first check that failed (version, framing, length,
/// checksum) — the caller quarantines on any of them.
fn unframe(raw: &str) -> Result<&str, String> {
    let (header, payload) = raw
        .split_once('\n')
        .ok_or_else(|| "missing header line".to_string())?;
    let mut parts = header.split(' ');
    let (magic, sum, len) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(s), Some(l), None) => (m, s, l),
        _ => return Err("malformed header".into()),
    };
    if magic != MAGIC {
        return Err(format!("version skew: `{magic}` != `{MAGIC}`"));
    }
    let expect_sum =
        u64::from_str_radix(sum, 16).map_err(|_| "unparseable checksum".to_string())?;
    let expect_len: usize = len.parse().map_err(|_| "unparseable length".to_string())?;
    if payload.len() != expect_len {
        return Err(format!(
            "truncated: payload {} bytes, header says {expect_len}",
            payload.len()
        ));
    }
    if fnv1a(&[payload]) != expect_sum {
        return Err("checksum mismatch".into());
    }
    Ok(payload)
}

/// Flips the low bit of the last byte (for injected read corruption) —
/// past the header, so the failure surfaces as a checksum mismatch,
/// exactly what real media corruption looks like. An empty file fails
/// framing instead.
fn corrupt_in_place(bytes: &mut [u8]) {
    if let Some(last) = bytes.last_mut() {
        *last ^= 0x01;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str) -> ArtifactCache {
        let dir = std::env::temp_dir().join(format!("bdc-exec-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactCache::new(dir)
    }

    /// Tests that assert on quarantine-counter deltas serialize here so a
    /// concurrently running quarantining test cannot skew the window.
    static COUNTER_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn fnv_separator_disambiguates_parts() {
        assert_ne!(fnv1a(&["ab", "c"]), fnv1a(&["a", "bc"]));
        assert_ne!(fnv1a(&["a"]), fnv1a(&["a", ""]));
        assert_eq!(fnv1a(&["x", "y"]), fnv1a(&["x", "y"]));
    }

    #[test]
    fn store_then_load_round_trips() {
        let c = temp_cache("roundtrip");
        let key = fnv1a(&["organic", "v1"]);
        assert_eq!(c.load("lib", key), None);
        assert!(c.store("lib", key, "payload\nlines\n"));
        assert_eq!(c.load("lib", key).as_deref(), Some("payload\nlines\n"));
        // A different key misses — that is the whole invalidation story.
        assert_eq!(c.load("lib", fnv1a(&["organic", "v2"])), None);
        let _ = std::fs::remove_dir_all(c.root());
    }

    #[test]
    fn disabled_cache_never_hits() {
        let c = ArtifactCache::disabled();
        assert!(!c.store("lib", 1, "x"));
        assert_eq!(c.load("lib", 1), None);
    }

    #[test]
    fn corrupt_artifact_is_quarantined_then_rebuilt() {
        let _guard = COUNTER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let c = temp_cache("corrupt");
        let key = 0x1234;
        assert!(c.store("lib", key, "the real payload"));
        // Flip bytes on disk, as failing media would.
        let path = c.path_for("lib", key);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let before = faults::counters();
        // The read detects the corruption, quarantines, and misses.
        assert_eq!(c.load("lib", key), None);
        assert!(!path.exists(), "corrupt artifact must leave the store");
        let quarantined: Vec<_> = std::fs::read_dir(c.quarantine_dir())
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            quarantined.iter().any(|f| f.starts_with("lib-")),
            "{quarantined:?}"
        );
        // The rebuild stores cleanly and the second read hits.
        assert!(c.store("lib", key, "the real payload"));
        assert_eq!(c.load("lib", key).as_deref(), Some("the real payload"));
        let delta = faults::counters().since(&before);
        assert_eq!(delta.quarantined, 1);
        assert_eq!(delta.rebuilt, 1);
        let _ = std::fs::remove_dir_all(c.root());
    }

    #[test]
    fn truncated_and_version_skewed_artifacts_miss() {
        // Quarantines twice; serialize so counter-delta tests stay exact.
        let _guard = COUNTER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let c = temp_cache("skew");
        assert!(c.store("x", 1, "hello"));
        let path = c.path_for("x", 1);
        // Truncate mid-payload.
        let framed = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &framed[..framed.len() - 2]).unwrap();
        assert_eq!(c.load("x", 1), None);
        // A pre-header (legacy) artifact reads as version skew.
        assert!(c.store("x", 2, "hello"));
        std::fs::write(c.path_for("x", 2), "bare legacy payload\n").unwrap();
        assert_eq!(c.load("x", 2), None);
        let _ = std::fs::remove_dir_all(c.root());
    }

    #[test]
    fn orphaned_tmp_files_are_reaped_on_open() {
        let dir = std::env::temp_dir().join(format!("bdc-exec-reap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // An orphan from a dead pid (pid-space maxes out well below this),
        // a malformed orphan, and a live one from our own pid.
        let dead = dir.join(".tmp-lib-0000000000000001-4000000000");
        let malformed = dir.join(".tmp-lib-garbage");
        let ours = dir.join(format!(".tmp-lib-0000000000000002-{}", std::process::id()));
        for f in [&dead, &malformed, &ours] {
            std::fs::write(f, "partial").unwrap();
        }
        let c = ArtifactCache::new(&dir);
        assert!(!dead.exists(), "dead-pid orphan must be reaped");
        assert!(!malformed.exists(), "malformed orphan must be reaped");
        assert!(ours.exists(), "own in-flight tmp must survive");
        let _ = std::fs::remove_dir_all(c.root());
    }

    #[test]
    fn peer_hooks_fill_misses_push_stores_and_reject_bad_frames() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let _guard = COUNTER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let c = temp_cache("peer");
        // Hooks scoped to this test's artifact names so concurrently
        // running cache tests never observe them.
        let fetches = Arc::new(AtomicU64::new(0));
        let pushes = Arc::new(AtomicU64::new(0));
        let (f, p) = (Arc::clone(&fetches), Arc::clone(&pushes));
        install_peer_hooks(Some(PeerHooks {
            fetch: Arc::new(move |name, key| match name {
                "peerlib" => {
                    f.fetch_add(1, Ordering::Relaxed);
                    PeerFetch::Framed(frame_artifact("peer payload"))
                }
                "peerbad" => PeerFetch::Framed(format!("{MAGIC} 0000000000000000 4\nxxxx")),
                "peerdown" if key == 7 => PeerFetch::Miss,
                _ => PeerFetch::NotAttempted,
            }),
            push: Arc::new(move |name, _, _| {
                if name.starts_with("peer") {
                    p.fetch_add(1, Ordering::Relaxed);
                }
            }),
        }));

        let before = faults::counters();
        // A local miss fills from the peer, verifies, and stores locally…
        assert_eq!(c.load("peerlib", 1).as_deref(), Some("peer payload"));
        assert_eq!(fetches.load(Ordering::Relaxed), 1);
        // …so the second read is a plain local hit (no second fetch).
        assert_eq!(c.load("peerlib", 1).as_deref(), Some("peer payload"));
        assert_eq!(fetches.load(Ordering::Relaxed), 1);
        // A peer frame that fails verification is a miss, parked in
        // quarantine with its provenance in the filename.
        assert_eq!(c.load("peerbad", 2), None);
        assert!(c
            .quarantine_dir()
            .join(format!("peer-peerbad-{:016x}.txt", 2))
            .exists());
        // An owner that answers empty-handed is a counted peer miss.
        assert_eq!(c.load("peerdown", 7), None);
        // An unowned name falls through silently.
        assert_eq!(c.load("unrelated", 3), None);
        let delta = faults::counters().since(&before);
        assert_eq!(delta.peer_hits, 1);
        assert_eq!(delta.peer_misses, 2);
        assert_eq!(delta.quarantined, 1);

        // `store` offers the artifact to the owner; `store_replica` (the
        // peer-fill/endpoint path) must not, or pushes would cycle.
        assert!(c.store("peerstore", 4, "x"));
        assert!(c.store_replica("peerstore", 5, "y"));
        assert_eq!(pushes.load(Ordering::Relaxed), 1);

        install_peer_hooks(None);
        let _ = std::fs::remove_dir_all(c.root());
    }

    #[test]
    fn frame_round_trips_through_the_public_wrappers() {
        let framed = frame_artifact("wire payload\n");
        assert_eq!(unframe_artifact(&framed), Ok("wire payload\n"));
        assert!(unframe_artifact("not a frame").is_err());
    }

    #[test]
    fn validate_cache_dir_accepts_creatable_paths() {
        let dir = std::env::temp_dir().join(format!("bdc-exec-validate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let nested = dir.join("a").join("b");
        assert_eq!(validate_cache_dir(&nested), Ok(nested.clone()));
        assert!(nested.is_dir());
        // Re-validating an existing directory is fine.
        assert!(validate_cache_dir(&nested).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_cache_budget_mb_accepts_positive_integers_only() {
        assert_eq!(parse_cache_budget_mb("64"), Ok(64));
        assert_eq!(parse_cache_budget_mb(" 1 "), Ok(1));
        for bad in ["", "0", "-8", "8.5", "64MB", "unbounded"] {
            let err = parse_cache_budget_mb(bad).expect_err(bad);
            assert!(err.contains("BDC_CACHE_BUDGET_MB"), "{bad}: {err}");
        }
    }

    #[test]
    fn budget_evicts_lowest_generation_first_and_restore_refreshes() {
        let _guard = COUNTER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let dir = std::env::temp_dir().join(format!("bdc-exec-budget-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // ~400-byte artifacts against a 1000-byte budget: two fit, three
        // do not.
        let c = ArtifactCache::with_budget_bytes(&dir, Some(1000));
        let payload = "x".repeat(400);
        let before = faults::counters();
        assert!(c.store("a", 1, &payload));
        assert!(c.store("b", 2, &payload));
        // Refresh `a` (re-store bumps its generation), then push over
        // budget: the LRU victim must now be `b`, not `a`.
        assert!(c.store("a", 1, &payload));
        assert!(c.store("c", 3, &payload));
        assert_eq!(c.load("b", 2), None, "oldest-generation entry evicted");
        assert_eq!(c.load("a", 1).as_deref(), Some(payload.as_str()));
        assert_eq!(c.load("c", 3).as_deref(), Some(payload.as_str()));
        let delta = faults::counters().since(&before);
        assert!(delta.evicted >= 1, "eviction must be counted");
        // The surviving footprint fits the budget.
        let total: u64 = std::fs::read_dir(c.root())
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".txt"))
            .map(|e| e.metadata().unwrap().len())
            .sum();
        assert!(total <= 1000, "footprint {total} exceeds the budget");
        let _ = std::fs::remove_dir_all(c.root());
    }

    #[test]
    fn budget_never_evicts_in_flight_pins() {
        let dir = std::env::temp_dir().join(format!("bdc-exec-pin-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = ArtifactCache::with_budget_bytes(&dir, Some(500));
        let payload = "y".repeat(400);
        assert!(c.store("pinned", 1, &payload));
        // Hold the single-flight lock, as a cached helper computing this
        // artifact would, then blow the budget with a second store.
        let flight = artifact_flight(c.root(), "pinned", 1);
        let held = flight.lock().unwrap();
        assert!(c.store("other", 2, &payload));
        assert_eq!(
            c.load("pinned", 1).as_deref(),
            Some(payload.as_str()),
            "a pinned artifact must survive eviction"
        );
        drop(held);
        let _ = std::fs::remove_dir_all(c.root());
    }

    #[test]
    fn stale_quarantine_is_reaped_by_generation_age() {
        let _guard = COUNTER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let c = temp_cache("qreap");
        assert!(c.store("lib", 1, "payload"));
        // Corrupt and load → quarantined + stamped at the current
        // generation.
        let path = c.path_for("lib", 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(c.load("lib", 1), None);
        let qfile = c.quarantine_dir().join(format!("lib-{:016x}.txt", 1));
        assert!(qfile.exists());

        let before = faults::counters();
        // Young: a reap at a nearby generation keeps it.
        c.reap_stale_quarantine(current_generation(c.root()) + QUARANTINE_REAP_GENERATIONS);
        assert!(qfile.exists(), "young quarantine must survive");
        // Old: a reap far in the generation future removes it.
        c.reap_stale_quarantine(current_generation(c.root()) + QUARANTINE_REAP_GENERATIONS + 2);
        assert!(!qfile.exists(), "stale quarantine must be reaped");
        let delta = faults::counters().since(&before);
        assert_eq!(delta.quarantine_reaped, 1);
        let _ = std::fs::remove_dir_all(c.root());
    }

    #[test]
    fn validate_cache_dir_rejects_with_a_diagnostic() {
        let dir =
            std::env::temp_dir().join(format!("bdc-exec-validate-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("occupied");
        std::fs::write(&file, "not a directory").unwrap();
        // A path routed *through* an existing file cannot be created.
        let err = validate_cache_dir(&file.join("sub")).expect_err("file in the way");
        assert!(err.contains("BDC_CACHE_DIR"), "{err}");
        assert!(err.contains("occupied"), "{err}");
        let err = validate_cache_dir(Path::new("")).expect_err("empty");
        assert!(err.contains("BDC_CACHE_DIR"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
