//! Content-addressed artifact cache under `results/cache/`.
//!
//! An artifact is any serialized flow product — a characterized library in
//! its Liberty-dialect text, a synthesized-core `(T_min, area)` record. The
//! key is an FNV-1a hash over every input that determines the artifact
//! (process, grid parameters, library fingerprint, design point) plus a
//! schema-version salt; the filename embeds the key, so *invalidation is
//! key change* — touching any input addresses a different file and the old
//! entry is simply never read again.
//!
//! Environment knobs: `BDC_CACHE_DIR` overrides the root directory,
//! `BDC_NO_CACHE=1` disables the cache entirely (every load misses, every
//! store is dropped). Writes go through a temp file + rename so concurrent
//! writers never expose a torn artifact; all I/O failures degrade to cache
//! misses — the cache is an accelerator, never a correctness dependency.

use std::path::{Path, PathBuf};

/// FNV-1a 64-bit hash over a sequence of string parts. Parts are separated
/// by a 0xFF sentinel byte (which cannot occur in UTF-8), so `["ab", "c"]`
/// and `["a", "bc"]` hash differently.
pub fn fnv1a(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for part in parts {
        for b in part.as_bytes() {
            eat(*b);
        }
        eat(0xFF);
    }
    h
}

/// Validates an explicitly requested cache root (`BDC_CACHE_DIR`): the
/// directory must exist or be creatable.
///
/// # Errors
/// A one-line diagnostic naming the knob, the path, and the OS error.
pub fn validate_cache_dir(dir: &Path) -> Result<PathBuf, String> {
    if dir.as_os_str().is_empty() {
        return Err(
            "BDC_CACHE_DIR is set but empty; unset it to use the default results/cache/"
                .to_string(),
        );
    }
    match std::fs::create_dir_all(dir) {
        Ok(()) => Ok(dir.to_path_buf()),
        Err(e) => Err(format!(
            "BDC_CACHE_DIR points at an uncreatable directory `{}`: {e}",
            dir.display()
        )),
    }
}

/// A content-addressed, string-payload artifact cache rooted at one
/// directory.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    root: PathBuf,
    enabled: bool,
}

impl ArtifactCache {
    /// A cache rooted at an explicit directory (created lazily on first
    /// store).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ArtifactCache {
            root: root.into(),
            enabled: true,
        }
    }

    /// A cache that never hits and never writes.
    pub fn disabled() -> Self {
        ArtifactCache {
            root: PathBuf::new(),
            enabled: false,
        }
    }

    /// The process-wide shared cache: disabled under `BDC_NO_CACHE`,
    /// rooted at `BDC_CACHE_DIR` when set, else at `results/cache/` under
    /// the enclosing repository root (found by walking up from the current
    /// directory to the nearest `Cargo.lock`, so experiment binaries run
    /// from the checkout root and `cargo test` run from a crate directory
    /// share one cache).
    ///
    /// # Panics
    /// Panics with a diagnostic when `BDC_CACHE_DIR` is set but names an
    /// uncreatable directory (e.g. a path through an existing file).
    /// An explicitly requested cache root that silently degrades to
    /// all-miss behaviour would hide a misconfiguration; only the
    /// *default* root keeps the failures-are-misses contract.
    pub fn shared() -> Self {
        if std::env::var_os("BDC_NO_CACHE").is_some() {
            return Self::disabled();
        }
        if let Some(dir) = std::env::var_os("BDC_CACHE_DIR") {
            let root = validate_cache_dir(&PathBuf::from(dir)).unwrap_or_else(|e| panic!("{e}"));
            return Self::new(root);
        }
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let mut dir = cwd.as_path();
        loop {
            if dir.join("Cargo.lock").exists() {
                return Self::new(dir.join("results").join("cache"));
            }
            match dir.parent() {
                Some(p) => dir = p,
                None => return Self::new(cwd.join("results").join("cache")),
            }
        }
    }

    /// Whether loads can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The file a `(name, key)` pair addresses.
    pub fn path_for(&self, name: &str, key: u64) -> PathBuf {
        self.root.join(format!("{name}-{key:016x}.txt"))
    }

    /// Loads the artifact addressed by `(name, key)`, or `None` on miss or
    /// any I/O failure.
    pub fn load(&self, name: &str, key: u64) -> Option<String> {
        if !self.enabled {
            return None;
        }
        std::fs::read_to_string(self.path_for(name, key)).ok()
    }

    /// Stores an artifact. Returns whether the artifact is on disk
    /// afterwards; failures are silent by contract (a cache must never
    /// fail the flow).
    pub fn store(&self, name: &str, key: u64, text: &str) -> bool {
        if !self.enabled {
            return false;
        }
        if std::fs::create_dir_all(&self.root).is_err() {
            return false;
        }
        let final_path = self.path_for(name, key);
        let tmp = self
            .root
            .join(format!(".tmp-{name}-{key:016x}-{}", std::process::id()));
        if std::fs::write(&tmp, text).is_err() {
            return false;
        }
        if std::fs::rename(&tmp, &final_path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return final_path.exists();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str) -> ArtifactCache {
        let dir = std::env::temp_dir().join(format!("bdc-exec-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactCache::new(dir)
    }

    #[test]
    fn fnv_separator_disambiguates_parts() {
        assert_ne!(fnv1a(&["ab", "c"]), fnv1a(&["a", "bc"]));
        assert_ne!(fnv1a(&["a"]), fnv1a(&["a", ""]));
        assert_eq!(fnv1a(&["x", "y"]), fnv1a(&["x", "y"]));
    }

    #[test]
    fn store_then_load_round_trips() {
        let c = temp_cache("roundtrip");
        let key = fnv1a(&["organic", "v1"]);
        assert_eq!(c.load("lib", key), None);
        assert!(c.store("lib", key, "payload\nlines\n"));
        assert_eq!(c.load("lib", key).as_deref(), Some("payload\nlines\n"));
        // A different key misses — that is the whole invalidation story.
        assert_eq!(c.load("lib", fnv1a(&["organic", "v2"])), None);
        let _ = std::fs::remove_dir_all(c.root());
    }

    #[test]
    fn disabled_cache_never_hits() {
        let c = ArtifactCache::disabled();
        assert!(!c.store("lib", 1, "x"));
        assert_eq!(c.load("lib", 1), None);
    }

    #[test]
    fn validate_cache_dir_accepts_creatable_paths() {
        let dir = std::env::temp_dir().join(format!("bdc-exec-validate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let nested = dir.join("a").join("b");
        assert_eq!(validate_cache_dir(&nested), Ok(nested.clone()));
        assert!(nested.is_dir());
        // Re-validating an existing directory is fine.
        assert!(validate_cache_dir(&nested).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_cache_dir_rejects_with_a_diagnostic() {
        let dir =
            std::env::temp_dir().join(format!("bdc-exec-validate-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("occupied");
        std::fs::write(&file, "not a directory").unwrap();
        // A path routed *through* an existing file cannot be created.
        let err = validate_cache_dir(&file.join("sub")).expect_err("file in the way");
        assert!(err.contains("BDC_CACHE_DIR"), "{err}");
        assert!(err.contains("occupied"), "{err}");
        let err = validate_cache_dir(Path::new("")).expect_err("empty");
        assert!(err.contains("BDC_CACHE_DIR"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
