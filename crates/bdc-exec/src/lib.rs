#![warn(missing_docs)]

//! Deterministic parallel execution and artifact caching for the flow.
//!
//! The paper's Figure-10 flow is a DAG of expensive, pure computations:
//! transient simulations (characterization grids), synthesis/STA runs, and
//! cycle-accurate core simulations. This crate supplies the two primitives
//! every hot path shares:
//!
//! * [`par_map`] / [`par_mapi`] — a scoped work-stealing thread pool whose
//!   output is **bit-identical to serial execution**: results are collected
//!   in index order, every task is a pure function of its index and input,
//!   and randomized tasks derive their seed from [`task_seed`] rather than
//!   from a shared sequential stream. Worker count comes from
//!   [`set_workers`], the `BDC_WORKERS` environment variable, or the
//!   machine; `workers() == 1` runs inline on the calling thread — the
//!   serial path *is* the parallel path with one worker.
//! * [`ArtifactCache`] — a content-addressed on-disk memo for flow
//!   artifacts (characterized libraries, synthesized-core results). Keys
//!   are FNV-1a hashes over every input that affects the artifact plus a
//!   schema-version salt; invalidation is key change, so stale entries are
//!   simply never addressed again.
//!
//! Four supporting pieces ride along: [`env_config`] validates the shared
//! `BDC_WORKERS` / `BDC_CACHE_DIR` / `BDC_NO_CACHE` / `BDC_FAULTS` /
//! `BDC_BATCH_LANES` / `BDC_NO_BATCH` environment knobs plus the cluster
//! topology knobs (`BDC_SHARDS` / `BDC_RING_SEED` / `BDC_SHARD_ID` /
//! `BDC_PEER_PORTS`) once at process start (every binary front door calls
//! it instead of re-reading the variables ad hoc), [`json`] holds the
//! deterministic JSON codec used by registry renders, run manifests, and
//! the serving layer alike, [`faults`] is the seeded fault-injection
//! framework the chaos tests and CI drive through `BDC_FAULTS` — inert
//! (zero branches taken, zero bytes changed) unless explicitly enabled —
//! and [`cluster`] hosts the seeded consistent-hash ring that maps cache
//! keys to owning shards for `bdc-cluster`'s router and the cache's
//! peer-fill hooks ([`install_peer_hooks`]).
//!
//! The crate is std-only by design: it sits below every other crate in the
//! workspace and the environment has no registry access (see
//! `crates/compat/README.md`).

mod batch;
mod cache;
pub mod cluster;
mod env;
pub mod faults;
pub mod json;
mod pool;
mod seed;
mod stages;

pub use batch::{
    batch_lanes, parse_batch_lanes, set_batch_lanes, DEFAULT_BATCH_LANES, MAX_BATCH_LANES,
};
pub use cache::{
    artifact_flight, fnv1a, frame_artifact, install_peer_hooks, parse_cache_budget_mb,
    unframe_artifact, validate_cache_dir, ArtifactCache, PeerFetch, PeerHooks,
    QUARANTINE_REAP_GENERATIONS,
};
pub use env::{env_config, EnvConfig};
pub use pool::{par_map, par_mapi, parse_workers, set_workers, workers};
pub use seed::{task_seed, SplitMix64};
pub use stages::{
    enter_scope, new_scope, note_stage, scope_counters, stage_counters, stage_delta, StageCount,
};
