//! Process-wide per-stage cache hit/miss counters.
//!
//! Every cached flow stage (`lib-*`, `cell-*`, `synth-*`, `alu-*`, `ipc`,
//! `exp`) reports each cache consultation here via [`note_stage`]. The
//! counters power the sweep manifest's per-point reuse statistics and the
//! "what changed" delta in `/v1/metrics`: a sweep point snapshots
//! [`stage_counters`] before and after running the plan and diffs them
//! with [`stage_delta`], so the stages that actually recomputed are named
//! explicitly instead of inferred from wall time.
//!
//! The table is telemetry, never an input: nothing rendered reads it, so
//! it sits outside the byte-determinism contract (like the fault
//! counters). Storage is a `BTreeMap` so snapshots iterate in one
//! deterministic order everywhere they are serialized.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Hit/miss tally for one named stage: `(hits, misses)`.
pub type StageCount = (u64, u64);

fn table() -> &'static Mutex<BTreeMap<String, StageCount>> {
    static TABLE: OnceLock<Mutex<BTreeMap<String, StageCount>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Per-scope tallies, keyed `(scope, stage)`. Scope `0` is "unscoped"
/// and never recorded here — the global table already holds it.
fn scoped_table() -> &'static Mutex<BTreeMap<(u64, String), StageCount>> {
    static TABLE: OnceLock<Mutex<BTreeMap<(u64, String), StageCount>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

thread_local! {
    /// The attribution scope active on this thread; 0 means unscoped.
    /// The worker pool copies the spawning thread's scope into its
    /// workers, so a scope set around a parallel region attributes every
    /// tally recorded inside it, however deep the work fans out.
    static SCOPE: Cell<u64> = const { Cell::new(0) };
}

/// Allocates a fresh, process-unique attribution scope id (never 0).
/// Concurrent plan runs (sweep points) each enter their own scope so
/// their tallies stay separable even though they interleave in time.
pub fn new_scope() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The scope active on the calling thread (0 when unscoped).
pub fn current_scope() -> u64 {
    SCOPE.with(|s| s.get())
}

/// Enters `scope` on the calling thread until the returned guard drops,
/// then restores the previous scope. Tallies recorded while the guard
/// lives — on this thread and on any pool workers it fans out to — are
/// additionally credited to `scope` (readable via [`scope_counters`]).
pub fn enter_scope(scope: u64) -> ScopeGuard {
    let prev = SCOPE.with(|s| s.replace(scope));
    ScopeGuard { prev }
}

/// Restores the previous scope on drop; see [`enter_scope`].
pub struct ScopeGuard {
    prev: u64,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|s| s.set(self.prev));
    }
}

/// Installs `scope` on the calling thread without a guard — the worker
/// pool uses this to mirror the spawning thread's scope onto workers,
/// whose thread lifetime bounds the scope.
pub fn adopt_scope(scope: u64) {
    SCOPE.with(|s| s.set(scope));
}

/// Every tally credited to `scope` so far, in stage-name order.
pub fn scope_counters(scope: u64) -> BTreeMap<String, StageCount> {
    scoped_table()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
        .filter(|((s, _), _)| *s == scope)
        .map(|((_, stage), count)| (stage.clone(), *count))
        .collect()
}

/// Records one cache consultation for `stage`: `hit` is whether the
/// artifact was served from cache (or a peer) rather than recomputed.
/// The tally always lands in the process-wide table; when the calling
/// thread is inside a scope (see [`enter_scope`]) it is also credited to
/// that scope.
///
/// Counters survive lock poisoning: a panicking node (chaos tests) must
/// not wedge every later tally.
pub fn note_stage(stage: &str, hit: bool) {
    let bump = |entry: &mut StageCount| {
        if hit {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
    };
    let mut t = table().lock().unwrap_or_else(|p| p.into_inner());
    bump(t.entry(stage.to_string()).or_insert((0, 0)));
    drop(t);
    let scope = current_scope();
    if scope != 0 {
        let mut t = scoped_table().lock().unwrap_or_else(|p| p.into_inner());
        bump(t.entry((scope, stage.to_string())).or_insert((0, 0)));
    }
}

/// A snapshot of every stage counter recorded so far in this process.
pub fn stage_counters() -> BTreeMap<String, StageCount> {
    table().lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// The counters accumulated *since* `before` (an earlier
/// [`stage_counters`] snapshot). Stages with no new activity are dropped,
/// so the result names exactly what ran in between.
pub fn stage_delta(before: &BTreeMap<String, StageCount>) -> BTreeMap<String, StageCount> {
    let now = stage_counters();
    let mut out = BTreeMap::new();
    for (stage, (hits, misses)) in now {
        let (h0, m0) = before.get(&stage).copied().unwrap_or((0, 0));
        let (dh, dm) = (hits - h0, misses - m0);
        if dh + dm > 0 {
            out.insert(stage, (dh, dm));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_names_only_what_ran() {
        let tag = format!("test-stage-{:x}", std::process::id());
        note_stage(&tag, false);
        let before = stage_counters();
        assert!(before.contains_key(&tag));
        let delta = stage_delta(&before);
        assert!(!delta.contains_key(&tag), "no new activity yet: {delta:?}");
        note_stage(&tag, true);
        note_stage(&tag, true);
        note_stage(&tag, false);
        let delta = stage_delta(&before);
        assert_eq!(delta.get(&tag), Some(&(2, 1)));
    }
}
