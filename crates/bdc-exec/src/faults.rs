//! Seeded, deterministic fault injection for the flow's three fragile
//! layers: the artifact cache, the plan/pool scheduler, and the serving
//! engine.
//!
//! The paper's substrate degrades (V_T drift, mobility loss — §2); this
//! module makes the *software* failure modes just as inspectable. A
//! `BDC_FAULTS` spec like
//!
//! ```text
//! BDC_FAULTS=cache_corrupt=0.05,task_panic=0.01,io_slow=20ms,seed=42
//! ```
//!
//! arms three injection hooks:
//!
//! * `cache_corrupt` — probability that an artifact read is handed
//!   corrupted bytes (a bit flip in the payload), exercising the cache's
//!   checksum/quarantine/rebuild path.
//! * `task_panic` — probability that a guarded task site (a plan node, a
//!   serve engine job) panics before running, exercising the
//!   `catch_unwind` + bounded-retry containment.
//! * `io_slow` — a fixed delay added to cache I/O and engine execution,
//!   exercising deadlines and socket timeouts.
//! * `disk_full` — probability that an artifact store attempt sees a
//!   synthetic ENOSPC, exercising the cache's failures-are-misses
//!   contract and the disk-budget eviction path.
//! * `peer_slow` — a fixed delay added to peer-shard artifact fetches,
//!   exercising peer timeouts and deadline propagation.
//! * `partition` — probability that a peer or proxy connection attempt
//!   is refused outright, exercising router failover and breakers.
//!
//! **Determinism:** every decision is a pure function of
//! `(seed, kind, site, attempt)` — never of wall clock, thread schedule,
//! or a shared counter — so two runs with the same spec inject the same
//! faults at the same sites, regardless of worker count. With the spec
//! unset (or every rate 0 and delay 0) the hooks are inert and output is
//! byte-identical to an uninstrumented run.
//!
//! The module also owns the process-wide *survival counters* (retries,
//! contained panics, quarantined/rebuilt artifacts). They count real
//! events as well as injected ones — a genuinely corrupt artifact
//! increments `quarantined` whether or not injection is armed — and feed
//! the run manifest, `/v1/metrics`, and the `chaos_report` survival table.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::cache::fnv1a;
use crate::seed::{task_seed, SplitMix64};

/// A validated `BDC_FAULTS` specification.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability in `[0, 1]` that an artifact read sees corrupted bytes.
    pub cache_corrupt: f64,
    /// Probability in `[0, 1]` that a guarded task site panics (per
    /// attempt, so retries re-roll).
    pub task_panic: f64,
    /// Fixed delay injected into cache I/O and engine execution.
    pub io_slow: Duration,
    /// Probability in `[0, 1]` that an artifact store attempt sees a
    /// synthetic ENOSPC.
    pub disk_full: f64,
    /// Fixed delay injected into peer-shard artifact fetches.
    pub peer_slow: Duration,
    /// Probability in `[0, 1]` that a peer/proxy connection attempt is
    /// refused.
    pub partition: f64,
    /// Root seed all injection decisions derive from.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            cache_corrupt: 0.0,
            task_panic: 0.0,
            io_slow: Duration::ZERO,
            disk_full: 0.0,
            peer_slow: Duration::ZERO,
            partition: 0.0,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// Whether every knob is at its inert value (rates 0, no delay).
    pub fn is_inert(&self) -> bool {
        self.cache_corrupt == 0.0
            && self.task_panic == 0.0
            && self.io_slow.is_zero()
            && self.disk_full == 0.0
            && self.peer_slow.is_zero()
            && self.partition == 0.0
    }

    /// Renders the spec in the exact `key=value,...` syntax
    /// [`parse_spec`] accepts (round-trip pinned by the property tests).
    pub fn to_spec(&self) -> String {
        format!(
            "cache_corrupt={},task_panic={},io_slow={}ms,disk_full={},peer_slow={}ms,partition={},seed={}",
            self.cache_corrupt,
            self.task_panic,
            self.io_slow.as_millis(),
            self.disk_full,
            self.peer_slow.as_millis(),
            self.partition,
            self.seed
        )
    }
}

/// Parses a `BDC_FAULTS` value: comma-separated `key=value` pairs with
/// keys `cache_corrupt`, `task_panic`, `disk_full`, `partition`
/// (probabilities in `[0, 1]`), `io_slow` and `peer_slow` (durations,
/// `20ms` / `2s` / `0`), and `seed` (a u64). Missing keys default to the
/// inert value; duplicate or unknown keys are rejected.
///
/// # Errors
/// A one-line diagnostic naming `BDC_FAULTS`, the offending key, and the
/// offending value, suitable for printing verbatim at process start.
pub fn parse_spec(raw: &str) -> Result<FaultConfig, String> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(
            "BDC_FAULTS is set but empty; unset it, or give a spec like \
             `cache_corrupt=0.05,task_panic=0.01,io_slow=20ms,seed=42`"
                .to_string(),
        );
    }
    let mut cfg = FaultConfig::default();
    let mut seen: Vec<&str> = Vec::new();
    for pair in raw.split(',') {
        let pair = pair.trim();
        let Some((key, value)) = pair.split_once('=') else {
            return Err(format!(
                "BDC_FAULTS entries must be `key=value`, got `{pair}`"
            ));
        };
        let (key, value) = (key.trim(), value.trim());
        if seen.contains(&key) {
            return Err(format!("BDC_FAULTS sets `{key}` twice"));
        }
        match key {
            "cache_corrupt" => cfg.cache_corrupt = parse_rate(key, value)?,
            "task_panic" => cfg.task_panic = parse_rate(key, value)?,
            "io_slow" => cfg.io_slow = parse_duration(key, value)?,
            "disk_full" => cfg.disk_full = parse_rate(key, value)?,
            "peer_slow" => cfg.peer_slow = parse_duration(key, value)?,
            "partition" => cfg.partition = parse_rate(key, value)?,
            "seed" => {
                cfg.seed = value.parse::<u64>().map_err(|_| {
                    format!("BDC_FAULTS `seed` must be an unsigned integer, got `{value}`")
                })?;
            }
            other => {
                return Err(format!(
                    "BDC_FAULTS has unknown key `{other}` (known: cache_corrupt, \
                     task_panic, io_slow, disk_full, peer_slow, partition, seed)"
                ));
            }
        }
        seen.push(key);
    }
    Ok(cfg)
}

fn parse_rate(key: &str, value: &str) -> Result<f64, String> {
    let rate: f64 = value.parse().map_err(|_| {
        format!("BDC_FAULTS `{key}` must be a probability in [0, 1], got `{value}`")
    })?;
    if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
        return Err(format!(
            "BDC_FAULTS `{key}` must be a probability in [0, 1], got `{value}`"
        ));
    }
    Ok(rate)
}

fn parse_duration(key: &str, value: &str) -> Result<Duration, String> {
    let bad = || {
        format!("BDC_FAULTS `{key}` must be a duration like `20ms`, `2s`, or `0`, got `{value}`")
    };
    let (digits, unit) = match value.find(|c: char| !c.is_ascii_digit()) {
        Some(0) => return Err(bad()),
        Some(i) => value.split_at(i),
        None => (value, "ms"),
    };
    let n: u64 = digits.parse().map_err(|_| bad())?;
    match unit {
        "ms" => Ok(Duration::from_millis(n)),
        "s" => Ok(Duration::from_secs(n)),
        // A bare `0` means "no delay" whatever the unit would have been.
        "" => Ok(Duration::from_millis(n)),
        _ => Err(bad()),
    }
}

/// The installed configuration. `initialized` distinguishes "nobody
/// looked yet" (read the environment on first use) from an explicit
/// [`install`], so tests and `chaos_report` can swap configs at runtime.
struct FaultsState {
    initialized: bool,
    cfg: Option<Arc<FaultConfig>>,
}

static STATE: Mutex<FaultsState> = Mutex::new(FaultsState {
    initialized: false,
    cfg: None,
});

/// Installs (or, with `None`, disarms) the process-wide fault
/// configuration, overriding whatever `BDC_FAULTS` says. `chaos_report`
/// uses this to escalate rates within one process; tests use it to run
/// hermetically.
pub fn install(cfg: Option<FaultConfig>) {
    let mut st = STATE.lock().unwrap_or_else(|p| p.into_inner());
    st.initialized = true;
    st.cfg = cfg.map(Arc::new);
}

/// The active fault configuration: the installed one, else `BDC_FAULTS`
/// from the environment (read once). Returns `None` when injection is
/// disarmed.
///
/// A malformed `BDC_FAULTS` reaching this point exits with a one-line
/// diagnostic — binaries validate it up front through
/// [`crate::env_config`], so this is a backstop, and silently ignoring an
/// explicitly requested fault spec would make chaos runs lie.
pub fn active() -> Option<Arc<FaultConfig>> {
    let mut st = STATE.lock().unwrap_or_else(|p| p.into_inner());
    if !st.initialized {
        st.initialized = true;
        st.cfg = match std::env::var("BDC_FAULTS") {
            Ok(raw) => match parse_spec(&raw) {
                Ok(cfg) => Some(Arc::new(cfg)),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            },
            Err(_) => None,
        };
    }
    st.cfg.clone()
}

/// A uniform draw in `[0, 1)` that is a pure function of
/// `(seed, kind, site, attempt)`.
fn roll(seed: u64, kind: &str, site: &str, attempt: u64) -> f64 {
    let h = fnv1a(&[kind, site, &attempt.to_string()]);
    SplitMix64::new(task_seed(seed, h)).next_f64()
}

/// Whether the artifact read at `(name, key)` should be handed corrupted
/// bytes. Counts the injection when it fires.
pub fn inject_cache_corrupt(name: &str, key: u64) -> bool {
    let Some(cfg) = active() else { return false };
    if cfg.cache_corrupt <= 0.0 {
        return false;
    }
    let site = format!("{name}-{key:016x}");
    let fire = roll(cfg.seed, "cache_corrupt", &site, 0) < cfg.cache_corrupt;
    if fire {
        COUNTERS.injected_corrupt.fetch_add(1, Ordering::Relaxed);
    }
    fire
}

/// Panics (by design) when the guarded task site draws an injected fault
/// for this attempt. Call at the top of a `catch_unwind`-wrapped task;
/// retries pass an incremented `attempt` and re-roll.
pub fn maybe_panic(site: &str, attempt: u64) {
    let Some(cfg) = active() else { return };
    if cfg.task_panic <= 0.0 {
        return;
    }
    if roll(cfg.seed, "task_panic", site, attempt) < cfg.task_panic {
        COUNTERS.injected_panics.fetch_add(1, Ordering::Relaxed);
        panic!("injected fault: task panic at `{site}` (attempt {attempt})");
    }
}

/// Sleeps for the configured `io_slow` delay (no-op when disarmed).
pub fn inject_io_delay() {
    let Some(cfg) = active() else { return };
    if !cfg.io_slow.is_zero() {
        COUNTERS.io_delays.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(cfg.io_slow);
    }
}

/// Whether the artifact store attempt at `site` should see a synthetic
/// ENOSPC. Counts the injection when it fires.
pub fn inject_disk_full(site: &str) -> bool {
    let Some(cfg) = active() else { return false };
    if cfg.disk_full <= 0.0 {
        return false;
    }
    let fire = roll(cfg.seed, "disk_full", site, 0) < cfg.disk_full;
    if fire {
        COUNTERS.injected_disk_full.fetch_add(1, Ordering::Relaxed);
    }
    fire
}

/// Sleeps for the configured `peer_slow` delay before a peer-shard
/// artifact fetch (no-op when disarmed).
pub fn inject_peer_delay() {
    let Some(cfg) = active() else { return };
    if !cfg.peer_slow.is_zero() {
        COUNTERS.peer_slow_delays.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(cfg.peer_slow);
    }
}

/// Whether the peer/proxy connection attempt at `site` should be refused
/// as if the network were partitioned. Retries pass an incremented
/// `attempt` and re-roll, so a partition heals under failover. Counts the
/// injection when it fires.
pub fn inject_partition(site: &str, attempt: u64) -> bool {
    let Some(cfg) = active() else { return false };
    if cfg.partition <= 0.0 {
        return false;
    }
    let fire = roll(cfg.seed, "partition", site, attempt) < cfg.partition;
    if fire {
        COUNTERS.injected_partitions.fetch_add(1, Ordering::Relaxed);
    }
    fire
}

/// The seeded backoff delay before retry `attempt` (1-based) at `site`:
/// exponential base doubling from 5 ms, plus up to 50% deterministic
/// jitter so synchronized failures do not retry in lockstep.
pub fn backoff_delay(site: &str, attempt: u64) -> Duration {
    let seed = active().map_or(0, |c| c.seed);
    let base_ms = 5u64.saturating_mul(1 << attempt.min(6));
    let jitter = (roll(seed, "backoff", site, attempt) * 0.5 * base_ms as f64) as u64;
    Duration::from_millis(base_ms + jitter)
}

/// Process-wide survival counters (see module docs).
struct Counters {
    injected_corrupt: AtomicU64,
    injected_panics: AtomicU64,
    io_delays: AtomicU64,
    retries: AtomicU64,
    panics_contained: AtomicU64,
    quarantined: AtomicU64,
    rebuilt: AtomicU64,
    peer_hits: AtomicU64,
    peer_misses: AtomicU64,
    peer_pushes: AtomicU64,
    injected_disk_full: AtomicU64,
    peer_slow_delays: AtomicU64,
    injected_partitions: AtomicU64,
    evicted: AtomicU64,
    quarantine_reaped: AtomicU64,
}

static COUNTERS: Counters = Counters {
    injected_corrupt: AtomicU64::new(0),
    injected_panics: AtomicU64::new(0),
    io_delays: AtomicU64::new(0),
    retries: AtomicU64::new(0),
    panics_contained: AtomicU64::new(0),
    quarantined: AtomicU64::new(0),
    rebuilt: AtomicU64::new(0),
    peer_hits: AtomicU64::new(0),
    peer_misses: AtomicU64::new(0),
    peer_pushes: AtomicU64::new(0),
    injected_disk_full: AtomicU64::new(0),
    peer_slow_delays: AtomicU64::new(0),
    injected_partitions: AtomicU64::new(0),
    evicted: AtomicU64::new(0),
    quarantine_reaped: AtomicU64::new(0),
};

/// A point-in-time copy of the survival counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Artifact reads handed injected-corrupt bytes.
    pub injected_corrupt: u64,
    /// Injected task panics raised.
    pub injected_panics: u64,
    /// Injected I/O delays applied.
    pub io_delays: u64,
    /// Task retries taken (after a panic or error).
    pub retries: u64,
    /// Panics contained by a `catch_unwind` guard.
    pub panics_contained: u64,
    /// Artifacts quarantined by the cache's verifier.
    pub quarantined: u64,
    /// Artifacts rebuilt after a quarantine.
    pub rebuilt: u64,
    /// Cache misses satisfied by a verified peer-shard fetch (no
    /// recomputation).
    pub peer_hits: u64,
    /// Peer fetches attempted but not satisfied (owner down, artifact
    /// absent, or the fetched frame failed verification).
    pub peer_misses: u64,
    /// Freshly stored artifacts pushed to their ring-owner shard.
    pub peer_pushes: u64,
    /// Artifact stores refused by an injected synthetic ENOSPC.
    pub injected_disk_full: u64,
    /// Injected peer-fetch delays applied.
    pub peer_slow_delays: u64,
    /// Peer/proxy connections refused by an injected partition.
    pub injected_partitions: u64,
    /// Artifacts evicted by the disk-budget LRU (real and fault-driven).
    pub evicted: u64,
    /// Quarantined artifacts reaped by the generation-age bound.
    pub quarantine_reaped: u64,
}

impl FaultCounters {
    /// The counter deltas `self - earlier` (saturating).
    pub fn since(&self, earlier: &FaultCounters) -> FaultCounters {
        FaultCounters {
            injected_corrupt: self
                .injected_corrupt
                .saturating_sub(earlier.injected_corrupt),
            injected_panics: self.injected_panics.saturating_sub(earlier.injected_panics),
            io_delays: self.io_delays.saturating_sub(earlier.io_delays),
            retries: self.retries.saturating_sub(earlier.retries),
            panics_contained: self
                .panics_contained
                .saturating_sub(earlier.panics_contained),
            quarantined: self.quarantined.saturating_sub(earlier.quarantined),
            rebuilt: self.rebuilt.saturating_sub(earlier.rebuilt),
            peer_hits: self.peer_hits.saturating_sub(earlier.peer_hits),
            peer_misses: self.peer_misses.saturating_sub(earlier.peer_misses),
            peer_pushes: self.peer_pushes.saturating_sub(earlier.peer_pushes),
            injected_disk_full: self
                .injected_disk_full
                .saturating_sub(earlier.injected_disk_full),
            peer_slow_delays: self
                .peer_slow_delays
                .saturating_sub(earlier.peer_slow_delays),
            injected_partitions: self
                .injected_partitions
                .saturating_sub(earlier.injected_partitions),
            evicted: self.evicted.saturating_sub(earlier.evicted),
            quarantine_reaped: self
                .quarantine_reaped
                .saturating_sub(earlier.quarantine_reaped),
        }
    }
}

/// Snapshots the survival counters.
pub fn counters() -> FaultCounters {
    FaultCounters {
        injected_corrupt: COUNTERS.injected_corrupt.load(Ordering::Relaxed),
        injected_panics: COUNTERS.injected_panics.load(Ordering::Relaxed),
        io_delays: COUNTERS.io_delays.load(Ordering::Relaxed),
        retries: COUNTERS.retries.load(Ordering::Relaxed),
        panics_contained: COUNTERS.panics_contained.load(Ordering::Relaxed),
        quarantined: COUNTERS.quarantined.load(Ordering::Relaxed),
        rebuilt: COUNTERS.rebuilt.load(Ordering::Relaxed),
        peer_hits: COUNTERS.peer_hits.load(Ordering::Relaxed),
        peer_misses: COUNTERS.peer_misses.load(Ordering::Relaxed),
        peer_pushes: COUNTERS.peer_pushes.load(Ordering::Relaxed),
        injected_disk_full: COUNTERS.injected_disk_full.load(Ordering::Relaxed),
        peer_slow_delays: COUNTERS.peer_slow_delays.load(Ordering::Relaxed),
        injected_partitions: COUNTERS.injected_partitions.load(Ordering::Relaxed),
        evicted: COUNTERS.evicted.load(Ordering::Relaxed),
        quarantine_reaped: COUNTERS.quarantine_reaped.load(Ordering::Relaxed),
    }
}

/// Counts a retry of a guarded task.
pub fn note_retry() {
    COUNTERS.retries.fetch_add(1, Ordering::Relaxed);
}

/// Counts a panic contained by a guard.
pub fn note_panic_contained() {
    COUNTERS.panics_contained.fetch_add(1, Ordering::Relaxed);
}

/// Counts an artifact quarantined by the cache verifier.
pub fn note_quarantine() {
    COUNTERS.quarantined.fetch_add(1, Ordering::Relaxed);
}

/// Counts an artifact rebuilt after a quarantine.
pub fn note_rebuilt() {
    COUNTERS.rebuilt.fetch_add(1, Ordering::Relaxed);
}

/// Counts a cache miss satisfied by a verified peer fetch.
pub fn note_peer_hit() {
    COUNTERS.peer_hits.fetch_add(1, Ordering::Relaxed);
}

/// Counts a peer fetch that did not produce a usable artifact.
pub fn note_peer_miss() {
    COUNTERS.peer_misses.fetch_add(1, Ordering::Relaxed);
}

/// Counts an artifact pushed to its ring-owner shard.
pub fn note_peer_push() {
    COUNTERS.peer_pushes.fetch_add(1, Ordering::Relaxed);
}

/// Counts an artifact evicted by the disk-budget LRU.
pub fn note_evicted() {
    COUNTERS.evicted.fetch_add(1, Ordering::Relaxed);
}

/// Counts a quarantined artifact reaped by the generation-age bound.
pub fn note_quarantine_reaped() {
    COUNTERS.quarantine_reaped.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_spec() {
        let cfg = parse_spec(
            "cache_corrupt=0.05,task_panic=0.01,io_slow=20ms,disk_full=0.1,\
             peer_slow=15ms,partition=0.02,seed=42",
        )
        .unwrap();
        assert_eq!(
            cfg,
            FaultConfig {
                cache_corrupt: 0.05,
                task_panic: 0.01,
                io_slow: Duration::from_millis(20),
                disk_full: 0.1,
                peer_slow: Duration::from_millis(15),
                partition: 0.02,
                seed: 42,
            }
        );
    }

    #[test]
    fn missing_keys_default_to_inert() {
        let cfg = parse_spec("seed=7").unwrap();
        assert_eq!(cfg.cache_corrupt, 0.0);
        assert_eq!(cfg.task_panic, 0.0);
        assert!(cfg.io_slow.is_zero());
        assert!(cfg.is_inert());
    }

    #[test]
    fn io_slow_accepts_seconds_and_bare_numbers() {
        assert_eq!(
            parse_spec("io_slow=2s").unwrap().io_slow,
            Duration::from_secs(2)
        );
        assert_eq!(parse_spec("io_slow=0").unwrap().io_slow, Duration::ZERO);
    }

    #[test]
    fn rejects_bad_specs_with_diagnostics() {
        for bad in [
            "",
            "   ",
            "cache_corrupt",
            "cache_corrupt=1.5",
            "cache_corrupt=-0.1",
            "cache_corrupt=NaN",
            "task_panic=two",
            "io_slow=20m",
            "io_slow=ms",
            "disk_full=1.5",
            "disk_full=-0.1",
            "disk_full=NaN",
            "peer_slow=20m",
            "peer_slow=ms",
            "partition=2",
            "partition=half",
            "seed=-1",
            "seed=1.5",
            "nosuch=1",
            "seed=1,seed=2",
            "disk_full=0.1,disk_full=0.2",
            "peer_slow=5ms,peer_slow=5ms",
            "partition=0,partition=0",
        ] {
            let err = parse_spec(bad).expect_err(bad);
            assert!(err.contains("BDC_FAULTS"), "{bad}: {err}");
        }
    }

    #[test]
    fn spec_round_trips() {
        let cfg = FaultConfig {
            cache_corrupt: 0.125,
            task_panic: 0.5,
            io_slow: Duration::from_millis(30),
            disk_full: 0.25,
            peer_slow: Duration::from_millis(10),
            partition: 0.0625,
            seed: 99,
        };
        assert_eq!(parse_spec(&cfg.to_spec()).unwrap(), cfg);
    }

    #[test]
    fn new_kinds_default_to_inert() {
        let cfg = parse_spec("seed=7").unwrap();
        assert_eq!(cfg.disk_full, 0.0);
        assert!(cfg.peer_slow.is_zero());
        assert_eq!(cfg.partition, 0.0);
        assert!(cfg.is_inert());
        // Any one of the new kinds alone makes the spec non-inert.
        assert!(!parse_spec("disk_full=0.1").unwrap().is_inert());
        assert!(!parse_spec("peer_slow=5ms").unwrap().is_inert());
        assert!(!parse_spec("partition=0.1").unwrap().is_inert());
    }

    #[test]
    fn partition_rolls_heal_across_attempts() {
        // A partition decision is a pure function of (site, attempt), so a
        // high-but-not-certain rate must eventually let a retry through.
        let a = roll(42, "partition", "peer:127.0.0.1:9", 0);
        let b = roll(42, "partition", "peer:127.0.0.1:9", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn decisions_are_deterministic_in_the_site() {
        let a = roll(42, "task_panic", "node:fig12", 1);
        let b = roll(42, "task_panic", "node:fig12", 1);
        assert_eq!(a, b);
        assert_ne!(a, roll(42, "task_panic", "node:fig12", 2));
        assert_ne!(a, roll(43, "task_panic", "node:fig12", 1));
        assert!((0.0..1.0).contains(&a));
    }

    #[test]
    fn backoff_grows_and_stays_bounded() {
        let d1 = backoff_delay("node:x", 1);
        let d3 = backoff_delay("node:x", 3);
        assert!(d1 >= Duration::from_millis(10));
        assert!(d3 >= Duration::from_millis(40));
        assert!(backoff_delay("node:x", 60) <= Duration::from_millis(5 * 64 * 2));
    }
}
