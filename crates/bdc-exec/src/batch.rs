//! The batched-transient lane-count knob.
//!
//! The SoA lockstep kernel in `bdc-circuit` advances up to `batch_lanes()`
//! independent grid points per transient call. Like the worker count in
//! [`crate::pool`], the knob resolves override → environment → default, and
//! a malformed value is rejected loudly instead of silently falling back.
//! `BDC_BATCH_LANES=1` (or the `BDC_NO_BATCH` escape hatch) selects the
//! scalar reference path; both produce byte-identical results — lanes only
//! change how the work is scheduled, never what it computes.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Lane count used when neither the override nor the environment says
/// otherwise. Eight matches the widest slew-grid chunk the characterization
/// packs produce and two AVX-512 / four AVX2 f64 vectors.
pub const DEFAULT_BATCH_LANES: usize = 8;

/// Largest accepted lane count: beyond this the batch state outgrows L1
/// for the bigger cells and lockstep divergence (stragglers holding the
/// batch) outweighs vector width.
pub const MAX_BATCH_LANES: usize = 32;

/// Lane-count override installed by [`set_batch_lanes`]; 0 means "not set".
static LANE_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the lane count for subsequent [`batch_lanes`] reads in this
/// process. `None` restores the default resolution order (environment,
/// then [`DEFAULT_BATCH_LANES`]). The parity suite uses this to pin
/// scalar-vs-batched runs without mutating the environment.
pub fn set_batch_lanes(n: Option<usize>) {
    LANE_OVERRIDE.store(
        n.map_or(0, |v| v.clamp(1, MAX_BATCH_LANES)),
        Ordering::Relaxed,
    );
}

/// The lane count batched characterization will use: the
/// [`set_batch_lanes`] override if installed, else 1 when `BDC_NO_BATCH`
/// is set (any value — presence wins, mirroring `BDC_NO_CACHE`), else
/// `BDC_BATCH_LANES` from the environment, else [`DEFAULT_BATCH_LANES`].
///
/// A malformed `BDC_BATCH_LANES` prints the parser's one-line diagnostic
/// to stderr and exits with status 2, exactly like [`crate::workers`]:
/// a typo'd knob must not silently run a different kernel than the user
/// asked to measure. Binaries that call [`crate::env_config`] up front
/// never reach this backstop.
pub fn batch_lanes() -> usize {
    let forced = LANE_OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    if std::env::var_os("BDC_NO_BATCH").is_some() {
        return 1;
    }
    if let Ok(raw) = std::env::var("BDC_BATCH_LANES") {
        return parse_batch_lanes(&raw).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
    }
    DEFAULT_BATCH_LANES
}

/// Validates a `BDC_BATCH_LANES` value: an integer in
/// `1..=`[`MAX_BATCH_LANES`], surrounding whitespace tolerated.
///
/// # Errors
/// A one-line diagnostic naming the variable and the offending value.
pub fn parse_batch_lanes(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "BDC_BATCH_LANES must be >= 1 (use 1 for the scalar reference path), got `{raw}`"
        )),
        Ok(n) if n > MAX_BATCH_LANES => Err(format!(
            "BDC_BATCH_LANES must be <= {MAX_BATCH_LANES}, got `{raw}`"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "BDC_BATCH_LANES must be a positive integer (e.g. `BDC_BATCH_LANES=8`), got `{raw}`"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serialize tests that touch the global override.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn set_batch_lanes_overrides_default() {
        let _g = LOCK.lock().unwrap();
        set_batch_lanes(Some(4));
        assert_eq!(batch_lanes(), 4);
        set_batch_lanes(Some(1));
        assert_eq!(batch_lanes(), 1);
        set_batch_lanes(None);
        // Default resolution (no env mutation in tests): either the
        // documented default or whatever the ambient environment pins.
        assert!((1..=MAX_BATCH_LANES).contains(&batch_lanes()));
    }

    #[test]
    fn override_is_clamped_into_range() {
        let _g = LOCK.lock().unwrap();
        set_batch_lanes(Some(10_000));
        assert_eq!(batch_lanes(), MAX_BATCH_LANES);
        set_batch_lanes(Some(0));
        // 0 would mean "not set"; the setter clamps it to the scalar path.
        assert_eq!(batch_lanes(), 1);
        set_batch_lanes(None);
    }

    #[test]
    fn parse_accepts_in_range_integers() {
        for (raw, expect) in [("1", 1), ("4", 4), (" 8 ", 8), ("32", 32)] {
            assert_eq!(parse_batch_lanes(raw), Ok(expect), "{raw:?}");
        }
    }

    #[test]
    fn parse_rejects_with_a_diagnostic() {
        for raw in ["0", "33", "-2", "", " ", "abc", "1.5", "8lanes", "+"] {
            let err = parse_batch_lanes(raw).expect_err(raw);
            assert!(
                err.contains("BDC_BATCH_LANES"),
                "diagnostic names the knob: {err}"
            );
            assert!(err.contains(raw.trim()) || raw.trim().is_empty(), "{err}");
        }
    }
}
