//! One-stop validation of the shared environment knobs.
//!
//! Every binary in the workspace honours the same variables:
//! `BDC_WORKERS` (worker-thread count), `BDC_CACHE_DIR` (artifact-cache
//! root), `BDC_NO_CACHE` (disable the cache), `BDC_FAULTS` (the
//! fault-injection spec, see [`crate::faults`]), `BDC_CACHE_BUDGET_MB`
//! (the artifact-store disk budget), and the cluster topology
//! knobs `BDC_SHARDS`/`BDC_RING_SEED`/`BDC_SHARD_ID`/`BDC_PEER_PORTS`
//! (see [`crate::cluster`]). Before this module each
//! binary read them ad hoc and the first *use* — possibly deep inside a
//! parallel region — panicked on a malformed value. [`env_config`] is the
//! single front door: call it first thing in `main`, print the `Err` and
//! exit on failure, and every later read (which uses the same hardened
//! parsers) is guaranteed to succeed.

use std::path::PathBuf;

use crate::batch::parse_batch_lanes;
use crate::cache::{parse_cache_budget_mb, validate_cache_dir};
use crate::cluster::{self, ClusterEnv};
use crate::faults::{self, FaultConfig};
use crate::pool::parse_workers;

/// Validated snapshot of the shared environment knobs.
///
/// Fields are `None` when the corresponding variable is unset; values are
/// already validated, so feeding `workers` to [`crate::set_workers`] or
/// `cache_dir` to the cache layer cannot fail.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvConfig {
    /// `BDC_WORKERS`, parsed and range-checked by [`parse_workers`].
    pub workers: Option<usize>,
    /// `BDC_CACHE_DIR`, canonicalized by [`validate_cache_dir`].
    pub cache_dir: Option<PathBuf>,
    /// Whether `BDC_NO_CACHE` is set (any value — presence disables the
    /// artifact cache, matching `ArtifactCache::shared`).
    pub no_cache: bool,
    /// `BDC_FAULTS`, parsed by [`faults::parse_spec`]. `None` when unset;
    /// an inert config (all rates zero) when set to e.g. `seed=1`.
    pub faults: Option<FaultConfig>,
    /// `BDC_BATCH_LANES`, parsed and range-checked by
    /// [`parse_batch_lanes`].
    pub batch_lanes: Option<usize>,
    /// Whether `BDC_NO_BATCH` is set (any value — presence forces the
    /// scalar transient path, winning over `BDC_BATCH_LANES`, matching the
    /// `BDC_NO_CACHE` convention).
    pub no_batch: bool,
    /// The cluster topology knobs (`BDC_SHARDS`, `BDC_RING_SEED`,
    /// `BDC_SHARD_ID`, `BDC_PEER_PORTS`), cross-validated by
    /// [`cluster::cluster_env`]. `None` when no cluster knob is set.
    pub cluster: Option<ClusterEnv>,
    /// `BDC_CACHE_BUDGET_MB`, parsed and range-checked by
    /// [`parse_cache_budget_mb`]. `None` when unset (no disk budget).
    pub cache_budget_mb: Option<u64>,
}

/// Reads and validates `BDC_WORKERS`, `BDC_CACHE_DIR`, `BDC_NO_CACHE`,
/// `BDC_FAULTS`, `BDC_BATCH_LANES`, `BDC_NO_BATCH`, and the cluster
/// topology knobs (`BDC_SHARDS`, `BDC_RING_SEED`, `BDC_SHARD_ID`,
/// `BDC_PEER_PORTS`).
///
/// # Errors
/// Returns the hardened parsers' diagnostics (which name the offending
/// variable) when a set variable is malformed, so callers can print the
/// message verbatim and exit instead of panicking mid-run.
pub fn env_config() -> Result<EnvConfig, String> {
    let workers = match std::env::var("BDC_WORKERS") {
        Ok(raw) => Some(parse_workers(&raw)?),
        Err(_) => None,
    };
    let no_cache = std::env::var_os("BDC_NO_CACHE").is_some();
    let cache_dir = match std::env::var("BDC_CACHE_DIR") {
        // BDC_NO_CACHE wins over BDC_CACHE_DIR in `ArtifactCache::shared`,
        // but a malformed directory is still a configuration error worth
        // rejecting up front.
        Ok(raw) => Some(validate_cache_dir(std::path::Path::new(&raw))?),
        Err(_) => None,
    };
    let fault_cfg = match std::env::var("BDC_FAULTS") {
        Ok(raw) => Some(faults::parse_spec(&raw)?),
        Err(_) => None,
    };
    let batch_lanes = match std::env::var("BDC_BATCH_LANES") {
        // BDC_NO_BATCH wins at use time (`crate::batch_lanes`), but a
        // malformed lane count is still a configuration error worth
        // rejecting up front.
        Ok(raw) => Some(parse_batch_lanes(&raw)?),
        Err(_) => None,
    };
    let no_batch = std::env::var_os("BDC_NO_BATCH").is_some();
    let cluster = cluster::cluster_env()?;
    let cache_budget_mb = match std::env::var("BDC_CACHE_BUDGET_MB") {
        Ok(raw) => Some(parse_cache_budget_mb(&raw)?),
        Err(_) => None,
    };
    Ok(EnvConfig {
        workers,
        cache_dir,
        no_cache,
        faults: fault_cfg,
        batch_lanes,
        no_batch,
        cluster,
        cache_budget_mb,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Environment-variable tests mutate process-global state; the pool and
    // cache crates already pin the parser behaviour itself, so here we only
    // exercise the pure composition path with the variables unset (the
    // default in `cargo test`) — full end-to-end env handling is covered by
    // the CLI integration tests in bdc-bench.
    #[test]
    fn unset_environment_is_all_none() {
        if std::env::var_os("BDC_WORKERS").is_none()
            && std::env::var_os("BDC_CACHE_DIR").is_none()
            && std::env::var_os("BDC_NO_CACHE").is_none()
            && std::env::var_os("BDC_FAULTS").is_none()
            && std::env::var_os("BDC_BATCH_LANES").is_none()
            && std::env::var_os("BDC_NO_BATCH").is_none()
            && std::env::var_os("BDC_SHARDS").is_none()
            && std::env::var_os("BDC_RING_SEED").is_none()
            && std::env::var_os("BDC_SHARD_ID").is_none()
            && std::env::var_os("BDC_PEER_PORTS").is_none()
            && std::env::var_os("BDC_CACHE_BUDGET_MB").is_none()
        {
            let cfg = env_config().expect("empty env is valid");
            assert_eq!(
                cfg,
                EnvConfig {
                    workers: None,
                    cache_dir: None,
                    no_cache: false,
                    faults: None,
                    batch_lanes: None,
                    no_batch: false,
                    cluster: None,
                    cache_budget_mb: None,
                }
            );
        }
    }

    // `env_config` routes `BDC_CACHE_BUDGET_MB` and `BDC_FAULTS` through
    // the same hardened parsers exercised here, so rejection coverage for
    // the new knobs lives at the parser level (process-env mutation is not
    // safe under parallel tests).
    #[test]
    fn cache_budget_parser_rejects_bad_values() {
        for bad in ["", "0", "-1", "1.5", "64MB", "lots", "18446744073709551616"] {
            let err = parse_cache_budget_mb(bad).expect_err(bad);
            assert!(err.contains("BDC_CACHE_BUDGET_MB"), "{bad}: {err}");
        }
        assert_eq!(parse_cache_budget_mb("64").unwrap(), 64);
        assert_eq!(parse_cache_budget_mb(" 8 ").unwrap(), 8);
    }

    #[test]
    fn fault_spec_parser_rejects_bad_new_kinds() {
        for bad in [
            "disk_full=2",
            "peer_slow=fast",
            "partition=-0.5",
            "disk_full=0.1,disk_full=0.1",
            "peer_slow=1ms,peer_slow=2ms",
            "partition=0.1,partition=0.1",
            "disk_fill=0.1",
        ] {
            let err = faults::parse_spec(bad).expect_err(bad);
            assert!(err.contains("BDC_FAULTS"), "{bad}: {err}");
        }
    }
}
