//! Minimal JSON value, encoder, and decoder (std-only).
//!
//! The encoder is **deterministic**: object members keep insertion order
//! (no map reordering), and finite floats are formatted with Rust's
//! shortest round-trip `Display`, so two values with bit-identical `f64`s
//! encode to byte-identical text. That property is what lets both the
//! experiment registry (`bdc-core`) and the serving layer (`bdc-serve`)
//! promise byte-identical rendered bodies regardless of worker count or
//! cache state (`bdc-serve/tests/determinism.rs` pins it end to end).
//!
//! The codec lives in this bottom-of-stack crate so every layer above —
//! registry renders, run manifests, serve responses — shares one float
//! format; `bdc_serve::json` re-exports it unchanged.
//!
//! The decoder is a recursive-descent parser hardened for untrusted input:
//! depth-limited, rejects trailing garbage, and returns `Err` (never
//! panics) on malformed or truncated text. Body size is bounded upstream
//! by callers (the serve layer's HTTP reader).

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A JSON value. Objects preserve insertion order so encoding is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `i64` (kept exact, encoded without a dot).
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered member list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encodes the value as compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a float deterministically: shortest round-trip `Display` form,
/// with a `.0` suffix forced onto integral values so the text re-parses as
/// a float-shaped token, and non-finite values (which JSON cannot carry)
/// as `null`.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{x}");
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Json`] value.
///
/// # Errors
/// Returns a one-line description of the first syntax problem; the input
/// is never panicked on.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte 0x{b:02x} at {}", self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        if !float {
            if let Ok(i) = tok.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        let x: f64 = tok
            .parse()
            .map_err(|_| format!("bad number `{tok}` at byte {start}"))?;
        if !x.is_finite() {
            return Err(format!("non-finite number `{tok}` at byte {start}"));
        }
        Ok(Json::Num(x))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Advance over a plain UTF-8 run, then handle the interesting
            // byte. Slicing at `pos` is safe because we only stop at ASCII.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            // Surrogates are rejected rather than paired:
                            // the encoder never emits them.
                            s.push(char::from_u32(code).ok_or("surrogate in \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(b) => return Err(format!("control byte 0x{b:02x} in string")),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_deterministically() {
        let v = Json::Obj(vec![
            ("b".into(), Json::Int(2)),
            ("a".into(), Json::Num(1.5)),
            ("s".into(), Json::str("x\"y\n")),
            ("z".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        assert_eq!(
            v.encode(),
            r#"{"b":2,"a":1.5,"s":"x\"y\n","z":[null,true]}"#
        );
    }

    #[test]
    fn integral_floats_keep_a_dot() {
        let mut s = String::new();
        write_f64(&mut s, 3.0);
        assert_eq!(s, "3.0");
        assert_eq!(parse("3.0").unwrap(), Json::Num(3.0));
    }

    #[test]
    fn round_trips_floats_bit_exactly() {
        for x in [1.0e-12, 0.1 + 0.2, f64::MAX, 5.0e8, -0.0] {
            let text = Json::Num(x).encode();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#" {"a": [1, 2.5, {"b": null}], "c": "d"} "#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("d"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0], Json::Int(1));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1e",
            "\"\\x\"",
            "\"",
            "{}extra",
            "nul",
            "[1 2]",
            "+1",
            "9999999999999999999999999999e999999",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_depth() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&ok).is_ok());
    }
}
