//! Per-task seed derivation and a small deterministic generator.
//!
//! Parallel Monte-Carlo code must not draw from one sequential RNG stream:
//! the draw order would then depend on the schedule. Instead each task
//! derives its own seed from `(root seed, task index)` with [`task_seed`]
//! and runs a private generator — the same numbers fall out of the serial
//! and the 8-worker run.

/// SplitMix64 finalizer: a bijective avalanche mix of a 64-bit state.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The SplitMix64 state increment (the golden-ratio constant).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the seed for task `index` of a job rooted at `root`. Distinct
/// `(root, index)` pairs map to well-separated seeds, and the result does
/// not depend on which worker runs the task or in what order.
pub fn task_seed(root: u64, index: u64) -> u64 {
    mix(mix(root.wrapping_add(GAMMA)) ^ index.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// A tiny deterministic SplitMix64 generator for tasks that need more than
/// one draw. Not cryptographic; statistically solid for Monte-Carlo use.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed (typically [`task_seed`] output).
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix(self.state)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// One standard-normal draw (Box–Muller, cosine branch) — the same
    /// construction the sequential samplers in `bdc-device` use.
    pub fn next_normal(&mut self) -> f64 {
        let u1 = self.next_f64().clamp(1.0e-12, 1.0);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_seeds_are_distinct_and_stable() {
        let a = task_seed(42, 0);
        let b = task_seed(42, 1);
        let c = task_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stability: the derivation is part of the cache/determinism
        // contract, so pin one value.
        assert_eq!(task_seed(42, 0), task_seed(42, 0));
    }

    #[test]
    fn splitmix_is_deterministic_and_in_range() {
        let mut g1 = SplitMix64::new(task_seed(7, 3));
        let mut g2 = SplitMix64::new(task_seed(7, 3));
        for _ in 0..100 {
            let (a, b) = (g1.next_f64(), g2.next_f64());
            assert_eq!(a, b);
            assert!((0.0..1.0).contains(&a));
        }
    }

    #[test]
    fn normals_have_sane_moments() {
        let mut g = SplitMix64::new(1234);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| g.next_normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
