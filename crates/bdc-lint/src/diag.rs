//! The unified diagnostic model: rules, severities, locations, reports.

use std::fmt;

/// How bad a finding is.
///
/// `Error` means a hand-off invariant of the Figure-10 flow is broken and
/// downstream numbers (STA, depth/width optima) would be silently wrong;
/// `Warning` means the artifact is legal but suspicious; `Info` records a
/// condition downstream tools handle but reports should surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Surfaced in reports only.
    Info,
    /// Suspicious but not flow-breaking.
    Warning,
    /// Breaks a flow invariant; results downstream are untrustworthy.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// Every rule the analyzer knows, across all front-ends.
///
/// Netlist rules are `NL*`, library rules `LB*`, device rules `DV*`. The
/// catalogue (with rationale and hints) is documented in `DESIGN.md`
/// §"Static analysis".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// NL001: a net is read (gate/flop input or primary output) but nothing
    /// drives it.
    UndrivenNet,
    /// NL002: a net has more than one driver.
    MultipleDrivers,
    /// NL003: a gate reads a net driven by a *later* gate — the netlist is
    /// not in topological order (a combinational loop or a broken rewrite),
    /// so the forward-pass STA would read stale arrivals.
    NonTopological,
    /// NL004: a gate's output cone reaches no primary output or flop — dead
    /// logic inflating area and leakage.
    DeadGate,
    /// NL005: a net was allocated but is neither driven nor read.
    FloatingNet,
    /// NL006: a primary input that nothing reads.
    UnusedInput,
    /// NL007: fanout above `StaConfig::max_fanout`; STA models a buffer
    /// tree, which inflates the stage's delay floor.
    FanoutOverMax,
    /// NL008: a net's capacitive load lies beyond the driving cell's
    /// characterized NLDM load axis — delay is extrapolated, not measured.
    LoadBeyondTable,
    /// NL009: a propagated input slew lies beyond the characterized NLDM
    /// slew axis.
    SlewBeyondTable,
    /// NL010: a flop whose Q is neither read nor a primary output.
    DeadFlop,
    /// NL011: the netlist uses 3-input cells although the target library's
    /// characterization prefers 2-input decomposition (§5.5) — it was not
    /// remapped for this library.
    UnmappedThreeInput,
    /// NL012: a flop whose D cone depends on no primary input or flop —
    /// the register latches a constant.
    ConstantFlop,
    /// LB001: delay does not grow monotonically along the NLDM load axis —
    /// the fitted table left its physical range.
    NonMonotoneDelay,
    /// LB002: a negative delay or slew entry in an NLDM table.
    NegativeDelay,
    /// LB003: supply rails are inconsistent (VDD ≤ VSS or VDD ≤ 0).
    RailOrder,
    /// LB004: rails violate the process convention (pseudo-E organic needs
    /// VSS < 0; CMOS expects VSS = 0).
    RailConvention,
    /// LB005: a non-physical cell scalar (area/input-cap ≤ 0, negative
    /// leakage or switching energy).
    NonPositiveCellScalar,
    /// LB006: inconsistent DFF timing (setup/clk→Q ≤ 0 or hold < 0).
    BadDffTiming,
    /// LB007: a degenerate 1×1 NLDM table — load/slew dependence is not
    /// characterized (synthetic libraries).
    DegenerateTable,
    /// LB008: the rise/fall/slew tables of one cell disagree on axes.
    AxisMismatch,
    /// LB009: negative ∂delay/∂load (drive resistance) at the table centre.
    NegativeDriveResistance,
    /// DV001: non-positive device geometry (W, L, C_i) or negative overlap.
    BadGeometry,
    /// DV002: mobility prefactor outside the physically plausible window.
    MobilityOutOfRange,
    /// DV003: threshold voltage magnitude negative or implausibly large.
    VtOutOfRange,
    /// DV004: subthreshold ideality below 1 (sub-physical) or implausibly
    /// large.
    BadSubthresholdSlope,
    /// DV005: off-current floor non-positive or so large the on/off ratio
    /// collapses.
    BadOffCurrent,
}

impl Rule {
    /// Stable rule identifier, e.g. `NL001`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UndrivenNet => "NL001",
            Rule::MultipleDrivers => "NL002",
            Rule::NonTopological => "NL003",
            Rule::DeadGate => "NL004",
            Rule::FloatingNet => "NL005",
            Rule::UnusedInput => "NL006",
            Rule::FanoutOverMax => "NL007",
            Rule::LoadBeyondTable => "NL008",
            Rule::SlewBeyondTable => "NL009",
            Rule::DeadFlop => "NL010",
            Rule::UnmappedThreeInput => "NL011",
            Rule::ConstantFlop => "NL012",
            Rule::NonMonotoneDelay => "LB001",
            Rule::NegativeDelay => "LB002",
            Rule::RailOrder => "LB003",
            Rule::RailConvention => "LB004",
            Rule::NonPositiveCellScalar => "LB005",
            Rule::BadDffTiming => "LB006",
            Rule::DegenerateTable => "LB007",
            Rule::AxisMismatch => "LB008",
            Rule::NegativeDriveResistance => "LB009",
            Rule::BadGeometry => "DV001",
            Rule::MobilityOutOfRange => "DV002",
            Rule::VtOutOfRange => "DV003",
            Rule::BadSubthresholdSlope => "DV004",
            Rule::BadOffCurrent => "DV005",
        }
    }

    /// The severity findings of this rule carry.
    pub fn severity(self) -> Severity {
        match self {
            Rule::UndrivenNet
            | Rule::MultipleDrivers
            | Rule::NonTopological
            | Rule::NegativeDelay
            | Rule::RailOrder
            | Rule::NonPositiveCellScalar
            | Rule::BadDffTiming
            | Rule::BadGeometry => Severity::Error,
            Rule::DeadGate
            | Rule::FloatingNet
            | Rule::UnusedInput
            | Rule::LoadBeyondTable
            | Rule::SlewBeyondTable
            | Rule::DeadFlop
            | Rule::ConstantFlop
            | Rule::NonMonotoneDelay
            | Rule::RailConvention
            | Rule::AxisMismatch
            | Rule::NegativeDriveResistance
            | Rule::MobilityOutOfRange
            | Rule::VtOutOfRange
            | Rule::BadSubthresholdSlope
            | Rule::BadOffCurrent => Severity::Warning,
            Rule::FanoutOverMax | Rule::UnmappedThreeInput | Rule::DegenerateTable => {
                Severity::Info
            }
        }
    }
}

/// Where a finding is anchored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// A net id in the linted netlist.
    Net(usize),
    /// An index into `Netlist::gates()`.
    Gate(usize),
    /// An index into `Netlist::flops()`.
    Flop(usize),
    /// A library cell by canonical name.
    Cell(&'static str),
    /// The library (rails, wire, DFF timing).
    Library,
    /// A device-model parameter by name.
    Param(&'static str),
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Net(n) => write!(f, "net {n}"),
            Location::Gate(g) => write!(f, "gate {g}"),
            Location::Flop(i) => write!(f, "flop {i}"),
            Location::Cell(c) => write!(f, "cell {c}"),
            Location::Library => write!(f, "library"),
            Location::Param(p) => write!(f, "param {p}"),
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Its severity (the rule's default).
    pub severity: Severity,
    /// Where it fired.
    pub location: Location,
    /// What was observed.
    pub message: String,
    /// How to fix it, when the analyzer has a suggestion.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Builds a finding with the rule's default severity.
    pub fn new(rule: Rule, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: rule.severity(),
            location,
            message: message.into(),
            hint: None,
        }
    }

    /// Attaches a fix hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity,
            self.rule.id(),
            self.location,
            self.message
        )?;
        if let Some(h) = &self.hint {
            write!(f, " (hint: {h})")?;
        }
        Ok(())
    }
}

/// All findings from linting one artifact.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// What was linted (netlist or library name).
    pub subject: String,
    /// Findings in detection order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report for `subject`.
    pub fn new(subject: impl Into<String>) -> Self {
        LintReport {
            subject: subject.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Records a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Merges another report's findings (subject kept from `self`).
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Findings at exactly `severity`.
    pub fn at(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.at(severity).count()
    }

    /// True when no `Error`-severity finding is present.
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// The worst severity present, if any finding exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// One-line summary, e.g. `alu: 0 errors, 3 warnings, 12 notes`.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} errors, {} warnings, {} notes",
            self.subject,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        )
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_worst() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn rule_ids_are_unique() {
        let all = [
            Rule::UndrivenNet,
            Rule::MultipleDrivers,
            Rule::NonTopological,
            Rule::DeadGate,
            Rule::FloatingNet,
            Rule::UnusedInput,
            Rule::FanoutOverMax,
            Rule::LoadBeyondTable,
            Rule::SlewBeyondTable,
            Rule::DeadFlop,
            Rule::UnmappedThreeInput,
            Rule::ConstantFlop,
            Rule::NonMonotoneDelay,
            Rule::NegativeDelay,
            Rule::RailOrder,
            Rule::RailConvention,
            Rule::NonPositiveCellScalar,
            Rule::BadDffTiming,
            Rule::DegenerateTable,
            Rule::AxisMismatch,
            Rule::NegativeDriveResistance,
            Rule::BadGeometry,
            Rule::MobilityOutOfRange,
            Rule::VtOutOfRange,
            Rule::BadSubthresholdSlope,
            Rule::BadOffCurrent,
        ];
        let mut ids: Vec<_> = all.iter().map(|r| r.id()).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate rule id");
    }

    #[test]
    fn report_counts_and_summary() {
        let mut r = LintReport::new("x");
        assert!(r.is_clean());
        assert_eq!(r.max_severity(), None);
        r.push(Diagnostic::new(
            Rule::UndrivenNet,
            Location::Net(3),
            "undriven",
        ));
        r.push(Diagnostic::new(Rule::DeadGate, Location::Gate(1), "dead").with_hint("remove it"));
        assert!(!r.is_clean());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.max_severity(), Some(Severity::Error));
        assert!(r.summary().contains("1 errors"));
        let text = r.to_string();
        assert!(text.contains("[NL001] net 3"));
        assert!(text.contains("hint: remove it"));
    }
}
